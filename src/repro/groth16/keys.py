"""Key and proof containers for the Groth16 backend."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..curve.bn254 import AffinePoint, point_to_bytes


@dataclass
class ProvingKey:
    """CRS elements the prover needs.

    For zkVC's packed circuits the CRPC indeterminate ``zeta`` is part of the
    toxic waste: the wire evaluations baked into these elements already
    include the ``zeta^d`` monomial factors, so proving is *identical* to
    vanilla Groth16 (the packing is free at proof time).
    """

    alpha_g1: AffinePoint
    beta_g1: AffinePoint
    beta_g2: object
    delta_g1: AffinePoint
    delta_g2: object
    # Per-wire queries (length == num_wires); entries are None when the wire
    # polynomial evaluates to zero (wire absent from that side).
    a_query: List[AffinePoint]
    b_g1_query: List[AffinePoint]
    b_g2_query: List[object]
    # Witness-only combined query [(beta*u_i + alpha*v_i + w_i)/delta]_1,
    # indexed from the first witness wire.
    k_query: List[AffinePoint]
    # Powers-of-tau-times-t(tau)/delta for the quotient polynomial.
    h_query: List[AffinePoint]
    num_public: int = 1
    domain_size: int = 0

    def size_bytes(self) -> int:
        count_g1 = (
            3
            + sum(p is not None for p in self.a_query)
            + sum(p is not None for p in self.b_g1_query)
            + sum(p is not None for p in self.k_query)
            + len(self.h_query)
        )
        count_g2 = 2 + sum(p is not None for p in self.b_g2_query)
        return count_g1 * 64 + count_g2 * 128

    def fingerprint(self) -> bytes:
        """Stable 16-byte digest of the key material.

        Unlike ``id(pk)``, the fingerprint survives serialisation round
        trips — a proving key rehydrated from the KeyStore in a pool
        worker fingerprints identically to the original — so it is the
        right cache label for the fixed-base window tables.  Hashing
        every query point would cost more than a small MSM, so the digest
        covers the shape counts, the per-key random CRS elements
        (``alpha``/``beta``/``delta``, unique per trusted setup), and the
        first/last two points of each G1 query; the fixed-base cache
        additionally content-checks the base vector itself, so a
        fingerprint collision can never produce a wrong proof.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            h = hashlib.sha256(b"groth16-pk-fingerprint-v1")
            for count in (
                self.num_public,
                self.domain_size,
                len(self.a_query),
                len(self.b_g1_query),
                len(self.k_query),
                len(self.h_query),
            ):
                h.update(count.to_bytes(8, "big"))
            for pt in (self.alpha_g1, self.beta_g1, self.delta_g1):
                h.update(point_to_bytes(pt))
            for query in (self.a_query, self.b_g1_query, self.k_query, self.h_query):
                for pt in query[:2]:
                    h.update(point_to_bytes(pt))
                for pt in query[-2:]:
                    h.update(point_to_bytes(pt))
            fp = h.digest()[:16]
            self._fingerprint = fp
        return fp


@dataclass
class VerifyingKey:
    alpha_g1: AffinePoint
    beta_g2: object
    gamma_g2: object
    delta_g2: object
    # IC elements for [1, public inputs...]
    ic: List[AffinePoint] = field(default_factory=list)

    def size_bytes(self) -> int:
        return 64 * (1 + len(self.ic)) + 3 * 128


@dataclass
class Proof:
    a: AffinePoint
    b: object  # G2
    c: AffinePoint

    def to_bytes(self) -> bytes:
        return (
            point_to_bytes(self.a)
            + point_to_bytes(self.b)
            + point_to_bytes(self.c)
        )

    def size_bytes(self) -> int:
        return len(self.to_bytes())


@dataclass
class Groth16Keypair:
    pk: ProvingKey
    vk: VerifyingKey
