"""Groth16 trusted setup.

Operates on a *specialised* :class:`~repro.r1cs.system.R1CSInstance` — for
zkVC's CRPC circuits the packing indeterminate ``Z`` has already been
collapsed to the circuit's public Fiat–Shamir point before setup runs (see
:mod:`repro.core.api`), so from here on everything is textbook Groth16.
"""

from __future__ import annotations

import secrets
from typing import Callable, Optional

from ..curve.bn254 import CURVE_ORDER, g1_generator, g2_generator, multiply
from ..field.prime_field import inv_mod
from ..qap.qap import evaluate_qap_at
from ..r1cs.system import R1CSInstance
from .keys import Groth16Keypair, ProvingKey, VerifyingKey

R = CURVE_ORDER


def _rand_scalar(rng: Callable[[], int]) -> int:
    while True:
        v = rng() % R
        if v:
            return v


def setup(
    instance: R1CSInstance,
    rng: Optional[Callable[[], int]] = None,
) -> Groth16Keypair:
    """Run the trusted setup for a concrete R1CS instance.

    ``rng`` is a zero-argument callable returning random ints; defaults to a
    cryptographically secure source.  Tests inject a seeded generator for
    reproducibility.
    """
    if rng is None:
        rng = lambda: secrets.randbits(256)  # noqa: E731

    tau = _rand_scalar(rng)
    alpha = _rand_scalar(rng)
    beta = _rand_scalar(rng)
    gamma = _rand_scalar(rng)
    delta = _rand_scalar(rng)

    qap = evaluate_qap_at(instance, tau)

    g1 = g1_generator()
    g2 = g2_generator()
    gamma_inv = inv_mod(gamma, R)
    delta_inv = inv_mod(delta, R)

    a_query = [multiply(g1, u) if u else None for u in qap.u]
    b_g1_query = [multiply(g1, v) if v else None for v in qap.v]
    b_g2_query = [multiply(g2, v) if v else None for v in qap.v]

    ic = []
    for i in range(instance.num_public):
        val = (beta * qap.u[i] + alpha * qap.v[i] + qap.w[i]) % R
        ic.append(multiply(g1, val * gamma_inv % R))

    k_query = []
    for i in range(instance.num_public, instance.num_wires):
        val = (beta * qap.u[i] + alpha * qap.v[i] + qap.w[i]) % R
        k_query.append(multiply(g1, val * delta_inv % R) if val else None)

    # [tau^i * t(tau) / delta]_1 for i = 0..N-2 (deg h <= N-2).
    h_query = []
    base = qap.t_at_tau * delta_inv % R
    power = 1
    for _ in range(qap.domain_size - 1):
        h_query.append(multiply(g1, base * power % R))
        power = power * tau % R

    pk = ProvingKey(
        alpha_g1=multiply(g1, alpha),
        beta_g1=multiply(g1, beta),
        beta_g2=multiply(g2, beta),
        delta_g1=multiply(g1, delta),
        delta_g2=multiply(g2, delta),
        a_query=a_query,
        b_g1_query=b_g1_query,
        b_g2_query=b_g2_query,
        k_query=k_query,
        h_query=h_query,
        num_public=instance.num_public,
        domain_size=qap.domain_size,
    )
    vk = VerifyingKey(
        alpha_g1=pk.alpha_g1,
        beta_g2=pk.beta_g2,
        gamma_g2=multiply(g2, gamma),
        delta_g2=pk.delta_g2,
        ic=ic,
    )
    return Groth16Keypair(pk=pk, vk=vk)
