"""Batch verification of Groth16 proofs.

Verifying k proofs naively costs 4k Miller loops.  With the standard
small-exponent batching trick, the k pairing equations are combined with
random coefficients r_i into one product check, costing k+3 Miller loops
and a single final exponentiation:

    prod_i e(-A_i, B_i)^{r_i} * e(alpha, beta)^{sum r_i}
         * e(sum r_i L_i, gamma) * e(sum r_i C_i, delta)  ==  1

Sound because a proof failing its own equation survives the batch only if
the random r_i hit a specific linear relation (probability ~ 2^-128).
All proofs must share the same verifying key.
"""

from __future__ import annotations

import secrets
from typing import Callable, List, Optional, Sequence

from ..curve.bn254 import add, multiply, neg
from ..curve.pairing import pairing_product_is_one
from .keys import Proof, VerifyingKey
from .verify import prepare_inputs


def batch_verify(
    vk: VerifyingKey,
    statements: Sequence[Sequence[int]],
    proofs: Sequence[Proof],
    rng: Optional[Callable[[], int]] = None,
) -> bool:
    """Verify many proofs against one verifying key in a single check."""
    if len(statements) != len(proofs):
        raise ValueError("statements and proofs must pair up")
    if not proofs:
        return True
    if rng is None:
        rng = lambda: secrets.randbits(127) | 1  # noqa: E731

    coeffs = [rng() for _ in proofs]
    pairs = []
    acc_l = None
    acc_c = None
    r_total = 0
    for r_i, public, proof in zip(coeffs, statements, proofs):
        r_total += r_i
        pairs.append((neg(multiply(proof.a, r_i)), proof.b))
        acc_l = add(acc_l, multiply(prepare_inputs(vk, public), r_i))
        acc_c = add(acc_c, multiply(proof.c, r_i))
    pairs.append((multiply(vk.alpha_g1, r_total), vk.beta_g2))
    pairs.append((acc_l, vk.gamma_g2))
    pairs.append((acc_c, vk.delta_g2))
    return pairing_product_is_one(pairs)
