"""Groth16 prover.

Cost profile (what the zkVC paper optimises):

* three MSMs over the wires appearing on the A side, B side, and in the
  witness (the paper's "left wires" are exactly the A-side MSM),
* the quotient polynomial ``h = (A*B - C)/t`` via coset NTTs over the
  constraint domain, plus an MSM of size ``domain - 1``.

CRPC shrinks the domain from ``a*b*n`` to ``n``; PSQ empties the A side of
everything except the actual matrix entries.

The quotient runs on a *same-size* coset: ``deg h <= N - 2``, so ``N``
evaluations anywhere off the domain determine it, and on the coset
``g * <omega_N>`` the vanishing polynomial is the constant ``t(g*w^i) =
g^N - 1``.  That needs 7 transforms of size ``N`` (3 inverse, 3 coset
forward, 1 coset inverse, batched through one cached plan) versus the
doubled-domain reference pipeline (retained as
:func:`_compute_h_reference`), which pays 3 size-``N`` plus 4
size-``2N`` transforms and a per-point alternating ``t``-inverse.  Both
compute the *same polynomial*, so proof bytes are identical.
"""

from __future__ import annotations

import secrets
from typing import Callable, Dict, List, Optional, Sequence

from ..curve.bn254 import CURVE_ORDER, add, g1_generator, multiply, neg
from ..curve.fixed_base import fixed_base_msm
from ..field import vector as _vector
from ..field.ntt import (
    NTTPlan,
    get_plan,
    naive_evaluate_on_coset,
    naive_interpolate_from_coset,
    naive_ntt,
)
from ..field.prime_field import inv_mod
from ..r1cs.system import R1CSInstance
from .keys import Proof, ProvingKey

R = CURVE_ORDER

# Coset generator for the quotient computation; any non-domain element works.
COSET_GENERATOR = 7


class _QuotientContext:
    """Everything ``_compute_h`` needs that depends only on the domain size:
    the shared transform plan (with its coset ladders pre-warmed) and the
    constant coset ``t``-inverse.  Cached per domain size — every proving
    key with the same domain shares one context, however it was (re)built.
    """

    __slots__ = ("plan", "t_inv")

    def __init__(self, domain_size: int):
        self.plan: NTTPlan = get_plan(domain_size)
        g = COSET_GENERATOR
        # t(g*w^i) = g^N * (w^N)^i - 1 = g^N - 1: constant on the coset.
        self.t_inv = inv_mod(pow(g, domain_size, R) - 1, R)
        self.plan.coset_ladder(g)


_QUOTIENT_CONTEXTS: Dict[int, _QuotientContext] = {}


def _quotient_context(domain_size: int) -> _QuotientContext:
    ctx = _QUOTIENT_CONTEXTS.get(domain_size)
    # The plan identity check keeps the context honest across
    # ``clear_ntt_plan_cache()``: a cleared plan cache would otherwise
    # leave the context pinning a stale plan while ``get_plan`` hands out
    # a fresh one.
    if ctx is None or ctx.plan is not get_plan(domain_size):
        ctx = _QuotientContext(domain_size)
        _QUOTIENT_CONTEXTS[domain_size] = ctx
    return ctx


def _compute_h(
    instance: R1CSInstance, assignment: Sequence[int], domain_size: int
) -> List[int]:
    """Coefficients of ``h(X) = (A(X)B(X) - C(X)) / t(X)``."""
    ctx = _quotient_context(domain_size)
    plan = ctx.plan
    state = plan.vec_state()
    if state is not None:
        return _compute_h_limbs(instance, assignment, domain_size, ctx, state)
    az = instance.matvec("A", assignment)
    bz = instance.matvec("B", assignment)
    cz = instance.matvec("C", assignment)
    pad = domain_size - len(az)
    if pad:
        az += [0] * pad
        bz += [0] * pad
        cz += [0] * pad

    g = COSET_GENERATOR
    a_coeffs, b_coeffs, c_coeffs = plan.ntt_many((az, bz, cz), inverse=True)
    a_ev, b_ev, c_ev = plan.coset_ntt_many((a_coeffs, b_coeffs, c_coeffs), g)

    t_inv = ctx.t_inv
    h_ev = [
        (a * b - c) * t_inv % R for a, b, c in zip(a_ev, b_ev, c_ev)
    ]
    h_coeffs = plan.coset_intt(h_ev, g)
    # deg h <= N - 2; the top coefficient must be zero for a satisfied
    # instance.
    del h_coeffs[domain_size - 1:]
    return h_coeffs


def _compute_h_limbs(
    instance: R1CSInstance,
    assignment: Sequence[int],
    domain_size: int,
    ctx: _QuotientContext,
    state: dict,
) -> List[int]:
    """The quotient chain under the vector engine: one assignment
    conversion in, one coefficient conversion out, and everything between
    (matvecs, 7 transforms, pointwise combine) in limb space.  Same
    polynomial, hence identical proof bytes."""
    np = _vector.np
    plan = ctx.plan
    g = COSET_GENERATOR
    z = _vector.to_limbs(assignment)
    prods = []
    for which in ("A", "B", "C"):
        mz = instance.matvec_limbs(which, z)
        if mz is None:  # matrix below the kernel floor: scalar matvec
            mz = _vector.to_limbs(instance.matvec(which, assignment))
        if mz.shape[0] != domain_size:
            padded = np.zeros((domain_size, 4), dtype=np.uint64)
            padded[: mz.shape[0]] = mz
            mz = padded
        coeffs = plan.ntt_limbs(mz, inverse=True, state=state)
        prods.append(plan.coset_ntt_limbs(coeffs, g, state=state))
    a_ev, b_ev, c_ev = prods
    h_ev = _vector.vec_mul_scalar(
        _vector.vec_sub(_vector.vec_mul(a_ev, b_ev), c_ev), ctx.t_inv
    )
    h_coeffs = _vector.from_limbs(plan.coset_intt_limbs(h_ev, g, state=state))
    del h_coeffs[domain_size - 1:]
    return h_coeffs


def _compute_h_reference(
    instance: R1CSInstance, assignment: Sequence[int], domain_size: int
) -> List[int]:
    """The seed quotient pipeline over the doubled domain, kept verbatim
    (naive transforms, materialised coset shifts, per-call inversions,
    tuple-unpacking matvecs) as the equivalence-test and benchmark
    reference for :func:`_compute_h`."""
    az = instance.naive_matvec("A", assignment)
    bz = instance.naive_matvec("B", assignment)
    cz = instance.naive_matvec("C", assignment)
    pad = domain_size - len(az)
    az += [0] * pad
    bz += [0] * pad
    cz += [0] * pad

    a_coeffs = naive_ntt(az, inverse=True)
    b_coeffs = naive_ntt(bz, inverse=True)
    c_coeffs = naive_ntt(cz, inverse=True)

    # Evaluate on a coset of the double-size domain so deg(A*B) fits.
    big = 2 * domain_size
    g = COSET_GENERATOR
    a_ev = naive_evaluate_on_coset(a_coeffs, big, g)
    b_ev = naive_evaluate_on_coset(b_coeffs, big, g)
    c_ev = naive_evaluate_on_coset(c_coeffs, big, g)

    # t(g*omega^i) = g^N * omega^(iN) - 1 where omega is the big-domain root;
    # omega^N = -1 for the double domain, so t alternates between g^N-1 and
    # -g^N-1.
    gn = pow(g, domain_size, R)
    t0_inv = inv_mod(gn - 1, R)
    t1_inv = inv_mod(-gn - 1, R)
    h_ev = [
        (a * b - c) % R * (t0_inv if i % 2 == 0 else t1_inv) % R
        for i, (a, b, c) in enumerate(zip(a_ev, b_ev, c_ev))
    ]
    h_coeffs = naive_interpolate_from_coset(h_ev, g)
    # deg h <= N - 2; anything above must be zero for a satisfied instance.
    return h_coeffs[: domain_size - 1]


def prove(
    pk: ProvingKey,
    instance: R1CSInstance,
    assignment: Sequence[int],
    rng: Optional[Callable[[], int]] = None,
) -> Proof:
    """Produce a Groth16 proof for ``assignment`` satisfying ``instance``."""
    if rng is None:
        rng = lambda: secrets.randbits(256)  # noqa: E731
    if len(assignment) != instance.num_wires:
        raise ValueError("assignment length mismatch")

    r = rng() % R
    s = rng() % R

    g1 = g1_generator()

    # The query bases are fixed per proving key and reused across proofs,
    # so the four G1 MSMs go through the fixed-base cache: the second proof
    # under the same key builds window tables and every later MSM runs with
    # no doublings at all.  Labels carry the key's content fingerprint, so
    # a rehydrated copy of the same key (a pool worker reloading it from
    # the KeyStore) lands on the same cache slot and keeps the warm
    # tables; the cache's own content check on the points list resets any
    # entry whose bases genuinely differ.
    fp = pk.fingerprint()
    # pi_A = alpha + sum c_i u_i(tau) + r*delta
    a_acc = fixed_base_msm(("groth16-a", fp), pk.a_query, assignment)
    pi_a = add(add(pk.alpha_g1, a_acc), multiply(pk.delta_g1, r))

    # pi_B (G2) = beta + sum c_i v_i(tau) + s*delta ; G1 copy for pi_C.
    b_acc_g2 = None
    for point, value in zip(pk.b_g2_query, assignment):
        if point is not None and value % R:
            b_acc_g2 = add(b_acc_g2, multiply(point, value))
    pi_b = add(add(pk.beta_g2, b_acc_g2), multiply(pk.delta_g2, s))
    b_acc_g1 = fixed_base_msm(("groth16-b1", fp), pk.b_g1_query, assignment)
    pi_b_g1 = add(add(pk.beta_g1, b_acc_g1), multiply(pk.delta_g1, s))

    # pi_C = K-query MSM + h(tau)t(tau)/delta + s*A + r*B1 - r*s*delta
    witness = list(assignment[pk.num_public:])
    k_acc = fixed_base_msm(("groth16-k", fp), pk.k_query, witness)

    h_coeffs = _compute_h(instance, assignment, pk.domain_size)
    h_acc = fixed_base_msm(("groth16-h", fp), pk.h_query, h_coeffs)

    pi_c = add(k_acc, h_acc)
    pi_c = add(pi_c, multiply(pi_a, s))
    pi_c = add(pi_c, multiply(pi_b_g1, r))
    pi_c = add(pi_c, neg(multiply(pk.delta_g1, r * s % R)))

    return Proof(a=pi_a, b=pi_b, c=pi_c)
