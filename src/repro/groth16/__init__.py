"""Groth16 zk-SNARK backend (pairing-based, trusted setup)."""

from .batch import batch_verify
from .keys import Groth16Keypair, Proof, ProvingKey, VerifyingKey
from .prove import prove
from .setup import setup
from .verify import verify

__all__ = [
    "Groth16Keypair",
    "batch_verify",
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "prove",
    "setup",
    "verify",
]
