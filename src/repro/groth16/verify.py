"""Groth16 verifier: one MSM over the public inputs + a 4-pairing check.

The check is ``e(A, B) = e(alpha, beta) * e(L(x), gamma) * e(C, delta)``
computed as a single product of Miller loops sharing one final
exponentiation.
"""

from __future__ import annotations

from typing import Sequence

from ..curve.bn254 import add, multiply, neg
from ..curve.pairing import pairing_product_is_one
from .keys import Proof, VerifyingKey


def prepare_inputs(vk: VerifyingKey, public_inputs: Sequence[int]):
    """Compute the statement accumulator ``L(x) = IC_0 + sum x_i IC_{i+1}``."""
    if len(public_inputs) != len(vk.ic) - 1:
        raise ValueError(
            f"expected {len(vk.ic) - 1} public inputs, got {len(public_inputs)}"
        )
    acc = vk.ic[0]
    for coeff, point in zip(public_inputs, vk.ic[1:]):
        if coeff:
            acc = add(acc, multiply(point, coeff))
    return acc


def verify(vk: VerifyingKey, public_inputs: Sequence[int], proof: Proof) -> bool:
    """True iff the proof verifies against the statement."""
    lx = prepare_inputs(vk, public_inputs)
    return pairing_product_is_one(
        [
            (neg(proof.a), proof.b),
            (vk.alpha_g1, vk.beta_g2),
            (lx, vk.gamma_g2),
            (proof.c, vk.delta_g2),
        ]
    )
