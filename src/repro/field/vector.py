"""Vectorized Fr arithmetic: arrays of field elements at C speed.

The scalar hot paths (NTT butterflies, CSR matvec terms, sumcheck combines)
pay one Python big-int modmul per element.  This module moves whole vectors
of Fr elements through each operation at once:

* **Limb layout** — at every API boundary a vector of ``n`` elements is an
  ``(n, 4)`` little-endian ``uint64`` numpy array of canonical values
  (``< p``); ``to_limbs``/``from_limbs`` convert to and from Python ints.
* **numpy engine** — elements are unpacked into 27-bit *signed digit*
  arrays (``(11, n)`` int64: 10 value digits + 1 overflow digit).  Products
  against fixed multipliers use Shoup-style digit tables
  (``T[j][i]`` = digit ``i`` of ``w * 2**(27 j) mod p``), so a multiply is
  one integer ``einsum`` plus a carry sweep — no per-element reduction.
  Variable*variable products use digit convolution.  Lazy reduction: digits
  drift up to ``+-2**35`` between sweeps (bounds are chosen so every int64
  intermediate stays below ``2**63``), and one fold + Barrett pass per
  vector canonicalizes at the end.
* **native engine** — when a C compiler is available,
  :mod:`repro.field._native` JIT-compiles 4x64 CIOS Montgomery kernels and
  this module routes through them (fixed multipliers are pre-scaled by
  ``2**256 mod p``, so data operands never leave canonical form).

Backend selection: ``REPRO_FIELD_BACKEND`` picks ``scalar`` (pure Python
big ints, always available), ``vector`` (this module), or ``auto`` (the
default: vector when numpy imports, scalar otherwise).  Inside the vector
backend the native engine is preferred when it compiles;
``REPRO_FIELD_NATIVE=0`` pins the numpy engine.  Every kernel here has a
scalar twin that remains the equivalence oracle, and all engines emit
identical canonical integers — proofs are byte-identical across backends.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from .prime_field import BN254_FR_MODULUS as P
from .prime_field import inv_mod
from . import _native

try:  # numpy is optional: without it the vector backend simply disappears
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised via the scalar CI job
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "available_impls",
    "get_backend",
    "active_impl",
    "set_backend",
    "to_limbs",
    "from_limbs",
    "vec_add",
    "vec_sub",
    "vec_mul",
    "vec_mul_scalar",
    "vec_sum",
    "batch_inv",
    "prepare_multipliers",
    "vec_mul_prepared",
    "make_ntt_kernel",
    "make_csr_kernel",
    "NTT_MIN",
    "MATVEC_MIN_TERMS",
    "SUMCHECK_MIN_HALF",
]

R256 = pow(2, 256, P)

# Digit engine geometry: 10 value digits of 27 bits cover 270 bits >= any
# canonical (< 2**254) value; the 11th row absorbs sweep overflow.  27 bits
# is the widest digit for which a full 11-row einsum against canonical
# tables stays exact in int64 even after ~20 stages of lazy butterfly
# growth (11 * 2**31.5 * 2**27 < 2**63).
W = 27
NV = 10
K = NV + 1
_MASK = (1 << W) - 1

# Profitability floors (elements / nonzero terms / sumcheck half-size):
# below these the Python<->array conversion overhead beats the kernel win.
# Measured on the benchmark host: the sumcheck rounds call ~15 vector ops
# per round, so their native break-even sits far above the NTT's, and the
# numpy digit engine (which pays a digit unpack/repack per op) never wins
# a sumcheck round at realistic sizes — it stays on the scalar kernels.
NTT_MIN = {"native": 32, "numpy": 512}
MATVEC_MIN_TERMS = {"native": 64, "numpy": 1024}
SUMCHECK_MIN_HALF = {"native": 1024, "numpy": float("inf")}


# --------------------------------------------------------------------------
# backend selection
# --------------------------------------------------------------------------

_state: dict = {"resolved": False, "backend": "scalar", "impl": None}


def available_impls() -> Tuple[str, ...]:
    """Vector-engine implementations usable on this host."""
    impls = []
    if HAVE_NUMPY:
        if _native.load() is not None:
            impls.append("native")
        impls.append("numpy")
    return tuple(impls)


def _resolve() -> None:
    mode = os.environ.get("REPRO_FIELD_BACKEND", "auto").strip().lower()
    if mode not in ("auto", "scalar", "vector", ""):
        raise ValueError(
            f"REPRO_FIELD_BACKEND={mode!r}: expected auto, scalar, or vector"
        )
    _set_resolved(mode or "auto", None)


def _set_resolved(mode: str, impl: Optional[str]) -> None:
    if mode == "scalar":
        _state.update(resolved=True, backend="scalar", impl=None)
        return
    impls = available_impls()
    if impl is not None:
        if impl not in impls:
            raise ValueError(f"vector impl {impl!r} unavailable (have {impls})")
        _state.update(resolved=True, backend="vector", impl=impl)
        return
    if impls:
        _state.update(resolved=True, backend="vector", impl=impls[0])
    else:
        # ``vector`` requested but impossible: degrade to scalar rather
        # than fail — the scalar oracle is always correct.
        _state.update(resolved=True, backend="scalar", impl=None)


def get_backend() -> str:
    """``"scalar"`` or ``"vector"`` (resolved lazily from the env)."""
    if not _state["resolved"]:
        _resolve()
    return _state["backend"]


def active_impl() -> Optional[str]:
    """``"native"``/``"numpy"`` when the vector backend is active, else
    ``None``.  Call sites treat this as the master gate."""
    if not _state["resolved"]:
        _resolve()
    return _state["impl"]


def set_backend(mode: Optional[str], impl: Optional[str] = None) -> None:
    """Force the backend at runtime (tests, benchmarks).

    ``mode`` is ``"scalar"``, ``"vector"``, ``"auto"``, or ``None`` to
    re-resolve from ``REPRO_FIELD_BACKEND``; ``impl`` optionally pins
    ``"native"``/``"numpy"`` inside the vector backend.
    """
    if mode is None:
        _state["resolved"] = False
        return
    mode = mode.strip().lower()
    if mode not in ("auto", "scalar", "vector"):
        raise ValueError(f"unknown backend {mode!r}")
    _set_resolved(mode, impl)


# --------------------------------------------------------------------------
# conversions
# --------------------------------------------------------------------------

def to_limbs(vals: Sequence[int]) -> "np.ndarray":
    """Python ints -> ``(n, 4)`` canonical little-endian uint64 limbs.

    Accepts unreduced inputs (negative or ``>= p``); they are reduced on
    the way in so every downstream kernel sees canonical values.
    """
    norm = [v if 0 <= v < P else v % P for v in vals]
    buf = b"".join(v.to_bytes(32, "little") for v in norm)
    return (
        np.frombuffer(buf, dtype="<u8").reshape(len(norm), 4).copy()
    )


def from_limbs(arr: "np.ndarray") -> List[int]:
    """``(n, 4)`` canonical limbs -> list of Python ints."""
    buf = np.ascontiguousarray(arr, dtype="<u8").tobytes()
    fb = int.from_bytes
    return [fb(buf[o : o + 32], "little") for o in range(0, len(buf), 32)]


def _limbs_1(v: int) -> "np.ndarray":
    return to_limbs([v])


# --------------------------------------------------------------------------
# numpy digit engine
# --------------------------------------------------------------------------

def _int_digits(v: int, k: int = K) -> List[int]:
    return [(v >> (W * j)) & _MASK for j in range(k)]


class _DigitTables:
    """Module-lazy constant tables for the digit engine."""

    def __init__(self) -> None:
        i64 = np.int64
        self.P_DIG = np.array(_int_digits(P, NV), dtype=i64)[:, None]
        # Digit rows of 2**(270 + 27 h) mod p, h = 0..9: folds the digit
        # convolution's high half back under 2**285.
        self.FOLD = np.array(
            [_int_digits(pow(2, W * (NV + h), P), NV) for h in range(NV)],
            dtype=i64,
        )
        self.F270 = np.ascontiguousarray(self.FOLD[0])[:, None]
        self.F297 = np.array(
            _int_digits(pow(2, W * NV + W, P), NV), dtype=i64
        )[:, None]
        # NEG_PAD: a multiple of p whose digits all exceed 2**35 — adding
        # it makes any digit vector with |digit| < 2**35 nonnegative
        # without changing the value mod p.
        base = [1 << 35] * K
        corr = _int_digits(
            (-sum(b << (W * i) for i, b in enumerate(base))) % P, K
        )
        self.NEG_PAD = np.array(
            [b + c for b, c in zip(base, corr)], dtype=i64
        )[:, None]
        # Barrett: for v < 2**271, q_hat = ((v >> 240) * MU) >> 33 with
        # MU = floor(2**273 / p) satisfies q - 2 <= q_hat <= q = v // p,
        # so v - q_hat * p < 3p.  All products stay below 2**51.
        self.MU = np.int64((1 << 273) // P)
        # NB: not ``to_limbs([P])`` — that would reduce p to 0.
        self.P_LIMBS = np.frombuffer(
            P.to_bytes(32, "little"), dtype="<u8"
        ).copy()


_tables: Optional[_DigitTables] = None


def _dt() -> _DigitTables:
    global _tables
    if _tables is None:
        _tables = _DigitTables()
    return _tables


def limbs_to_digits(arr: "np.ndarray") -> "np.ndarray":
    """``(n, 4)`` canonical limbs -> ``(K, n)`` canonical digit rows."""
    words = np.ascontiguousarray(arr.T)  # (4, n) uint64
    out = np.zeros((K, arr.shape[0]), dtype=np.uint64)
    for j in range(NV):
        bit = W * j
        wi, off = bit >> 6, bit & 63
        limb = words[wi] >> np.uint64(off)
        if off + W > 64 and wi + 1 < 4:
            limb |= words[wi + 1] << np.uint64(64 - off)
        out[j] = limb & np.uint64(_MASK)
    return out.view(np.int64)


def _sweep(t: "np.ndarray") -> None:
    """Carry-propagate digit rows in place (signed: arithmetic shift)."""
    w = np.int64(W)
    m = np.int64(_MASK)
    for i in range(t.shape[0] - 1):
        t[i + 1] += t[i] >> w
        t[i] &= m


def _swept_digits_to_limbs(t: "np.ndarray") -> "np.ndarray":
    """Canonicalize swept nonnegative digits (value < 2**306) to limbs.

    ``t`` is ``(K, n)`` with rows 0..9 canonical and ``t[10] < 2**36``.
    Fold the overflow digit (split into two 27-bit halves so every int64
    product stays small), sweep, fold the residual overflow once more,
    then one Barrett round and at most two conditional subtracts.
    """
    dt = _dt()
    c = t[NV].copy()
    t[NV] = 0
    t[:NV] += (c & np.int64(_MASK)) * dt.F270
    t[:NV] += (c >> np.int64(W)) * dt.F297
    _sweep(t)  # value < 2**282 -> t[10] < 2**12
    c = t[NV].copy()
    t[NV] = 0
    t[:NV] += c * dt.F270
    _sweep(t)  # value < 2**271, t[10] <= 1
    # Barrett: v_top = v >> 240 exactly, from digits 8..10.
    v_top = (t[8] >> np.int64(24)) | (t[9] << np.int64(3)) | (
        t[NV] << np.int64(30)
    )
    q = (v_top * dt.MU) >> np.int64(33)
    t[NV] = 0
    t[:NV] -= q * dt.P_DIG
    _sweep(t)  # value < 3p < 2**256: rows canonical, t[10] == 0
    tu = t.view(np.uint64)
    words = np.zeros((4, t.shape[1]), dtype=np.uint64)
    for j in range(NV):
        bit = W * j
        wi, off = bit >> 6, bit & 63
        words[wi] |= tu[j] << np.uint64(off)
        if off + W > 64 and wi + 1 < 4:
            words[wi + 1] |= tu[j] >> np.uint64(64 - off)
    out = np.ascontiguousarray(words.T)
    _cond_sub_p(out)
    _cond_sub_p(out)
    return out


def signed_digits_to_limbs(t: "np.ndarray") -> "np.ndarray":
    """Canonicalize signed digit rows (``|digit| < 2**35``) to limbs."""
    t = t + _dt().NEG_PAD
    _sweep(t)
    return _swept_digits_to_limbs(t)


def _geq_p(arr: "np.ndarray") -> "np.ndarray":
    """Boolean mask of rows (lexicographic, top limb first) with value >= p."""
    pl = _dt().P_LIMBS
    n = arr.shape[0]
    ge = np.zeros(n, dtype=bool)
    decided = np.zeros(n, dtype=bool)
    for i in (3, 2, 1, 0):
        col = arr[:, i]
        gt = col > pl[i]
        lt = col < pl[i]
        ge |= gt & ~decided
        decided |= gt | lt
    ge |= ~decided  # exactly p counts as >= p
    return ge


def _borrow_sub(a: "np.ndarray", b_row: "np.ndarray", mask) -> None:
    """``a[mask] -= b_row`` over (n, 4) uint64 rows, borrow-propagated."""
    sel = a[mask].view(np.int64)
    # Split into 32-bit halves so borrows fit signed int64.
    lo = (sel & np.int64(0xFFFFFFFF)).astype(np.int64)
    hi = (sel >> np.int64(32)) & np.int64(0xFFFFFFFF)
    halves = np.empty((lo.shape[0], 8), dtype=np.int64)
    halves[:, 0::2] = lo
    halves[:, 1::2] = hi
    bl = [(int(b_row[i]) >> s) & 0xFFFFFFFF for i in range(4) for s in (0, 32)]
    halves -= np.array(bl, dtype=np.int64)
    for i in range(7):
        halves[:, i + 1] += halves[:, i] >> np.int64(32)
        halves[:, i] &= np.int64(0xFFFFFFFF)
    halves[:, 7] &= np.int64(0xFFFFFFFF)
    out = halves[:, 0::2].view(np.uint64) | (
        halves[:, 1::2].view(np.uint64) << np.uint64(32)
    )
    a[mask] = out


def _cond_sub_p(arr: "np.ndarray") -> None:
    mask = _geq_p(arr)
    if mask.any():
        _borrow_sub(arr, _dt().P_LIMBS, mask)


def _np_add(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    # 32-bit halves: sums <= 2**33 + carries, no uint64 overflow possible.
    m32 = np.uint64(0xFFFFFFFF)
    s32 = np.uint64(32)
    halves = np.empty((a.shape[0], 8), dtype=np.uint64)
    halves[:, 0::2] = (a & m32) + (b & m32)
    halves[:, 1::2] = (a >> s32) + (b >> s32)
    for i in range(7):
        halves[:, i + 1] += halves[:, i] >> s32
        halves[:, i] &= m32
    halves[:, 7] &= m32  # a + b < 2p < 2**255: the top carry is zero
    out = halves[:, 0::2] | (halves[:, 1::2] << s32)
    _cond_sub_p(out)
    return out


def _np_sub(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    lo = ((a & np.uint64(0xFFFFFFFF)).view(np.int64)
          - (b & np.uint64(0xFFFFFFFF)).view(np.int64))
    hi = ((a >> np.uint64(32)).view(np.int64)
          - (b >> np.uint64(32)).view(np.int64))
    halves = np.empty((a.shape[0], 8), dtype=np.int64)
    halves[:, 0::2] = lo
    halves[:, 1::2] = hi
    for i in range(7):
        halves[:, i + 1] += halves[:, i] >> np.int64(32)
        halves[:, i] &= np.int64(0xFFFFFFFF)
    neg = halves[:, 7] >> np.int64(32) != 0  # borrow out: a < b
    halves[:, 7] &= np.int64(0xFFFFFFFF)
    out = halves[:, 0::2].view(np.uint64) | (
        halves[:, 1::2].view(np.uint64) << np.uint64(32)
    )
    if neg.any():
        # add p back where the difference went negative
        pl = _dt().P_LIMBS
        sel = out[neg]
        m32 = np.uint64(0xFFFFFFFF)
        s32 = np.uint64(32)
        h = np.empty((sel.shape[0], 8), dtype=np.uint64)
        h[:, 0::2] = (sel & m32) + (pl & m32)
        h[:, 1::2] = (sel >> s32) + (pl >> s32)
        for i in range(7):
            h[:, i + 1] += h[:, i] >> s32
            h[:, i] &= m32
        h[:, 7] &= m32
        out[neg] = h[:, 0::2] | (h[:, 1::2] << s32)
    return out


def _digit_conv(xd: "np.ndarray", yd: "np.ndarray") -> "np.ndarray":
    """Digit-space product of two canonical digit vectors.

    Returns swept nonnegative ``(K, n)`` digits with value < 2**285 and
    ``t[10] < 2**15`` — ready for :func:`_swept_digits_to_limbs`.
    """
    n = xd.shape[1]
    t = np.zeros((2 * NV, n), dtype=np.int64)
    for j in range(NV):
        # products <= (2**27)**2, at most 10 accumulate: < 2**58 — exact.
        t[j : j + NV] += xd[j] * yd[:NV]
    _sweep(t)
    dt = _dt()
    # fold rows 10..19 (weights 2**270..2**513) back onto rows 0..9
    low = t[:NV]
    low += np.einsum("hl,hi->il", t[NV:], dt.FOLD)
    out = np.empty((K, n), dtype=np.int64)
    out[:NV] = low
    out[NV] = 0
    _sweep(out)
    return out


def _np_mul(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    return _swept_digits_to_limbs(
        _digit_conv(limbs_to_digits(a), limbs_to_digits(b))
    )


def shoup_table(w: int) -> "np.ndarray":
    """``(K, NV)`` digit table of the fixed multiplier ``w``:
    row ``j`` holds the digits of ``w * 2**(27 j) mod p``."""
    return np.array(
        [_int_digits(w * pow(2, W * j, P) % P, NV) for j in range(K)],
        dtype=np.int64,
    )


def shoup_tables(ws: Sequence[int]) -> "np.ndarray":
    """Stacked ``(K, NV, m)`` tables for ``m`` fixed multipliers."""
    m = len(ws)
    out = np.empty((K, NV, m), dtype=np.int64)
    for idx, w in enumerate(ws):
        out[:, :, idx] = shoup_table(w)
    return out


def digit_mul_table(
    xd: "np.ndarray", table: "np.ndarray", out: Optional["np.ndarray"] = None
) -> "np.ndarray":
    """Multiply digit rows by per-lane Shoup tables and sweep.

    ``xd`` is ``(K, n)`` (signed lazy, ``|digit| < 2**31.5``); ``table`` is
    ``(K, NV, n)`` per-lane or ``(K, NV)`` shared.  Every product sum is
    bounded by ``11 * 2**31.5 * 2**27 < 2**63``.  Returns swept digits.
    """
    n = xd.shape[1]
    if out is None:
        out = np.empty((K, n), dtype=np.int64)
    if table.ndim == 2:
        np.einsum("jl,ji->il", xd, table, out=out[:NV])
    else:
        np.einsum("jl,jil->il", xd, table, out=out[:NV])
    out[NV] = 0
    _sweep(out)
    return out


def _np_mul_scalar(a: "np.ndarray", s: int) -> "np.ndarray":
    t = digit_mul_table(limbs_to_digits(a), shoup_table(s % P))
    return _swept_digits_to_limbs(t)


# --------------------------------------------------------------------------
# public elementwise ops (dispatch on the active engine)
# --------------------------------------------------------------------------

def _native_lib() -> Optional[_native.NativeFr]:
    return _native.load()


def _out_like(a: "np.ndarray") -> "np.ndarray":
    return np.empty(a.shape, dtype=np.uint64)


def _c(a: "np.ndarray") -> "np.ndarray":
    """C-contiguous view/copy — the ctypes kernels walk raw memory."""
    return np.ascontiguousarray(a, dtype=np.uint64)


def vec_add(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """Elementwise ``(a + b) mod p`` over canonical limb arrays."""
    if active_impl() == "native":
        nat = _native_lib()
        a, b = _c(a), _c(b)
        r = _out_like(a)
        nat.vec_add(nat.uptr(a), nat.uptr(b), nat.uptr(r), a.shape[0])
        return r
    return _np_add(a, b)


def vec_sub(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """Elementwise ``(a - b) mod p``."""
    if active_impl() == "native":
        nat = _native_lib()
        a, b = _c(a), _c(b)
        r = _out_like(a)
        nat.vec_sub(nat.uptr(a), nat.uptr(b), nat.uptr(r), a.shape[0])
        return r
    return _np_sub(a, b)


def prepare_multipliers(ws: Sequence[int]) -> "np.ndarray":
    """Precondition fixed multipliers for :func:`vec_mul_prepared`.

    Native engine: Montgomery form limbs; numpy engine: canonical limbs
    (the digit convolution needs no preconditioning).
    """
    if active_impl() == "native":
        return to_limbs([w % P * R256 % P for w in ws])
    return to_limbs(ws)


def vec_mul_prepared(a: "np.ndarray", prep: "np.ndarray") -> "np.ndarray":
    """Elementwise ``a * w`` against multipliers from
    :func:`prepare_multipliers` (built under the same active engine)."""
    if active_impl() == "native":
        nat = _native_lib()
        a, prep = _c(a), _c(prep)
        r = _out_like(a)
        nat.vec_mul(nat.uptr(a), nat.uptr(prep), nat.uptr(r), a.shape[0])
        return r
    return _np_mul(a, prep)


def vec_mul(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """Elementwise ``(a * b) mod p`` over canonical limb arrays."""
    if active_impl() == "native":
        nat = _native_lib()
        a, b = _c(a), _c(b)
        # Scale b into Montgomery form with one extra pass (b * R^2 / R).
        r2 = to_limbs([R256 * R256 % P])
        b_mont = _out_like(b)
        nat.vec_mul_scalar(
            nat.uptr(b), nat.uptr(r2), nat.uptr(b_mont), b.shape[0]
        )
        r = _out_like(a)
        nat.vec_mul(nat.uptr(a), nat.uptr(b_mont), nat.uptr(r), a.shape[0])
        return r
    return _np_mul(a, b)


def vec_mul_scalar(a: "np.ndarray", s: int) -> "np.ndarray":
    """Elementwise ``a * s mod p`` for one Python-int multiplier."""
    if active_impl() == "native":
        nat = _native_lib()
        a = _c(a)
        s_mont = to_limbs([s % P * R256 % P])
        r = _out_like(a)
        nat.vec_mul_scalar(nat.uptr(a), nat.uptr(s_mont), nat.uptr(r), a.shape[0])
        return r
    return _np_mul_scalar(a, s)


def vec_sum(a: "np.ndarray") -> int:
    """``sum(a) mod p`` — exact, via 32-bit half-limb column sums."""
    m32 = np.uint64(0xFFFFFFFF)
    s32 = np.uint64(32)
    lo = (a & m32).sum(axis=0, dtype=np.uint64)
    hi = (a >> s32).sum(axis=0, dtype=np.uint64)
    total = 0
    for i in range(3, -1, -1):
        total = (total << 64) + (int(hi[i]) << 32) + int(lo[i])
    return total % P


def batch_inv(a: "np.ndarray") -> "np.ndarray":
    """Batched inversion via a product tree: 1 scalar inversion plus
    ``O(n)`` vector multiplies.  Raises ``ZeroDivisionError`` on zero
    lanes, matching :func:`repro.field.prime_field.batch_inv_mod`."""
    n = a.shape[0]
    if n == 0:
        return a.copy()
    if not a.any(axis=1).all():
        raise ZeroDivisionError("batch inverse of 0 in prime field")
    levels = []
    cur = a
    while cur.shape[0] > 1:
        m = cur.shape[0] // 2
        left, right = cur[: 2 * m : 2], cur[1 : 2 * m : 2]
        nxt = vec_mul(left, right)
        if cur.shape[0] & 1:
            nxt = np.concatenate([nxt, cur[-1:]])
        levels.append(cur)
        cur = nxt
    root_inv = inv_mod(from_limbs(cur)[0], P)
    inv = to_limbs([root_inv])
    for cur in reversed(levels):
        m = cur.shape[0] // 2
        left, right = cur[: 2 * m : 2], cur[1 : 2 * m : 2]
        pair_inv = inv[:m]
        out = np.empty_like(cur)
        out[: 2 * m : 2] = vec_mul(pair_inv, right)
        out[1 : 2 * m : 2] = vec_mul(pair_inv, left)
        if cur.shape[0] & 1:
            out[-1:] = inv[m : m + 1]
        inv = out
    return inv


# --------------------------------------------------------------------------
# NTT kernels (stage loops; plan orchestration lives in field.ntt)
# --------------------------------------------------------------------------

class _NativeNTT:
    """Stage-concatenated Montgomery twiddles + the C butterfly sweep."""

    def __init__(self, stages: Sequence[Tuple[int, int, Sequence[int]]]):
        cat: List[int] = []
        for _length, _half, tw in stages:
            cat.extend(w * R256 % P for w in tw)
        self.n = stages[-1][0] if stages else 1
        self.tw = to_limbs(cat)
        self.nat = _native.load()

    def run_limbs(self, x: "np.ndarray") -> "np.ndarray":
        """Transform bit-rev-loaded ``(n, 4)`` limbs (in place when already
        contiguous; the transformed array is always the return value)."""
        nat = self.nat
        x = _c(x)
        nat.ntt(nat.uptr(x), x.shape[0], nat.uptr(self.tw))
        return x


class _DigitNTT:
    """Per-stage broadcast Shoup digit tables + einsum butterflies."""

    def __init__(self, stages: Sequence[Tuple[int, int, Sequence[int]]]):
        self.stages = [
            (length, half, shoup_tables(tw) if half > 1 else None)
            for (length, half, tw) in stages
        ]

    def run_limbs(self, x: "np.ndarray") -> "np.ndarray":
        """Transform bit-rev-loaded ``(n, 4)`` limbs; returns fresh limbs."""
        d = limbs_to_digits(x)  # (K, n)
        for (length, half, table) in self.stages:
            v = d.reshape(K, -1, length)
            e = v[:, :, :half]
            o = v[:, :, half:]
            if table is None:  # stage 0: twiddle is 1
                enew = e + o
                np.subtract(e, o, out=v[:, :, half:])
                v[:, :, :half] = enew
                continue
            t = np.empty_like(o)
            np.einsum("jgk,jik->igk", o, table, out=t[:NV])
            t[NV] = 0
            w = np.int64(W)
            m = np.int64(_MASK)
            for i in range(K - 1):
                t[i + 1] += t[i] >> w
                t[i] &= m
            np.subtract(e, t, out=v[:, :, half:])
            e += t
        return signed_digits_to_limbs(d)


def make_ntt_kernel(stages):
    """Stage kernel for the active engine, or ``None`` under scalar."""
    impl = active_impl()
    if impl == "native":
        return _NativeNTT(stages)
    if impl == "numpy":
        return _DigitNTT(stages)
    return None


# --------------------------------------------------------------------------
# CSR matvec kernels
# --------------------------------------------------------------------------

class _NativeCSR:
    def __init__(self, wires, coeffs, row_ptr):
        self.wires = np.asarray(wires, dtype=np.int64)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.coeffs = to_limbs([c * R256 % P for c in coeffs])
        self.rows = len(row_ptr) - 1
        self.nat = _native.load()

    def matvec_limbs(self, z: "np.ndarray") -> "np.ndarray":
        nat = self.nat
        z = _c(z)
        out = np.empty((self.rows, 4), dtype=np.uint64)
        nat.csr_matvec(
            nat.iptr(self.wires),
            nat.uptr(self.coeffs),
            nat.iptr(self.row_ptr),
            self.rows,
            nat.uptr(z),
            nat.uptr(out),
        )
        return out


class _DigitCSR:
    """Gathered digit products + ``reduceat`` row sums.

    The coefficients are fixed per matrix, so below ``_MAX_TABLE_TERMS``
    nonzeros each term gets a Shoup digit table (the same trick as the NTT
    twiddles): the per-term product is one ``einsum`` over near-canonical
    digits instead of a full digit convolution — measured ~2x faster.  The
    tables cost ``K * NV * 8`` bytes per nonzero, so very large matrices
    fall back to the tableless convolution.  Either way the per-term
    products are swept before the row reduction, so rows of ~2**35 (table
    path) / ~2**21 (convolution path) nonzeros reduce exactly in int64 —
    far beyond any realistic constraint row.
    """

    _MAX_TABLE_TERMS = 1 << 20  # ~880 MB of tables; beyond this, convolve

    def __init__(self, wires, coeffs, row_ptr):
        self.wires = np.asarray(wires, dtype=np.intp)
        self.row_ptr = np.asarray(row_ptr, dtype=np.intp)
        if len(coeffs) <= self._MAX_TABLE_TERMS:
            self.coeff_tables = shoup_tables(coeffs)
            self.coeff_digits = None
        else:  # pragma: no cover - exercised only by huge instances
            self.coeff_tables = None
            self.coeff_digits = limbs_to_digits(to_limbs(coeffs))
        self.rows = len(row_ptr) - 1

    def matvec_limbs(self, z: "np.ndarray") -> "np.ndarray":
        zd = limbs_to_digits(z)
        xd = zd[:, self.wires]
        if self.coeff_tables is not None:
            terms = digit_mul_table(xd, self.coeff_tables)
        else:  # pragma: no cover
            terms = _digit_conv(xd, self.coeff_digits)
        # ``reduceat`` over the non-empty rows only: empty rows would make
        # it echo a stray term (or index out of bounds at the tail), and
        # consecutive non-empty starts already delimit each segment.
        sums = np.zeros((K, self.rows), dtype=np.int64)
        nonempty = self.row_ptr[:-1] < self.row_ptr[1:]
        if nonempty.any():
            sums[:, nonempty] = np.add.reduceat(
                terms, self.row_ptr[:-1][nonempty], axis=1
            )
        _sweep(sums)
        return _swept_digits_to_limbs(sums)


def make_csr_kernel(wires, coeffs, row_ptr):
    """CSR matvec kernel for the active engine, or ``None`` under scalar."""
    impl = active_impl()
    if impl == "native":
        return _NativeCSR(wires, coeffs, row_ptr)
    if impl == "numpy":
        return _DigitCSR(wires, coeffs, row_ptr)
    return None
