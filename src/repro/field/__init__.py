"""Finite-field arithmetic: BN254 prime fields, extension tower, and NTT."""

from .prime_field import (
    BN254_FQ_MODULUS,
    BN254_FR_MODULUS,
    BN254_FR_TWO_ADICITY,
    FieldElement,
    Fq,
    Fr,
    PrimeField,
    batch_inv_mod,
    dot_mod,
    fr_root_of_unity,
    inv_mod,
    sqrt_mod,
)
from .extension import Fq2, Fq12
from .ntt import (
    evaluate_on_coset,
    interpolate_from_coset,
    intt,
    mul_polys_ntt,
    next_power_of_two,
    ntt,
)

__all__ = [
    "BN254_FQ_MODULUS",
    "BN254_FR_MODULUS",
    "BN254_FR_TWO_ADICITY",
    "FieldElement",
    "Fq",
    "Fq2",
    "Fq12",
    "Fr",
    "PrimeField",
    "batch_inv_mod",
    "dot_mod",
    "evaluate_on_coset",
    "fr_root_of_unity",
    "interpolate_from_coset",
    "intt",
    "inv_mod",
    "mul_polys_ntt",
    "next_power_of_two",
    "ntt",
    "sqrt_mod",
]
