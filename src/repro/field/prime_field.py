"""Prime-field arithmetic for the BN254 curve.

Two fields matter for this library:

* ``Fq`` — the base field of the BN254 curve (coordinates of curve points).
* ``Fr`` — the scalar field of BN254, which is also the field every R1CS
  witness and polynomial lives in.

Field elements are represented as plain Python integers in ``[0, p)``; the
class layer is a thin ergonomic wrapper.  Hot paths (NTT, MSM, sumcheck) work
on raw integers through the module-level helpers to avoid per-op object
allocation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

# BN254 (alt_bn128) parameters.
BN254_FQ_MODULUS = (
    21888242871839275222246405745257275088696311157297823662689037894645226208583
)
BN254_FR_MODULUS = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)

# 2-adicity of Fr: r - 1 = 2**28 * odd, which is what makes radix-2 NTT work.
BN254_FR_TWO_ADICITY = 28
# A fixed generator of Fr's multiplicative group (5 is the canonical choice).
BN254_FR_GENERATOR = 5


def inv_mod(a: int, p: int) -> int:
    """Modular inverse of ``a`` mod prime ``p``.

    Raises ``ZeroDivisionError`` for ``a == 0`` — callers treat that as a
    genuine arithmetic error, never as recoverable control flow.
    """
    a %= p
    if a == 0:
        raise ZeroDivisionError("inverse of 0 in prime field")
    return pow(a, p - 2, p)


def batch_inv_mod(values: Sequence[int], p: int) -> List[int]:
    """Montgomery batch inversion: n inversions for the price of one.

    Zero entries are not allowed (the trick breaks down); callers filter
    or special-case zeros first.
    """
    n = len(values)
    if n == 0:
        return []
    prefix = [0] * n
    acc = 1
    for i, v in enumerate(values):
        v %= p
        if v == 0:
            raise ZeroDivisionError("batch inverse of 0 in prime field")
        prefix[i] = acc
        acc = acc * v % p
    inv_acc = inv_mod(acc, p)
    out = [0] * n
    for i in range(n - 1, -1, -1):
        out[i] = prefix[i] * inv_acc % p
        inv_acc = inv_acc * (values[i] % p) % p
    return out


def sqrt_mod(a: int, p: int) -> int:
    """Square root mod prime ``p`` via Tonelli–Shanks.

    Returns one root ``x`` with ``x*x == a (mod p)``; raises ``ValueError``
    if ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if pow(a, (p - 1) // 2, p) != 1:
        raise ValueError("not a quadratic residue")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # General Tonelli–Shanks.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while pow(z, (p - 1) // 2, p) != p - 1:
        z += 1
    m, c, t, r = s, pow(z, q, p), pow(a, q, p), pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
        b = pow(c, 1 << (m - i - 1), p)
        m, c = i, b * b % p
        t, r = t * c % p, r * b % p
    return r


class PrimeField:
    """A prime field ``GF(p)``; instances act as element factories, e.g.
    ``Fr(3) + Fr(4)``."""

    __slots__ = ("modulus", "name")

    def __init__(self, modulus: int, name: str = "Fp"):
        self.modulus = modulus
        self.name = name

    def __call__(self, value: int) -> "FieldElement":
        return FieldElement(value % self.modulus, self)

    def zero(self) -> "FieldElement":
        return FieldElement(0, self)

    def one(self) -> "FieldElement":
        return FieldElement(1, self)

    def from_signed(self, value: int) -> "FieldElement":
        """Map a signed integer into the field (negative -> p - |v|)."""
        return FieldElement(value % self.modulus, self)

    def to_signed(self, element: "FieldElement") -> int:
        """Interpret an element as a signed integer in (-p/2, p/2]."""
        v = element.value
        return v - self.modulus if v > self.modulus // 2 else v

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"{self.name}(p={self.modulus})"


class FieldElement:
    """An element of a :class:`PrimeField`, supporting natural operators."""

    __slots__ = ("value", "field")

    def __init__(self, value: int, field: PrimeField):
        self.value = value
        self.field = field

    # -- arithmetic ---------------------------------------------------------
    def _coerce(self, other) -> int:
        if isinstance(other, FieldElement):
            if other.field.modulus != self.field.modulus:
                raise ValueError("mixing elements of different fields")
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement((self.value + v) % self.field.modulus, self.field)

    __radd__ = __add__

    def __sub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement((self.value - v) % self.field.modulus, self.field)

    def __rsub__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement((v - self.value) % self.field.modulus, self.field)

    def __mul__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.value * v % self.field.modulus, self.field)

    __rmul__ = __mul__

    def __neg__(self):
        return FieldElement(-self.value % self.field.modulus, self.field)

    def __truediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(
            self.value * inv_mod(v, self.field.modulus) % self.field.modulus,
            self.field,
        )

    def __rtruediv__(self, other):
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(
            v * inv_mod(self.value, self.field.modulus) % self.field.modulus,
            self.field,
        )

    def __pow__(self, exponent: int):
        return FieldElement(
            pow(self.value, exponent, self.field.modulus), self.field
        )

    def inv(self) -> "FieldElement":
        return FieldElement(inv_mod(self.value, self.field.modulus), self.field)

    def sqrt(self) -> "FieldElement":
        return FieldElement(
            sqrt_mod(self.value, self.field.modulus), self.field
        )

    # -- comparison / hashing ------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, FieldElement):
            return (
                self.value == other.value
                and self.field.modulus == other.field.modulus
            )
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.modulus))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.field.name}({self.value})"


# Shared field singletons.
Fq = PrimeField(BN254_FQ_MODULUS, "Fq")
Fr = PrimeField(BN254_FR_MODULUS, "Fr")


def fr_root_of_unity(order: int) -> int:
    """A primitive ``order``-th root of unity in Fr (order must be a power of
    two dividing ``2**28``)."""
    if order < 1 or order & (order - 1):
        raise ValueError("order must be a power of two")
    log = order.bit_length() - 1
    if log > BN254_FR_TWO_ADICITY:
        raise ValueError(
            f"Fr only supports radix-2 domains up to 2**{BN254_FR_TWO_ADICITY}"
        )
    p = BN254_FR_MODULUS
    # generator**((p-1)/order) has multiplicative order exactly `order`.
    return pow(BN254_FR_GENERATOR, (p - 1) >> log, p)


def dot_mod(a: Iterable[int], b: Iterable[int], p: int) -> int:
    """Inner product of two raw-int vectors mod ``p``."""
    return sum(x * y for x, y in zip(a, b)) % p
