"""Optional runtime-compiled C kernels for the vector field engine.

The vector backend (:mod:`repro.field.vector`) is a numpy limb/digit engine;
on hosts that also ship a C compiler the hottest kernels — 4x64 Montgomery
multiply, modular add/sub, the radix-2 NTT butterfly sweep, and the CSR
matvec — run instead through a tiny shared library compiled here at first
use.  Nothing is ever installed: the source below is written to a per-user
cache directory under the system tempdir, compiled with whatever ``cc``/
``gcc``/``clang`` is on PATH, and loaded via :mod:`ctypes`.  Any failure
(no compiler, sandboxed tempdir, broken toolchain) silently degrades to the
pure-numpy engine; correctness never depends on this module.

Set ``REPRO_FIELD_NATIVE=0`` to refuse the compiled path outright (the
equivalence tests use this to pin the numpy engine).

Layout contract shared with :mod:`vector`: field elements travel as
``(n, 4)`` little-endian ``uint64`` limb arrays, canonical (``< p``) unless
stated otherwise; multipliers that feed ``mont_mul`` are pre-scaled by
``2**256 mod p`` (Montgomery form) so data operands never leave canonical
form.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from typing import Optional

# BN254 Fr.
_P = 21888242871839275222246405745257275088548364400416034343698204186575808495617

_SOURCE = r"""
/* BN254 Fr 4x64 Montgomery kernels (little-endian limbs). */
#include <stdint.h>
#include <stddef.h>

typedef unsigned __int128 u128;

static const uint64_t P[4] = {
    0x43e1f593f0000001ULL, 0x2833e84879b97091ULL,
    0xb85045b68181585dULL, 0x30644e72e131a029ULL,
};
static const uint64_t N0INV = 0xc2e1f593efffffffULL; /* -p^-1 mod 2^64 */

static inline int geq_p(const uint64_t a[4]) {
    for (int i = 3; i >= 0; i--) {
        if (a[i] > P[i]) return 1;
        if (a[i] < P[i]) return 0;
    }
    return 1;
}

static inline void sub_p(uint64_t a[4]) {
    u128 brw = 0;
    for (int i = 0; i < 4; i++) {
        u128 d = (u128)a[i] - P[i] - (uint64_t)brw;
        a[i] = (uint64_t)d;
        brw = (d >> 64) & 1;
    }
}

static inline void addmod(const uint64_t a[4], const uint64_t b[4],
                          uint64_t r[4]) {
    u128 c = 0;
    for (int i = 0; i < 4; i++) {
        c += (u128)a[i] + b[i];
        r[i] = (uint64_t)c;
        c >>= 64;
    }
    /* a, b < p < 2^254: the sum cannot carry out of 4 limbs. */
    if (geq_p(r)) sub_p(r);
}

static inline void submod(const uint64_t a[4], const uint64_t b[4],
                          uint64_t r[4]) {
    u128 brw = 0;
    for (int i = 0; i < 4; i++) {
        u128 d = (u128)a[i] - b[i] - (uint64_t)brw;
        r[i] = (uint64_t)d;
        brw = (d >> 64) & 1;
    }
    if (brw) {
        u128 c = 0;
        for (int i = 0; i < 4; i++) {
            c += (u128)r[i] + P[i];
            r[i] = (uint64_t)c;
            c >>= 64;
        }
    }
}

/* CIOS Montgomery multiply: r = a*b*2^-256 mod p, canonical output. */
static inline void mont_mul(const uint64_t a[4], const uint64_t b[4],
                            uint64_t r[4]) {
    uint64_t t[5] = {0, 0, 0, 0, 0};
    for (int i = 0; i < 4; i++) {
        u128 c = 0;
        for (int j = 0; j < 4; j++) {
            c += (u128)t[j] + (u128)a[i] * b[j];
            t[j] = (uint64_t)c;
            c >>= 64;
        }
        uint64_t hi = t[4] + (uint64_t)c;
        uint64_t m = t[0] * N0INV;
        c = (u128)t[0] + (u128)m * P[0];
        c >>= 64;
        for (int j = 1; j < 4; j++) {
            c += (u128)t[j] + (u128)m * P[j];
            t[j - 1] = (uint64_t)c;
            c >>= 64;
        }
        c += hi;
        t[3] = (uint64_t)c;
        t[4] = (uint64_t)(c >> 64);
    }
    if (t[4] || geq_p(t)) sub_p(t);
    r[0] = t[0]; r[1] = t[1]; r[2] = t[2]; r[3] = t[3];
}

/* r[i] = a[i]*b[i] mod p with b in Montgomery form. */
void fr_vec_mul(const uint64_t *a, const uint64_t *b, uint64_t *r, size_t n) {
    for (size_t i = 0; i < n; i++)
        mont_mul(a + 4 * i, b + 4 * i, r + 4 * i);
}

/* r[i] = a[i]*b mod p with the single multiplier b in Montgomery form. */
void fr_vec_mul_scalar(const uint64_t *a, const uint64_t b[4], uint64_t *r,
                       size_t n) {
    for (size_t i = 0; i < n; i++)
        mont_mul(a + 4 * i, b, r + 4 * i);
}

void fr_vec_add(const uint64_t *a, const uint64_t *b, uint64_t *r, size_t n) {
    for (size_t i = 0; i < n; i++)
        addmod(a + 4 * i, b + 4 * i, r + 4 * i);
}

void fr_vec_sub(const uint64_t *a, const uint64_t *b, uint64_t *r, size_t n) {
    for (size_t i = 0; i < n; i++)
        submod(a + 4 * i, b + 4 * i, r + 4 * i);
}

/* In-place radix-2 NTT over bit-rev-loaded data.  tw holds the
 * stage-concatenated Montgomery-form twiddles (the stage with `half`
 * butterflies contributes `half` entries), matching NTTPlan stage order. */
void fr_ntt(uint64_t *a, size_t n, const uint64_t *tw) {
    uint64_t t[4], u[4];
    for (size_t len = 2; len <= n; len <<= 1) {
        size_t half = len >> 1;
        for (size_t i = 0; i < n; i += len) {
            for (size_t k = 0; k < half; k++) {
                uint64_t *lo = a + 4 * (i + k);
                uint64_t *hi = a + 4 * (i + k + half);
                mont_mul(hi, tw + 4 * k, t);
                u[0] = lo[0]; u[1] = lo[1]; u[2] = lo[2]; u[3] = lo[3];
                addmod(u, t, lo);
                submod(u, t, hi);
            }
        }
        tw += 4 * half;
    }
}

/* CSR matvec: out[q] = sum over row q of coeffs[j]*z[wires[j]] mod p,
 * coefficients in Montgomery form, z and out canonical. */
void fr_csr_matvec(const int64_t *wires, const uint64_t *coeffs,
                   const int64_t *row_ptr, size_t rows, const uint64_t *z,
                   uint64_t *out) {
    uint64_t t[4], acc[4];
    for (size_t q = 0; q < rows; q++) {
        acc[0] = acc[1] = acc[2] = acc[3] = 0;
        for (int64_t j = row_ptr[q]; j < row_ptr[q + 1]; j++) {
            mont_mul(z + 4 * wires[j], coeffs + 4 * j, t);
            addmod(acc, t, acc);
        }
        uint64_t *o = out + 4 * q;
        o[0] = acc[0]; o[1] = acc[1]; o[2] = acc[2]; o[3] = acc[3];
    }
}
"""


def _compiler() -> Optional[str]:
    for cand in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if cand and shutil.which(cand):
            return cand
    return None


def _cache_dir() -> str:
    # Key by source hash (rebuild on kernel changes) and uid (shared /tmp).
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    uid = getattr(os, "getuid", lambda: 0)()
    return os.path.join(
        tempfile.gettempdir(), f"repro-fr-native-{digest}-u{uid}"
    )


def _build(lib_path: str) -> bool:
    cc = _compiler()
    if cc is None:
        return False
    build_dir = os.path.dirname(lib_path)
    os.makedirs(build_dir, exist_ok=True)
    src_path = os.path.join(build_dir, "fr.c")
    with open(src_path, "w") as fh:
        fh.write(_SOURCE)
    tmp_path = os.path.join(build_dir, f"fr-{os.getpid()}.so.tmp")
    try:
        proc = subprocess.run(
            [cc, "-O3", "-shared", "-fPIC", "-o", tmp_path, src_path],
            capture_output=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return False
        os.replace(tmp_path, lib_path)  # atomic vs concurrent builders
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


class NativeFr:
    """ctypes facade over the compiled kernels.

    All array arguments are C-contiguous numpy arrays; the wrappers only
    attach pointer types, no copying happens here.
    """

    def __init__(self, lib: ctypes.CDLL):
        u64p = ctypes.POINTER(ctypes.c_uint64)
        i64p = ctypes.POINTER(ctypes.c_int64)
        self._u64p = u64p
        self._i64p = i64p
        for name, argtypes in (
            ("fr_vec_mul", (u64p, u64p, u64p, ctypes.c_size_t)),
            ("fr_vec_mul_scalar", (u64p, u64p, u64p, ctypes.c_size_t)),
            ("fr_vec_add", (u64p, u64p, u64p, ctypes.c_size_t)),
            ("fr_vec_sub", (u64p, u64p, u64p, ctypes.c_size_t)),
            ("fr_ntt", (u64p, ctypes.c_size_t, u64p)),
            (
                "fr_csr_matvec",
                (i64p, u64p, i64p, ctypes.c_size_t, u64p, u64p),
            ),
        ):
            fn = getattr(lib, name)
            fn.argtypes = argtypes
            fn.restype = None
            setattr(self, name[3:], fn)

    def uptr(self, arr):
        return arr.ctypes.data_as(self._u64p)

    def iptr(self, arr):
        return arr.ctypes.data_as(self._i64p)


def _self_test(native: "NativeFr") -> bool:
    """One multiply through the compiled kernel against Python big ints —
    a toolchain that miscompiles the carries is rejected, not trusted."""
    import numpy as np

    a = 0x1234567890ABCDEF_FEDCBA0987654321_0123456789ABCDEF_0102030405 % _P
    b = (_P - 12345) % _P
    b_mont = b * pow(2, 256, _P) % _P
    arr_a = np.frombuffer(a.to_bytes(32, "little"), dtype="<u8").reshape(1, 4)
    arr_b = np.frombuffer(
        b_mont.to_bytes(32, "little"), dtype="<u8"
    ).reshape(1, 4)
    out = np.zeros((1, 4), dtype=np.uint64)
    native.vec_mul(
        native.uptr(np.ascontiguousarray(arr_a)),
        native.uptr(np.ascontiguousarray(arr_b)),
        native.uptr(out),
        1,
    )
    return int.from_bytes(out.tobytes(), "little") == a * b % _P


_LOADED: Optional[NativeFr] = None
_TRIED = False


def load() -> Optional[NativeFr]:
    """The compiled kernels, or ``None`` when unavailable.

    The first call does the work (cache lookup, compile, self-test); later
    calls return the memoized result.
    """
    global _LOADED, _TRIED
    if _TRIED:
        return _LOADED
    _TRIED = True
    if os.environ.get("REPRO_FIELD_NATIVE", "").lower() in ("0", "off", "false"):
        return None
    if sys.platform == "win32":  # no known-good default toolchain contract
        return None
    if sys.byteorder != "little":  # C kernels assume LE limb memory
        return None
    try:
        lib_path = os.path.join(_cache_dir(), "fr.so")
        if not os.path.exists(lib_path) and not _build(lib_path):
            return None
        native = NativeFr(ctypes.CDLL(lib_path))
        if not _self_test(native):
            return None
        _LOADED = native
    except Exception:
        _LOADED = None
    return _LOADED


def reset_for_tests() -> None:
    """Forget the memoized load so env-var changes take effect."""
    global _LOADED, _TRIED
    _LOADED = None
    _TRIED = False
