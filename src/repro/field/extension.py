"""Extension fields Fq2 and Fq12 for the BN254 pairing.

Representation follows the classic py_ecc layout: an element of
``Fq[x]/(m(x))`` is a coefficient tuple, with the reduction polynomial given
by its non-leading coefficients.

* ``Fq2  = Fq[u]  / (u^2 + 1)``
* ``Fq12 = Fq[w]  / (w^12 - 18 w^6 + 82)``

The G2 twist maps points with Fq2 coordinates into Fq12 so the Miller loop
runs entirely in Fq12.  This flat degree-12 representation trades a little
speed for a lot of simplicity, which is the right call for a reproduction.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from .prime_field import BN254_FQ_MODULUS

P = BN254_FQ_MODULUS

# Reduction polynomials: element of the list is the coefficient of x^i in
# m(x) - x^deg (i.e. x^deg = -sum(coeffs[i] * x^i)).
FQ2_MODULUS_COEFFS = (1, 0)  # u^2 = -1
FQ12_MODULUS_COEFFS = (82, 0, 0, 0, 0, 0, -18, 0, 0, 0, 0, 0)  # w^12 = 18w^6 - 82


class ExtElem:
    """Element of ``Fq[x]/m(x)``; immutable tuple of int coefficients."""

    __slots__ = ("coeffs",)
    degree = 0
    modulus_coeffs: Tuple[int, ...] = ()

    def __init__(self, coeffs: Sequence[int]):
        if len(coeffs) != self.degree:
            raise ValueError(
                f"{type(self).__name__} needs {self.degree} coefficients, "
                f"got {len(coeffs)}"
            )
        self.coeffs = tuple(c % P for c in coeffs)

    # -- constructors --------------------------------------------------------
    @classmethod
    def zero(cls) -> "ExtElem":
        return cls([0] * cls.degree)

    @classmethod
    def one(cls) -> "ExtElem":
        return cls([1] + [0] * (cls.degree - 1))

    @classmethod
    def from_int(cls, value: int) -> "ExtElem":
        return cls([value] + [0] * (cls.degree - 1))

    # -- ring operations -----------------------------------------------------
    def __add__(self, other):
        other = self._coerce(other)
        return type(self)(
            [(a + b) % P for a, b in zip(self.coeffs, other.coeffs)]
        )

    def __sub__(self, other):
        other = self._coerce(other)
        return type(self)(
            [(a - b) % P for a, b in zip(self.coeffs, other.coeffs)]
        )

    def __neg__(self):
        return type(self)([-c % P for c in self.coeffs])

    def __mul__(self, other):
        if isinstance(other, int):
            return type(self)([c * other % P for c in self.coeffs])
        other = self._coerce(other)
        deg = self.degree
        # Schoolbook product then reduce by the sparse modulus polynomial.
        prod = [0] * (2 * deg - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    prod[i + j] += a * b
        mod = self.modulus_coeffs
        for top in range(2 * deg - 2, deg - 1, -1):
            c = prod[top] % P
            if c == 0:
                prod[top] = 0
                continue
            prod[top] = 0
            base = top - deg
            for j, m in enumerate(mod):
                if m:
                    prod[base + j] -= c * m
        return type(self)([c % P for c in prod[:deg]])

    __rmul__ = __mul__

    def __pow__(self, exponent: int):
        if exponent < 0:
            return self.inv() ** (-exponent)
        result = type(self).one()
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def inv(self):
        """Inverse via the extended Euclidean algorithm on polynomials."""
        deg = self.degree
        lm, hm = [1] + [0] * deg, [0] * (deg + 1)
        low = list(self.coeffs) + [0]
        high = list(self.modulus_coeffs) + [1]
        while _poly_degree(low) > 0 or low[0] != 0:
            if _poly_degree(low) == 0:
                break
            r = _poly_div(high, low)
            nm, new = hm[:], high[:]
            for i in range(deg + 1):
                for j in range(deg + 1 - i):
                    nm[i + j] = (nm[i + j] - lm[i] * r[j]) % P
                    new[i + j] = (new[i + j] - low[i] * r[j]) % P
            lm, low, hm, high = nm, new, lm, low
        if all(c == 0 for c in low):
            raise ZeroDivisionError("inverse of zero extension element")
        c0_inv = pow(low[0], P - 2, P)
        return type(self)([c * c0_inv % P for c in lm[:deg]])

    def __truediv__(self, other):
        if isinstance(other, int):
            return self * pow(other, P - 2, P)
        other = self._coerce(other)
        return self * other.inv()

    def _coerce(self, other):
        if isinstance(other, int):
            return type(self).from_int(other)
        if type(other) is not type(self):
            raise TypeError(
                f"cannot mix {type(self).__name__} with {type(other).__name__}"
            )
        return other

    # -- comparisons ---------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            other = type(self).from_int(other)
        return type(other) is type(self) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.coeffs))

    def __bool__(self) -> bool:
        return any(self.coeffs)

    def is_zero(self) -> bool:
        return not any(self.coeffs)

    def __repr__(self) -> str:
        return f"{type(self).__name__}{self.coeffs}"


def _poly_degree(poly: Sequence[int]) -> int:
    d = len(poly) - 1
    while d > 0 and poly[d] == 0:
        d -= 1
    return d


def _poly_div(numerator: Sequence[int], denominator: Sequence[int]):
    """Polynomial floor division over Fq (helper for the Euclidean inverse)."""
    num = list(numerator)
    deg_n, deg_d = _poly_degree(num), _poly_degree(denominator)
    out = [0] * len(num)
    lead_inv = pow(denominator[deg_d], P - 2, P)
    for shift in range(deg_n - deg_d, -1, -1):
        factor = num[deg_d + shift] * lead_inv % P
        out[shift] = (out[shift] + factor) % P
        for i in range(deg_d + 1):
            num[shift + i] = (num[shift + i] - factor * denominator[i]) % P
    return out


class Fq2(ExtElem):
    """Quadratic extension ``Fq[u]/(u^2+1)``."""

    degree = 2
    modulus_coeffs = FQ2_MODULUS_COEFFS

    def conjugate(self) -> "Fq2":
        return Fq2([self.coeffs[0], -self.coeffs[1] % P])

    def inv(self) -> "Fq2":
        # (a + b*u)^-1 = (a - b*u) / (a^2 + b^2) since u^2 = -1.
        a, b = self.coeffs
        norm = (a * a + b * b) % P
        if norm == 0:
            raise ZeroDivisionError("inverse of zero Fq2 element")
        n_inv = pow(norm, P - 2, P)
        return Fq2([a * n_inv % P, -b * n_inv % P])

    def __mul__(self, other):
        if isinstance(other, int):
            return Fq2([c * other % P for c in self.coeffs])
        if type(other) is not Fq2:
            raise TypeError("cannot mix Fq2 with other extension elements")
        a, b = self.coeffs
        c, d = other.coeffs
        # (a + bu)(c + du) = (ac - bd) + (ad + bc)u
        return Fq2([(a * c - b * d) % P, (a * d + b * c) % P])

    __rmul__ = __mul__


class Fq12(ExtElem):
    """Degree-12 extension ``Fq[w]/(w^12 - 18w^6 + 82)``."""

    degree = 12
    modulus_coeffs = FQ12_MODULUS_COEFFS
