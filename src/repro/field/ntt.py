"""Radix-2 number-theoretic transform over the BN254 scalar field.

Used by the QAP compiler and the Groth16 prover to move between coefficient
and evaluation representations in ``O(N log N)``.  All routines operate on
lists of raw integers mod ``Fr`` for speed.
"""

from __future__ import annotations

from typing import List, Sequence

from .prime_field import BN254_FR_MODULUS, fr_root_of_unity, inv_mod

R = BN254_FR_MODULUS


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def ntt(values: Sequence[int], inverse: bool = False) -> List[int]:
    """In-order NTT (or inverse NTT) of a power-of-two-length vector."""
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    out = [v % R for v in values]
    if n == 1:
        return out
    _bit_reverse_permute(out)
    root = fr_root_of_unity(n)
    if inverse:
        root = inv_mod(root, R)
    length = 2
    while length <= n:
        w_step = pow(root, n // length, R)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for k in range(start, start + half):
                even = out[k]
                odd = out[k + half] * w % R
                out[k] = (even + odd) % R
                out[k + half] = (even - odd) % R
                w = w * w_step % R
        length <<= 1
    if inverse:
        n_inv = inv_mod(n, R)
        out = [v * n_inv % R for v in out]
    return out


def intt(values: Sequence[int]) -> List[int]:
    """Inverse NTT: evaluations on the domain -> coefficients."""
    return ntt(values, inverse=True)


def next_power_of_two(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def mul_polys_ntt(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Polynomial product via NTT; returns coefficients (trailing zeros kept
    off)."""
    if not a or not b:
        return []
    size = next_power_of_two(len(a) + len(b) - 1)
    fa = ntt(list(a) + [0] * (size - len(a)))
    fb = ntt(list(b) + [0] * (size - len(b)))
    fc = [x * y % R for x, y in zip(fa, fb)]
    coeffs = intt(fc)
    del coeffs[len(a) + len(b) - 1:]
    return coeffs


def coset_shift(coeffs: Sequence[int], g: int) -> List[int]:
    """Map p(X) -> p(gX) by scaling coefficient i with g^i."""
    out: List[int] = []
    power = 1
    for c in coeffs:
        out.append(c * power % R)
        power = power * g % R
    return out


def evaluate_on_coset(coeffs: Sequence[int], size: int, g: int) -> List[int]:
    """Evaluate a polynomial on the coset ``g * <omega_size>``."""
    padded = list(coeffs) + [0] * (size - len(coeffs))
    return ntt(coset_shift(padded, g))


def interpolate_from_coset(evals: Sequence[int], g: int) -> List[int]:
    """Inverse of :func:`evaluate_on_coset`."""
    coeffs = intt(list(evals))
    return coset_shift(coeffs, inv_mod(g, R))
