"""Radix-2 number-theoretic transform over the BN254 scalar field.

Used by the QAP compiler and the Groth16 prover to move between coefficient
and evaluation representations in ``O(N log N)``.  All routines operate on
lists of raw integers mod ``Fr`` for speed.

Transforms run through a per-size :class:`NTTPlan` cached by
:func:`get_plan`: the bit-reversal permutation table, per-stage twiddle
tables (forward and inverse), ``n_inv``, and any coset power ladders are
computed once per process and shared by every transform of that size.
Compared with the per-butterfly ``w = w * w_step % R`` serial chain of the
naive loop (retained as :func:`naive_ntt` for the equivalence tests and
benchmark reference) the planned butterfly does one modular multiplication
instead of two, and a call does no ``pow``/``inv_mod`` work at all.

Coset evaluation is fused into the plan: :meth:`NTTPlan.coset_ntt` scales
by the cached ``g^i`` ladder during the bit-reversal load pass and
:meth:`NTTPlan.coset_intt` folds ``n_inv`` into the cached ``g^-i`` ladder,
so neither path materialises the shifted copies that
``coset_shift`` + ``ntt`` used to build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from . import vector as _vector
from .prime_field import BN254_FR_MODULUS, fr_root_of_unity, inv_mod

R = BN254_FR_MODULUS


def _bit_reverse_permute(values: List[int]) -> None:
    n = len(values)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            values[i], values[j] = values[j], values[i]


def _bit_reverse_table(n: int) -> List[int]:
    rev = [0] * n
    half = n >> 1
    for i in range(1, n):
        rev[i] = rev[i >> 1] >> 1 | (i & 1) * half
    return rev


class NTTPlan:
    """All per-size precomputation for radix-2 transforms of length ``n``.

    * ``rev`` — bit-reversal permutation table, applied during the load
      pass (one list comprehension, no swap loop).
    * ``fwd_stages`` / ``inv_stages`` — per-stage ``(length, half,
      twiddles)`` with the twiddle powers fully materialised, so the
      butterfly loop never touches ``pow`` or a running ``w`` product.
      Each direction's tables are built on first use, so forward-only
      callers never pay for the inverse tables.
    * ``n_inv`` — cached inverse of ``n`` for the inverse transform.
    * coset ladders — per-generator ``g^i`` (forward) and ``n_inv * g^-i``
      (inverse, pre-folded) power tables, built on first use and kept for
      the ``_LADDER_LIMIT`` most recently seen generators.

    Plans are built by :func:`get_plan` and shared process-wide; they are
    immutable once constructed apart from the lazily grown stage and
    ladder caches.
    """

    __slots__ = (
        "n", "rev", "n_inv", "_root", "_fwd", "_inv", "_ladders", "_vec"
    )

    # Ladders for at most this many distinct coset generators stay cached
    # per plan (each is two length-n int lists); the hot quotient path only
    # ever uses one.  Older generators fall out in insertion order.
    _LADDER_LIMIT = 8

    def __init__(self, n: int):
        if n < 1 or n & (n - 1):
            raise ValueError("NTT length must be a power of two")
        self.n = n
        self.rev = _bit_reverse_table(n)
        if n > 1:
            self._root = fr_root_of_unity(n)
            self.n_inv = inv_mod(n, R)
        else:
            self._root = 1
            self.n_inv = 1
        self._fwd: Optional[list] = None
        self._inv: Optional[list] = None
        self._ladders: Dict[int, Tuple[List[int], List[int]]] = {}
        self._vec: Dict[str, dict] = {}

    @property
    def fwd_stages(self):
        stages = self._fwd
        if stages is None:
            stages = self._fwd = (
                self._build_stages(self._root) if self.n > 1 else []
            )
        return stages

    @property
    def inv_stages(self):
        stages = self._inv
        if stages is None:
            stages = self._inv = (
                self._build_stages(inv_mod(self._root, R))
                if self.n > 1
                else []
            )
        return stages

    def _build_stages(self, root: int):
        n = self.n
        stages = []
        length = 2
        while length <= n:
            half = length >> 1
            w_step = pow(root, n // length, R)
            tw = [1] * half
            w = 1
            for k in range(1, half):
                w = w * w_step % R
                tw[k] = w
            stages.append((length, half, tw))
            length <<= 1
        return stages

    def _butterflies(self, out: List[int], stages) -> None:
        """In-place butterfly passes over a bit-reversed-order buffer."""
        n = self.n
        if not stages:
            return
        # Stage 0 has a single twiddle of 1: pure add/sub, no multiplies.
        for i in range(0, n, 2):
            even = out[i]
            odd = out[i + 1]
            out[i] = (even + odd) % R
            out[i + 1] = (even - odd) % R
        for length, half, tw in stages[1:]:
            for start in range(0, n, length):
                k = start
                for w in tw:
                    j = k + half
                    even = out[k]
                    odd = out[j] * w % R
                    out[k] = (even + odd) % R
                    out[j] = (even - odd) % R
                    k += 1

    # -- vector engine ------------------------------------------------------
    def vec_state(self) -> Optional[dict]:
        """Per-engine kernel cache for the active vector implementation, or
        ``None`` when the scalar backend is active or ``n`` is below the
        engine's profitability floor.  Keyed by implementation name so a
        runtime backend switch (tests, ``set_backend``) rebuilds cleanly."""
        impl = _vector.active_impl()
        if impl is None or self.n < _vector.NTT_MIN[impl]:
            return None
        state = self._vec.get(impl)
        if state is None:
            state = self._vec[impl] = {
                "rev": _vector.np.asarray(self.rev, dtype=_vector.np.intp),
                "fwd": None,
                "inv": None,
                "ladders": {},
            }
        return state

    def _vec_kernel(self, state: dict, inverse: bool):
        key = "inv" if inverse else "fwd"
        kern = state[key]
        if kern is None:
            stages = self.inv_stages if inverse else self.fwd_stages
            kern = state[key] = _vector.make_ntt_kernel(stages)
        return kern

    def _vec_ladder(self, state: dict, g: int):
        """Coset ladders preconditioned for :func:`vector.vec_mul_prepared`
        (forward ``g^i`` and pre-folded inverse ``n_inv * g^-i``)."""
        g %= R
        prep = state["ladders"].get(g)
        if prep is None:
            fwd, inv_scaled = self.coset_ladder(g)
            prep = state["ladders"][g] = (
                _vector.prepare_multipliers(fwd),
                _vector.prepare_multipliers(inv_scaled),
            )
            while len(state["ladders"]) > self._LADDER_LIMIT:
                state["ladders"].pop(next(iter(state["ladders"])))
        return prep

    def ntt_limbs(
        self, x, inverse: bool = False, state: Optional[dict] = None
    ):
        """(Inverse) NTT over ``(n, 4)`` canonical limb arrays — the
        limb-domain twin of :meth:`ntt`, used by the Groth16 quotient chain
        to stay out of big-int space between transforms.  The caller must
        hold a non-``None`` :meth:`vec_state`."""
        if state is None:
            state = self.vec_state()
        if x.shape[0] != self.n:
            raise ValueError(
                f"vector length {x.shape[0]} does not match plan size {self.n}"
            )
        out = x[state["rev"]]
        out = self._vec_kernel(state, inverse).run_limbs(out)
        if inverse:
            out = _vector.vec_mul_scalar(out, self.n_inv)
        return out

    def coset_ntt_limbs(self, coeffs, g: int, state: Optional[dict] = None):
        """Limb-domain twin of :meth:`coset_ntt` (input height ``<= n``;
        scaling by the ``g^i`` ladder precedes the zero-padded load)."""
        if state is None:
            state = self.vec_state()
        n = self.n
        m = coeffs.shape[0]
        if m > n:
            raise ValueError(
                f"polynomial has {m} coefficients, more than the coset "
                f"domain size {n}"
            )
        fwd_prep, _ = self._vec_ladder(state, g)
        scaled = _vector.vec_mul_prepared(coeffs, fwd_prep[:m])
        if m < n:
            padded = _vector.np.zeros((n, 4), dtype=_vector.np.uint64)
            padded[:m] = scaled
            scaled = padded
        out = scaled[state["rev"]]
        return self._vec_kernel(state, inverse=False).run_limbs(out)

    def coset_intt_limbs(self, evals, g: int, state: Optional[dict] = None):
        """Limb-domain twin of :meth:`coset_intt`."""
        if state is None:
            state = self.vec_state()
        if evals.shape[0] != self.n:
            raise ValueError(
                f"vector length {evals.shape[0]} does not match plan size "
                f"{self.n}"
            )
        _, inv_prep = self._vec_ladder(state, g)
        out = evals[state["rev"]]
        out = self._vec_kernel(state, inverse=True).run_limbs(out)
        return _vector.vec_mul_prepared(out, inv_prep)

    # -- plain transforms ---------------------------------------------------
    def ntt(self, values: Sequence[int], inverse: bool = False) -> List[int]:
        """(Inverse) NTT of a length-``n`` vector; the input is not
        mutated."""
        if len(values) != self.n:
            raise ValueError(
                f"vector length {len(values)} does not match plan size {self.n}"
            )
        state = self.vec_state()
        if state is not None:
            return _vector.from_limbs(
                self.ntt_limbs(_vector.to_limbs(values), inverse, state)
            )
        out = [values[r] % R for r in self.rev]
        if inverse:
            self._butterflies(out, self.inv_stages)
            n_inv = self.n_inv
            return [v * n_inv % R for v in out]
        self._butterflies(out, self.fwd_stages)
        return out

    def ntt_many(
        self, rows: Sequence[Sequence[int]], inverse: bool = False
    ) -> List[List[int]]:
        """Transform several same-size vectors through this one plan."""
        return [self.ntt(row, inverse) for row in rows]

    # -- fused coset transforms ---------------------------------------------
    def coset_ladder(self, g: int) -> Tuple[List[int], List[int]]:
        """Cached power ladders for the coset ``g * <omega_n>``: the forward
        table ``g^i`` and the inverse table ``n_inv * g^-i`` (with the
        inverse-NTT scaling pre-folded in)."""
        g %= R
        ladder = self._ladders.get(g)
        if ladder is None:
            n = self.n
            fwd = [1] * n
            acc = 1
            for i in range(1, n):
                acc = acc * g % R
                fwd[i] = acc
            g_inv = inv_mod(g, R)
            inv_scaled = [self.n_inv] * n
            acc = self.n_inv
            for i in range(1, n):
                acc = acc * g_inv % R
                inv_scaled[i] = acc
            ladder = (fwd, inv_scaled)
            self._ladders[g] = ladder
            while len(self._ladders) > self._LADDER_LIMIT:
                self._ladders.pop(next(iter(self._ladders)))
        return ladder

    def coset_ntt(self, coeffs: Sequence[int], g: int) -> List[int]:
        """Evaluate a polynomial (``len(coeffs) <= n``) on the coset
        ``g * <omega_n>``; scaling and zero-padding happen during the
        bit-reversed load pass, with no shifted intermediate copy."""
        n = self.n
        m = len(coeffs)
        if m > n:
            raise ValueError(
                f"polynomial has {m} coefficients, more than the coset "
                f"domain size {n}"
            )
        state = self.vec_state()
        if state is not None:
            return _vector.from_limbs(
                self.coset_ntt_limbs(_vector.to_limbs(coeffs), g, state)
            )
        fwd, _ = self.coset_ladder(g)
        out = [0] * n
        for i, r in enumerate(self.rev):
            if r < m:
                out[i] = coeffs[r] * fwd[r] % R
        self._butterflies(out, self.fwd_stages)
        return out

    def coset_ntt_many(
        self, rows: Sequence[Sequence[int]], g: int
    ) -> List[List[int]]:
        return [self.coset_ntt(row, g) for row in rows]

    def coset_intt(self, evals: Sequence[int], g: int) -> List[int]:
        """Inverse of :meth:`coset_ntt`: interpolate coefficients from
        evaluations on the coset.  The trailing un-shift and ``n_inv``
        scaling run as one fused pass over the cached inverse ladder."""
        if len(evals) != self.n:
            raise ValueError(
                f"vector length {len(evals)} does not match plan size {self.n}"
            )
        state = self.vec_state()
        if state is not None:
            return _vector.from_limbs(
                self.coset_intt_limbs(_vector.to_limbs(evals), g, state)
            )
        _, inv_scaled = self.coset_ladder(g)
        out = [evals[r] % R for r in self.rev]
        self._butterflies(out, self.inv_stages)
        return [v * s % R for v, s in zip(out, inv_scaled)]


_PLAN_CACHE: Dict[int, NTTPlan] = {}


def get_plan(n: int) -> NTTPlan:
    """The process-wide shared transform plan for size ``n`` (a power of
    two up to ``2**28``, Fr's 2-adicity — at most 29 plans ever exist)."""
    plan = _PLAN_CACHE.get(n)
    if plan is None:
        plan = NTTPlan(n)
        _PLAN_CACHE[n] = plan
    return plan


def clear_ntt_plan_cache() -> None:
    _PLAN_CACHE.clear()


def ntt(values: Sequence[int], inverse: bool = False) -> List[int]:
    """In-order NTT (or inverse NTT) of a power-of-two-length vector."""
    n = len(values)
    if n < 1 or n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    if n == 1:
        return [values[0] % R]
    return get_plan(n).ntt(values, inverse)


def intt(values: Sequence[int]) -> List[int]:
    """Inverse NTT: evaluations on the domain -> coefficients."""
    return ntt(values, inverse=True)


def ntt_many(
    rows: Sequence[Sequence[int]], inverse: bool = False
) -> List[List[int]]:
    """Batched (inverse) NTT of several same-length vectors through one
    shared plan."""
    if not rows:
        return []
    n = len(rows[0])
    if n < 1 or n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    return get_plan(n).ntt_many(rows, inverse)


def naive_ntt(values: Sequence[int], inverse: bool = False) -> List[int]:
    """The pre-plan transform, kept verbatim as the equivalence reference:
    per-call root/inverse computation, swap-loop bit reversal, and a serial
    ``w = w * w_step`` twiddle chain inside every butterfly group."""
    n = len(values)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    out = [v % R for v in values]
    if n == 1:
        return out
    _bit_reverse_permute(out)
    root = fr_root_of_unity(n)
    if inverse:
        root = inv_mod(root, R)
    length = 2
    while length <= n:
        w_step = pow(root, n // length, R)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for k in range(start, start + half):
                even = out[k]
                odd = out[k + half] * w % R
                out[k] = (even + odd) % R
                out[k + half] = (even - odd) % R
                w = w * w_step % R
        length <<= 1
    if inverse:
        n_inv = inv_mod(n, R)
        out = [v * n_inv % R for v in out]
    return out


def next_power_of_two(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def mul_polys_ntt(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Polynomial product via NTT; returns coefficients (trailing zeros kept
    off)."""
    if not a or not b:
        return []
    size = next_power_of_two(len(a) + len(b) - 1)
    fa = ntt(list(a) + [0] * (size - len(a)))
    fb = ntt(list(b) + [0] * (size - len(b)))
    fc = [x * y % R for x, y in zip(fa, fb)]
    coeffs = intt(fc)
    del coeffs[len(a) + len(b) - 1:]
    return coeffs


def coset_shift(coeffs: Sequence[int], g: int) -> List[int]:
    """Map p(X) -> p(gX) by scaling coefficient i with g^i."""
    out: List[int] = []
    power = 1
    for c in coeffs:
        out.append(c * power % R)
        power = power * g % R
    return out


def evaluate_on_coset(coeffs: Sequence[int], size: int, g: int) -> List[int]:
    """Evaluate a polynomial on the coset ``g * <omega_size>``.

    ``size`` must be a power of two no smaller than ``len(coeffs)`` — a
    smaller size used to silently mis-slice into a wrong-length transform
    and now raises ``ValueError``.
    """
    if size < 1 or size & (size - 1):
        raise ValueError("coset domain size must be a power of two")
    return get_plan(size).coset_ntt(coeffs, g)


def interpolate_from_coset(evals: Sequence[int], g: int) -> List[int]:
    """Inverse of :func:`evaluate_on_coset`."""
    n = len(evals)
    if n < 1 or n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    return get_plan(n).coset_intt(evals, g)


def naive_evaluate_on_coset(
    coeffs: Sequence[int], size: int, g: int
) -> List[int]:
    """Reference coset evaluation: materialise the padded, shifted copy and
    run it through :func:`naive_ntt` (the pre-plan pipeline)."""
    padded = list(coeffs) + [0] * (size - len(coeffs))
    return naive_ntt(coset_shift(padded, g))


def naive_interpolate_from_coset(evals: Sequence[int], g: int) -> List[int]:
    """Reference inverse of :func:`naive_evaluate_on_coset`."""
    coeffs = naive_ntt(list(evals), inverse=True)
    return coset_shift(coeffs, inv_mod(g, R))
