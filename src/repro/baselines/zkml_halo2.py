"""Modelled zkML (Kang et al., halo2) baseline.

Implementing a full plonkish proving stack (halo2's custom gates + IPA
commitments) is out of scope for this reproduction; following DESIGN.md's
substitution rule this baseline is a *cost model*: prover time is predicted
from circuit size using this machine's measured primitive rates, with
constants chosen to match halo2's published op profile (committed columns,
permutation argument, IPA opening — roughly 11 column commitments plus
8 size-n NTTs per proof).  Benchmarks label these rows "modelled".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..field.ntt import next_power_of_two
from ..zkml.compile import CircuitCost
from ..zkml.costmodel import CostModel


@dataclass
class Halo2Estimate:
    prove_s: float
    verify_s: float
    proof_bytes: int
    modelled: bool = True


# zkML's halo2 circuit packs several multiply-accumulates into one plonkish
# row using wide advice columns + custom gates (this is where Kang et al.'s
# speedup over vCNN/ZEN comes from in the paper's Fig. 3).
MACS_PER_ROW = 8


def halo2_matmul_cost(a: int, n: int, b: int) -> CircuitCost:
    """Plonkish row count for a matmul region with wide custom gates."""
    rows = -(-a * b * n // MACS_PER_ROW) + a * b
    return CircuitCost(
        constraints=rows,
        wires=rows,       # advice cells per row (normalised)
        a_wires=rows,
        b_wires=0,
        terms=3 * rows,
    )


def estimate_halo2(cost: CircuitCost, model: CostModel) -> Halo2Estimate:
    r = model.rates
    n_rows = max(2, next_power_of_two(cost.constraints))
    log_n = max(1, n_rows.bit_length() - 1)
    # 11 column/permutation/quotient commitments of length n (Pedersen MSM),
    # 8 coset NTTs, IPA open ~ 2n group ops.
    group_ops = 11 * n_rows + 2 * n_rows
    field_ops = 8 * n_rows * log_n / 12 + 4 * cost.terms
    prove = group_ops * r.g1_msm_per_point_s * 0.35 + field_ops * r.field_mul_s
    # IPA verification is O(n) scalar ops + O(log n) group ops.
    verify = n_rows * r.field_mul_s * 2 + 2 * log_n * r.g1_mul_s
    proof_bytes = 32 * (2 * log_n + 10) + 64 * 6
    return Halo2Estimate(prove_s=prove, verify_s=verify, proof_bytes=proof_bytes)
