"""zkCNN-style interactive sumcheck baseline for matrix multiplication.

zkCNN (Liu-Xie-Zhang, CCS'21) proves matmul with Thaler's classic sumcheck:
for ``Y = X @ W`` the verifier checks ``Y~(r1, r2) = sum_k X~(r1,k) W~(k,r2)``
with a ``log n``-round, degree-2 sumcheck over ``k``.  Prover time is
O(n^2) field ops — asymptotically the fastest prover in Fig. 6 — but the
protocol is *interactive* (we simulate rounds and report wall-clock "online
time"), verification needs commitment openings for the private matrices,
and proof size grows with the matrices (the Hyrax openings are O(sqrt n)).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..field.ntt import next_power_of_two
from ..field.prime_field import BN254_FR_MODULUS
from ..poly.multilinear import MultilinearPoly, eq_evals
from ..spartan.commitment import HyraxCommitment, HyraxOpening, HyraxProver, hyrax_verify
from ..spartan.sumcheck import SumcheckProof, sumcheck_prove, sumcheck_verify
from ..spartan.transcript import Transcript

R = BN254_FR_MODULUS


def _pad_matrix(mat, rows: int, cols: int) -> List[int]:
    out = [0] * (rows * cols)
    for i, row in enumerate(mat):
        for j, v in enumerate(row):
            out[i * cols + j] = int(v) % R
    return out


@dataclass
class ZkCnnProof:
    x_commit: HyraxCommitment
    w_commit: HyraxCommitment
    sumcheck: SumcheckProof
    x_opening: HyraxOpening
    w_opening: HyraxOpening
    y_claim: int
    online_time_s: float = 0.0
    prover_time_s: float = 0.0

    def size_bytes(self) -> int:
        return (
            self.x_commit.size_bytes()
            + self.w_commit.size_bytes()
            + self.sumcheck.size_bytes()
            + self.x_opening.size_bytes()
            + self.w_opening.size_bytes()
            + 32
        )


class ZkCnnMatmul:
    """Prover/verifier pair for the interactive matmul sumcheck."""

    def __init__(self, a: int, n: int, b: int):
        self.a, self.n, self.b = a, n, b
        self.ra = max(1, (a - 1).bit_length())
        self.rn = max(1, (n - 1).bit_length())
        self.rb = max(1, (b - 1).bit_length())

    def prove(self, x_mat, w_mat, y_mat) -> ZkCnnProof:
        """Run the (simulated-interactive) protocol; the transcript plays
        the verifier's coins so timings include both parties = online
        time."""
        t_start = time.perf_counter()
        a, n, b = self.a, self.n, self.b
        pa, pn, pb = 1 << self.ra, 1 << self.rn, 1 << self.rb

        x_flat = _pad_matrix(x_mat, pa, pn)
        w_flat = _pad_matrix(w_mat, pn, pb)
        x_poly = MultilinearPoly(x_flat)
        w_poly = MultilinearPoly(w_flat)

        tr = Transcript(b"zkcnn-matmul")
        x_h = HyraxProver(x_flat, self.ra + self.rn)
        w_h = HyraxProver(w_flat, self.rn + self.rb)
        x_commit = x_h.commit()
        w_commit = w_h.commit()
        tr.append_points(b"xc", x_commit.row_commits)
        tr.append_points(b"wc", w_commit.row_commits)

        t_prover0 = time.perf_counter()
        r1 = tr.challenge_scalars(b"r1", self.ra)
        r2 = tr.challenge_scalars(b"r2", self.rb)

        # Tables over k: X~(r1, k) and W~(k, r2).
        eq1 = eq_evals(r1)
        eq2 = eq_evals(r2)
        x_row = [0] * pn
        for i in range(pa):
            e = eq1[i]
            if e == 0:
                continue
            base = i * pn
            for k in range(pn):
                x_row[k] = (x_row[k] + e * x_flat[base + k]) % R
        w_col = [0] * pn
        for k in range(pn):
            base = k * pb
            acc = 0
            for j in range(pb):
                acc += eq2[j] * w_flat[base + j]
            w_col[k] = acc % R

        y_claim = sum(xv * wv for xv, wv in zip(x_row, w_col)) % R
        tr.append_scalar(b"claim", y_claim)

        proof_sc, rk, finals = sumcheck_prove(
            [x_row, w_col],
            lambda vals: vals[0] * vals[1] % R,
            2,
            y_claim,
            tr,
            b"zkcnn-sc",
            kernel="prod2",
        )
        x_opening = x_h.open(r1 + rk)
        w_opening = w_h.open(rk + r2)
        t_end = time.perf_counter()

        return ZkCnnProof(
            x_commit=x_commit,
            w_commit=w_commit,
            sumcheck=proof_sc,
            x_opening=x_opening,
            w_opening=w_opening,
            y_claim=y_claim,
            online_time_s=t_end - t_start,
            prover_time_s=t_end - t_prover0,
        )

    def verify(self, y_mat, proof: ZkCnnProof) -> bool:
        pa, pn, pb = 1 << self.ra, 1 << self.rn, 1 << self.rb
        tr = Transcript(b"zkcnn-matmul")
        tr.append_points(b"xc", proof.x_commit.row_commits)
        tr.append_points(b"wc", proof.w_commit.row_commits)
        r1 = tr.challenge_scalars(b"r1", self.ra)
        r2 = tr.challenge_scalars(b"r2", self.rb)

        # The verifier evaluates Y~(r1, r2) itself from the public output.
        y_flat = _pad_matrix(y_mat, pa, pb)
        y_eval = MultilinearPoly(y_flat).evaluate(r1 + r2)
        if proof.y_claim != y_eval:
            return False
        tr.append_scalar(b"claim", proof.y_claim)

        ok, final_claim, rk = sumcheck_verify(
            proof.sumcheck, 2, proof.y_claim, self.rn, tr, b"zkcnn-sc"
        )
        if not ok:
            return False
        if not hyrax_verify(proof.x_commit, r1 + rk, proof.x_opening):
            return False
        if not hyrax_verify(proof.w_commit, rk + r2, proof.w_opening):
            return False
        return (
            final_claim
            == proof.x_opening.value * proof.w_opening.value % R
        )
