"""Baseline schemes: zkCNN interactive sumcheck and the modelled halo2
(zkML) prover.  vCNN- and ZEN-style circuits live in
``repro.gadgets.matmul`` as strategies ("vcnn", "zen")."""

from .zkcnn import ZkCnnMatmul, ZkCnnProof
from .zkml_halo2 import Halo2Estimate, estimate_halo2, halo2_matmul_cost

__all__ = [
    "Halo2Estimate",
    "ZkCnnMatmul",
    "ZkCnnProof",
    "estimate_halo2",
    "halo2_matmul_cost",
]
