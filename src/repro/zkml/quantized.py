"""Quantised integer inference for trained Transformers.

Takes a float model from :mod:`repro.nn.transformer` and runs its forward
pass entirely in fixed-point integers, with the *same* floor-division
semantics as the circuit gadgets — so a compiled circuit and this "reference
prover" agree exactly, and accuracy after quantisation can be measured
against the float model (the paper quantises with NITI [42] the same way).

Every matmul the forward pass executes is recorded as a
:class:`MatmulRecord`, which is what the compiler/cost model consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.attention import (
    LinearMixer,
    PoolingMixer,
    ScalingAttention,
    SoftmaxAttention,
)
from ..nn.transformer import TextTransformer, Transformer, VisionTransformer

DEFAULT_FRAC_BITS = 12
EXP_ITERS = 5
CLIP_T = -8.0


@dataclass
class MatmulRecord:
    """One matrix multiplication executed during quantised inference."""

    layer: str
    a: int
    n: int
    b: int

    @property
    def mults(self) -> int:
        return self.a * self.n * self.b


@dataclass
class NonlinearRecord:
    kind: str       # "softmax_row" | "gelu" | "layernorm_row" | "rescale"
    count: int      # how many units (rows / elements)
    width: int      # row width for row-wise ops, else 1


@dataclass
class InferenceTrace:
    matmuls: List[MatmulRecord] = field(default_factory=list)
    nonlinears: List[NonlinearRecord] = field(default_factory=list)

    def total_mults(self) -> int:
        return sum(m.mults for m in self.matmuls)


def _q(x: np.ndarray, frac_bits: int) -> np.ndarray:
    return np.rint(np.asarray(x) * (1 << frac_bits)).astype(np.int64)


def _shift(x: np.ndarray, bits: int) -> np.ndarray:
    return x >> bits  # arithmetic shift == floor division for 2^bits


class QuantizedTransformer:
    """Integer twin of a trained single-stage Transformer classifier."""

    def __init__(self, model, frac_bits: int = DEFAULT_FRAC_BITS):
        self.frac_bits = frac_bits
        self.scale = 1 << frac_bits
        self.model = model
        self.trace = InferenceTrace()
        enc: Transformer = model.encoder if hasattr(model, "encoder") else model
        self.encoder = enc
        f = frac_bits
        self.blocks = []
        for blk in enc.blocks:
            qblk = {
                "mixer_name": blk.mixer_name,
                "n1_g": _q(blk.norm1.gamma.data, f),
                "n1_b": _q(blk.norm1.beta.data, f),
                "n2_g": _q(blk.norm2.gamma.data, f),
                "n2_b": _q(blk.norm2.beta.data, f),
                "fc1_w": _q(blk.mlp.fc1.weight.data, f),
                "fc1_b": _q(blk.mlp.fc1.bias.data, 2 * f),
                "fc2_w": _q(blk.mlp.fc2.weight.data, f),
                "fc2_b": _q(blk.mlp.fc2.bias.data, 2 * f),
                "poly_gelu": blk.mlp.poly_gelu,
            }
            mixer = blk.mixer
            if isinstance(mixer, (SoftmaxAttention, ScalingAttention)):
                qblk["qkv_w"] = _q(mixer.qkv.weight.data, f)
                qblk["qkv_b"] = _q(mixer.qkv.bias.data, 2 * f)
                qblk["proj_w"] = _q(mixer.proj.weight.data, f)
                qblk["proj_b"] = _q(mixer.proj.bias.data, 2 * f)
                qblk["heads"] = mixer.heads
                qblk["head_dim"] = mixer.head_dim
            elif isinstance(mixer, LinearMixer):
                qblk["mix_w"] = _q(mixer.token_mix.weight.data, f)
                qblk["mix_b"] = _q(mixer.token_mix.bias.data, 2 * f)
            self.blocks.append(qblk)
        self.norm_g = _q(enc.norm.gamma.data, f)
        self.norm_b = _q(enc.norm.beta.data, f)
        self.head_w = _q(enc.head.weight.data, f)
        self.head_b = _q(enc.head.bias.data, 2 * f)

    # -- primitive integer ops (mirroring the gadgets) -------------------------
    def _linear(self, x: np.ndarray, w: np.ndarray, b: np.ndarray,
                layer: str) -> np.ndarray:
        self.trace.matmuls.append(
            MatmulRecord(layer, x.shape[-2], x.shape[-1], w.shape[-1])
        )
        out = x @ w + b
        self.trace.nonlinears.append(
            NonlinearRecord("rescale", int(np.prod(out.shape[-2:])), 1)
        )
        return _shift(out, self.frac_bits)

    def _layernorm(self, x: np.ndarray, gamma: np.ndarray,
                   beta: np.ndarray) -> np.ndarray:
        f, s = self.frac_bits, self.scale
        t = x.shape[-1]
        eps = max(1, s // 16)
        total = x.sum(axis=-1, keepdims=True)
        mu = np.floor_divide(total, t)
        c = x - mu
        var = np.floor_divide((c * c).sum(axis=-1, keepdims=True), t)
        r = np.array(
            [
                math.isqrt((s ** 4) // int(v + eps))
                for v in var.reshape(-1)
            ],
            dtype=np.int64,
        ).reshape(var.shape)
        y = _shift(c * r, f)
        y = _shift(y * gamma, f) + _shift(beta, 0)
        self.trace.nonlinears.append(
            NonlinearRecord("layernorm_row", int(np.prod(x.shape[:-1])), t)
        )
        return y

    def _exp_neg(self, u: np.ndarray) -> np.ndarray:
        """e^x for x = -u <= 0 via the paper's (1 + x/2^n)^(2^n)."""
        f, s = self.frac_bits, self.scale
        t_fixed = round(-CLIP_T * s)
        clipped = np.minimum(u, t_fixed)
        base = s - _shift(clipped, EXP_ITERS)
        for _ in range(EXP_ITERS):
            base = _shift(base * base, f)
        return np.where(u <= t_fixed, base, 0).astype(np.int64)

    def _softmax_rows(self, x: np.ndarray) -> np.ndarray:
        s = self.scale
        m = x.max(axis=-1, keepdims=True)
        e = self._exp_neg(m - x)
        total = e.sum(axis=-1, keepdims=True)
        total = np.maximum(total, 1)
        out = np.floor_divide(e * s, total)
        self.trace.nonlinears.append(
            NonlinearRecord(
                "softmax_row", int(np.prod(x.shape[:-1])), x.shape[-1]
            )
        )
        return out

    def _gelu(self, x: np.ndarray, poly: bool) -> np.ndarray:
        f, s = self.frac_bits, self.scale
        self.trace.nonlinears.append(
            NonlinearRecord("gelu", int(np.prod(x.shape)), 1)
        )
        if poly:
            return _shift(x * x, f + 3) + np.floor_divide(x, 4) + s // 2
        # exact-GELU models still get the polynomial in the verified path —
        # the paper replaces Tanh-GELU by the polynomial for proving.
        return _shift(x * x, f + 3) + np.floor_divide(x, 4) + s // 2

    # -- mixers ------------------------------------------------------------------
    def _mix(self, qblk: dict, x: np.ndarray, idx: int) -> np.ndarray:
        name = qblk["mixer_name"]
        f, s = self.frac_bits, self.scale
        b, t, d = x.shape
        if name == "pooling":
            mean = np.floor_divide(x.sum(axis=1, keepdims=True), t)
            self.trace.matmuls.append(MatmulRecord(f"blk{idx}.pool", 1, t, d))
            return mean - x
        if name == "linear":
            mixed = np.swapaxes(x, 1, 2) @ qblk["mix_w"] + qblk["mix_b"]
            self.trace.matmuls.append(MatmulRecord(f"blk{idx}.mix", d, t, t))
            self.trace.nonlinears.append(
                NonlinearRecord("rescale", t * d, 1)
            )
            return np.swapaxes(_shift(mixed, f), 1, 2)
        h, hd = qblk["heads"], qblk["head_dim"]
        qkv = self._linear(
            x, qblk["qkv_w"], qblk["qkv_b"], f"blk{idx}.qkv"
        )  # [b,t,3d]
        qkv = qkv.reshape(b, t, 3, h, hd).transpose(2, 0, 3, 1, 4)
        q, k, v = qkv[0], qkv[1], qkv[2]  # [b,h,t,hd]
        if name == "softmax":
            scores = q @ np.swapaxes(k, -1, -2)  # scale s^2
            self.trace.matmuls.extend(
                MatmulRecord(f"blk{idx}.qk", t, hd, t) for _ in range(h)
            )
            inv_sqrt = round(s / math.sqrt(hd))
            scores = _shift(_shift(scores, f) * inv_sqrt, f)
            att = self._softmax_rows(scores)
            mixed = _shift(att @ v, f)
            self.trace.matmuls.extend(
                MatmulRecord(f"blk{idx}.av", t, t, hd) for _ in range(h)
            )
        else:  # scaling
            context = np.floor_divide(
                _shift(np.swapaxes(k, -1, -2) @ v, f), t
            )
            self.trace.matmuls.extend(
                MatmulRecord(f"blk{idx}.kv", hd, t, hd) for _ in range(h)
            )
            inv_sqrt = round(s / math.sqrt(hd))
            mixed = _shift(_shift(q @ context, f) * inv_sqrt, f)
            self.trace.matmuls.extend(
                MatmulRecord(f"blk{idx}.qc", t, hd, hd) for _ in range(h)
            )
        mixed = mixed.transpose(0, 2, 1, 3).reshape(b, t, d)
        return self._linear(
            mixed, qblk["proj_w"], qblk["proj_b"], f"blk{idx}.proj"
        )

    # -- forward -------------------------------------------------------------------
    def forward_tokens(self, x: np.ndarray) -> np.ndarray:
        """Run the encoder on already-embedded integer tokens [b, t, d]."""
        for idx, qblk in enumerate(self.blocks):
            normed = self._layernorm(x, qblk["n1_g"], qblk["n1_b"])
            x = x + self._mix(qblk, normed, idx)
            normed = self._layernorm(x, qblk["n2_g"], qblk["n2_b"])
            h = self._linear(
                normed, qblk["fc1_w"], qblk["fc1_b"], f"blk{idx}.fc1"
            )
            h = self._gelu(h, qblk["poly_gelu"])
            h = self._linear(h, qblk["fc2_w"], qblk["fc2_b"], f"blk{idx}.fc2")
            x = x + h
        x = self._layernorm(x, self.norm_g, self.norm_b)
        pooled = np.floor_divide(x.sum(axis=1), x.shape[1])
        logits = _shift(
            pooled @ self.head_w + self.head_b, self.frac_bits
        )
        self.trace.matmuls.append(
            MatmulRecord("head", 1, pooled.shape[-1], self.head_w.shape[-1])
        )
        return logits

    def embed(self, raw) -> np.ndarray:
        """Quantised input embedding (patches or token ids)."""
        f = self.frac_bits
        model = self.model
        if isinstance(model, VisionTransformer):
            patches = _q(model.embed.patches(np.asarray(raw)), f)
            w = _q(model.embed.proj.weight.data, f)
            bias = _q(model.embed.proj.bias.data, 2 * f)
            tok = _shift(patches @ w + bias, f)
            self.trace.matmuls.append(
                MatmulRecord("embed", patches.shape[1], w.shape[0], w.shape[1])
            )
            return tok + _q(model.pos.data, f)
        if isinstance(model, TextTransformer):
            table = _q(model.embed.table.data, f)
            tok = table[np.asarray(raw)]
            return tok + _q(model.pos.data, f)
        raise TypeError("embed() needs a VisionTransformer or TextTransformer")

    def predict(self, raw) -> np.ndarray:
        logits = self.forward_tokens(self.embed(raw))
        return logits.argmax(axis=-1)

    def accuracy(self, xs, ys, batch: int = 64) -> float:
        correct = 0
        for start in range(0, len(xs), batch):
            pred = self.predict(xs[start:start + batch])
            correct += int((pred == ys[start:start + batch]).sum())
        return correct / len(xs)
