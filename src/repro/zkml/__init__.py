"""zkML: quantised inference, model->circuit compilation, cost modelling,
and end-to-end verifiable inference."""

from .compile import (
    CircuitCost,
    ModelCircuitCost,
    account_model,
    account_trace,
    compile_block_circuit,
    gadget_unit_costs,
    matmul_cost,
    synthesize_trace,
)
from .costmodel import CostModel, PrimitiveRates, measure_rates
from .quantized import (
    InferenceTrace,
    MatmulRecord,
    NonlinearRecord,
    QuantizedTransformer,
)
from .verifiable import InferenceProof, LayerProof, VerifiableInference

__all__ = [
    "CircuitCost",
    "CostModel",
    "InferenceProof",
    "InferenceTrace",
    "LayerProof",
    "MatmulRecord",
    "ModelCircuitCost",
    "NonlinearRecord",
    "PrimitiveRates",
    "QuantizedTransformer",
    "VerifiableInference",
    "account_model",
    "account_trace",
    "compile_block_circuit",
    "gadget_unit_costs",
    "matmul_cost",
    "measure_rates",
    "synthesize_trace",
]
