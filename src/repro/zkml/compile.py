"""Model -> circuit compilation and constraint accounting.

Two paths:

* :func:`compile_block_circuit` — *really* builds a full R1CS for one small
  transformer block (matmuls + layernorm + softmax + GELU gadgets); used by
  integration tests and the end-to-end example.
* :func:`account_trace` / :func:`account_model` — closed-form constraint and
  wire accounting for arbitrary (paper-scale) models, combining the matmul
  strategy theory with per-unit gadget costs measured from real gadget
  builds.  The closed forms are validated against the real builder in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from ..core.crpc import theory_counts
from ..field.prime_field import BN254_FR_MODULUS
from ..gadgets.layernorm import layernorm_gadget
from ..gadgets.nonlinear import exp_gadget, gelu_gadget, softmax_gadget
from ..nn.transformer import ModelConfig, StageConfig
from ..r1cs.builder import ConstraintSystem
from .quantized import InferenceTrace, MatmulRecord, NonlinearRecord

R = BN254_FR_MODULUS

DEFAULT_FRAC_BITS = 12


@dataclass
class CircuitCost:
    """Everything the cost model needs about a circuit."""

    constraints: int = 0
    wires: int = 0
    a_wires: int = 0        # distinct wires on the A side ("left wires")
    b_wires: int = 0
    terms: int = 0          # total sparse-matrix nonzeros

    def __add__(self, other: "CircuitCost") -> "CircuitCost":
        return CircuitCost(
            self.constraints + other.constraints,
            self.wires + other.wires,
            self.a_wires + other.a_wires,
            self.b_wires + other.b_wires,
            self.terms + other.terms,
        )

    def scaled(self, factor: int) -> "CircuitCost":
        return CircuitCost(
            self.constraints * factor,
            self.wires * factor,
            self.a_wires * factor,
            self.b_wires * factor,
            self.terms * factor,
        )


def matmul_cost(a: int, n: int, b: int, strategy: str) -> CircuitCost:
    """Closed-form cost of one matmul circuit (validated in tests)."""
    th = theory_counts(a, n, b, strategy)
    io = a * n + n * b + a * b
    if strategy == "vanilla":
        a_wires = a * n + a * b * n
        b_wires = n * b + 1
        terms = 4 * a * b * n + 2 * a * b
    elif strategy == "vanilla_psq":
        a_wires = a * n
        b_wires = n * b
        terms = 2 * a * b * n + (2 * a * b * n - a * b)
    elif strategy == "crpc":
        a_wires = a * n + a * b * n
        b_wires = n * b + 1
        terms = n * (a + b + a * b) + a * b * (n + 2)
    elif strategy == "crpc_psq":
        a_wires = a * n
        b_wires = n * b
        terms = n * (a + b) + a * b + 2 * (n - 1)
    elif strategy == "vcnn":
        a_wires = a * n
        b_wires = n * b
        terms = a * b * (2 * n + 2 * n - 1)
    elif strategy == "zen":
        pairs, tail = n // 2, n % 2
        a_wires = a * n + a * b * (pairs + tail)
        b_wires = n * b + 1
        terms = a * b * (pairs * 7 + tail * 3 + (pairs + tail) + 2)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return CircuitCost(
        constraints=th.constraints,
        wires=th.variables,
        a_wires=a_wires,
        b_wires=b_wires,
        terms=terms,
    )


def _measure_gadget(build) -> CircuitCost:
    cs = ConstraintSystem()
    build(cs)
    st = cs.stats()
    return CircuitCost(
        constraints=st.num_constraints,
        wires=st.num_wires,
        a_wires=st.a_wires,
        b_wires=st.b_wires,
        terms=st.total_terms,
    )


@lru_cache(maxsize=None)
def gadget_unit_costs(frac_bits: int = DEFAULT_FRAC_BITS) -> Dict[str, CircuitCost]:
    """Per-unit constraint costs of the nonlinear gadgets, measured from
    real builds: {"softmax_base", "softmax_per_elem", "layernorm_base",
    "layernorm_per_elem", "gelu", "rescale"}."""
    scale = 1 << frac_bits

    def softmax_at(width: int) -> CircuitCost:
        def build(cs):
            wires = [
                cs.alloc(f"x{i}", (i * scale // 7) % R) for i in range(width)
            ]
            softmax_gadget(cs, wires, frac_bits)
        return _measure_gadget(build)

    def layernorm_at(width: int) -> CircuitCost:
        def build(cs):
            wires = [
                cs.alloc(f"x{i}", ((-1) ** i * (i + 1) * scale // 5) % R)
                for i in range(width)
            ]
            layernorm_gadget(cs, wires, frac_bits)
        return _measure_gadget(build)

    s8, s16 = softmax_at(8), softmax_at(16)
    l8, l16 = layernorm_at(8), layernorm_at(16)

    def per_elem(c8: CircuitCost, c16: CircuitCost) -> CircuitCost:
        return CircuitCost(
            (c16.constraints - c8.constraints) // 8,
            (c16.wires - c8.wires) // 8,
            (c16.a_wires - c8.a_wires) // 8,
            (c16.b_wires - c8.b_wires) // 8,
            (c16.terms - c8.terms) // 8,
        )

    def base(c8: CircuitCost, pe: CircuitCost) -> CircuitCost:
        return c8 + pe.scaled(-8)

    sm_pe, ln_pe = per_elem(s8, s16), per_elem(l8, l16)

    def gelu_unit() -> CircuitCost:
        def build(cs):
            w = cs.alloc("x", (scale // 3) % R)
            gelu_gadget(cs, w, frac_bits)
        return _measure_gadget(build)

    def rescale_unit() -> CircuitCost:
        def build(cs):
            from ..gadgets.fixedpoint import signed_rescale_gadget
            w = cs.alloc("x", (5 * scale) % R)
            signed_rescale_gadget(cs, w, frac_bits, 10)
        return _measure_gadget(build)

    return {
        "softmax_base": base(s8, sm_pe),
        "softmax_per_elem": sm_pe,
        "layernorm_base": base(l8, ln_pe),
        "layernorm_per_elem": ln_pe,
        "gelu": gelu_unit(),
        "rescale": rescale_unit(),
    }


@dataclass
class ModelCircuitCost:
    """Aggregate circuit cost of one quantised model inference."""

    strategy: str
    matmul: CircuitCost = field(default_factory=CircuitCost)
    nonlinear: CircuitCost = field(default_factory=CircuitCost)

    @property
    def total(self) -> CircuitCost:
        return self.matmul + self.nonlinear


def account_trace(
    trace: InferenceTrace,
    strategy: str = "crpc_psq",
    frac_bits: int = DEFAULT_FRAC_BITS,
) -> ModelCircuitCost:
    """Cost a recorded inference trace under a matmul strategy."""
    units = gadget_unit_costs(frac_bits)
    out = ModelCircuitCost(strategy=strategy)
    for m in trace.matmuls:
        out.matmul = out.matmul + matmul_cost(m.a, m.n, m.b, strategy)
    for nl in trace.nonlinears:
        if nl.kind == "softmax_row":
            unit = units["softmax_base"] + units["softmax_per_elem"].scaled(
                nl.width
            )
            out.nonlinear = out.nonlinear + unit.scaled(nl.count)
        elif nl.kind == "layernorm_row":
            unit = units["layernorm_base"] + units[
                "layernorm_per_elem"
            ].scaled(nl.width)
            out.nonlinear = out.nonlinear + unit.scaled(nl.count)
        elif nl.kind == "gelu":
            out.nonlinear = out.nonlinear + units["gelu"].scaled(nl.count)
        elif nl.kind == "rescale":
            out.nonlinear = out.nonlinear + units["rescale"].scaled(nl.count)
    return out


def synthesize_trace(
    config: ModelConfig, mixer_plan: Sequence[str], mlp_ratio: int = 4
) -> InferenceTrace:
    """Build the inference trace of a paper-scale architecture without
    instantiating (or being able to train) the model itself."""
    trace = InferenceTrace()
    specs = config.layer_specs()
    if len(mixer_plan) != len(specs):
        raise ValueError("mixer plan length must equal total layers")
    for idx, (spec, mixer) in enumerate(zip(specs, mixer_plan)):
        t, d, h = spec.tokens, spec.dim, spec.heads
        hd = d // h
        trace.nonlinears.append(NonlinearRecord("layernorm_row", t, d))
        if mixer in ("softmax", "scaling"):
            trace.matmuls.append(MatmulRecord(f"blk{idx}.qkv", t, d, 3 * d))
            trace.nonlinears.append(NonlinearRecord("rescale", t * 3 * d, 1))
            if mixer == "softmax":
                for _ in range(h):
                    trace.matmuls.append(MatmulRecord(f"blk{idx}.qk", t, hd, t))
                    trace.matmuls.append(MatmulRecord(f"blk{idx}.av", t, t, hd))
                trace.nonlinears.append(
                    NonlinearRecord("softmax_row", h * t, t)
                )
            else:
                for _ in range(h):
                    trace.matmuls.append(MatmulRecord(f"blk{idx}.kv", hd, t, hd))
                    trace.matmuls.append(MatmulRecord(f"blk{idx}.qc", t, hd, hd))
            trace.matmuls.append(MatmulRecord(f"blk{idx}.proj", t, d, d))
            trace.nonlinears.append(NonlinearRecord("rescale", t * d, 1))
        elif mixer == "pooling":
            trace.matmuls.append(MatmulRecord(f"blk{idx}.pool", 1, t, d))
        elif mixer == "linear":
            trace.matmuls.append(MatmulRecord(f"blk{idx}.mix", d, t, t))
            trace.nonlinears.append(NonlinearRecord("rescale", t * d, 1))
        else:
            raise ValueError(f"unknown mixer {mixer!r}")
        # MLP
        hidden = d * mlp_ratio
        trace.nonlinears.append(NonlinearRecord("layernorm_row", t, d))
        trace.matmuls.append(MatmulRecord(f"blk{idx}.fc1", t, d, hidden))
        trace.nonlinears.append(NonlinearRecord("rescale", t * hidden, 1))
        trace.nonlinears.append(NonlinearRecord("gelu", t * hidden, 1))
        trace.matmuls.append(MatmulRecord(f"blk{idx}.fc2", t, hidden, d))
        trace.nonlinears.append(NonlinearRecord("rescale", t * d, 1))
    # final norm + head
    last = specs[-1]
    trace.nonlinears.append(NonlinearRecord("layernorm_row", last.tokens, last.dim))
    trace.matmuls.append(
        MatmulRecord("head", 1, last.dim, config.num_classes)
    )
    return trace


def account_model(
    config: ModelConfig,
    mixer_plan: Sequence[str],
    strategy: str = "crpc_psq",
    frac_bits: int = DEFAULT_FRAC_BITS,
    mlp_ratio: int = 4,
) -> ModelCircuitCost:
    return account_trace(
        synthesize_trace(config, mixer_plan, mlp_ratio), strategy, frac_bits
    )


def compile_block_circuit(
    tokens: int,
    dim: int,
    frac_bits: int = 8,
    strategy: str = "crpc_psq",
    seed: int = 0,
) -> ConstraintSystem:
    """Really build one attention-block-ish circuit: layernorm rows, one
    packed matmul, a softmax row and a GELU — small but exercising every
    gadget in one constraint system."""
    import numpy as np

    rng = np.random.default_rng(seed)
    scale = 1 << frac_bits
    cs = ConstraintSystem()
    x = (rng.normal(0, 0.6, size=(tokens, dim)) * scale).astype(int)
    x_wires = [
        [cs.alloc(f"x[{i}][{j}]", int(v) % R) for j, v in enumerate(row)]
        for i, row in enumerate(x)
    ]
    for i in range(tokens):
        layernorm_gadget(cs, x_wires[i], frac_bits, name=f"ln[{i}]")
    softmax_gadget(cs, x_wires[0], frac_bits, name="sm")
    gelu_gadget(cs, x_wires[0][0], frac_bits, name="gelu")
    return cs
