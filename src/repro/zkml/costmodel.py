"""Calibrated cost model.

The pure-Python provers are 10^3-10^4x slower than the paper's C++/Rust
stacks, so paper-scale circuits (ViT on ImageNet ~ 10^9 constraints) cannot
be proven natively here.  The cost model measures this machine's primitive
rates (G1/G2 scalar mult, MSM throughput, field mult, pairing), then
predicts prover/verifier time and proof size for any
:class:`~repro.zkml.compile.CircuitCost` — and a one-shot correction factor
is fit against a *real* small proof so small-scale predictions match
measurements before extrapolating.

Predictions are used for the paper-scale rows of Tables III/IV and the
large-dimension points of Figs. 3/6; every benchmark labels modelled numbers
as such.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional

from ..curve.bn254 import g1_generator, g2_generator, multiply
from ..curve.fixed_base import FixedBaseMSM
from ..curve.msm import msm
from ..curve.pairing import pairing
from ..field.ntt import next_power_of_two, ntt
from ..field.prime_field import BN254_FR_MODULUS
from .compile import CircuitCost

R = BN254_FR_MODULUS


@dataclass
class PrimitiveRates:
    g1_mul_s: float        # one standalone G1 scalar mult
    g1_msm_per_point_s: float
    g2_mul_s: float
    field_mul_s: float
    ntt_per_elem_s: float
    pairing_s: float
    # Per-point rate of a warm fixed-base MSM (precomputed window tables).
    # Our Groth16/Hyrax provers run their MSMs over cached fixed bases, so
    # their predictions use this rate; baseline stacks without the
    # precomputation keep the generic ``g1_msm_per_point_s``.
    g1_fixed_msm_per_point_s: float = 0.0


def _best_of(fn, repeats: int = 3, timer=time.perf_counter) -> float:
    """Minimum wall time over a few runs.  Timing noise is one-sided
    (interruptions only ever slow a run down), so the minimum is the
    stable estimate — single-shot rates made downstream predictions
    jitter run-to-run.  ``timer`` is injectable so tests can drive the
    min-of-repeats logic with a deterministic monotonic counter instead
    of the wall clock."""
    best = float("inf")
    for _ in range(repeats):
        t0 = timer()
        fn()
        best = min(best, timer() - t0)
    return best


@lru_cache(maxsize=1)
def measure_rates() -> PrimitiveRates:
    """Time the primitives once per process."""
    g1, g2 = g1_generator(), g2_generator()
    sc = 0x1234567890ABCDEF1234567890ABCDEF1234567890ABCDEF

    def g1_muls():
        for i in range(8):
            multiply(g1, sc + i)

    g1_mul = _best_of(g1_muls) / 8

    pts = [multiply(g1, i + 2) for i in range(64)]
    scs = [(sc * (i + 1)) % R for i in range(64)]
    g1_msm = _best_of(lambda: msm(pts, scs)) / 64

    fb = FixedBaseMSM(pts)  # table build excluded: it amortises across proofs
    g1_fixed_msm = _best_of(lambda: fb.msm(scs)) / 64

    def g2_muls():
        for i in range(4):
            multiply(g2, sc + i)

    g2_mul = _best_of(g2_muls) / 4

    xs = [(sc * i + 7) % R for i in range(4096)]

    def field_muls():
        acc = 1
        for v in xs:
            acc = acc * v % R

    field_mul = _best_of(field_muls) / 4096

    ntt_per_elem = _best_of(lambda: ntt(xs)) / 4096

    pairing_s = _best_of(lambda: pairing(g2, g1))

    return PrimitiveRates(
        g1_mul_s=g1_mul,
        g1_msm_per_point_s=g1_msm,
        g2_mul_s=g2_mul,
        field_mul_s=field_mul,
        ntt_per_elem_s=ntt_per_elem,
        pairing_s=pairing_s,
        g1_fixed_msm_per_point_s=g1_fixed_msm,
    )


class CostModel:
    """Predict proving/verification time and proof size from circuit costs.

    ``correction`` factors (default 1.0) are fitted by
    :meth:`calibrate_against` using one real measured proof per backend.
    """

    def __init__(self, rates: Optional[PrimitiveRates] = None):
        self.rates = rates or measure_rates()
        self.correction: Dict[str, float] = {"groth16": 1.0, "spartan": 1.0}

    # -- groth16 ------------------------------------------------------------------
    def groth16_prove_time(self, cost: CircuitCost) -> float:
        r = self.rates
        domain = max(2, next_power_of_two(cost.constraints))
        msm_points = (
            cost.a_wires          # A query
            + cost.b_wires        # B query (G1 copy)
            + cost.wires          # K query (witness)
            + domain              # H query
        )
        g2_points = cost.b_wires
        ntt_elems = 9 * 2 * domain  # 3 intt + 3 coset-ntt + back, x2 size
        matvec = cost.terms
        # The prover's G1 queries are fixed per proving key and served from
        # cached window tables (see groth16/prove.py).
        msm_rate = r.g1_fixed_msm_per_point_s or r.g1_msm_per_point_s
        t = (
            msm_points * msm_rate
            + g2_points * r.g2_mul_s
            + ntt_elems * r.ntt_per_elem_s * max(1, math.log2(domain) / 12)
            + matvec * r.field_mul_s * 2
        )
        return t * self.correction["groth16"]

    def groth16_verify_time(self, num_public: int) -> float:
        # 4 shared-final-exp Miller loops ~= 3 full pairings, plus IC MSM.
        return 3 * self.rates.pairing_s + num_public * self.rates.g1_msm_per_point_s

    @staticmethod
    def groth16_proof_size() -> int:
        return 256

    # -- spartan ------------------------------------------------------------------
    @staticmethod
    def _spartan_shape(cost: CircuitCost):
        cons = max(2, next_power_of_two(cost.constraints))
        half = max(2, next_power_of_two(cost.wires))
        return cons, 2 * half

    def spartan_prove_time(self, cost: CircuitCost) -> float:
        r = self.rates
        cons, full = self._spartan_shape(cost)
        field_ops = (
            40 * cons          # sumcheck 1 (4 tables, deg 3, halving rounds)
            + 16 * full        # sumcheck 2
            + 4 * cost.terms   # matvecs + M-table build
            + 4 * full         # eq tables, z table
        )
        witness = cost.wires
        commit_points = witness + 2 * int(math.isqrt(max(1, witness)))
        # Hyrax row commitments run over the cached fixed-base Pedersen
        # generator tables (see spartan/commitment.py).
        msm_rate = r.g1_fixed_msm_per_point_s or r.g1_msm_per_point_s
        t = (
            field_ops * r.field_mul_s
            + commit_points * msm_rate
        )
        return t * self.correction["spartan"]

    def spartan_verify_time(self, cost: CircuitCost) -> float:
        r = self.rates
        cons, full = self._spartan_shape(cost)
        sqrt_w = int(math.isqrt(max(1, cost.wires))) + 1
        field_ops = 2 * cost.terms + cons + full
        group_ops = 2 * sqrt_w
        return field_ops * r.field_mul_s + group_ops * r.g1_msm_per_point_s

    def spartan_proof_size(self, cost: CircuitCost) -> int:
        cons, full = self._spartan_shape(cost)
        rows = 1 << ((full.bit_length()) // 2)  # Hyrax row commitments
        sumcheck_scalars = 4 * max(1, cons.bit_length() - 1) + 3 * max(
            1, full.bit_length() - 1
        )
        opening = rows + 2
        return rows * 64 + (sumcheck_scalars + opening + 3) * 32

    # -- calibration -----------------------------------------------------------------
    def calibrate_against(
        self, backend: str, cost: CircuitCost, measured_prove_s: float
    ) -> float:
        """Fit the backend's correction factor from one real measurement."""
        estimator = (
            self.groth16_prove_time
            if backend == "groth16"
            else self.spartan_prove_time
        )
        self.correction[backend] = 1.0
        predicted = estimator(cost)
        factor = measured_prove_s / predicted if predicted > 0 else 1.0
        self.correction[backend] = factor
        return factor
