"""End-to-end verifiable inference for (small) quantised Transformers.

The paper proves whole-model inference; in pure Python we prove each
*matmul* of the forward pass with the zkVC circuit (layer-wise composition,
the standard trick when one monolithic circuit would not fit) and check the
nonlinear links (rescale/softmax/gelu/layernorm) by recomputation against
the quantised reference — the full in-circuit nonlinear path is exercised
separately by :func:`repro.zkml.compile.compile_block_circuit`.

For paper-scale models use :class:`repro.zkml.costmodel.CostModel` instead;
this class is meant for the integration tests and examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.api import MatmulProofBundle, MatmulProver, MatmulVerifier
from ..core.artifacts import (
    CircuitRegistry,
    KeyStore,
    default_keystore,
    default_registry,
)
from ..field.prime_field import BN254_FR_MODULUS
from .quantized import QuantizedTransformer

R = BN254_FR_MODULUS


@dataclass
class LayerProof:
    layer: str
    bundle: MatmulProofBundle


@dataclass
class InferenceProof:
    prediction: int
    logits: List[int]
    layer_proofs: List[LayerProof] = field(default_factory=list)
    prove_time_s: float = 0.0

    def total_proof_bytes(self) -> int:
        return sum(lp.bundle.proof_size_bytes() for lp in self.layer_proofs)


class VerifiableInference:
    """Prove the matmuls of a quantised model's forward pass.

    ``max_layers`` bounds how many matmuls are actually proven (the rest are
    recomputed); ``None`` proves everything — only sensible for tiny models.

    ``executor`` opts the layer proofs into the
    :class:`~repro.core.service.ProvingService` executor strategies:
    ``"serial"`` (default) proves layers in this process, ``"process"``
    shards the captured layer matmuls across worker processes — the
    multi-layer forward pass is exactly the many-jobs-few-circuits
    workload the process pool is built for.  With ``"process"`` and a
    Groth16 backend, pass a disk-rooted ``keystore`` so workers can
    rehydrate the keypairs.
    """

    def __init__(
        self,
        qmodel: QuantizedTransformer,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
        max_layers: Optional[int] = None,
        registry: Optional[CircuitRegistry] = None,
        keystore: Optional[KeyStore] = None,
        executor: str = "serial",
        workers: int = 4,
        retry_policy=None,
    ):
        self.qmodel = qmodel
        self.strategy = strategy
        self.backend = backend
        self.max_layers = max_layers
        self.executor = executor
        self.workers = workers
        #: Optional[repro.core.resilience.RetryPolicy] forwarded to the
        #: ProvingService on non-serial executors — layer proving then
        #: inherits the retry/lease/quarantine fault tolerance.
        self.retry_policy = retry_policy
        # Circuits and keypairs live in the shared artifact store, so
        # proofs from one instance verify on any other (and, with a
        # disk-backed KeyStore, across restarts).
        self._registry = registry if registry is not None else default_registry()
        self._keystore = keystore if keystore is not None else default_keystore()
        self._provers: Dict[Tuple[int, int, int], MatmulProver] = {}
        self._service = None  # built once on first non-serial prove()

    def _prover_for(self, a: int, n: int, b: int) -> MatmulProver:
        key = (a, n, b)
        if key not in self._provers:
            self._provers[key] = MatmulProver(
                a,
                n,
                b,
                strategy=self.strategy,
                backend=self.backend,
                registry=self._registry,
                keystore=self._keystore,
            )
        return self._provers[key]

    def prove(self, raw_input) -> InferenceProof:
        """Run quantised inference on one input and prove its matmuls."""
        q = self.qmodel
        q.trace.matmuls.clear()
        q.trace.nonlinears.clear()

        t0 = time.perf_counter()
        captured: List[Tuple[str, np.ndarray, np.ndarray]] = []

        # Wrap the linear primitive to capture (x, w) pairs per matmul.
        original_linear = q._linear

        def capturing_linear(x, w, b, layer):
            if x.ndim == 2:
                captured.append((layer, x.copy(), w.copy()))
            else:
                captured.append((layer, x.reshape(-1, x.shape[-1]).copy(), w.copy()))
            return original_linear(x, w, b, layer)

        q._linear = capturing_linear  # type: ignore[assignment]
        try:
            tokens = q.embed(np.asarray(raw_input)[None, ...])
            logits = q.forward_tokens(tokens)[0]
        finally:
            q._linear = original_linear  # type: ignore[assignment]

        budget = self.max_layers if self.max_layers is not None else len(captured)
        proofs = self._prove_layers(captured[:budget])

        return InferenceProof(
            prediction=int(np.argmax(logits)),
            logits=[int(v) for v in logits],
            layer_proofs=proofs,
            prove_time_s=time.perf_counter() - t0,
        )

    def _prove_layers(self, captured) -> List[LayerProof]:
        """Prove captured ``(layer, x, w)`` matmuls under the configured
        executor.

        The serial path proves in-place through per-shape provers; the
        service path submits every layer as a job so same-shape layers
        group into circuit batches and (with ``executor="process"``) large
        groups shard across worker processes.  Service submission order is
        capture order, and results come back sorted by job id, so layer
        names line up positionally.
        """
        if self.executor == "serial":
            proofs = []
            for layer, x, w in captured:
                a, n = x.shape
                b = w.shape[1]
                prover = self._prover_for(a, n, b)
                bundle = prover.prove(x.tolist(), w.tolist())
                proofs.append(LayerProof(layer=layer, bundle=bundle))
            return proofs

        if self._service is None:
            from ..core.service import ProvingService

            # One service for the lifetime of this instance: the process
            # executor's worker pool (and its per-worker circuit/key/table
            # caches) then amortises across prove() calls instead of
            # being rebuilt and leaked per inference.
            self._service = ProvingService(
                workers=self.workers,
                registry=self._registry,
                keystore=self._keystore,
                executor=self.executor,
                retry_policy=self.retry_policy,
            )
        service = self._service
        for _, x, w in captured:
            a, n = x.shape
            self._prover_for(a, n, w.shape[1])  # keeps export_verifiers working
            service.submit(
                x.tolist(), w.tolist(), strategy=self.strategy, backend=self.backend
            )
        report = service.run()
        if report.errors or report.invalid_jobs or len(report.results) != len(captured):
            from ..core.errors import ProvingError

            # An inference proof is all-or-nothing: a single unproven
            # layer (failed, quarantined, or invalid) makes the whole
            # forward pass unverifiable, so surface a typed error with
            # the per-layer dispositions instead of a partial proof.
            bad = {
                jid: f"{o.status}: {o.error}"
                for jid, o in sorted(report.job_outcomes.items())
                if o.status != "ok"
            }
            raise ProvingError(
                f"layer proving failed: errors={report.errors} "
                f"invalid={report.invalid_jobs} jobs={bad}"
            )
        return [
            LayerProof(layer=layer, bundle=result.bundle)
            for (layer, _, _), result in zip(captured, report.results)
        ]

    def _verifier_for(
        self, shape: Tuple[int, int, int], strategy: str, backend: str
    ) -> MatmulVerifier:
        """Detached verifier for one layer circuit — never runs setup.

        Raises ``KeyError`` if a Groth16 verifying key for the circuit is
        in neither memory nor the keystore's disk root; a freshly-generated
        key could never accept the proof anyway (the seed code did exactly
        that and silently rejected every cross-instance proof).
        """
        a, n, b = shape
        return MatmulVerifier.for_circuit(
            a,
            n,
            b,
            strategy=strategy,
            backend=backend,
            keystore=self._keystore,
            registry=self._registry,
        )

    def verify(self, proof: InferenceProof) -> bool:
        """Check every layer proof with detached verifiers.

        Same-circuit Groth16 layers share a verifying key, so each group
        goes through the small-exponent batch check instead of per-proof
        pairings.  Bundle metadata is untrusted: a bundle claiming a
        strategy/backend other than this instance's configuration, or a
        circuit this keystore holds no key for, is simply not verifiable
        — ``False``, never an exception.
        """
        grouped: Dict[Tuple[int, int, int], List[MatmulProofBundle]] = {}
        for lp in proof.layer_proofs:
            bundle = lp.bundle
            if (
                bundle.strategy != self.strategy
                or bundle.backend != self.backend
            ):
                return False
            grouped.setdefault(tuple(bundle.shape), []).append(bundle)
        for shape, bundles in grouped.items():
            try:
                verifier = self._verifier_for(shape, self.strategy, self.backend)
            except (KeyError, ValueError):
                return False
            if not verifier.verify_batch(bundles):
                return False
        return True

    def close(self) -> None:
        """Reap the proving service's worker pool, if one was started."""
        if self._service is not None:
            self._service.close()

    def export_verifiers(self) -> Dict[Tuple[int, int, int], bytes]:
        """Wire-format verifier artifacts for every proven layer circuit,
        ready to ship to a remote client."""
        return {
            key: prover.export_verifier()
            for key, prover in self._provers.items()
        }
