"""End-to-end verifiable inference for (small) quantised Transformers.

The paper proves whole-model inference; in pure Python we prove each
*matmul* of the forward pass with the zkVC circuit (layer-wise composition,
the standard trick when one monolithic circuit would not fit) and check the
nonlinear links (rescale/softmax/gelu/layernorm) by recomputation against
the quantised reference — the full in-circuit nonlinear path is exercised
separately by :func:`repro.zkml.compile.compile_block_circuit`.

For paper-scale models use :class:`repro.zkml.costmodel.CostModel` instead;
this class is meant for the integration tests and examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.api import MatmulProofBundle, MatmulProver
from ..field.prime_field import BN254_FR_MODULUS
from .quantized import QuantizedTransformer

R = BN254_FR_MODULUS


@dataclass
class LayerProof:
    layer: str
    bundle: MatmulProofBundle


@dataclass
class InferenceProof:
    prediction: int
    logits: List[int]
    layer_proofs: List[LayerProof] = field(default_factory=list)
    prove_time_s: float = 0.0

    def total_proof_bytes(self) -> int:
        return sum(lp.bundle.proof_size_bytes() for lp in self.layer_proofs)


class VerifiableInference:
    """Prove the matmuls of a quantised model's forward pass.

    ``max_layers`` bounds how many matmuls are actually proven (the rest are
    recomputed); ``None`` proves everything — only sensible for tiny models.
    """

    def __init__(
        self,
        qmodel: QuantizedTransformer,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
        max_layers: Optional[int] = None,
    ):
        self.qmodel = qmodel
        self.strategy = strategy
        self.backend = backend
        self.max_layers = max_layers
        self._provers: Dict[Tuple[int, int, int], MatmulProver] = {}

    def _prover_for(self, a: int, n: int, b: int) -> MatmulProver:
        key = (a, n, b)
        if key not in self._provers:
            self._provers[key] = MatmulProver(
                a, n, b, strategy=self.strategy, backend=self.backend
            )
        return self._provers[key]

    def prove(self, raw_input) -> InferenceProof:
        """Run quantised inference on one input and prove its matmuls."""
        q = self.qmodel
        q.trace.matmuls.clear()
        q.trace.nonlinears.clear()

        t0 = time.perf_counter()
        captured: List[Tuple[str, np.ndarray, np.ndarray]] = []

        # Wrap the linear primitive to capture (x, w) pairs per matmul.
        original_linear = q._linear

        def capturing_linear(x, w, b, layer):
            if x.ndim == 2:
                captured.append((layer, x.copy(), w.copy()))
            else:
                captured.append((layer, x.reshape(-1, x.shape[-1]).copy(), w.copy()))
            return original_linear(x, w, b, layer)

        q._linear = capturing_linear  # type: ignore[assignment]
        try:
            tokens = q.embed(np.asarray(raw_input)[None, ...])
            logits = q.forward_tokens(tokens)[0]
        finally:
            q._linear = original_linear  # type: ignore[assignment]

        proofs: List[LayerProof] = []
        budget = self.max_layers if self.max_layers is not None else len(captured)
        for layer, x, w in captured[:budget]:
            a, n = x.shape
            b = w.shape[1]
            prover = self._prover_for(a, n, b)
            bundle = prover.prove(x.tolist(), w.tolist())
            proofs.append(LayerProof(layer=layer, bundle=bundle))

        return InferenceProof(
            prediction=int(np.argmax(logits)),
            logits=[int(v) for v in logits],
            layer_proofs=proofs,
            prove_time_s=time.perf_counter() - t0,
        )

    def verify(self, proof: InferenceProof) -> bool:
        for lp in proof.layer_proofs:
            a, n, b = lp.bundle.shape
            prover = self._prover_for(a, n, b)
            if not prover.verify(lp.bundle):
                return False
        return True
