"""The proof bundle exchanged between provers, verifiers, and the wire.

Kept in its own module so both :mod:`repro.core.backends` (which produces
bundles) and :mod:`repro.core.api` (which wraps them in the user-facing
prover/verifier objects) can import it without a cycle, and so
:mod:`repro.serialize` can lazily reach the dataclass for the wire codec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS


def matrix_bytes(mat: Sequence[Sequence[int]]) -> bytes:
    """Canonical big-endian encoding of a matrix of field values, used for
    commitments and Fiat-Shamir bindings."""
    return b"".join(
        (int(v) % R).to_bytes(32, "big") for row in mat for v in row
    )


@dataclass
class MatmulProofBundle:
    """Everything a verifier needs, plus measured timings for benchmarks.

    ``timings`` are local measurements and are *not* part of the wire
    format — a bundle deserialised on the far side starts with an empty
    timing dict.
    """

    backend: str
    strategy: str
    shape: Tuple[int, int, int]
    y: List[List[int]]            # claimed product, field values
    proof: object
    z: int                        # CRPC packing point used
    commitment: bytes             # input commitment (spartan flow)
    timings: Dict[str, float] = field(default_factory=dict)

    def proof_size_bytes(self) -> int:
        return self.proof.size_bytes()

    def public_inputs(self) -> List[int]:
        return [v for row in self.y for v in row]

    def to_bytes(self) -> bytes:
        from .. import serialize

        return serialize.matmul_bundle_to_bytes(self)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MatmulProofBundle":
        from .. import serialize

        return serialize.matmul_bundle_from_bytes(data)
