"""Deterministic fault injection for the proving pipeline.

The resilience layer (typed errors, retries, leases, bisection,
quarantine, degradation ladder) is only trustworthy if every failure mode
can be forced on demand, deterministically, across *all three* executors
— including spawn-started worker processes that share no Python state
with the test.  This module provides that harness:

* A :class:`FaultPlan` is a list of :class:`FaultSpec` entries selecting
  jobs (by ``job_id`` and/or ``strategy``) and a fault ``kind``:

  - ``"crash"``   — the worker dies without cleanup (``os._exit``);
    inline executors raise :class:`~repro.core.errors.WorkerCrash`.
  - ``"hang"``    — the worker sleeps ``seconds`` (long enough for the
    chunk lease to expire and kill it); inline executors sleep a short
    ``inline_seconds`` and raise
    :class:`~repro.core.errors.ChunkTimeout` (in-process code cannot be
    preempted, so the inline hang is a *simulated* lease expiry).
  - ``"corrupt"`` — the worker's result envelope is bit-flipped on the
    way out, so the parent's decode raises
    :class:`~repro.core.errors.CorruptEnvelope`.
  - ``"missing_key"`` — raises ``KeyError`` exactly as a keystore miss
    would (workers) / :class:`~repro.core.errors.MissingKey` (inline).
  - ``"poison"``  — raises a deterministic, job-attributed
    :class:`~repro.core.errors.ProvingError` on every attempt, the
    canonical quarantine target.
  - ``"net_drop"`` — remote tier only: the worker proves the chunk, then
    the connection "loses" the RESULTS frame (hang-up without a reply) —
    the dispatcher sees :class:`~repro.core.errors.WorkerCrash` for work
    that actually completed, the hardest case for exactly-once delivery.
  - ``"net_stall"`` — remote tier only: the reply stalls ``seconds``
    (past the chunk lease), so the dispatcher times out and re-dispatches
    while the original worker is still holding the proven chunk.

* Plans cross the process boundary through the ``REPRO_FAULT_PLAN``
  environment variable (JSON), the only channel that survives ``spawn``.
* ``times`` bounds how often a spec fires.  Firings are counted with
  ``O_EXCL`` marker files under the plan's ``state_dir``, so the count is
  exact across any number of worker processes and retries — "fail the
  first two dispatches, succeed on the third" replays identically every
  run.  ``times=None`` means "always" and needs no state.

Production code calls :func:`active_plan` at its hook points; with the
variable unset (the default, including under pytest) that is one dict
lookup and the whole module stays cold.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional

from .errors import ChunkTimeout, MissingKey, ProvingError, WorkerCrash

ENV_VAR = "REPRO_FAULT_PLAN"

KINDS = ("crash", "hang", "corrupt", "missing_key", "poison", "net_drop", "net_stall")

#: kinds that act on the worker's *reply* path, not at chunk entry
_EXIT_KINDS = ("corrupt", "net_drop", "net_stall")


@dataclass
class FaultSpec:
    """One injected fault: which jobs, what failure, how many times.

    ``tier`` scopes the spec to one executor tier (``"process"``,
    ``"remote"``, ``"inline"``); ``None`` means any tier — but note that
    :func:`scoped_env` only forwards *explicitly* tier-addressed specs
    across a launch boundary, so an untiered plan never leaks into a
    remote worker's environment.
    """

    kind: str
    job_id: Optional[int] = None
    strategy: Optional[str] = None
    tier: Optional[str] = None  # None = any tier (local process tree only)
    times: Optional[int] = 1  # None = every attempt
    seconds: float = 30.0  # worker hang duration (lease must be shorter)
    inline_seconds: float = 0.01  # simulated hang for in-process executors

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(
        self,
        job_id: Optional[int],
        strategy: Optional[str],
        tier: Optional[str] = None,
    ) -> bool:
        if self.tier is not None and tier is not None and self.tier != tier:
            return False
        if self.job_id is not None and self.job_id != job_id:
            return False
        if self.strategy is not None and self.strategy != strategy:
            return False
        return True

    def ident(self) -> str:
        # tier is part of the identity: two otherwise-equal specs aimed at
        # different tiers must not share O_EXCL firing markers.
        return f"{self.kind}-j{self.job_id}-s{self.strategy}-t{self.tier}"


@dataclass
class FaultPlan:
    specs: List[FaultSpec] = field(default_factory=list)
    #: directory for cross-process firing counters; required for any
    #: spec with a finite ``times`` that must hold across retries
    state_dir: Optional[str] = None

    # -- wire format (environment variable JSON) ------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "state_dir": self.state_dir,
                "specs": [vars(s) for s in self.specs],
            }
        )

    @classmethod
    def from_json(cls, blob: str) -> "FaultPlan":
        data = json.loads(blob)
        return cls(
            specs=[FaultSpec(**s) for s in data.get("specs", [])],
            state_dir=data.get("state_dir"),
        )

    def install(self, env=os.environ) -> str:
        """Serialize into the environment (spawn-safe channel); returns
        the value so tests can assert/uninstall it."""
        value = self.to_json()
        env[ENV_VAR] = value
        return value

    # -- firing accounting ----------------------------------------------------
    def _should_fire(self, spec: FaultSpec) -> bool:
        if spec.times is None:
            return True
        if spec.times <= 0:
            return False
        if self.state_dir is None:
            raise ValueError(
                "FaultSpec with finite `times` needs a plan state_dir "
                "(cross-process firing counts use marker files)"
            )
        os.makedirs(self.state_dir, exist_ok=True)
        for n in range(spec.times):
            marker = os.path.join(self.state_dir, f"{spec.ident()}.{n}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # that firing already happened (maybe elsewhere)
            os.close(fd)
            return True
        return False  # budget spent: let the work through

    def fired(self, spec_index: int = 0) -> int:
        """How many times spec ``spec_index`` has fired so far (exact,
        cross-process) — test assertion helper."""
        spec = self.specs[spec_index]
        if spec.times is None or self.state_dir is None:
            raise ValueError("only finite-times specs are counted")
        return sum(
            1
            for n in range(spec.times)
            if os.path.exists(os.path.join(self.state_dir, f"{spec.ident()}.{n}"))
        )

    # -- scoping ----------------------------------------------------------------
    def scoped(self, tier: str) -> Optional["FaultPlan"]:
        """The subset of this plan explicitly addressed to ``tier``, or
        ``None`` when nothing is.  Untiered specs do NOT cross a launch
        boundary — that ambient leak is the bug this exists to close."""
        specs = [s for s in self.specs if s.tier == tier]
        if not specs:
            return None
        return FaultPlan(specs=specs, state_dir=self.state_dir)

    # -- hook points -----------------------------------------------------------
    def fire_worker(self, jobs, tier: Optional[str] = None) -> None:
        """Worker-process entry hook: ``jobs`` is the decoded chunk
        (sequence of ``(job_id, x, w, strategy, backend)``).  A matching
        chunk-level fault acts on the whole chunk — which is exactly what
        makes bisection meaningful: only chunks *containing* the targeted
        job fail, so the bisector can corner it."""
        for spec in self.specs:
            if spec.kind in _EXIT_KINDS:
                continue  # handled on the result path
            if not any(spec.matches(j[0], j[3], tier) for j in jobs):
                continue
            if not self._should_fire(spec):
                continue
            if spec.kind == "crash":
                os._exit(13)
            if spec.kind == "hang":
                time.sleep(spec.seconds)
                return  # slept through the lease; proceed (pool kills us)
            if spec.kind == "missing_key":
                raise KeyError("injected: missing key")
            if spec.kind == "poison":
                job_id = next(
                    j[0] for j in jobs if spec.matches(j[0], j[3], tier)
                )
                raise ProvingError("injected: poison job", job_id=job_id)

    def mangle_results(self, blob: bytes, jobs, tier: Optional[str] = None) -> bytes:
        """Worker-process exit hook: corrupt the result envelope for a
        matching ``"corrupt"`` spec (transport-fault simulation)."""
        for spec in self.specs:
            if spec.kind != "corrupt":
                continue
            if not any(spec.matches(j[0], j[3], tier) for j in jobs):
                continue
            if not self._should_fire(spec):
                continue
            mangled = bytearray(blob)
            if mangled:
                mangled[len(mangled) // 2] ^= 0xFF
            mangled.extend(b"\xff")  # even an empty envelope must break
            return bytes(mangled)
        return blob

    def transport_fault(self, jobs, tier: Optional[str] = None) -> Optional[FaultSpec]:
        """Remote-worker reply hook: the matching ``net_drop``/``net_stall``
        spec that should fire for this (already-proven) chunk, or ``None``.
        The worker acts it out — dropping the connection or stalling the
        send — because only the server side holds the socket."""
        for spec in self.specs:
            if spec.kind not in ("net_drop", "net_stall"):
                continue
            if not any(spec.matches(j[0], j[3], tier) for j in jobs):
                continue
            if not self._should_fire(spec):
                continue
            return spec
        return None

    def fire_inline(
        self,
        job_id: int,
        strategy: Optional[str] = None,
        tier: Optional[str] = None,
    ) -> None:
        """In-process (serial/thread executor) per-job hook, called right
        before each prove attempt; raises the typed error the process
        tier would have produced."""
        for spec in self.specs:
            if spec.kind in _EXIT_KINDS:
                continue  # no wire (or envelope) exists on the inline path
            if not spec.matches(job_id, strategy, tier):
                continue
            if not self._should_fire(spec):
                continue
            if spec.kind == "crash":
                raise WorkerCrash("injected: crash", job_id=job_id)
            if spec.kind == "hang":
                time.sleep(spec.inline_seconds)
                raise ChunkTimeout(
                    "injected: hang (simulated lease expiry)",
                    job_id=job_id,
                    deadline_seconds=spec.inline_seconds,
                )
            if spec.kind == "missing_key":
                raise MissingKey("injected: missing key", job_id=job_id)
            if spec.kind == "poison":
                raise ProvingError("injected: poison job", job_id=job_id)


# Cache keyed by the raw env value: workers hit active_plan() once per
# chunk and parents once per job, and the plan is immutable per value.
_PARSED: dict = {}


def active_plan(env=os.environ) -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the fast path: one dict lookup)."""
    blob = env.get(ENV_VAR)
    if not blob:
        return None
    plan = _PARSED.get(blob)
    if plan is None:
        plan = _PARSED[blob] = FaultPlan.from_json(blob)
    return plan


def scoped_env(tier: str, env=os.environ) -> dict:
    """A copy of ``env`` safe to hand a ``tier`` worker launch: the
    ambient fault plan is stripped, and only specs explicitly addressed
    to ``tier`` are re-installed.  This is the boundary that keeps a plan
    scoped to one executor's workers from leaking into every further
    subprocess (or across the wire to a remote host)."""
    out = dict(env)
    out.pop(ENV_VAR, None)
    plan = active_plan(env)
    if plan is not None:
        sub = plan.scoped(tier)
        if sub is not None:
            sub.install(out)
    return out
