"""PSQ — Prefix-Sum Query (paper Sec. III-B).

Pure-math helpers: prefix-sum accumulation and the left-wire accounting the
paper uses to justify PSQ ("6 left wires -> 3" in Fig. 5; ``O(n^3)`` ->
``O(n^2)`` variables overall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import CircuitStats, ConstraintSystem

R = BN254_FR_MODULUS


def prefix_sums(values: Sequence[int]) -> List[int]:
    """Running prefix sums mod R — the PSQ accumulator trajectory."""
    out: List[int] = []
    acc = 0
    for v in values:
        acc = (acc + int(v)) % R
        out.append(acc)
    return out


@dataclass
class LeftWireReport:
    """Left-wire (A-side) accounting for a built circuit."""

    strategy: str
    a_terms: int          # total nonzero entries in the A matrix
    a_wires: int          # distinct wires on the A side
    num_constraints: int
    num_wires: int

    @classmethod
    def from_stats(cls, strategy: str, stats: CircuitStats) -> "LeftWireReport":
        return cls(
            strategy=strategy,
            a_terms=stats.a_terms,
            a_wires=stats.a_wires,
            num_constraints=stats.num_constraints,
            num_wires=stats.num_wires,
        )


def left_wire_report(strategy: str, cs: ConstraintSystem) -> LeftWireReport:
    return LeftWireReport.from_stats(strategy, cs.stats())


def psq_reduction_factor(without: LeftWireReport, with_psq: LeftWireReport) -> float:
    """Fractional reduction in A-side terms achieved by PSQ."""
    if without.a_terms == 0:
        return 0.0
    return 1.0 - with_psq.a_terms / without.a_terms
