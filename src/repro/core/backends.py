"""Proof-backend registry.

Each backend packages the four operations the serving stack needs —
``setup`` / ``prove`` / ``verify`` / ``export_vk`` — behind one interface,
so :class:`repro.core.api.MatmulProver`, the detached
:class:`repro.core.api.MatmulVerifier`, and the batching
:class:`repro.core.service.ProvingService` never branch on backend names.
New proof systems register with :func:`register_backend` and become
available everywhere by name.

Backend contract:

* ``setup(circuit)`` returns an opaque artifacts object (``None`` for
  transparent systems).  Artifacts are cached process-wide and persisted by
  :class:`repro.core.artifacts.KeyStore`.
* ``prove(circuit, artifacts, X, W)`` returns a
  :class:`~repro.core.bundle.MatmulProofBundle`.
* ``verify(bundle, vk=..., circuit=...)`` is *stateless*: it takes exactly
  the detached material a remote verifier holds (an exported verifying key
  for Groth16; the public circuit description for Spartan) and never runs
  setup.
* ``export_vk`` / ``import_vk`` round-trip the verification material
  through bytes for cross-process use.
"""

from __future__ import annotations

import abc
import hashlib
import os
import secrets
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .. import groth16
from .. import serialize
from .. import spartan
from ..field.prime_field import BN254_FR_MODULUS
from ..gadgets.matmul import MatmulCircuit
from ..r1cs.builder import derive_z
from ..r1cs.system import R1CSInstance
from .bundle import MatmulProofBundle, matrix_bytes

R = BN254_FR_MODULUS

Rng = Optional[Callable[[], int]]


class ProofBackend(abc.ABC):
    """One proof system, as seen by the serving layers above it."""

    #: registry key, also stored in every bundle this backend produces
    name: str = ""
    #: whether ``setup`` produces per-circuit artifacts worth caching
    requires_setup: bool = False

    @abc.abstractmethod
    def setup(self, circuit: MatmulCircuit, rng: Rng = None):
        """Produce per-circuit proving/verification artifacts (or None)."""

    @abc.abstractmethod
    def prove(
        self,
        circuit: MatmulCircuit,
        artifacts,
        x_mat,
        w_mat,
        rng: Rng = None,
    ) -> MatmulProofBundle:
        """Prove one instance.  The caller holds the circuit's lock."""

    @abc.abstractmethod
    def verify(
        self,
        bundle: MatmulProofBundle,
        *,
        vk=None,
        circuit: Optional[MatmulCircuit] = None,
    ) -> bool:
        """Statelessly check a bundle against detached material."""

    @abc.abstractmethod
    def export_vk(self, artifacts) -> bytes:
        """Serialize the verification material (b'' if none is needed)."""

    @abc.abstractmethod
    def import_vk(self, data: bytes):
        """Inverse of :meth:`export_vk`."""

    @abc.abstractmethod
    def proof_to_bytes(self, proof) -> bytes:
        ...

    @abc.abstractmethod
    def proof_from_bytes(self, data: bytes):
        ...

    def artifacts_to_bytes(self, artifacts) -> bytes:
        """Persistable form of the full setup output (prover + verifier)."""
        return b""

    def artifacts_from_bytes(
        self, data: bytes, circuit: MatmulCircuit
    ):
        return None

    def warm(self, artifacts) -> None:
        """Pre-build per-key prover caches ahead of a batch.

        Optional: callers that will prove several instances against one
        key (pool workers serving a chunk) invoke this so the first
        proofs don't pay the promote-on-reuse ramp of the fixed-base
        cache.  Default is a no-op."""


# -- Groth16 -------------------------------------------------------------------

@dataclass
class Groth16Artifacts:
    """Setup output plus the specialised instance proving needs.

    The instance is re-derived from the circuit when artifacts are loaded
    from disk; only the keypair itself is persisted.  Setup cost is timed
    by the :class:`~repro.core.artifacts.KeyStore`, the single owner of
    that measurement.
    """

    keypair: groth16.Groth16Keypair
    instance: R1CSInstance


class Groth16Backend(ProofBackend):
    """Pairing-based, constant proof size, per-circuit trusted setup.

    The CRPC packing point is fixed at setup: it is part of the circuit's
    public parameters, baked into the CRS (as in the paper's
    implementation), so proofs of one circuit all share one keypair.
    """

    name = "groth16"
    requires_setup = True

    def setup(self, circuit: MatmulCircuit, rng: Rng = None) -> Groth16Artifacts:
        z = circuit.packing_point()
        instance = circuit.cs.specialize(z)
        return Groth16Artifacts(
            keypair=groth16.setup(instance, rng), instance=instance
        )

    def prove(
        self,
        circuit: MatmulCircuit,
        artifacts: Groth16Artifacts,
        x_mat,
        w_mat,
        rng: Rng = None,
    ) -> MatmulProofBundle:
        z = circuit.packing_point()
        t0 = time.perf_counter()
        y = circuit.assign(x_mat, w_mat, z)
        proof = groth16.prove(
            artifacts.keypair.pk,
            artifacts.instance,
            circuit.cs.assignment(),
            rng,
        )
        prove_time = time.perf_counter() - t0
        return MatmulProofBundle(
            backend=self.name,
            strategy=circuit.strategy,
            shape=(circuit.a, circuit.n, circuit.b),
            y=y,
            proof=proof,
            z=z,
            commitment=b"",
            timings={"prove": prove_time},
        )

    def verify(
        self,
        bundle: MatmulProofBundle,
        *,
        vk=None,
        circuit: Optional[MatmulCircuit] = None,
    ) -> bool:
        if vk is None:
            raise ValueError("groth16 verification needs a verifying key")
        try:
            return groth16.verify(vk, bundle.public_inputs(), bundle.proof)
        except ValueError:
            # statement length does not match this key's circuit
            return False

    def batch_verify(self, vk, bundles, rng: Rng = None) -> bool:
        """Small-exponent batch check for same-key bundles."""
        try:
            return groth16.batch_verify(
                vk,
                [b.public_inputs() for b in bundles],
                [b.proof for b in bundles],
                rng,
            )
        except ValueError:
            return False

    def export_vk(self, artifacts: Groth16Artifacts) -> bytes:
        return serialize.groth16_vk_to_bytes(artifacts.keypair.vk)

    def import_vk(self, data: bytes):
        return serialize.groth16_vk_from_bytes(data)

    def proof_to_bytes(self, proof) -> bytes:
        return serialize.groth16_proof_to_bytes(proof)

    def proof_from_bytes(self, data: bytes):
        return serialize.groth16_proof_from_bytes(data)

    def artifacts_to_bytes(self, artifacts: Groth16Artifacts) -> bytes:
        return serialize.groth16_keypair_to_bytes(artifacts.keypair)

    def artifacts_from_bytes(
        self, data: bytes, circuit: MatmulCircuit
    ) -> Groth16Artifacts:
        keypair = serialize.groth16_keypair_from_bytes(data)
        instance = circuit.cs.specialize(circuit.packing_point())
        return Groth16Artifacts(keypair=keypair, instance=instance)

    def warm(self, artifacts: Groth16Artifacts) -> None:
        """Build the fixed-base window tables for every PK query now.

        The labels mirror :func:`repro.groth16.prove.prove` exactly, so
        each subsequent proof under this keypair starts at table speed
        instead of paying two generic Pippenger MSMs per query first.

        Warming stops once the cache's table-point budget is spent: a
        proving key whose queries exceed the budget would otherwise
        evict the tables just built for its own earlier queries —
        expensive construction thrown away before the first proof.
        """
        from ..curve.fixed_base import (
            _CACHE_TABLE_POINT_LIMIT,
            prewarm_fixed_base,
        )

        pk = artifacts.keypair.pk
        fp = pk.fingerprint()
        budget = _CACHE_TABLE_POINT_LIMIT
        for label, points in (
            ("groth16-a", pk.a_query),
            ("groth16-b1", pk.b_g1_query),
            ("groth16-k", pk.k_query),
            ("groth16-h", pk.h_query),
        ):
            if len(points) > budget:
                continue  # promote-on-reuse decides for the oversized rest
            budget -= len(points)
            prewarm_fixed_base((label, fp), points)


# -- Spartan -------------------------------------------------------------------

class SpartanBackend(ProofBackend):
    """Transparent (no trusted setup).

    The packing point is derived by Fiat-Shamir from a salted commitment to
    (X, W) and the claimed Y, so it is fixed only after the inputs are
    bound — the commit-then-prove ordering (see DESIGN.md).  Verification
    needs only the public circuit description, never any keys.
    """

    name = "spartan"
    requires_setup = False

    def setup(self, circuit: MatmulCircuit, rng: Rng = None):
        return None

    def prove(
        self,
        circuit: MatmulCircuit,
        artifacts,
        x_mat,
        w_mat,
        rng: Rng = None,
    ) -> MatmulProofBundle:
        t0 = time.perf_counter()
        salt = secrets.token_bytes(16)
        commitment = (
            salt
            + hashlib.sha256(
                salt + matrix_bytes(x_mat) + matrix_bytes(w_mat)
            ).digest()
        )
        # Fix the packing point only after the inputs are bound.  Y is
        # computed once here and shared with the witness assignment.
        y = circuit.product(x_mat, w_mat)
        z = derive_z(circuit.circuit_id() + commitment + matrix_bytes(y))
        circuit.assign(x_mat, w_mat, z, y=y)
        instance = circuit.cs.specialize(z)
        transcript = spartan.Transcript(b"zkvc-matmul")
        transcript.append_bytes(b"commitment", commitment)
        transcript.append_scalar(b"packing-z", z)
        proof = spartan.prove(
            instance, circuit.cs.assignment(), transcript
        )
        prove_time = time.perf_counter() - t0
        return MatmulProofBundle(
            backend=self.name,
            strategy=circuit.strategy,
            shape=(circuit.a, circuit.n, circuit.b),
            y=y,
            proof=proof,
            z=z,
            commitment=commitment,
            timings={"prove": prove_time},
        )

    def verify(
        self,
        bundle: MatmulProofBundle,
        *,
        vk=None,
        circuit: Optional[MatmulCircuit] = None,
    ) -> bool:
        if circuit is None:
            raise ValueError(
                "spartan verification needs the public circuit description"
            )
        expected_z = derive_z(
            circuit.circuit_id()
            + bundle.commitment
            + matrix_bytes(bundle.y)
        )
        if bundle.z != expected_z:
            return False
        instance = circuit.cs.specialize(bundle.z)
        transcript = spartan.Transcript(b"zkvc-matmul")
        transcript.append_bytes(b"commitment", bundle.commitment)
        transcript.append_scalar(b"packing-z", bundle.z)
        return spartan.verify(
            instance, bundle.public_inputs(), bundle.proof, transcript
        )

    def export_vk(self, artifacts) -> bytes:
        return b""

    def import_vk(self, data: bytes):
        return None

    def proof_to_bytes(self, proof) -> bytes:
        return serialize.spartan_proof_to_bytes(proof)

    def proof_from_bytes(self, data: bytes):
        return serialize.spartan_proof_from_bytes(data)


# -- worker entrypoints ----------------------------------------------------------
#
# Top-level (picklable) functions shared by the in-process serving path and
# the process-pool workers in :mod:`repro.core.pool`.  Workers cannot ship
# live backend or circuit objects across the spawn boundary; they ship
# names and bytes, and everything live is rebuilt here from the registry.

def prove_jobs_to_wire(
    backend_name: str,
    circuit: MatmulCircuit,
    artifacts,
    jobs,
    rng: Rng = None,
):
    """Prove a same-circuit job list and serialize every bundle.

    ``jobs`` is a sequence of ``(job_id, x, w)``; the return value is a
    list of ``(job_id, bundle_bytes, prove_seconds)`` — exactly the
    payload of :func:`repro.serialize.job_results_to_bytes`, so a pool
    worker's results cross the process boundary as plain bytes.

    A Python-level failure while proving one job raises a typed
    :class:`~repro.core.errors.ProvingError` *tagged with that job's id*
    (pickle-safe, so it survives the process boundary): the dispatching
    executor can then quarantine the culprit directly and re-dispatch the
    rest of the chunk instead of bisecting blind.

    With ``REPRO_WORKER_RNG_SEED`` set (a test hook), each job proves
    under a deterministic rng derived from ``(seed, job_id)`` — the same
    job then yields byte-identical bundles no matter *which* worker,
    process, or host ran it, which is how the executor-equivalence tests
    compare tiers at the byte level.  Only backends that thread ``rng``
    through (Groth16) become deterministic; an explicit ``rng`` argument
    always wins over the hook.
    """
    from .errors import wrap_error

    backend = get_backend(backend_name)
    seed = os.environ.get("REPRO_WORKER_RNG_SEED")
    out = []
    for job_id, x_mat, w_mat in jobs:
        job_rng = rng
        if job_rng is None and seed is not None:
            job_rng = _seeded_job_rng(seed, job_id)
        t0 = time.perf_counter()
        try:
            bundle = backend.prove(circuit, artifacts, x_mat, w_mat, job_rng)
        except Exception as exc:  # noqa: BLE001 — typed + attributed
            raise wrap_error(exc, job_id=job_id) from exc
        out.append((job_id, bundle.to_bytes(), time.perf_counter() - t0))
    return out


def _seeded_job_rng(seed: str, job_id: int):
    """A per-job deterministic rng stream: sha256(seed ‖ job_id ‖ counter)."""
    counter = 0

    def rng() -> int:
        nonlocal counter
        digest = hashlib.sha256(
            f"{seed}|{job_id}|{counter}".encode()
        ).digest()
        counter += 1
        return int.from_bytes(digest, "big")

    return rng


# -- registry ------------------------------------------------------------------

_BACKENDS: Dict[str, ProofBackend] = {}


def register_backend(backend: ProofBackend) -> ProofBackend:
    """Make a backend available by name to provers, verifiers, stores, and
    the proving service.  Re-registering a name replaces it."""
    if not backend.name:
        raise ValueError("backend must have a non-empty name")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> ProofBackend:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(f"unknown backend {name!r}") from None


def backend_names() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


register_backend(Groth16Backend())
register_backend(SpartanBackend())
