"""zkVC public API: prove and verify matrix multiplications.

Typical use::

    from repro.core import MatmulProver

    prover = MatmulProver(a=4, n=8, b=4, strategy="crpc_psq",
                          backend="groth16")
    bundle = prover.prove(X, W)           # X: a*n ints, W: n*b ints
    assert prover.verify(bundle)

Backends:

* ``groth16`` — pairing-based, constant proof size (256 B), per-circuit
  trusted setup.  The CRPC packing point is fixed at setup (it is part of
  the circuit's public parameters, as in the paper's implementation).
* ``spartan`` — transparent (no trusted setup).  The packing point is
  derived by Fiat–Shamir from a salted commitment to (X, W) and the claimed
  Y, so it is fixed only after the inputs are bound — the commit-then-prove
  ordering.

Soundness note (documented in DESIGN.md): binding the Spartan witness to
the input commitment is assumed, not enforced in-circuit, mirroring the
paper's setting where the model weights are committed once out-of-band.
"""

from __future__ import annotations

import hashlib
import secrets
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import groth16
from .. import spartan
from ..field.prime_field import BN254_FR_MODULUS
from ..gadgets.matmul import STRATEGIES, MatmulCircuit
from ..r1cs.builder import derive_z

R = BN254_FR_MODULUS

BACKENDS = ("groth16", "spartan")


def _matrix_bytes(mat: Sequence[Sequence[int]]) -> bytes:
    return b"".join(
        (int(v) % R).to_bytes(32, "big") for row in mat for v in row
    )


@dataclass
class MatmulProofBundle:
    """Everything a verifier needs, plus measured timings for benchmarks."""

    backend: str
    strategy: str
    shape: tuple
    y: List[List[int]]            # claimed product, field values
    proof: object
    z: int                        # CRPC packing point used
    commitment: bytes             # input commitment (spartan flow)
    timings: Dict[str, float] = field(default_factory=dict)

    def proof_size_bytes(self) -> int:
        return self.proof.size_bytes()

    def public_inputs(self) -> List[int]:
        return [v for row in self.y for v in row]


class MatmulProver:
    """Builds the circuit once per (shape, strategy, backend) and proves
    arbitrarily many instances against it."""

    def __init__(
        self,
        a: int,
        n: int,
        b: int,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
        rng=None,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}")
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.a, self.n, self.b = a, n, b
        self.strategy = strategy
        self.backend = backend
        self._rng = rng
        self.circuit = MatmulCircuit(a, n, b, strategy)
        self._keypair = None
        self._groth16_instance = None
        self.timings: Dict[str, float] = {}

    # -- groth16 setup (lazy, cached) -----------------------------------------
    def _ensure_groth16(self):
        if self._keypair is None:
            z = self.circuit.packing_point()
            t0 = time.perf_counter()
            self._groth16_instance = self.circuit.cs.specialize(z)
            self._keypair = groth16.setup(self._groth16_instance, self._rng)
            self.timings["setup"] = time.perf_counter() - t0
        return self._keypair

    # -- proving -----------------------------------------------------------------
    def prove(self, x_mat, w_mat) -> MatmulProofBundle:
        if self.backend == "groth16":
            return self._prove_groth16(x_mat, w_mat)
        return self._prove_spartan(x_mat, w_mat)

    def _prove_groth16(self, x_mat, w_mat) -> MatmulProofBundle:
        keypair = self._ensure_groth16()
        z = self.circuit.packing_point()
        t0 = time.perf_counter()
        y = self.circuit.assign(x_mat, w_mat, z)
        proof = groth16.prove(
            keypair.pk,
            self._groth16_instance,
            self.circuit.cs.assignment(),
            self._rng,
        )
        prove_time = time.perf_counter() - t0
        return MatmulProofBundle(
            backend="groth16",
            strategy=self.strategy,
            shape=(self.a, self.n, self.b),
            y=y,
            proof=proof,
            z=z,
            commitment=b"",
            timings={"prove": prove_time, **self.timings},
        )

    def _prove_spartan(self, x_mat, w_mat) -> MatmulProofBundle:
        t0 = time.perf_counter()
        salt = secrets.token_bytes(16)
        commitment = (
            salt
            + hashlib.sha256(
                salt + _matrix_bytes(x_mat) + _matrix_bytes(w_mat)
            ).digest()
        )
        # Fix the packing point only after the inputs are bound.
        y_probe = [
            [
                sum(int(x_mat[i][k]) * int(w_mat[k][j]) for k in range(self.n))
                % R
                for j in range(self.b)
            ]
            for i in range(self.a)
        ]
        z = derive_z(
            self.circuit.circuit_id() + commitment + _matrix_bytes(y_probe)
        )
        y = self.circuit.assign(x_mat, w_mat, z)
        instance = self.circuit.cs.specialize(z)
        transcript = spartan.Transcript(b"zkvc-matmul")
        transcript.append_bytes(b"commitment", commitment)
        transcript.append_scalar(b"packing-z", z)
        proof = spartan.prove(
            instance, self.circuit.cs.assignment(), transcript
        )
        prove_time = time.perf_counter() - t0
        return MatmulProofBundle(
            backend="spartan",
            strategy=self.strategy,
            shape=(self.a, self.n, self.b),
            y=y,
            proof=proof,
            z=z,
            commitment=commitment,
            timings={"prove": prove_time},
        )

    # -- verification --------------------------------------------------------------
    def verify(self, bundle: MatmulProofBundle) -> bool:
        t0 = time.perf_counter()
        try:
            if bundle.backend == "groth16":
                keypair = self._ensure_groth16()
                ok = groth16.verify(
                    keypair.vk, bundle.public_inputs(), bundle.proof
                )
            else:
                expected_z = derive_z(
                    self.circuit.circuit_id()
                    + bundle.commitment
                    + _matrix_bytes(bundle.y)
                )
                if bundle.z != expected_z:
                    return False
                instance = self.circuit.cs.specialize(bundle.z)
                transcript = spartan.Transcript(b"zkvc-matmul")
                transcript.append_bytes(b"commitment", bundle.commitment)
                transcript.append_scalar(b"packing-z", bundle.z)
                ok = spartan.verify(
                    instance, bundle.public_inputs(), bundle.proof, transcript
                )
        finally:
            bundle.timings["verify"] = time.perf_counter() - t0
        return ok


def prove_matmul(
    x_mat,
    w_mat,
    strategy: str = "crpc_psq",
    backend: str = "groth16",
    prover: Optional[MatmulProver] = None,
):
    """One-shot convenience wrapper.  Returns ``(bundle, prover)`` so the
    prover (and its trusted setup) can be reused."""
    a, n, b = len(x_mat), len(x_mat[0]), len(w_mat[0])
    if len(w_mat) != n:
        raise ValueError("inner dimensions do not match")
    if prover is None:
        prover = MatmulProver(a, n, b, strategy=strategy, backend=backend)
    bundle = prover.prove(x_mat, w_mat)
    return bundle, prover


def verify_matmul(bundle: MatmulProofBundle, prover: MatmulProver) -> bool:
    return prover.verify(bundle)
