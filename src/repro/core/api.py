"""zkVC public API: prove and verify matrix multiplications.

Typical use::

    from repro.core import MatmulProver, MatmulVerifier

    prover = MatmulProver(a=4, n=8, b=4, strategy="crpc_psq",
                          backend="groth16")
    bundle = prover.prove(X, W)           # X: a*n ints, W: n*b ints
    assert prover.verify(bundle)

    # Detached verification: ship bytes, verify anywhere (another
    # instance, another process, another machine) without re-running
    # setup.
    blob = bundle.to_bytes()
    artifact = prover.export_verifier()
    verifier = MatmulVerifier.from_bytes(artifact)
    assert verifier.verify_bytes(blob)

Backends are looked up in the :mod:`repro.core.backends` registry:

* ``groth16`` — pairing-based, constant proof size (256 B), per-circuit
  trusted setup.  The CRPC packing point is fixed at setup (it is part of
  the circuit's public parameters, as in the paper's implementation).
  Keypairs are cached process-wide in the default
  :class:`~repro.core.artifacts.KeyStore`, so every prover/verifier of one
  circuit shares one key.
* ``spartan`` — transparent (no trusted setup).  The packing point is
  derived by Fiat–Shamir from a salted commitment to (X, W) and the claimed
  Y, so it is fixed only after the inputs are bound — the commit-then-prove
  ordering.

Soundness note (documented in DESIGN.md): binding the Spartan witness to
the input commitment is assumed, not enforced in-circuit, mirroring the
paper's setting where the model weights are committed once out-of-band.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..gadgets.matmul import STRATEGIES
from .artifacts import CircuitRegistry, KeyStore, default_keystore, default_registry
from .backends import backend_names, get_backend
from .bundle import MatmulProofBundle, matrix_bytes

# Backwards-compatible constant: the built-in backends, frozen at import.
# The registry is the source of truth — call ``backend_names()`` for a
# live view that includes backends registered after import.
BACKENDS = backend_names()

__all__ = [
    "BACKENDS",
    "MatmulProofBundle",
    "MatmulProver",
    "MatmulVerifier",
    "prove_matmul",
    "verify_matmul",
]

_matrix_bytes = matrix_bytes  # legacy name


class MatmulVerifier:
    """Stateless detached verifier — never triggers setup.

    Constructed from exactly the material a remote client holds: the
    public circuit identity ``(backend, strategy, shape)`` plus, for
    backends with trusted setup, an exported verifying key.  Spartan needs
    no key: the circuit description is rebuilt locally from the shape.
    """

    def __init__(
        self,
        a: int,
        n: int,
        b: int,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
        vk=None,
        registry: Optional[CircuitRegistry] = None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self._backend = get_backend(backend)
        if self._backend.requires_setup and vk is None:
            raise ValueError(
                f"backend {backend!r} needs an exported verifying key; "
                "use MatmulVerifier.from_bytes or pass vk="
            )
        self.a, self.n, self.b = a, n, b
        self.strategy = strategy
        self.backend = backend
        self.vk = vk
        self._registry = registry if registry is not None else default_registry()

    # -- construction from wire material ----------------------------------------
    @classmethod
    def from_bytes(
        cls, artifact: bytes, registry: Optional[CircuitRegistry] = None
    ) -> "MatmulVerifier":
        """Rebuild a verifier from :meth:`MatmulProver.export_verifier`
        output."""
        from .. import serialize

        backend_name, strategy, shape, vk_bytes = (
            serialize.verifier_artifact_from_bytes(artifact)
        )
        backend = get_backend(backend_name)
        vk = backend.import_vk(vk_bytes) if vk_bytes else None
        return cls(
            *shape,
            strategy=strategy,
            backend=backend_name,
            vk=vk,
            registry=registry,
        )

    @classmethod
    def for_circuit(
        cls,
        a: int,
        n: int,
        b: int,
        strategy: str,
        backend: str,
        keystore: Optional[KeyStore] = None,
        registry: Optional[CircuitRegistry] = None,
        create: bool = False,
        rng=None,
    ) -> "MatmulVerifier":
        """Build a verifier whose key material comes from a KeyStore.

        With the default ``create=False`` a missing Groth16 keypair raises
        ``KeyError`` — a freshly fabricated key could only reject valid
        proofs.  ``create=True`` is for provers vetting their own circuit.
        """
        keystore = keystore if keystore is not None else default_keystore()
        vk = None
        if get_backend(backend).requires_setup:
            vk = keystore.artifacts(
                a, n, b, strategy, backend, rng=rng, create=create
            ).keypair.vk
        return cls(
            a, n, b, strategy=strategy, backend=backend, vk=vk, registry=registry
        )

    # -- verification -------------------------------------------------------------
    def _matches(self, bundle: MatmulProofBundle) -> bool:
        return (
            bundle.backend == self.backend
            and bundle.strategy == self.strategy
            and tuple(bundle.shape) == (self.a, self.n, self.b)
        )

    def _circuit(self):
        return self._registry.get(self.a, self.n, self.b, self.strategy)

    def verify(self, bundle: MatmulProofBundle) -> bool:
        t0 = time.perf_counter()
        try:
            if not self._matches(bundle):
                return False
            kwargs = {}
            if self._backend.requires_setup:
                kwargs["vk"] = self.vk
            else:
                kwargs["circuit"] = self._circuit()
            return self._backend.verify(bundle, **kwargs)
        finally:
            bundle.timings["verify"] = time.perf_counter() - t0

    def verify_bytes(self, blob: bytes) -> bool:
        """Deserialize and verify a wire-format bundle.

        Malformed wire input is a verification failure, not an exception:
        untrusted bytes must never crash a serving loop
        (``SerializationError`` subclasses ``ValueError``)."""
        try:
            bundle = MatmulProofBundle.from_bytes(blob)
        except ValueError:
            return False
        return self.verify(bundle)

    def verify_batch(self, bundles: Sequence[MatmulProofBundle]) -> bool:
        """Check many bundles at once.

        Groth16 bundles share this verifier's key, so they route through
        the small-exponent batch check (k+3 Miller loops instead of 4k);
        other backends fall back to per-bundle verification.
        """
        if not bundles:
            return True
        if any(not self._matches(b) for b in bundles):
            return False
        batcher = getattr(self._backend, "batch_verify", None)
        if batcher is not None and self._backend.requires_setup:
            t0 = time.perf_counter()
            ok = batcher(self.vk, bundles)
            per = (time.perf_counter() - t0) / len(bundles)
            for b in bundles:
                b.timings["verify"] = per
            return ok
        return all(self.verify(b) for b in bundles)


class MatmulProver:
    """Builds the circuit once per (shape, strategy, backend) and proves
    arbitrarily many instances against it.

    Circuits and setup artifacts live in the process-wide
    :class:`~repro.core.artifacts.CircuitRegistry` / ``KeyStore`` by
    default, so two provers of the same circuit share one keypair and
    their proofs verify across instances.  Pass explicit ``registry`` /
    ``keystore`` objects to isolate state (tests) or persist it (servers).
    """

    def __init__(
        self,
        a: int,
        n: int,
        b: int,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
        rng=None,
        registry: Optional[CircuitRegistry] = None,
        keystore: Optional[KeyStore] = None,
    ):
        self._backend = get_backend(backend)
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.a, self.n, self.b = a, n, b
        self.strategy = strategy
        self.backend = backend
        self._rng = rng
        self._registry = registry if registry is not None else default_registry()
        self._keystore = keystore if keystore is not None else default_keystore()
        self.circuit = self._registry.get(a, n, b, strategy)
        self._lock = self._registry.lock_for(a, n, b, strategy)
        self.timings = {}

    # -- artifacts ---------------------------------------------------------------
    def _artifacts(self, create: bool = True):
        key = (self.a, self.n, self.b, self.strategy, self.backend)
        artifacts = self._keystore.artifacts(*key, rng=self._rng, create=create)
        setup_s = self._keystore.setup_seconds(*key)
        if setup_s is not None:
            self.timings["setup"] = setup_s
        return artifacts

    def export_verifier(self) -> bytes:
        """Everything a detached verifier needs, as bytes (runs setup
        first if this circuit has never been set up)."""
        from .. import serialize

        vk_bytes = b""
        if self._backend.requires_setup:
            vk_bytes = self._backend.export_vk(self._artifacts())
        return serialize.verifier_artifact_to_bytes(
            self.backend, self.strategy, (self.a, self.n, self.b), vk_bytes
        )

    def verifier(self) -> MatmulVerifier:
        """A detached verifier for this prover's circuit (runs setup first
        if this circuit has never been set up)."""
        if self._backend.requires_setup:
            self._artifacts()  # ensure they exist; records setup timing
        return MatmulVerifier.for_circuit(
            self.a,
            self.n,
            self.b,
            strategy=self.strategy,
            backend=self.backend,
            keystore=self._keystore,
            registry=self._registry,
        )

    # -- proving -----------------------------------------------------------------
    def prove(self, x_mat, w_mat) -> MatmulProofBundle:
        artifacts = self._artifacts()
        with self._lock:
            bundle = self._backend.prove(
                self.circuit, artifacts, x_mat, w_mat, self._rng
            )
        bundle.timings.update(self.timings)
        return bundle

    # -- verification --------------------------------------------------------------
    def verify(self, bundle: MatmulProofBundle) -> bool:
        """Convenience in-process check; dispatches on the *bundle's*
        backend so a prover can vet foreign bundles of its shape.

        Raises ``KeyError`` if the bundle's backend needs a verifying key
        the keystore does not hold — a freshly generated keypair could
        only reject valid proofs (the seed-code bug this layer removes).
        """
        verifier = MatmulVerifier.for_circuit(
            self.a,
            self.n,
            self.b,
            strategy=self.strategy,
            backend=bundle.backend,
            keystore=self._keystore,
            registry=self._registry,
        )
        return verifier.verify(bundle)


def prove_matmul(
    x_mat,
    w_mat,
    strategy: str = "crpc_psq",
    backend: str = "groth16",
    prover: Optional[MatmulProver] = None,
):
    """One-shot convenience wrapper.  Returns ``(bundle, prover)`` so the
    prover (and its trusted setup) can be reused."""
    a, n, b = len(x_mat), len(x_mat[0]), len(w_mat[0])
    if len(w_mat) != n:
        raise ValueError("inner dimensions do not match")
    if prover is None:
        prover = MatmulProver(a, n, b, strategy=strategy, backend=backend)
    bundle = prover.prove(x_mat, w_mat)
    return bundle, prover


def verify_matmul(bundle: MatmulProofBundle, prover: MatmulProver) -> bool:
    return prover.verify(bundle)
