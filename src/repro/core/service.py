"""Batched proof serving.

A :class:`ProvingService` accepts prove jobs (concrete ``X @ W`` instances
tagged with strategy/backend), groups them by circuit key so each group
pays trusted setup, circuit construction, and fixed-base table warm-up
exactly once, executes groups on a worker pool, and hands back wire-format
bundles plus throughput statistics.  Verification of a served batch goes
through the detached :class:`~repro.core.api.MatmulVerifier`; same-key
Groth16 bundles use the small-exponent batch check.

Three executor strategies are available (``executor=``):

* ``"serial"`` — every group in the calling thread, in order;
* ``"thread"`` — groups overlap on a thread pool (GIL-bound: mainly
  overlaps waiting, the PR-2 default);
* ``"process"`` — groups (sharded by :class:`~repro.core.pool.
  GroupChunkPolicy`) run on worker *processes* that rehydrate keys from
  the KeyStore's disk root and return wire-format bundles — the
  multi-core path.  Groups too small to amortise the process hop, and
  Groth16 groups when the keystore has no disk root to rehydrate from,
  stay in-process (``ServiceReport.placements`` records the decision).

This is the layer the ROADMAP's scaling PRs (async dispatch, remote
workers) build on: jobs are already data, results are already bytes.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import serialize
from ..gadgets.matmul import STRATEGIES
from .api import MatmulProver, MatmulVerifier
from .artifacts import CircuitRegistry, KeyStore, default_keystore, default_registry
from .backends import get_backend
from .bundle import MatmulProofBundle
from .pool import GroupChunkPolicy, ProcessProvingExecutor

CircuitKeyT = Tuple[int, int, int, str, str]  # (a, n, b, strategy, backend)

EXECUTORS = ("serial", "thread", "process")


@dataclass
class ProveJob:
    """One matmul instance awaiting proof."""

    job_id: int
    x: list
    w: list
    strategy: str = "crpc_psq"
    backend: str = "groth16"

    def circuit_key(self) -> CircuitKeyT:
        if not self.x or not self.x[0] or not self.w or not self.w[0]:
            raise ValueError(f"job {self.job_id}: empty matrix")
        a, n, b = len(self.x), len(self.x[0]), len(self.w[0])
        if len(self.w) != n:
            raise ValueError(f"job {self.job_id}: inner dimensions mismatch")
        if any(len(row) != n for row in self.x) or any(
            len(row) != b for row in self.w
        ):
            raise ValueError(f"job {self.job_id}: ragged matrix")
        return (a, n, b, self.strategy, self.backend)


@dataclass
class JobResult:
    """A served proof: the bundle both live and as wire bytes."""

    job_id: int
    circuit_key: CircuitKeyT
    bundle: MatmulProofBundle
    bundle_bytes: bytes
    prove_seconds: float


@dataclass
class ServiceReport:
    """What one :meth:`ProvingService.run` drained, and how fast."""

    results: List[JobResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    setup_seconds: float = 0.0
    groups: Dict[CircuitKeyT, int] = field(default_factory=dict)
    #: circuit groups whose proving raised, with the error message; their
    #: jobs produced no results but never take down the other groups
    errors: Dict[CircuitKeyT, str] = field(default_factory=dict)
    #: jobs rejected before grouping (malformed shapes), by job id
    invalid_jobs: Dict[int, str] = field(default_factory=dict)
    #: where each group actually ran: ``"inline"`` (calling process) or
    #: ``"process"`` (pool workers) — only populated by the process
    #: executor, where the chunk policy makes a per-group decision
    placements: Dict[CircuitKeyT, str] = field(default_factory=dict)
    #: True only if *every* job produced a bundle and every bundle
    #: verified — a batch with errors or invalid jobs is never "verified"
    verified: Optional[bool] = None

    @property
    def proofs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.results) / self.wall_seconds

    def bundles(self) -> List[MatmulProofBundle]:
        return [r.bundle for r in self.results]


class ProvingService:
    """Groups prove jobs by circuit and serves them through shared
    artifacts.

    ``workers`` bounds the pool over *groups* (and, for the process
    executor, over group *chunks*) — a circuit's witness assignment is
    stateful, so jobs within a chunk run sequentially while distinct
    circuits (or shards of one circuit, each with its own worker-local
    circuit instance) overlap.  ``executor`` picks the strategy: see the
    module docstring.  The process executor ignores ``rng`` — workers use
    their own entropy, so deterministic-rng tests should stay on
    ``"serial"``/``"thread"``.
    """

    def __init__(
        self,
        workers: int = 4,
        registry: Optional[CircuitRegistry] = None,
        keystore: Optional[KeyStore] = None,
        rng=None,
        executor: str = "thread",
        start_method: Optional[str] = None,
        chunk_policy: Optional[GroupChunkPolicy] = None,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.workers = max(1, workers)
        self.executor = executor
        self.registry = registry if registry is not None else default_registry()
        self.keystore = keystore if keystore is not None else default_keystore()
        self._rng = rng
        self._queue: List[ProveJob] = []
        self._next_id = 0
        self._provers: Dict[CircuitKeyT, MatmulProver] = {}
        self._chunk_policy = (
            chunk_policy
            if chunk_policy is not None
            else GroupChunkPolicy(workers=self.workers)
        )
        self._pool: Optional[ProcessProvingExecutor] = None
        if executor == "process":
            self._pool = ProcessProvingExecutor(
                workers=self.workers,
                keystore_root=self.keystore.root,
                start_method=start_method,
            )

    # -- job intake --------------------------------------------------------------
    def submit(
        self,
        x,
        w,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
    ) -> int:
        """Queue one instance; returns its job id.

        Shape, strategy, and backend are validated here so a bad job is
        rejected at intake instead of failing a whole batch in a worker."""
        get_backend(backend)  # raises ValueError on unknown name
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        job = ProveJob(
            job_id=self._next_id, x=x, w=w, strategy=strategy, backend=backend
        )
        job.circuit_key()  # validate shape early
        self._next_id += 1
        self._queue.append(job)
        return job.job_id

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- execution ---------------------------------------------------------------
    def _prover_for(self, key: CircuitKeyT) -> MatmulProver:
        prover = self._provers.get(key)
        if prover is None:
            a, n, b, strategy, backend = key
            prover = MatmulProver(
                a,
                n,
                b,
                strategy=strategy,
                backend=backend,
                rng=self._rng,
                registry=self.registry,
                keystore=self.keystore,
            )
            self._provers[key] = prover
        return prover

    def _serve_group_safe(self, key: CircuitKeyT, jobs: Sequence[ProveJob]):
        """One group's results, or its error — a poisoned group (e.g.
        non-integer matrix entries that pass shape checks) must not lose
        every other group's finished proofs."""
        try:
            return key, self._serve_group(key, jobs), None
        except Exception as exc:  # noqa: BLE001 — reported, not swallowed
            return key, [], f"{type(exc).__name__}: {exc}"

    def _serve_group(
        self, key: CircuitKeyT, jobs: Sequence[ProveJob]
    ) -> List[JobResult]:
        prover = self._prover_for(key)
        # Pay setup / circuit warm-up before the per-job timers start, so
        # the first job's prove_seconds is not a setup-sized outlier
        # (setup cost is reported once in ServiceReport.setup_seconds).
        prover._artifacts()
        results = []
        for job in jobs:
            t0 = time.perf_counter()
            bundle = prover.prove(job.x, job.w)
            results.append(
                JobResult(
                    job_id=job.job_id,
                    circuit_key=key,
                    bundle=bundle,
                    bundle_bytes=bundle.to_bytes(),
                    prove_seconds=time.perf_counter() - t0,
                )
            )
        return results

    def _serve_groups_process(
        self, groups: Dict[CircuitKeyT, List[ProveJob]], report: ServiceReport
    ):
        """Dispatch groups to the process pool, sharding large ones.

        Returns the same ``(key, results, error)`` outcome triples the
        in-process paths produce.  Groups the chunk policy deems too
        small for a process hop — and Groth16 groups with no disk root
        for workers to rehydrate keys from — are served inline.
        """
        tasks: List[Tuple[Tuple[CircuitKeyT, int], bytes]] = []
        outcomes = []
        inline: List[Tuple[CircuitKeyT, List[ProveJob]]] = []
        dispatched: List[CircuitKeyT] = []
        for key, jobs in groups.items():
            backend = get_backend(key[4])
            can_dispatch = self.keystore.root is not None or not backend.requires_setup
            n_chunks = (
                self._chunk_policy.plan(key, len(jobs)) if can_dispatch else 0
            )
            if n_chunks <= 0:
                report.placements[key] = "inline"
                inline.append((key, jobs))
                continue
            try:
                # Workers open the keystore read-only: the parent must
                # publish setup artifacts to disk before dispatching.
                if backend.requires_setup:
                    self._prover_for(key)._artifacts()
                blobs = [
                    serialize.prove_jobs_to_bytes(
                        [(j.job_id, j.x, j.w, j.strategy, j.backend) for j in chunk]
                    )
                    for chunk in GroupChunkPolicy.chunk(jobs, n_chunks)
                ]
            except Exception as exc:  # noqa: BLE001 — poisoned group, isolated
                outcomes.append((key, [], f"{type(exc).__name__}: {exc}"))
                continue
            report.placements[key] = "process"
            dispatched.append(key)
            tasks.extend(((key, ci), blob) for ci, blob in enumerate(blobs))
        # Submit chunks before serving inline groups: the workers prove
        # concurrently while the parent handles the inline tail, instead
        # of the inline groups being dead serial time before the pool
        # even starts.
        futures = self._pool.start(tasks) if tasks else None
        outcomes.extend(self._serve_group_safe(key, jobs) for key, jobs in inline)
        if futures is not None:
            pool_outcome = self._pool.finish(tasks, futures)
            merged: Dict[CircuitKeyT, List[JobResult]] = {k: [] for k in dispatched}
            errors: Dict[CircuitKeyT, List[str]] = {}
            for (key, _ci), triples in pool_outcome.results.items():
                for job_id, bundle_bytes, prove_s in triples:
                    merged[key].append(
                        JobResult(
                            job_id=job_id,
                            circuit_key=key,
                            bundle=MatmulProofBundle.from_bytes(bundle_bytes),
                            bundle_bytes=bundle_bytes,
                            prove_seconds=prove_s,
                        )
                    )
            for (key, _ci), msg in pool_outcome.errors.items():
                errors.setdefault(key, []).append(msg)
            for key in dispatched:
                if key in errors:
                    # An errored group yields no results, even if some of
                    # its chunks survived — ServiceReport.errors documents
                    # that invariant and the inline path honours it, so a
                    # partially-failed sharded group must not differ.
                    outcomes.append((key, [], "; ".join(errors[key])))
                else:
                    outcomes.append((key, merged[key], None))
        return outcomes

    def run(self, verify: bool = False) -> ServiceReport:
        """Drain the queue: group, prove, serialize — and optionally check
        every served bundle through detached verifiers before returning."""
        jobs, self._queue = self._queue, []
        return self.prove_batch(jobs, verify=verify)

    def prove_batch(
        self, jobs: Sequence[ProveJob], verify: bool = False
    ) -> ServiceReport:
        t0 = time.perf_counter()
        groups: Dict[CircuitKeyT, List[ProveJob]] = {}
        invalid: Dict[int, str] = {}
        for job in jobs:
            # A malformed job (possible when callers build ProveJob
            # directly, or mutate matrices after submit) is reported, not
            # allowed to sink the whole batch.
            try:
                key = job.circuit_key()
            except ValueError as exc:
                invalid[job.job_id] = str(exc)
                continue
            groups.setdefault(key, []).append(job)
        # Setup cost already paid in earlier batches is amortised, not
        # re-billed: only setups that run during *this* batch count.
        already_setup = {
            key for key in groups if self.keystore.setup_seconds(*key) is not None
        }

        report = ServiceReport(
            groups={k: len(v) for k, v in groups.items()},
            invalid_jobs=invalid,
        )
        if groups:
            if self.executor == "process":
                outcomes = self._serve_groups_process(groups, report)
            elif (
                self.executor == "serial"
                or self.workers == 1
                or len(groups) == 1
            ):
                outcomes = [self._serve_group_safe(k, v) for k, v in groups.items()]
            else:
                with ThreadPoolExecutor(
                    max_workers=min(self.workers, len(groups))
                ) as pool:
                    outcomes = list(
                        pool.map(
                            lambda kv: self._serve_group_safe(*kv),
                            groups.items(),
                        )
                    )
            for key, batch, error in outcomes:
                report.results.extend(batch)
                if error is not None:
                    report.errors[key] = error
        report.results.sort(key=lambda r: r.job_id)
        report.setup_seconds = sum(
            s
            for key in groups
            if key not in already_setup
            and (s := self.keystore.setup_seconds(*key)) is not None
        )
        report.wall_seconds = time.perf_counter() - t0
        if verify:
            report.verified = (
                not report.errors
                and not report.invalid_jobs
                and self.verify_report(report)
            )
        return report

    def close(self) -> None:
        """Release the worker pool (process executor only).

        The pool is kept alive across batches so workers retain their
        circuit/keypair/table caches; long-lived services that are done
        proving call this to reap the worker processes (interpreter exit
        reaps them regardless)."""
        if self._pool is not None:
            self._pool.shutdown()

    # -- verification -------------------------------------------------------------
    def verify_report(self, report: ServiceReport) -> bool:
        """Detached-verify every bundle in a report, batching per group."""
        by_key: Dict[CircuitKeyT, List[MatmulProofBundle]] = {}
        for r in report.results:
            by_key.setdefault(r.circuit_key, []).append(r.bundle)
        for key, bundles in by_key.items():
            if not self.verifier_for(key).verify_batch(bundles):
                return False
        return True

    def verifier_for(self, key: CircuitKeyT) -> MatmulVerifier:
        return self._prover_for(key).verifier()

    def export_verifier(self, key: CircuitKeyT) -> bytes:
        """Wire-format verifier artifact for one served circuit."""
        return self._prover_for(key).export_verifier()
