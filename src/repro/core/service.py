"""Batched proof serving.

A :class:`ProvingService` accepts prove jobs (concrete ``X @ W`` instances
tagged with strategy/backend), groups them by circuit key so each group
pays trusted setup, circuit construction, and fixed-base table warm-up
exactly once, executes groups on a worker pool, and hands back wire-format
bundles plus throughput statistics.  Verification of a served batch goes
through the detached :class:`~repro.core.api.MatmulVerifier`; same-key
Groth16 bundles use the small-exponent batch check.

Four executor strategies are available (``executor=``):

* ``"serial"`` — every group in the calling thread, in order;
* ``"thread"`` — groups overlap on a thread pool (GIL-bound: mainly
  overlaps waiting, the PR-2 default);
* ``"process"`` — groups (sharded by :class:`~repro.core.pool.
  GroupChunkPolicy`) run on worker *processes* that rehydrate keys from
  the KeyStore's disk root and return wire-format bundles — the
  multi-core path.  Groups too small to amortise the process hop, and
  Groth16 groups when the keystore has no disk root to rehydrate from,
  stay in-process (``ServiceReport.placements`` records the decision);
* ``"remote"`` — the same chunks dispatched over TCP to a fleet of
  worker *hosts* (:class:`~repro.core.remote.RemoteProvingExecutor`),
  addressed via ``remote_workers=`` or the ``REPRO_REMOTE_WORKERS``
  environment variable (``host:port,host:port``).  Workers rehydrate
  keys from their own KeyStore or request them over the wire, and the
  chunk policy's placement decisions follow the registry's live worker
  count — the multi-box path.

Failure semantics (details in DESIGN.md "Failure semantics"): every
failure is classified into the typed taxonomy of
:mod:`repro.core.errors`; transient failures are retried under the
service's :class:`~repro.core.resilience.RetryPolicy` (deterministic
backoff, per-chunk lease deadlines on the process and remote tiers);
jobs that fail persistently are bisected down and *quarantined* so the
rest of their batch still proves; chunk-fatal pool failures fall back to
inline serving of only the missing jobs; and a service whose pool keeps
breaking degrades down the executor ladder
(remote → process → thread → serial).
Per-job outcomes — status, attempts, error — are reported in
``ServiceReport.job_outcomes``; ladder and fallback events in
``ServiceReport.fallbacks``.

This is the layer the ROADMAP's scaling PRs (async dispatch, remote
workers) build on: jobs are already data, results are already bytes.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import serialize
from ..gadgets.matmul import STRATEGIES
from . import faultinject
from .api import MatmulProver, MatmulVerifier
from .artifacts import CircuitRegistry, KeyStore, default_keystore, default_registry
from .backends import get_backend
from .bundle import MatmulProofBundle
from .errors import ProvingError, wrap_error
from .pool import GroupChunkPolicy, ProcessProvingExecutor
from .remote import RemoteProvingExecutor
from .resilience import RetryPolicy

CircuitKeyT = Tuple[int, int, int, str, str]  # (a, n, b, strategy, backend)

EXECUTORS = ("serial", "thread", "process", "remote")

#: comma-separated ``host:port`` fleet for ``executor="remote"`` when no
#: explicit ``remote_workers`` is passed
REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"


@dataclass
class ProveJob:
    """One matmul instance awaiting proof."""

    job_id: int
    x: list
    w: list
    strategy: str = "crpc_psq"
    backend: str = "groth16"

    def circuit_key(self) -> CircuitKeyT:
        if not self.x or not self.x[0] or not self.w or not self.w[0]:
            raise ValueError(f"job {self.job_id}: empty matrix")
        a, n, b = len(self.x), len(self.x[0]), len(self.w[0])
        if len(self.w) != n:
            raise ValueError(f"job {self.job_id}: inner dimensions mismatch")
        if any(len(row) != n for row in self.x) or any(
            len(row) != b for row in self.w
        ):
            raise ValueError(f"job {self.job_id}: ragged matrix")
        return (a, n, b, self.strategy, self.backend)


@dataclass
class JobResult:
    """A served proof: the bundle both live and as wire bytes."""

    job_id: int
    circuit_key: CircuitKeyT
    bundle: MatmulProofBundle
    bundle_bytes: bytes
    prove_seconds: float


@dataclass
class JobOutcome:
    """Per-job disposition record — every job in a batch gets exactly one.

    ``status`` is ``"ok"`` (proof served), ``"failed"`` (no proof; the
    error may be environmental and a resubmit may succeed),
    ``"quarantined"`` (the job itself is poisonous — it failed
    persistently and in isolation; resubmitting it verbatim will fail
    again), or ``"invalid"`` (rejected before grouping).  ``attempts``
    counts prove dispatches charged to the job's chunk or to the job
    itself, whichever is larger.
    """

    job_id: int
    circuit_key: Optional[CircuitKeyT]
    status: str
    attempts: int = 1
    error: Optional[str] = None


@dataclass
class ServiceReport:
    """What one :meth:`ProvingService.run` drained, and how fast."""

    results: List[JobResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    setup_seconds: float = 0.0
    groups: Dict[CircuitKeyT, int] = field(default_factory=dict)
    #: circuit groups that failed *as a group* (setup raised, or process
    #: chunks died unrecoverably with fallback disabled), with the error
    #: message; a group error never takes down the other groups, and a
    #: partially-served group keeps the results it did produce
    errors: Dict[CircuitKeyT, str] = field(default_factory=dict)
    #: jobs rejected before grouping (malformed shapes), by job id
    invalid_jobs: Dict[int, str] = field(default_factory=dict)
    #: where each group actually ran: ``"inline"`` (calling process),
    #: ``"process"`` (pool workers), or ``"process+inline"`` (chunk-fatal
    #: process errors re-served inline) — populated by the process
    #: executor, where the chunk policy makes a per-group decision
    placements: Dict[CircuitKeyT, str] = field(default_factory=dict)
    #: one record per job: status ok/failed/quarantined/invalid, attempt
    #: count, and the (typed, stringified) error if any
    job_outcomes: Dict[int, JobOutcome] = field(default_factory=dict)
    #: degradation events, oldest first: inline re-serves of failed
    #: chunks, the process → thread executor flip, thread → serial
    fallbacks: List[str] = field(default_factory=list)
    #: True only if *every* job produced a bundle and every bundle
    #: verified — a batch with errors, invalid jobs, or failed/quarantined
    #: jobs is never "verified"
    verified: Optional[bool] = None

    @property
    def proofs_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.results) / self.wall_seconds

    def bundles(self) -> List[MatmulProofBundle]:
        return [r.bundle for r in self.results]

    def quarantined(self) -> List[JobOutcome]:
        """The poison jobs this batch isolated (assertion helper)."""
        return [
            o for o in self.job_outcomes.values() if o.status == "quarantined"
        ]


class ProvingService:
    """Groups prove jobs by circuit and serves them through shared
    artifacts.

    ``workers`` bounds the pool over *groups* (and, for the process
    executor, over group *chunks*) — a circuit's witness assignment is
    stateful, so jobs within a chunk run sequentially while distinct
    circuits (or shards of one circuit, each with its own worker-local
    circuit instance) overlap.  ``executor`` picks the strategy: see the
    module docstring.  The process executor ignores ``rng`` — workers use
    their own entropy, so deterministic-rng tests should stay on
    ``"serial"``/``"thread"``.

    ``retry_policy`` tunes the fault-tolerance layer (attempts, backoff,
    chunk leases, bisection, the pool-breakage budget); ``fallback=False``
    disables the degradation ladder — chunk-fatal process errors are then
    reported instead of re-served inline, and the executor never flips
    tiers (useful when callers want failures loud).
    """

    def __init__(
        self,
        workers: int = 4,
        registry: Optional[CircuitRegistry] = None,
        keystore: Optional[KeyStore] = None,
        rng=None,
        executor: str = "thread",
        start_method: Optional[str] = None,
        chunk_policy: Optional[GroupChunkPolicy] = None,
        retry_policy: Optional[RetryPolicy] = None,
        fallback: bool = True,
        remote_workers: Optional[Sequence] = None,
        heartbeat_seconds: float = 0.0,
    ):
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.workers = max(1, workers)
        self.executor = executor
        self.registry = registry if registry is not None else default_registry()
        self.keystore = keystore if keystore is not None else default_keystore()
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.fallback = fallback
        self._rng = rng
        self._start_method = start_method
        self._queue: List[ProveJob] = []
        self._next_id = 0
        self._provers: Dict[CircuitKeyT, MatmulProver] = {}
        self._chunk_policy = (
            chunk_policy
            if chunk_policy is not None
            else GroupChunkPolicy(workers=self.workers)
        )
        self._pool: Optional[ProcessProvingExecutor] = None
        self._remote: Optional[RemoteProvingExecutor] = None
        if executor == "process":
            self._pool = self._build_process_pool()
        elif executor == "remote":
            if remote_workers is None:
                env_fleet = os.environ.get(REMOTE_WORKERS_ENV, "")
                remote_workers = [a for a in env_fleet.split(",") if a.strip()]
            if not remote_workers:
                raise ValueError(
                    "executor='remote' needs remote_workers= "
                    f"(or {REMOTE_WORKERS_ENV}=host:port,...)"
                )
            self._remote = RemoteProvingExecutor(
                remote_workers,
                retry_policy=self.retry_policy,
                key_provider=self._key_bytes_for,
                heartbeat_seconds=heartbeat_seconds,
            )

    def _build_process_pool(self) -> ProcessProvingExecutor:
        return ProcessProvingExecutor(
            workers=self.workers,
            keystore_root=self.keystore.root,
            start_method=self._start_method,
            retry_policy=self.retry_policy,
        )

    def _key_bytes_for(
        self, shape: Tuple[int, int, int], strategy: str, backend_name: str
    ) -> bytes:
        """Serialized setup artifacts for a remote worker's KEY_REQUEST.

        ``create=False``: the dispatch path materialises artifacts before
        submitting chunks, so a request for a key this service never set
        up is answered empty (the worker then fails with MissingKey)
        instead of minting a fresh — unverifiable — keypair mid-batch.
        """
        backend = get_backend(backend_name)
        if not backend.requires_setup:
            return b""
        a, n, b = shape
        try:
            artifacts = self.keystore.artifacts(
                a, n, b, strategy, backend_name, create=False
            )
        except KeyError:
            return b""
        return backend.artifacts_to_bytes(artifacts)

    # -- job intake --------------------------------------------------------------
    def submit(
        self,
        x,
        w,
        strategy: str = "crpc_psq",
        backend: str = "groth16",
    ) -> int:
        """Queue one instance; returns its job id.

        Shape, strategy, and backend are validated here so a bad job is
        rejected at intake instead of failing a whole batch in a worker."""
        get_backend(backend)  # raises ValueError on unknown name
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        job = ProveJob(
            job_id=self._next_id, x=x, w=w, strategy=strategy, backend=backend
        )
        job.circuit_key()  # validate shape early
        self._next_id += 1
        self._queue.append(job)
        return job.job_id

    @property
    def pending(self) -> int:
        return len(self._queue)

    # -- execution ---------------------------------------------------------------
    def _prover_for(self, key: CircuitKeyT) -> MatmulProver:
        prover = self._provers.get(key)
        if prover is None:
            a, n, b, strategy, backend = key
            prover = MatmulProver(
                a,
                n,
                b,
                strategy=strategy,
                backend=backend,
                rng=self._rng,
                registry=self.registry,
                keystore=self.keystore,
            )
            self._provers[key] = prover
        return prover

    def _serve_group_safe(self, key: CircuitKeyT, jobs: Sequence[ProveJob]):
        """One group's ``(key, results, job_records, error)`` — a poisoned
        group (e.g. a setup failure) must not lose every other group's
        finished proofs, so group-level exceptions are reported, not
        raised."""
        try:
            results, records = self._serve_group(key, jobs)
            return key, results, records, None
        except Exception as exc:  # noqa: BLE001 — reported, not swallowed
            return key, [], {}, f"{type(exc).__name__}: {exc}"

    def _serve_group(
        self, key: CircuitKeyT, jobs: Sequence[ProveJob]
    ) -> Tuple[List[JobResult], Dict[int, JobOutcome]]:
        """Serve one group in-process, one job at a time, each under the
        retry policy.  A job that exhausts its retries is recorded —
        quarantined if its error class is isolatable, failed otherwise —
        and the rest of the group still proves."""
        prover = self._prover_for(key)
        # Pay setup / circuit warm-up before the per-job timers start, so
        # the first job's prove_seconds is not a setup-sized outlier
        # (setup cost is reported once in ServiceReport.setup_seconds).
        prover._artifacts()
        policy = self.retry_policy
        plan = faultinject.active_plan()
        results: List[JobResult] = []
        records: Dict[int, JobOutcome] = {}
        for job in jobs:
            attempts = 0
            while True:
                attempts += 1
                t0 = time.perf_counter()
                try:
                    if plan is not None:
                        plan.fire_inline(job.job_id, job.strategy, tier="inline")
                    bundle = prover.prove(job.x, job.w)
                except Exception as exc:  # noqa: BLE001 — classified below
                    err = (
                        exc
                        if isinstance(exc, ProvingError)
                        else wrap_error(exc, job_id=job.job_id)
                    )
                    err.attempts = attempts
                    if policy.is_retryable(err) and attempts < policy.max_attempts:
                        time.sleep(
                            policy.backoff_seconds((key, job.job_id), attempts)
                        )
                        continue
                    records[job.job_id] = JobOutcome(
                        job_id=job.job_id,
                        circuit_key=key,
                        status="quarantined" if err.isolate else "failed",
                        attempts=attempts,
                        error=str(err),
                    )
                    break
                results.append(
                    JobResult(
                        job_id=job.job_id,
                        circuit_key=key,
                        bundle=bundle,
                        bundle_bytes=bundle.to_bytes(),
                        prove_seconds=time.perf_counter() - t0,
                    )
                )
                records[job.job_id] = JobOutcome(
                    job_id=job.job_id,
                    circuit_key=key,
                    status="ok",
                    attempts=attempts,
                )
                break
        return results, records

    def _serve_groups_pool(
        self,
        groups: Dict[CircuitKeyT, List[ProveJob]],
        report: ServiceReport,
        pool,
        tier: str,
    ):
        """Dispatch groups to a chunk executor pool, sharding large ones.

        ``pool`` is either the process executor or the remote executor —
        both speak ``start``/``finish`` over ``(tag, jobs_blob)`` chunks
        and count ``breakages`` — and ``tier`` names the rung
        (``"process"``/``"remote"``) for placements and fallback records.

        Returns the same ``(key, results, records, error)`` outcome tuples
        the in-process paths produce.  Groups the chunk policy deems too
        small for a dispatch hop stay inline; so do Groth16 groups the
        process tier cannot key (no disk root) — the remote tier instead
        pushes keys over the wire, so it dispatches regardless, but only
        across the workers its registry currently believes live.  Each
        dispatched chunk carries a lease deadline derived from its
        predicted proving time; the executor retries, bisects, and
        quarantines per the retry policy, and whatever still fails as a
        chunk is re-served inline here (``fallback=True``).
        """
        tasks: List[Tuple[Tuple[CircuitKeyT, int], bytes]] = []
        timeouts: Dict[Tuple[CircuitKeyT, int], float] = {}
        outcomes = []
        inline: List[Tuple[CircuitKeyT, List[ProveJob]]] = []
        dispatched: List[CircuitKeyT] = []
        live_workers = None
        if tier == "remote":
            # Breaker-aware: a reachable worker whose circuit is open is
            # not a dispatch target, so chunk fan-out must not count it.
            live_workers = pool.registry.placeable_count()
        for key, jobs in groups.items():
            backend = get_backend(key[4])
            can_dispatch = (
                tier == "remote"
                or self.keystore.root is not None
                or not backend.requires_setup
            )
            n_chunks = (
                self._chunk_policy.plan(key, len(jobs), workers=live_workers)
                if can_dispatch
                else 0
            )
            if n_chunks <= 0:
                report.placements[key] = "inline"
                inline.append((key, jobs))
                continue
            try:
                # Workers never mint keys: the parent materialises setup
                # artifacts first — published to the disk root for process
                # workers to rehydrate, held in memory to answer remote
                # workers' KEY_REQUESTs.
                if backend.requires_setup:
                    self._prover_for(key)._artifacts()
                blobs = [
                    serialize.prove_jobs_to_bytes(
                        [(j.job_id, j.x, j.w, j.strategy, j.backend) for j in chunk]
                    )
                    for chunk in GroupChunkPolicy.chunk(jobs, n_chunks)
                ]
            except Exception as exc:  # noqa: BLE001 — poisoned group, isolated
                outcomes.append((key, [], {}, f"{type(exc).__name__}: {exc}"))
                continue
            report.placements[key] = tier
            dispatched.append(key)
            job_seconds = self._chunk_policy.job_seconds(key)
            per_chunk = max(1, -(-len(jobs) // len(blobs)))
            lease = self.retry_policy.lease_seconds(job_seconds, per_chunk)
            for ci, blob in enumerate(blobs):
                tag = (key, ci)
                tasks.append((tag, blob))
                if lease is not None:
                    timeouts[tag] = lease
        # Submit chunks before serving inline groups: the workers prove
        # concurrently while the parent handles the inline tail, instead
        # of the inline groups being dead serial time before the pool
        # even starts.
        futures = pool.start(tasks, timeouts) if tasks else None
        outcomes.extend(
            self._serve_group_safe(key, jobs) for key, jobs in inline
        )
        if futures is not None:
            pool_outcome = pool.finish(tasks, futures, timeouts)
            job_key = {
                j.job_id: key for key in dispatched for j in groups[key]
            }
            merged: Dict[CircuitKeyT, List[JobResult]] = {k: [] for k in dispatched}
            records: Dict[int, JobOutcome] = {}
            for (key, _ci), triples in pool_outcome.results.items():
                attempts = pool_outcome.attempts.get((key, _ci), 1)
                for job_id, bundle_bytes, prove_s in triples:
                    merged[key].append(
                        JobResult(
                            job_id=job_id,
                            circuit_key=key,
                            bundle=MatmulProofBundle.from_bytes(bundle_bytes),
                            bundle_bytes=bundle_bytes,
                            prove_seconds=prove_s,
                        )
                    )
                    records[job_id] = JobOutcome(
                        job_id=job_id,
                        circuit_key=key,
                        status="ok",
                        attempts=attempts,
                    )
            for poison in pool_outcome.quarantined:
                records[poison.job_id] = JobOutcome(
                    job_id=poison.job_id,
                    circuit_key=job_key.get(poison.job_id),
                    status="quarantined",
                    attempts=max(1, poison.attempts),
                    error=str(poison),
                )
            chunk_fatal: Dict[CircuitKeyT, List[ProvingError]] = {}
            for (key, _ci), err in pool_outcome.errors.items():
                chunk_fatal.setdefault(key, []).append(err)
            for key in dispatched:
                group_records = {
                    jid: rec
                    for jid, rec in records.items()
                    if job_key.get(jid) == key
                }
                error_msgs = [str(e) for e in chunk_fatal.get(key, [])]
                if error_msgs and self.fallback:
                    # Chunk-fatal process errors (e.g. MissingKey when the
                    # disk artifacts vanished) degrade to inline serving of
                    # only the jobs that have neither a proof nor a
                    # quarantine record — the parent may be able to do
                    # what the read-only workers could not.
                    done = set(group_records)
                    missing = [
                        j for j in groups[key] if j.job_id not in done
                    ]
                    kinds = ",".join(
                        sorted({e.kind for e in chunk_fatal[key]})
                    )
                    report.fallbacks.append(
                        f"group {key}: {tier}->inline after {kinds}"
                    )
                    report.placements[key] = f"{tier}+inline"
                    _, res, recs, err2 = self._serve_group_safe(key, missing)
                    merged[key].extend(res)
                    group_records.update(recs)
                    error_msgs = [] if err2 is None else error_msgs + [err2]
                outcomes.append(
                    (
                        key,
                        merged[key],
                        group_records,
                        "; ".join(error_msgs) if error_msgs else None,
                    )
                )
            if (
                self.fallback
                and pool.breakages >= self.retry_policy.max_pool_breakages
            ):
                # This tier keeps losing workers (crashes/hangs/dead
                # hosts): stop feeding it.  Future batches run one rung
                # down the ladder — remote → process → thread → serial.
                if tier == "remote":
                    report.fallbacks.append(
                        f"executor remote->process after "
                        f"{pool.breakages} fleet breakage(s)"
                    )
                    pool.shutdown()
                    self._remote = None
                    self.executor = "process"
                    if self._pool is None:
                        self._pool = self._build_process_pool()
                else:
                    report.fallbacks.append(
                        f"executor process->thread after "
                        f"{pool.breakages} pool breakage(s)"
                    )
                    pool.shutdown()
                    self._pool = None
                    self.executor = "thread"
        return outcomes

    def run(self, verify: bool = False) -> ServiceReport:
        """Drain the queue: group, prove, serialize — and optionally check
        every served bundle through detached verifiers before returning."""
        jobs, self._queue = self._queue, []
        return self.prove_batch(jobs, verify=verify)

    def prove_batch(
        self, jobs: Sequence[ProveJob], verify: bool = False
    ) -> ServiceReport:
        t0 = time.perf_counter()
        groups: Dict[CircuitKeyT, List[ProveJob]] = {}
        invalid: Dict[int, str] = {}
        for job in jobs:
            # A malformed job (possible when callers build ProveJob
            # directly, or mutate matrices after submit) is reported, not
            # allowed to sink the whole batch.
            try:
                key = job.circuit_key()
            except ValueError as exc:
                invalid[job.job_id] = str(exc)
                continue
            groups.setdefault(key, []).append(job)
        # Setup cost already paid in earlier batches is amortised, not
        # re-billed: only setups that run during *this* batch count.
        already_setup = {
            key for key in groups if self.keystore.setup_seconds(*key) is not None
        }

        report = ServiceReport(
            groups={k: len(v) for k, v in groups.items()},
            invalid_jobs=invalid,
        )
        for job_id, msg in invalid.items():
            report.job_outcomes[job_id] = JobOutcome(
                job_id=job_id,
                circuit_key=None,
                status="invalid",
                attempts=0,
                error=msg,
            )
        if groups:
            if self.executor == "remote" and self._remote is not None:
                outcomes = self._serve_groups_pool(
                    groups, report, self._remote, "remote"
                )
            elif self.executor == "process" and self._pool is not None:
                outcomes = self._serve_groups_pool(
                    groups, report, self._pool, "process"
                )
            elif (
                self.executor == "serial"
                or self.workers == 1
                or len(groups) == 1
            ):
                outcomes = [self._serve_group_safe(k, v) for k, v in groups.items()]
            else:
                try:
                    with ThreadPoolExecutor(
                        max_workers=min(self.workers, len(groups))
                    ) as pool:
                        outcomes = list(
                            pool.map(
                                lambda kv: self._serve_group_safe(*kv),
                                groups.items(),
                            )
                        )
                except (RuntimeError, OSError) as exc:
                    # Thread tier unavailable (cannot start threads):
                    # bottom rung of the ladder is plain serial serving.
                    report.fallbacks.append(
                        f"executor thread->serial "
                        f"({type(exc).__name__}: {exc})"
                    )
                    outcomes = [
                        self._serve_group_safe(k, v) for k, v in groups.items()
                    ]
            for key, batch, job_records, error in outcomes:
                report.results.extend(batch)
                report.job_outcomes.update(job_records)
                if error is not None:
                    report.errors[key] = error
        # Every submitted job leaves with exactly one outcome record;
        # anything unaccounted for (e.g. a group-level setup failure
        # recorded no per-job outcomes) failed with its group's error.
        served = {r.job_id for r in report.results}
        for key, group_jobs in groups.items():
            for job in group_jobs:
                if job.job_id in report.job_outcomes:
                    continue
                if job.job_id in served:
                    report.job_outcomes[job.job_id] = JobOutcome(
                        job_id=job.job_id, circuit_key=key, status="ok"
                    )
                else:
                    report.job_outcomes[job.job_id] = JobOutcome(
                        job_id=job.job_id,
                        circuit_key=key,
                        status="failed",
                        error=report.errors.get(key, "no result"),
                    )
        report.results.sort(key=lambda r: r.job_id)
        report.setup_seconds = sum(
            s
            for key in groups
            if key not in already_setup
            and (s := self.keystore.setup_seconds(*key)) is not None
        )
        report.wall_seconds = time.perf_counter() - t0
        if verify:
            report.verified = (
                not report.errors
                and not report.invalid_jobs
                and all(
                    o.status == "ok" for o in report.job_outcomes.values()
                )
                and self.verify_report(report)
            )
        return report

    def close(self) -> None:
        """Release the worker pool (process executor only).  Idempotent:
        safe to call repeatedly, after a degradation flip dropped the
        pool, and on services that never had one.

        The pool is kept alive across batches so workers retain their
        circuit/keypair/table caches; long-lived services that are done
        proving call this to reap the worker processes (interpreter exit
        reaps them regardless; a batch served after close() lazily builds
        a fresh pool).  For the remote executor this drains in-flight
        dispatches, stops the heartbeat, and closes the pooled
        connections, but leaves the worker fleet running — the fleet
        outlives any one dispatcher."""
        if self._pool is not None:
            self._pool.shutdown()
        if self._remote is not None:
            self._remote.shutdown(drain=True)

    # -- verification -------------------------------------------------------------
    def verify_report(self, report: ServiceReport) -> bool:
        """Detached-verify every bundle in a report, batching per group."""
        by_key: Dict[CircuitKeyT, List[MatmulProofBundle]] = {}
        for r in report.results:
            by_key.setdefault(r.circuit_key, []).append(r.bundle)
        for key, bundles in by_key.items():
            if not self.verifier_for(key).verify_batch(bundles):
                return False
        return True

    def verifier_for(self, key: CircuitKeyT) -> MatmulVerifier:
        return self._prover_for(key).verifier()

    def export_verifier(self, key: CircuitKeyT) -> bytes:
        """Wire-format verifier artifact for one served circuit."""
        return self._prover_for(key).export_verifier()
