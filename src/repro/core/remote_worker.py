"""Remote proving worker: the server side of :mod:`repro.core.remote`.

Run one per host::

    PYTHONPATH=src python -m repro.core.remote_worker \\
        --host 0.0.0.0 --port 7841 --keystore /shared/keys

The worker accepts TCP connections and serves the frame protocol
(thread-per-connection — proving is CPU-bound, so concurrency across
connections mainly overlaps the sockets, exactly like the service's
thread tier):

* ``HELLO``  — begin the HMAC session handshake (see below).
* ``JOBS``   — decode the prove-jobs envelope, rehydrate the keypair,
  prove every job, reply ``RESULTS`` (or a typed ``ERROR``).
* ``PING``   — reply ``PONG`` with a JSON stats payload (pid, chunks and
  jobs served, keys adopted over the wire, connection/auth counters) for
  the dispatcher's registry.
* ``SHUTDOWN`` — stop accepting and exit once in-flight handlers drain.

Connections are *persistent*: the dispatcher's
:class:`~repro.core.remote.ConnectionPool` keeps them open across
chunks, so the handler loop polls its socket with a short timeout and
re-checks the stop flag between frames.  ``SIGTERM`` (fleet teardown)
sets the same stop flag the ``SHUTDOWN`` frame does — either way the
worker finishes and flushes in-flight chunks before exiting (graceful
drain), so a politely-stopped fleet never strands a chunk.

Authentication: with ``REPRO_FLEET_TOKEN`` set the worker demands the
``HELLO``/``CHALLENGE``/``AUTH`` handshake (HMAC-SHA256 over both
session nonces, constant-time compares, mutual ``AUTH_OK`` proof) as the
*first* exchange on every connection.  Any payload-bearing frame from an
unauthenticated peer is rejected with a typed ``auth-failed`` ERROR
before a single payload byte is decoded.

Key discipline mirrors the process pool's: the worker opens its KeyStore
**read-only** — it must adopt the dispatcher's keypair or fail, never
mint its own (a self-minted keypair would produce proofs nobody can
verify).  New here is the *on-demand distribution* path: a keystore miss
sends ``KEY_REQUEST`` back up the dispatching connection and adopts the
``KEY_PUSH``ed keypair bytes (the existing
:func:`repro.serialize.groth16_keypair_to_bytes` wire format) into
memory, so a diskless worker can still join a Groth16 fleet.

Fault injection: the entry/exit hooks of :mod:`repro.core.faultinject`
are honoured with ``tier="remote"``, and worker launch environments are
built via :func:`repro.core.faultinject.scoped_env` — an ambient fault
plan on the dispatcher never leaks in.
"""

from __future__ import annotations

import argparse
import hmac
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import List, Optional, Sequence, Tuple

from .. import serialize
from . import faultinject
from .artifacts import CircuitRegistry, KeyStore
from .backends import get_backend, prove_jobs_to_wire
from .errors import MissingKey, wrap_error
from .remote import (
    AUTH,
    AUTH_OK,
    CHALLENGE,
    ERROR,
    HELLO,
    JOBS,
    KEY_PUSH,
    KEY_REQUEST,
    PING,
    PONG,
    RESULTS,
    SHUTDOWN,
    _auth_mac,
    fleet_token,
    recv_frame,
    send_frame,
)

_CRASH_ENV = "REPRO_POOL_TEST_CRASH"  # legacy whole-strategy crash hook

#: how often an idle persistent connection re-checks the stop flag
_POLL_SECONDS = 0.5
#: an unauthenticated peer gets this long to complete the handshake
_HANDSHAKE_SECONDS = 5.0


class _DropConnection(Exception):
    """Internal: an injected ``net_drop`` fault — close the connection
    without replying, as if the network ate the RESULTS frame."""


class WorkerState:
    """Per-process caches and counters shared by connection handlers."""

    def __init__(
        self,
        keystore_root: Optional[str] = None,
        token: Optional[bytes] = None,
    ):
        self.registry = CircuitRegistry()
        self.keystore = KeyStore(
            root=keystore_root, registry=self.registry, readonly=True
        )
        self.token = token
        self.stop = threading.Event()
        self._guard = threading.Lock()
        self.chunks_served = 0
        self.jobs_served = 0
        self.keys_adopted = 0
        self.connections = 0
        self.auth_failures = 0
        self.net_faults = 0
        self._handlers: List[threading.Thread] = []

    def stats(self) -> dict:
        with self._guard:
            return {
                "pid": os.getpid(),
                "chunks_served": self.chunks_served,
                "jobs_served": self.jobs_served,
                "keys_adopted": self.keys_adopted,
                "connections": self.connections,
                "auth_failures": self.auth_failures,
                "net_faults": self.net_faults,
                "auth": self.token is not None,
            }

    def count(
        self,
        chunks: int = 0,
        jobs: int = 0,
        keys: int = 0,
        connections: int = 0,
        auth_failures: int = 0,
        net_faults: int = 0,
    ) -> None:
        with self._guard:
            self.chunks_served += chunks
            self.jobs_served += jobs
            self.keys_adopted += keys
            self.connections += connections
            self.auth_failures += auth_failures
            self.net_faults += net_faults

    # -- in-flight handler tracking (the graceful-drain ledger) ---------------
    def track(self, thread: threading.Thread) -> None:
        with self._guard:
            self._handlers = [t for t in self._handlers if t.is_alive()]
            self._handlers.append(thread)

    def drain(self, timeout: float) -> None:
        """Join live connection handlers, bounded by ``timeout`` overall
        — in-flight chunks get finished and flushed before exit."""
        deadline = time.monotonic() + timeout
        with self._guard:
            handlers = list(self._handlers)
        for t in handlers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            t.join(remaining)


def _recv_patient(
    conn: socket.socket, state: WorkerState, timeout: float
) -> Optional[Tuple[int, bytes]]:
    """One frame, polling through the connection's short socket timeout
    up to ``timeout`` seconds (stop-flag aware) — for mid-exchange waits
    like KEY_PUSH where the peer legitimately takes a moment."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline and not state.stop.is_set():
        try:
            return recv_frame(conn)
        except socket.timeout:
            continue
    return None


def _handle_jobs(conn: socket.socket, state: WorkerState, payload: bytes) -> None:
    """One chunk: decode, (maybe) fetch keys, prove, reply RESULTS.

    Raises on failure; the connection loop converts the exception into a
    typed ERROR frame.  Mirrors ``pool._prove_group_worker`` except that
    a keystore miss becomes a KEY_REQUEST round trip before giving up.
    """
    jobs = serialize.prove_jobs_from_bytes(payload)  # raises CorruptEnvelope
    if not jobs:
        send_frame(conn, RESULTS, serialize.job_results_to_bytes([]))
        return
    plan = faultinject.active_plan()
    if plan is not None:
        plan.fire_worker(jobs, tier="remote")
    _, x0, w0, strategy, backend_name = jobs[0]
    if os.environ.get(_CRASH_ENV) == strategy:
        os._exit(13)  # simulated segfault (legacy test hook)
    a, n, b = len(x0), len(x0[0]), len(w0[0])
    circuit = state.registry.get(a, n, b, strategy)
    backend = get_backend(backend_name)
    artifacts = None
    if backend.requires_setup:
        try:
            artifacts = state.keystore.artifacts(a, n, b, strategy, backend_name)
        except KeyError:
            # On-demand key distribution: ask the dispatcher, who holds
            # the keypair it expects this chunk to be proven under.
            send_frame(
                conn,
                KEY_REQUEST,
                serialize.circuit_key_to_bytes((a, n, b), strategy, backend_name),
            )
            frame = _recv_patient(conn, state, timeout=30.0)
            if frame is None or frame[0] != KEY_PUSH or not frame[1]:
                raise MissingKey(
                    f"no setup artifacts for ({a},{n},{b},{strategy},"
                    f"{backend_name}) locally or from the dispatcher"
                ) from None
            state.keystore.adopt(a, n, b, strategy, backend_name, frame[1])
            state.count(keys=1)
            artifacts = state.keystore.artifacts(a, n, b, strategy, backend_name)
    if len(jobs) >= 2:
        backend.warm(artifacts)
    results = prove_jobs_to_wire(
        backend_name,
        circuit,
        artifacts,
        [(job_id, x, w) for job_id, x, w, _, _ in jobs],
    )
    blob = serialize.job_results_to_bytes(results)
    if plan is not None:
        blob = plan.mangle_results(blob, jobs, tier="remote")
        # Transport faults act on the *reply* path — the chunk was proven,
        # the network "loses" it: the worst case for exactly-once
        # accounting, which is precisely what the chaos soak asserts.
        net = plan.transport_fault(jobs, tier="remote")
        if net is not None:
            state.count(net_faults=1)
            if net.kind == "net_stall":
                # Outlive the dispatcher's lease; the eventual send hits
                # a socket the dispatcher already abandoned.
                time.sleep(net.seconds)
            elif net.kind == "net_drop":
                raise _DropConnection()
    state.count(chunks=1, jobs=len(results))
    send_frame(conn, RESULTS, blob)


def _reject_unauthenticated(conn: socket.socket, state: WorkerState, why: str) -> None:
    """Typed ``auth-failed`` ERROR — sent *before* any payload decode."""
    state.count(auth_failures=1)
    send_frame(
        conn, ERROR, serialize.remote_error_to_bytes("auth-failed", why, None)
    )


def _handshake(conn: socket.socket, state: WorkerState, payload: bytes) -> bool:
    """Serve the worker side of HELLO/CHALLENGE/AUTH/AUTH_OK; returns
    whether the session is now authenticated.  On any failure the typed
    rejection (when the peer is still listening) has been sent and the
    caller drops the connection."""
    if state.token is None:
        _reject_unauthenticated(
            conn, state, "worker has no fleet token configured (REPRO_FLEET_TOKEN)"
        )
        return False
    try:
        _version, nonce_c = serialize.auth_hello_from_bytes(payload)
    except ValueError as exc:
        _reject_unauthenticated(conn, state, f"malformed HELLO: {exc}")
        return False
    nonce_s = os.urandom(serialize.AUTH_NONCE_BYTES)
    send_frame(conn, CHALLENGE, serialize.auth_challenge_to_bytes(nonce_s))
    deadline = time.monotonic() + _HANDSHAKE_SECONDS
    frame = None
    while time.monotonic() < deadline and not state.stop.is_set():
        try:
            frame = recv_frame(conn)
        except socket.timeout:
            continue
        break
    if frame is None or frame[0] != AUTH:
        _reject_unauthenticated(conn, state, "handshake abandoned before AUTH")
        return False
    try:
        mac = serialize.auth_mac_from_bytes(frame[1])
    except ValueError as exc:
        _reject_unauthenticated(conn, state, f"malformed AUTH: {exc}")
        return False
    if not hmac.compare_digest(
        mac, _auth_mac(state.token, b"client", nonce_c, nonce_s)
    ):
        _reject_unauthenticated(conn, state, "fleet token mismatch")
        return False
    send_frame(
        conn,
        AUTH_OK,
        serialize.auth_mac_to_bytes(
            _auth_mac(state.token, b"worker", nonce_s, nonce_c)
        ),
    )
    return True


def _serve_connection(conn: socket.socket, state: WorkerState) -> None:
    state.count(connections=1)
    try:
        with conn:
            # Short poll timeout: persistent connections sit idle between
            # chunks, and the stop flag (SHUTDOWN frame or SIGTERM) must
            # be noticed without a peer ever sending another byte.
            conn.settimeout(_POLL_SECONDS)
            authenticated = state.token is None
            while True:
                if state.stop.is_set():
                    return  # drain: finish the current frame, no next one
                try:
                    frame = recv_frame(conn)
                except socket.timeout:
                    continue
                if frame is None:
                    return  # clean hang-up between frames
                kind, payload = frame
                if kind == HELLO:
                    authenticated = _handshake(conn, state, payload)
                    if not authenticated:
                        return
                    continue
                if not authenticated:
                    # Reject before decoding a single payload byte.
                    _reject_unauthenticated(
                        conn,
                        state,
                        "fleet requires an authenticated session "
                        "(REPRO_FLEET_TOKEN); complete the HELLO handshake "
                        "first",
                    )
                    return
                if kind == PING:
                    send_frame(
                        conn, PONG, json.dumps(state.stats()).encode("utf-8")
                    )
                elif kind == JOBS:
                    try:
                        _handle_jobs(conn, state, payload)
                    except _DropConnection:
                        return  # injected: the network ate the reply
                    except Exception as exc:  # noqa: BLE001 — typed reply
                        err = wrap_error(exc)
                        send_frame(
                            conn,
                            ERROR,
                            serialize.remote_error_to_bytes(
                                err.kind, str(exc) or err.kind, err.job_id
                            ),
                        )
                elif kind == SHUTDOWN:
                    state.stop.set()
                    return
                # Anything else (RESULTS/ERROR/KEY frames out of context)
                # is a confused peer: drop the connection.
                else:
                    return
    except (ConnectionError, OSError, ValueError):
        return  # peer vanished or spoke garbage; this connection is done


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    keystore_root: Optional[str] = None,
    token: Optional[bytes] = None,
    drain_seconds: float = 30.0,
) -> None:
    """Bind, announce, and serve until a ``SHUTDOWN`` frame (or SIGTERM)
    arrives; then *drain* — join in-flight connection handlers (bounded
    by ``drain_seconds``) so no accepted chunk is dropped on the floor.

    Prints ``listening on <host>:<port>`` (flushed) once ready — with
    ``port=0`` the kernel assigns one, and launchers parse this line to
    learn it.  ``token`` defaults to the ``REPRO_FLEET_TOKEN``
    environment variable; set (either way) it makes the HMAC handshake
    mandatory on every connection.
    """
    if isinstance(token, str):
        token = token.encode("utf-8")
    state = WorkerState(keystore_root, token=token if token else fleet_token())
    try:
        # Graceful drain on fleet teardown: SIGTERM means "stop accepting,
        # finish what you hold" — same path as the SHUTDOWN frame.
        signal.signal(signal.SIGTERM, lambda _sig, _frm: state.stop.set())
    except ValueError:
        pass  # not the main thread (tests drive serve() directly)
    listener = socket.create_server((host, port))
    actual_port = listener.getsockname()[1]
    print(f"listening on {host}:{actual_port}", flush=True)
    # Short accept timeout so the stop flag is noticed promptly.
    listener.settimeout(0.25)
    with listener:
        while not state.stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(
                target=_serve_connection,
                args=(conn, state),
                daemon=True,
            )
            state.track(handler)
            handler.start()
    state.drain(drain_seconds)


# -- loopback fleet launcher ------------------------------------------------------

def _worker_launch_env(env: Optional[dict]) -> dict:
    """The environment a loopback worker subprocess launches with: fault
    plan scoped via :func:`repro.core.faultinject.scoped_env`, and
    ``PYTHONPATH`` pinned so the worker imports ``repro`` exactly as this
    process does."""
    base_env = faultinject.scoped_env("remote", env if env is not None else os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = base_env.get("PYTHONPATH")
    base_env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    return base_env


def _worker_command(port: int, keystore_root: Optional[str]) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro.core.remote_worker",
        "--host",
        "127.0.0.1",
        "--port",
        str(port),
    ]
    if keystore_root is not None:
        cmd += ["--keystore", keystore_root]
    return cmd


def launch_worker(
    port: int = 0,
    keystore_root: Optional[str] = None,
    env: Optional[dict] = None,
    startup_timeout: float = 30.0,
) -> Tuple[str, subprocess.Popen]:
    """Spawn ONE worker subprocess and block until it announces.

    With an explicit ``port`` the worker comes back on a known address —
    what the chaos harness leans on to *restart* a killed worker at the
    same registry slot.  Returns ``("127.0.0.1:<port>", Popen)``.
    """
    proc = subprocess.Popen(
        _worker_command(port, keystore_root),
        env=_worker_launch_env(env),
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = _read_announcement(proc, startup_timeout)
    except Exception:
        stop_workers([proc])
        raise
    return line.rsplit(" ", 1)[-1], proc


def launch_loopback_workers(
    n: int,
    keystore_root: Optional[str] = None,
    env: Optional[dict] = None,
    startup_timeout: float = 30.0,
) -> Tuple[List[str], List[subprocess.Popen]]:
    """Spawn ``n`` worker subprocesses on ``127.0.0.1`` ephemeral ports.

    Returns ``(["127.0.0.1:<port>", ...], [Popen, ...])`` once every
    worker has announced its port.  The launch environment is built with
    :func:`repro.core.faultinject.scoped_env` — only fault specs
    explicitly addressed to ``tier="remote"`` cross this boundary.  Pair
    with :func:`stop_workers` in a ``finally``.
    """
    base_env = _worker_launch_env(env)
    cmd = _worker_command(0, keystore_root)
    addrs: List[str] = []
    procs: List[subprocess.Popen] = []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                cmd,
                env=base_env,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
            procs.append(proc)
        for proc in procs:
            line = _read_announcement(proc, startup_timeout)
            addrs.append(line.rsplit(" ", 1)[-1])
    except Exception:
        stop_workers(procs)
        raise
    return addrs, procs


def _read_announcement(proc: subprocess.Popen, timeout: float) -> str:
    """The worker's ``listening on ...`` line, bounded by ``timeout``."""
    result: List[str] = []

    def reader():
        result.append(proc.stdout.readline())

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    t.join(timeout)
    if not result or "listening on" not in result[0]:
        raise RuntimeError(
            f"worker pid {proc.pid} failed to start "
            f"(announced: {result[0]!r})" if result else
            f"worker pid {proc.pid} failed to announce within {timeout}s"
        )
    return result[0].strip()


def stop_workers(procs: Sequence[subprocess.Popen]) -> None:
    """Terminate and reap a loopback fleet (idempotent, best effort)."""
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0, help="0 = kernel-assigned")
    ap.add_argument(
        "--keystore",
        default=None,
        help="read-only KeyStore root; omit for a diskless worker that "
        "adopts keys over the wire",
    )
    ap.add_argument(
        "--token",
        default=None,
        help="fleet auth token (default: the REPRO_FLEET_TOKEN env var)",
    )
    args = ap.parse_args(argv)
    serve(args.host, args.port, args.keystore, token=args.token)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
