"""Remote proving worker: the server side of :mod:`repro.core.remote`.

Run one per host::

    PYTHONPATH=src python -m repro.core.remote_worker \\
        --host 0.0.0.0 --port 7841 --keystore /shared/keys

The worker accepts TCP connections and serves the frame protocol
(thread-per-connection — proving is CPU-bound, so concurrency across
connections mainly overlaps the sockets, exactly like the service's
thread tier):

* ``JOBS``   — decode the prove-jobs envelope, rehydrate the keypair,
  prove every job, reply ``RESULTS`` (or a typed ``ERROR``).
* ``PING``   — reply ``PONG`` with a JSON stats payload (pid, chunks and
  jobs served, keys adopted over the wire) for the dispatcher's registry.
* ``SHUTDOWN`` — stop accepting and exit once in-flight handlers drain.

Key discipline mirrors the process pool's: the worker opens its KeyStore
**read-only** — it must adopt the dispatcher's keypair or fail, never
mint its own (a self-minted keypair would produce proofs nobody can
verify).  New here is the *on-demand distribution* path: a keystore miss
sends ``KEY_REQUEST`` back up the dispatching connection and adopts the
``KEY_PUSH``ed keypair bytes (the existing
:func:`repro.serialize.groth16_keypair_to_bytes` wire format) into
memory, so a diskless worker can still join a Groth16 fleet.

Fault injection: the entry/exit hooks of :mod:`repro.core.faultinject`
are honoured with ``tier="remote"``, and worker launch environments are
built via :func:`repro.core.faultinject.scoped_env` — an ambient fault
plan on the dispatcher never leaks in.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import threading
from typing import List, Optional, Sequence, Tuple

from .. import serialize
from . import faultinject
from .artifacts import CircuitRegistry, KeyStore
from .backends import get_backend, prove_jobs_to_wire
from .errors import MissingKey, wrap_error
from .remote import (
    ERROR,
    JOBS,
    KEY_PUSH,
    KEY_REQUEST,
    PING,
    PONG,
    RESULTS,
    SHUTDOWN,
    recv_frame,
    send_frame,
)

_CRASH_ENV = "REPRO_POOL_TEST_CRASH"  # legacy whole-strategy crash hook


class WorkerState:
    """Per-process caches and counters shared by connection handlers."""

    def __init__(self, keystore_root: Optional[str] = None):
        self.registry = CircuitRegistry()
        self.keystore = KeyStore(
            root=keystore_root, registry=self.registry, readonly=True
        )
        self.stop = threading.Event()
        self._guard = threading.Lock()
        self.chunks_served = 0
        self.jobs_served = 0
        self.keys_adopted = 0

    def stats(self) -> dict:
        with self._guard:
            return {
                "pid": os.getpid(),
                "chunks_served": self.chunks_served,
                "jobs_served": self.jobs_served,
                "keys_adopted": self.keys_adopted,
            }

    def count(self, chunks: int = 0, jobs: int = 0, keys: int = 0) -> None:
        with self._guard:
            self.chunks_served += chunks
            self.jobs_served += jobs
            self.keys_adopted += keys


def _handle_jobs(conn: socket.socket, state: WorkerState, payload: bytes) -> None:
    """One chunk: decode, (maybe) fetch keys, prove, reply RESULTS.

    Raises on failure; the connection loop converts the exception into a
    typed ERROR frame.  Mirrors ``pool._prove_group_worker`` except that
    a keystore miss becomes a KEY_REQUEST round trip before giving up.
    """
    jobs = serialize.prove_jobs_from_bytes(payload)  # raises CorruptEnvelope
    if not jobs:
        send_frame(conn, RESULTS, serialize.job_results_to_bytes([]))
        return
    plan = faultinject.active_plan()
    if plan is not None:
        plan.fire_worker(jobs, tier="remote")
    _, x0, w0, strategy, backend_name = jobs[0]
    if os.environ.get(_CRASH_ENV) == strategy:
        os._exit(13)  # simulated segfault (legacy test hook)
    a, n, b = len(x0), len(x0[0]), len(w0[0])
    circuit = state.registry.get(a, n, b, strategy)
    backend = get_backend(backend_name)
    artifacts = None
    if backend.requires_setup:
        try:
            artifacts = state.keystore.artifacts(a, n, b, strategy, backend_name)
        except KeyError:
            # On-demand key distribution: ask the dispatcher, who holds
            # the keypair it expects this chunk to be proven under.
            send_frame(
                conn,
                KEY_REQUEST,
                serialize.circuit_key_to_bytes((a, n, b), strategy, backend_name),
            )
            frame = recv_frame(conn)
            if frame is None or frame[0] != KEY_PUSH or not frame[1]:
                raise MissingKey(
                    f"no setup artifacts for ({a},{n},{b},{strategy},"
                    f"{backend_name}) locally or from the dispatcher"
                ) from None
            state.keystore.adopt(a, n, b, strategy, backend_name, frame[1])
            state.count(keys=1)
            artifacts = state.keystore.artifacts(a, n, b, strategy, backend_name)
    if len(jobs) >= 2:
        backend.warm(artifacts)
    results = prove_jobs_to_wire(
        backend_name,
        circuit,
        artifacts,
        [(job_id, x, w) for job_id, x, w, _, _ in jobs],
    )
    blob = serialize.job_results_to_bytes(results)
    if plan is not None:
        blob = plan.mangle_results(blob, jobs, tier="remote")
    state.count(chunks=1, jobs=len(results))
    send_frame(conn, RESULTS, blob)


def _serve_connection(conn: socket.socket, state: WorkerState) -> None:
    try:
        with conn:
            while not state.stop.is_set():
                frame = recv_frame(conn)
                if frame is None:
                    return  # clean hang-up between frames
                kind, payload = frame
                if kind == PING:
                    send_frame(
                        conn, PONG, json.dumps(state.stats()).encode("utf-8")
                    )
                elif kind == JOBS:
                    try:
                        _handle_jobs(conn, state, payload)
                    except Exception as exc:  # noqa: BLE001 — typed reply
                        err = wrap_error(exc)
                        send_frame(
                            conn,
                            ERROR,
                            serialize.remote_error_to_bytes(
                                err.kind, str(exc) or err.kind, err.job_id
                            ),
                        )
                elif kind == SHUTDOWN:
                    state.stop.set()
                    return
                # Anything else (RESULTS/ERROR/KEY frames out of context)
                # is a confused peer: drop the connection.
                elif kind not in (PING, JOBS, SHUTDOWN):
                    return
    except (ConnectionError, OSError, ValueError):
        return  # peer vanished or spoke garbage; this connection is done


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    keystore_root: Optional[str] = None,
) -> None:
    """Bind, announce, and serve until a ``SHUTDOWN`` frame arrives.

    Prints ``listening on <host>:<port>`` (flushed) once ready — with
    ``port=0`` the kernel assigns one, and launchers parse this line to
    learn it.
    """
    state = WorkerState(keystore_root)
    listener = socket.create_server((host, port))
    actual_port = listener.getsockname()[1]
    print(f"listening on {host}:{actual_port}", flush=True)
    # Short accept timeout so the SHUTDOWN flag is noticed promptly.
    listener.settimeout(0.25)
    with listener:
        while not state.stop.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=_serve_connection,
                args=(conn, state),
                daemon=True,
            ).start()


# -- loopback fleet launcher ------------------------------------------------------

def launch_loopback_workers(
    n: int,
    keystore_root: Optional[str] = None,
    env: Optional[dict] = None,
    startup_timeout: float = 30.0,
) -> Tuple[List[str], List[subprocess.Popen]]:
    """Spawn ``n`` worker subprocesses on ``127.0.0.1`` ephemeral ports.

    Returns ``(["127.0.0.1:<port>", ...], [Popen, ...])`` once every
    worker has announced its port.  The launch environment is built with
    :func:`repro.core.faultinject.scoped_env` — only fault specs
    explicitly addressed to ``tier="remote"`` cross this boundary.  Pair
    with :func:`stop_workers` in a ``finally``.
    """
    base_env = faultinject.scoped_env("remote", env if env is not None else os.environ)
    # The worker must import ``repro`` exactly as this process does.
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = base_env.get("PYTHONPATH")
    base_env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    cmd = [sys.executable, "-m", "repro.core.remote_worker", "--host", "127.0.0.1", "--port", "0"]
    if keystore_root is not None:
        cmd += ["--keystore", keystore_root]
    addrs: List[str] = []
    procs: List[subprocess.Popen] = []
    try:
        for _ in range(n):
            proc = subprocess.Popen(
                cmd,
                env=base_env,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
            )
            procs.append(proc)
        for proc in procs:
            line = _read_announcement(proc, startup_timeout)
            addrs.append(line.rsplit(" ", 1)[-1])
    except Exception:
        stop_workers(procs)
        raise
    return addrs, procs


def _read_announcement(proc: subprocess.Popen, timeout: float) -> str:
    """The worker's ``listening on ...`` line, bounded by ``timeout``."""
    result: List[str] = []

    def reader():
        result.append(proc.stdout.readline())

    t = threading.Thread(target=reader, daemon=True)
    t.start()
    t.join(timeout)
    if not result or "listening on" not in result[0]:
        raise RuntimeError(
            f"worker pid {proc.pid} failed to start "
            f"(announced: {result[0]!r})" if result else
            f"worker pid {proc.pid} failed to announce within {timeout}s"
        )
    return result[0].strip()


def stop_workers(procs: Sequence[subprocess.Popen]) -> None:
    """Terminate and reap a loopback fleet (idempotent, best effort)."""
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
        if proc.stdout is not None:
            proc.stdout.close()


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=0, help="0 = kernel-assigned")
    ap.add_argument(
        "--keystore",
        default=None,
        help="read-only KeyStore root; omit for a diskless worker that "
        "adopts keys over the wire",
    )
    args = ap.parse_args(argv)
    serve(args.host, args.port, args.keystore)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
