"""Multi-process proving executor with fault tolerance.

Pure-Python proving is CPU-bound, so the thread pool in
:class:`~repro.core.service.ProvingService` can only overlap waiting — the
GIL serialises the actual work.  This module moves whole circuit groups
(or shards of one large group) into worker *processes*:

* **Jobs cross the boundary as bytes.**  A group is shipped as a
  :func:`repro.serialize.prove_jobs_to_bytes` envelope and comes back as a
  :func:`repro.serialize.job_results_to_bytes` envelope of wire-format
  bundles — no live circuit, key, or proof objects are ever pickled.
* **Workers rehydrate keys from disk, never from pickles.**  A worker
  opens the parent's :class:`~repro.core.artifacts.KeyStore` root
  *read-only* and loads the keypair the parent published before
  dispatching; a worker that fabricated its own keypair would produce
  proofs nobody can verify.  Spartan groups need no key material at all.
* **Spawn-safe.**  The worker entrypoint is a top-level function and all
  of its inputs are primitives, so it works under the ``spawn`` start
  method; ``fork`` is preferred where available because it skips
  re-importing the interpreter state.

Failure semantics (see DESIGN.md "Failure semantics"):

* Every chunk failure is classified into the typed taxonomy of
  :mod:`repro.core.errors` — a worker exception pickles back as (or is
  wrapped into) a :class:`~repro.core.errors.ProvingError`, a dying
  worker (segfault, ``os._exit``) becomes
  :class:`~repro.core.errors.WorkerCrash`, a corrupt result envelope
  becomes :class:`~repro.core.errors.CorruptEnvelope`, an unpublished
  keypair :class:`~repro.core.errors.MissingKey`.
* **Leases.**  Each dispatched chunk carries a deadline
  (:class:`~repro.core.resilience.ChunkLease`, derived by the service
  from the chunk policy's cost estimate); when a lease expires the hung
  worker is holding a pool slot hostage, so the whole pool is terminated,
  the expired chunk is charged a :class:`~repro.core.errors.ChunkTimeout`
  attempt, and every innocent in-flight chunk is re-dispatched without
  penalty.
* **Retries.**  Retryable failures (crash, timeout, corrupt results) are
  re-dispatched — each alone in a fresh single-worker pool, under the
  same lease — up to :class:`~repro.core.resilience.RetryPolicy`
  ``max_attempts``, with deterministic seeded exponential backoff.
* **Bisection + quarantine.**  A chunk that exhausts its retries with an
  isolatable error is split to corner the culprit: if the worker tagged
  the failure with a job id (see
  :func:`repro.core.backends.prove_jobs_to_wire`) that job is split out
  directly, otherwise the chunk is halved; repeatedly-failing single
  jobs become :class:`~repro.core.errors.PoisonJob` quarantine records
  and **every other job in the chunk still returns its proof**.
* **Deterministic fault injection.**  The worker entry/exit hooks consult
  :mod:`repro.core.faultinject` (environment-carried, spawn-safe), so
  every path above is forced and asserted in ``tests/test_resilience.py``.

The :class:`GroupChunkPolicy` decides which groups are worth a process
hop at all: estimated group cost below the dispatch threshold stays
in-process (spawn + rehydration overhead would dominate), and large
groups are sharded into several chunks so one hot circuit saturates every
worker instead of one.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import serialize
from . import faultinject
from .artifacts import CircuitRegistry, KeyStore
from .backends import get_backend, prove_jobs_to_wire
from .errors import ChunkTimeout, PoisonJob, ProvingError, wrap_error
from .resilience import ChunkLease, RetryPolicy

#: crude wall-seconds per abstract circuit-cost unit (constraints + terms
#: + wires) for this pure-Python stack; only used to compare group cost
#: against the dispatch thresholds, so being off by 2-3x merely shifts
#: the inline/process break-even point.  A calibrated
#: :class:`~repro.zkml.costmodel.CostModel` replaces it when provided.
_SECONDS_PER_COST_UNIT = 2e-3

#: legacy test hook (see tests/test_pool.py): a worker whose group
#: strategy matches this environment variable dies without cleanup.  The
#: general mechanism is :mod:`repro.core.faultinject`; this survives for
#: the whole-strategy crash tests that predate it.
_CRASH_ENV = "REPRO_POOL_TEST_CRASH"

ChunkTag = Tuple[tuple, int]  # (circuit key, chunk index)

# Worker-process caches, keyed by keystore root: one worker serves many
# chunks, and rebuilding circuits or re-reading keys per chunk would waste
# exactly the amortisation the pool exists for.
_WORKER_STORES: Dict[Optional[str], Tuple[CircuitRegistry, KeyStore]] = {}


def _worker_stores(root: Optional[str]) -> Tuple[CircuitRegistry, KeyStore]:
    stores = _WORKER_STORES.get(root)
    if stores is None:
        registry = CircuitRegistry()
        keystore = KeyStore(root=root, registry=registry, readonly=True)
        stores = _WORKER_STORES[root] = (registry, keystore)
    return stores


def _prove_group_worker(keystore_root: Optional[str], jobs_blob: bytes) -> bytes:
    """Top-level (picklable) pool entrypoint: one same-circuit chunk.

    Takes and returns wire envelopes only.  Raises ``KeyError`` if the
    chunk needs setup artifacts the parent never published — a worker
    must adopt the parent's keypair or fail, never mint its own.  An
    installed :class:`~repro.core.faultinject.FaultPlan` is honoured at
    entry (crash/hang/missing-key/poison) and exit (corrupt results).
    """
    jobs = serialize.prove_jobs_from_bytes(jobs_blob)
    if not jobs:
        return serialize.job_results_to_bytes([])
    plan = faultinject.active_plan()
    if plan is not None:
        plan.fire_worker(jobs, tier="process")
    _, x0, w0, strategy, backend_name = jobs[0]
    if os.environ.get(_CRASH_ENV) == strategy:
        os._exit(13)  # simulated segfault (legacy test hook)
    a, n, b = len(x0), len(x0[0]), len(w0[0])
    registry, keystore = _worker_stores(keystore_root)
    circuit = registry.get(a, n, b, strategy)
    backend = get_backend(backend_name)
    artifacts = None
    if backend.requires_setup:
        artifacts = keystore.artifacts(a, n, b, strategy, backend_name)
    if len(jobs) >= 2:
        # A chunk amortises the eager table build; a single job would pay
        # it for nothing (promote-on-reuse never builds for one shot).
        backend.warm(artifacts)
    results = prove_jobs_to_wire(
        backend_name,
        circuit,
        artifacts,
        [(job_id, x, w) for job_id, x, w, _, _ in jobs],
    )
    blob = serialize.job_results_to_bytes(results)
    if plan is not None:
        blob = plan.mangle_results(blob, jobs, tier="process")
    return blob


def _stop_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now*, hung workers included.

    ``shutdown(wait=False)`` alone would leave a hung worker sleeping in
    its slot (and an orphan process behind the interpreter), so the
    worker processes are terminated first.  Reaches into
    ``_processes`` — stdlib-private, but the executor offers no public
    kill switch, and the alternative is waiting out the hang.
    """
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            proc.terminate()
        except (OSError, ValueError):
            pass  # already dead / already closed
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class GroupChunkPolicy:
    """Cost-driven inline-vs-process and sharding decisions.

    Group cost is estimated from the closed-form circuit costs
    (:func:`repro.zkml.compile.matmul_cost`); with a calibrated
    ``cost_model`` the estimate is in real predicted seconds, otherwise a
    static rate converts abstract cost units to rough seconds.  A group
    below ``min_dispatch_seconds`` stays in-process; anything above is
    split into up to ``workers`` chunks of at least
    ``target_chunk_seconds`` of predicted work each.  The same per-job
    estimate seeds the chunk lease deadlines
    (:meth:`repro.core.resilience.RetryPolicy.lease_seconds`).
    """

    workers: int = 2
    min_dispatch_seconds: float = 0.25
    target_chunk_seconds: float = 0.1
    cost_model: object = None  # Optional[repro.zkml.costmodel.CostModel]

    def job_seconds(self, key) -> float:
        """Predicted proving seconds for one job of this circuit."""
        from ..zkml.compile import matmul_cost  # lazy: avoids an import cycle

        a, n, b, strategy, backend = key
        cost = matmul_cost(a, n, b, strategy)
        if self.cost_model is not None:
            if backend == "groth16":
                return self.cost_model.groth16_prove_time(cost)
            return self.cost_model.spartan_prove_time(cost)
        return (
            cost.constraints + cost.terms + cost.wires
        ) * _SECONDS_PER_COST_UNIT

    def plan(self, key, n_jobs: int, workers: Optional[int] = None) -> int:
        """Number of dispatch chunks for the group; ``0`` = serve inline.

        ``workers`` overrides the static worker count for this decision —
        the remote executor passes its registry's *live* worker count, so
        placement follows the fleet's heartbeat state (an all-dead fleet
        plans ``0`` chunks and the group stays in-process)."""
        if n_jobs <= 0:
            return 0
        limit = self.workers if workers is None else workers
        if limit <= 0:
            return 0
        total = self.job_seconds(key) * n_jobs
        if total < self.min_dispatch_seconds:
            return 0
        return min(
            max(1, limit),
            n_jobs,
            max(1, math.ceil(total / self.target_chunk_seconds)),
        )

    @staticmethod
    def chunk(jobs: Sequence, n_chunks: int) -> List[List]:
        """Split ``jobs`` into ``n_chunks`` contiguous, balanced slices."""
        n_chunks = max(1, min(n_chunks, len(jobs)))
        size, extra = divmod(len(jobs), n_chunks)
        out, start = [], 0
        for i in range(n_chunks):
            end = start + size + (1 if i < extra else 0)
            out.append(list(jobs[start:end]))
            start = end
        return out


@dataclass
class PoolOutcome:
    """What one :meth:`ProcessProvingExecutor.run` produced."""

    #: tag -> decoded ``(job_id, bundle_bytes, prove_seconds)`` triples.
    #: A chunk that quarantined some jobs still lists the others' results.
    results: Dict[ChunkTag, List[Tuple[int, bytes, float]]] = field(
        default_factory=dict
    )
    #: tag -> typed error for chunks that failed *as a whole* after
    #: retries (isolated to their group, never fatal to the batch)
    errors: Dict[ChunkTag, ProvingError] = field(default_factory=dict)
    #: chunks that needed any re-dispatch (crash, timeout, or collateral)
    retried: List[ChunkTag] = field(default_factory=list)
    #: tag -> total dispatch attempts the chunk consumed
    attempts: Dict[ChunkTag, int] = field(default_factory=dict)
    #: jobs bisected down and confirmed poisonous (never retried again)
    quarantined: List[PoisonJob] = field(default_factory=list)


def resolve_chunk(
    dispatch,
    policy: RetryPolicy,
    blob: bytes,
    timeout_s: Optional[float],
    err: Optional[ProvingError],
    attempts: int,
    tag: ChunkTag,
) -> Tuple[List[Tuple[int, bytes, float]], List[PoisonJob], int]:
    """Retry, then bisect, one failed (or interrupted) chunk.

    ``dispatch`` is the transport: a callable ``(jobs_blob, timeout_s) ->
    results_blob`` that runs one chunk somewhere (a fresh single-worker
    pool, a remote host over TCP) — this accounting doesn't care which,
    which is what lets :class:`ProcessProvingExecutor` and
    :class:`~repro.core.remote.RemoteProvingExecutor` share it verbatim.

    Returns ``(result_triples, quarantined_jobs, attempts_used)``; raises
    the final typed error if the chunk is unrecoverable as a whole
    (non-isolatable failure, or an unreadable jobs blob).  ``attempts``
    counts dispatches already charged to this chunk (``0`` for an
    innocent re-dispatch after a pool teardown).
    """
    while err is None or (
        policy.is_retryable(err) and attempts < policy.max_attempts
    ):
        if err is not None:
            time.sleep(policy.backoff_seconds(tag, attempts))
        attempts += 1
        try:
            raw = dispatch(blob, timeout_s)
            return serialize.job_results_from_bytes(raw), [], attempts
        except Exception as exc:  # noqa: BLE001 — classified and looped
            err = wrap_error(exc, attempts=attempts)
    if policy.bisect and err.isolate:
        try:
            jobs = serialize.prove_jobs_from_bytes(blob)
        except ValueError:
            raise err from None  # unreadable chunk: nothing to bisect
        if len(jobs) == 1:
            return (
                [],
                [
                    PoisonJob(
                        f"quarantined after {attempts} attempt(s): "
                        f"{err.kind}: {err.message}",
                        job_id=jobs[0][0],
                        attempts=attempts,
                    )
                ],
                attempts,
            )
        if err.job_id is not None and any(j[0] == err.job_id for j in jobs):
            # The worker attributed the failure: split the culprit out
            # directly (one confirmation run) instead of bisecting.
            parts = [
                [j for j in jobs if j[0] == err.job_id],
                [j for j in jobs if j[0] != err.job_id],
            ]
        else:
            mid = len(jobs) // 2
            parts = [jobs[:mid], jobs[mid:]]
        triples: List[Tuple[int, bytes, float]] = []
        poison: List[PoisonJob] = []
        for part in parts:
            if not part:
                continue
            sub_triples, sub_poison, _ = resolve_chunk(
                dispatch,
                policy,
                serialize.prove_jobs_to_bytes(part),
                timeout_s,
                None,
                attempts=0,
                tag=tag,
            )
            triples.extend(sub_triples)
            poison.extend(sub_poison)
        return triples, poison, attempts
    raise err


class ProcessProvingExecutor:
    """Runs same-circuit job chunks on a pool of worker processes.

    ``keystore_root`` is the directory workers rehydrate Groth16 keypairs
    from; the dispatching service publishes setup artifacts there *before*
    submitting work.  ``start_method`` defaults to ``fork`` where the
    platform offers it (cheapest start-up) and ``spawn`` otherwise; both
    are supported and tested.  ``retry_policy`` configures the
    fault-tolerance layer (attempts, backoff, leases, bisection); the
    default :class:`~repro.core.resilience.RetryPolicy` retries transient
    failures and quarantines poison jobs.  ``breakages`` counts pool
    teardowns forced by dead or hung workers — the degradation-ladder
    signal the service reads.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        keystore_root: Optional[str] = None,
        start_method: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.workers = max(1, workers or (os.cpu_count() or 2))
        self.keystore_root = keystore_root
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breakages = 0
        self._ctx = multiprocessing.get_context(start_method)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._finalizer = None

    def _pool_executor(self) -> ProcessPoolExecutor:
        # The pool persists across run() calls: worker processes keep
        # their circuit/keypair/table caches (_WORKER_STORES) warm from
        # batch to batch, which is the amortisation this module exists
        # for.  It is torn down only after a worker death poisons it.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            # If this executor is dropped without close(), shut the pool
            # down at GC time: an orphaned ProcessPoolExecutor races the
            # interpreter's exit hook and spews a harmless-but-ugly
            # "Bad file descriptor" traceback on some CPython versions.
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=False
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the pool.  Idempotent: safe to call repeatedly, before
        any pool exists, and after a broken pool was already dropped."""
        pool, self._pool = self._pool, None
        finalizer, self._finalizer = self._finalizer, None
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            pool.shutdown(wait=False)

    def _terminate_pool(self) -> None:
        """Kill the shared pool (hung/dead workers) and count the
        breakage; the next dispatch rebuilds it lazily."""
        pool, self._pool = self._pool, None
        finalizer, self._finalizer = self._finalizer, None
        self.breakages += 1
        if finalizer is not None:
            finalizer.detach()
        if pool is not None:
            _stop_pool(pool)

    def start(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ):
        """Submit ``(tag, jobs_blob)`` chunks without blocking.

        ``timeouts`` is accepted for interface parity with
        :class:`~repro.core.remote.RemoteProvingExecutor` (which needs
        lease deadlines at dispatch time to bound its sockets); here
        leases are enforced in :meth:`finish`, so it is unused.

        Returns the ``(tag, future)`` list for :meth:`finish`.  Callers
        overlap work by submitting first, doing in-process serving, then
        finishing — all from one thread, so worker forks never happen
        from a helper thread of a lock-holding process.  A pool broken by
        an earlier batch (worker died between ``finish`` calls) is
        detected at submit time, dropped, and rebuilt instead of poisoning
        this batch with a raw ``BrokenProcessPool``.
        """
        out = []
        for tag, blob in tasks:
            try:
                fut = self._pool_executor().submit(
                    _prove_group_worker, self.keystore_root, blob
                )
            except (BrokenProcessPool, RuntimeError):
                # Stale handle from a previous batch's casualty: drop it
                # and submit to a fresh pool (once; a second failure is
                # a real environment problem and should propagate).
                self._terminate_pool()
                fut = self._pool_executor().submit(
                    _prove_group_worker, self.keystore_root, blob
                )
            out.append((tag, fut))
        return out

    def finish(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        futures,
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Collect :meth:`start`'s futures; never raises for a chunk.

        ``timeouts`` maps chunk tags to lease seconds (``None``/absent =
        indefinite lease).  Failures are classified, retried, bisected,
        and quarantined per the executor's :class:`RetryPolicy`; whatever
        cannot be recovered is reported per chunk in ``errors`` — typed,
        never raised.
        """
        timeouts = timeouts or {}
        outcome = PoolOutcome()
        by_tag = dict(tasks)
        fut_map = {fut: tag for tag, fut in futures}
        leases = {
            tag: ChunkLease(tag=tag, timeout_seconds=timeouts.get(tag))
            for tag, _ in futures
        }
        pending = set(fut_map)
        retry_q: List[Tuple[ChunkTag, Optional[ProvingError]]] = []
        pool_broken = False
        while pending:
            now = time.monotonic()
            expired = {f for f in pending if leases[fut_map[f]].expired(now)}
            if expired:
                # A hung worker is holding a pool slot hostage: kill the
                # pool, charge the expired chunks a timeout attempt, and
                # re-dispatch the innocent in-flight chunks free.
                for fut in pending:
                    tag = fut_map[fut]
                    if fut in expired:
                        lease = leases[tag]
                        retry_q.append(
                            (
                                tag,
                                ChunkTimeout(
                                    "chunk lease expired in pool",
                                    deadline_seconds=lease.timeout_seconds,
                                ),
                            )
                        )
                    else:
                        retry_q.append((tag, None))
                pending.clear()
                self._terminate_pool()
                break
            waits = [
                remaining
                for fut in pending
                if (remaining := leases[fut_map[fut]].remaining(now)) is not None
            ]
            done, _ = wait(
                pending,
                timeout=min(waits) if waits else None,
                return_when=FIRST_COMPLETED,
            )
            for fut in done:
                pending.discard(fut)
                tag = fut_map[fut]
                try:
                    outcome.results[tag] = serialize.job_results_from_bytes(
                        fut.result()
                    )
                    outcome.attempts.setdefault(tag, 1)
                except Exception as exc:  # noqa: BLE001 — classified below
                    if isinstance(exc, BrokenProcessPool):
                        pool_broken = True
                    retry_q.append((tag, wrap_error(exc)))
        if pool_broken:
            # The shared pool is poisoned; drop the stale handle so the
            # next batch (or the retries below) builds a fresh one.
            self.breakages += 1
            self.shutdown()
        for tag, err in retry_q:
            outcome.retried.append(tag)
            try:
                triples, poison, attempts = self._resolve_chunk(
                    by_tag[tag],
                    timeouts.get(tag),
                    err,
                    attempts=0 if err is None else 1,
                    tag=tag,
                )
                outcome.results[tag] = triples
                outcome.attempts[tag] = attempts
                outcome.quarantined.extend(poison)
            except Exception as exc:  # noqa: BLE001 — reported per chunk
                fatal = wrap_error(exc)
                outcome.errors[tag] = fatal
                outcome.attempts[tag] = max(1, fatal.attempts)
        return outcome

    def _resolve_chunk(
        self,
        blob: bytes,
        timeout_s: Optional[float],
        err: Optional[ProvingError],
        attempts: int,
        tag: ChunkTag,
    ) -> Tuple[List[Tuple[int, bytes, float]], List[PoisonJob], int]:
        return resolve_chunk(
            self._run_solo, self.retry_policy, blob, timeout_s, err, attempts, tag
        )

    def _run_solo(self, blob: bytes, timeout_s: Optional[float]) -> bytes:
        """One dispatch of one chunk in a fresh single-worker pool, under
        its lease.  A worker that outlives the lease is terminated and
        the dispatch raises :class:`~repro.core.errors.ChunkTimeout`."""
        solo = ProcessPoolExecutor(max_workers=1, mp_context=self._ctx)
        try:
            fut = solo.submit(_prove_group_worker, self.keystore_root, blob)
            try:
                return fut.result(timeout=timeout_s)
            except FuturesTimeout:
                self.breakages += 1
                raise ChunkTimeout(
                    "chunk lease expired in solo re-dispatch",
                    deadline_seconds=timeout_s,
                ) from None
        finally:
            _stop_pool(solo)

    def run(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Submit and collect in one blocking call."""
        if not tasks:
            return PoolOutcome()
        return self.finish(tasks, self.start(tasks), timeouts)
