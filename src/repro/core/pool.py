"""Multi-process proving executor.

Pure-Python proving is CPU-bound, so the thread pool in
:class:`~repro.core.service.ProvingService` can only overlap waiting — the
GIL serialises the actual work.  This module moves whole circuit groups
(or shards of one large group) into worker *processes*:

* **Jobs cross the boundary as bytes.**  A group is shipped as a
  :func:`repro.serialize.prove_jobs_to_bytes` envelope and comes back as a
  :func:`repro.serialize.job_results_to_bytes` envelope of wire-format
  bundles — no live circuit, key, or proof objects are ever pickled.
* **Workers rehydrate keys from disk, never from pickles.**  A worker
  opens the parent's :class:`~repro.core.artifacts.KeyStore` root
  *read-only* and loads the keypair the parent published before
  dispatching; a Groth16 proving key is tens of kilobytes of group
  elements that the disk cache already stores in wire format, and a
  worker that fabricated its own keypair would produce proofs nobody can
  verify.  Spartan groups need no key material at all.
* **Spawn-safe.**  The worker entrypoint is a top-level function and all
  of its inputs are primitives, so it works under the ``spawn`` start
  method (macOS/Windows default, and required under free-threading);
  ``fork`` is preferred where available because it skips re-importing the
  interpreter state.
* **Failure isolation.**  A Python-level error inside one group's worker
  is pickled back and reported for that group only.  A *dying* worker
  (segfault, ``os._exit``) breaks the whole pool and every unfinished
  future raises ``BrokenProcessPool`` — the culprit is indistinguishable
  from the collateral, so each affected group is retried once, alone, in
  a fresh single-worker pool: innocent groups complete, the culprit fails
  again and is reported as that group's error.

The :class:`GroupChunkPolicy` decides which groups are worth a process
hop at all: estimated group cost below the dispatch threshold stays
in-process (spawn + rehydration overhead would dominate), and large
groups are sharded into several chunks so one hot circuit saturates every
worker instead of one.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import serialize
from .artifacts import CircuitRegistry, KeyStore
from .backends import get_backend, prove_jobs_to_wire

#: crude wall-seconds per abstract circuit-cost unit (constraints + terms
#: + wires) for this pure-Python stack; only used to compare group cost
#: against the dispatch thresholds, so being off by 2-3x merely shifts
#: the inline/process break-even point.  A calibrated
#: :class:`~repro.zkml.costmodel.CostModel` replaces it when provided.
_SECONDS_PER_COST_UNIT = 2e-3

#: test-only hook (see tests/test_pool.py): a worker whose group strategy
#: matches this environment variable dies without cleanup, simulating a
#: segfaulting worker so the BrokenProcessPool isolation path is testable.
_CRASH_ENV = "REPRO_POOL_TEST_CRASH"

ChunkTag = Tuple[tuple, int]  # (circuit key, chunk index)

# Worker-process caches, keyed by keystore root: one worker serves many
# chunks, and rebuilding circuits or re-reading keys per chunk would waste
# exactly the amortisation the pool exists for.
_WORKER_STORES: Dict[Optional[str], Tuple[CircuitRegistry, KeyStore]] = {}


def _worker_stores(root: Optional[str]) -> Tuple[CircuitRegistry, KeyStore]:
    stores = _WORKER_STORES.get(root)
    if stores is None:
        registry = CircuitRegistry()
        keystore = KeyStore(root=root, registry=registry, readonly=True)
        stores = _WORKER_STORES[root] = (registry, keystore)
    return stores


def _prove_group_worker(keystore_root: Optional[str], jobs_blob: bytes) -> bytes:
    """Top-level (picklable) pool entrypoint: one same-circuit chunk.

    Takes and returns wire envelopes only.  Raises ``KeyError`` if the
    chunk needs setup artifacts the parent never published — a worker
    must adopt the parent's keypair or fail, never mint its own.
    """
    jobs = serialize.prove_jobs_from_bytes(jobs_blob)
    if not jobs:
        return serialize.job_results_to_bytes([])
    _, x0, w0, strategy, backend_name = jobs[0]
    if os.environ.get(_CRASH_ENV) == strategy:
        os._exit(13)  # simulated segfault (test hook, see module docstring)
    a, n, b = len(x0), len(x0[0]), len(w0[0])
    registry, keystore = _worker_stores(keystore_root)
    circuit = registry.get(a, n, b, strategy)
    backend = get_backend(backend_name)
    artifacts = None
    if backend.requires_setup:
        artifacts = keystore.artifacts(a, n, b, strategy, backend_name)
    if len(jobs) >= 2:
        # A chunk amortises the eager table build; a single job would pay
        # it for nothing (promote-on-reuse never builds for one shot).
        backend.warm(artifacts)
    results = prove_jobs_to_wire(
        backend_name,
        circuit,
        artifacts,
        [(job_id, x, w) for job_id, x, w, _, _ in jobs],
    )
    return serialize.job_results_to_bytes(results)


@dataclass
class GroupChunkPolicy:
    """Cost-driven inline-vs-process and sharding decisions.

    Group cost is estimated from the closed-form circuit costs
    (:func:`repro.zkml.compile.matmul_cost`); with a calibrated
    ``cost_model`` the estimate is in real predicted seconds, otherwise a
    static rate converts abstract cost units to rough seconds.  A group
    below ``min_dispatch_seconds`` stays in-process; anything above is
    split into up to ``workers`` chunks of at least
    ``target_chunk_seconds`` of predicted work each.
    """

    workers: int = 2
    min_dispatch_seconds: float = 0.25
    target_chunk_seconds: float = 0.1
    cost_model: object = None  # Optional[repro.zkml.costmodel.CostModel]

    def job_seconds(self, key) -> float:
        """Predicted proving seconds for one job of this circuit."""
        from ..zkml.compile import matmul_cost  # lazy: avoids an import cycle

        a, n, b, strategy, backend = key
        cost = matmul_cost(a, n, b, strategy)
        if self.cost_model is not None:
            if backend == "groth16":
                return self.cost_model.groth16_prove_time(cost)
            return self.cost_model.spartan_prove_time(cost)
        return (
            cost.constraints + cost.terms + cost.wires
        ) * _SECONDS_PER_COST_UNIT

    def plan(self, key, n_jobs: int) -> int:
        """Number of process chunks for the group; ``0`` = serve inline."""
        if n_jobs <= 0:
            return 0
        total = self.job_seconds(key) * n_jobs
        if total < self.min_dispatch_seconds:
            return 0
        return min(
            max(1, self.workers),
            n_jobs,
            max(1, math.ceil(total / self.target_chunk_seconds)),
        )

    @staticmethod
    def chunk(jobs: Sequence, n_chunks: int) -> List[List]:
        """Split ``jobs`` into ``n_chunks`` contiguous, balanced slices."""
        n_chunks = max(1, min(n_chunks, len(jobs)))
        size, extra = divmod(len(jobs), n_chunks)
        out, start = [], 0
        for i in range(n_chunks):
            end = start + size + (1 if i < extra else 0)
            out.append(list(jobs[start:end]))
            start = end
        return out


@dataclass
class PoolOutcome:
    """What one :meth:`ProcessProvingExecutor.run` produced."""

    #: tag -> decoded ``(job_id, bundle_bytes, prove_seconds)`` triples
    results: Dict[ChunkTag, List[Tuple[int, bytes, float]]] = field(
        default_factory=dict
    )
    #: tag -> error message for chunks that failed (isolated, not fatal)
    errors: Dict[ChunkTag, str] = field(default_factory=dict)
    #: chunks retried in a fresh pool after a worker died mid-batch
    retried: List[ChunkTag] = field(default_factory=list)


class ProcessProvingExecutor:
    """Runs same-circuit job chunks on a pool of worker processes.

    ``keystore_root`` is the directory workers rehydrate Groth16 keypairs
    from; the dispatching service publishes setup artifacts there *before*
    submitting work.  ``start_method`` defaults to ``fork`` where the
    platform offers it (cheapest start-up) and ``spawn`` otherwise; both
    are supported and tested.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        keystore_root: Optional[str] = None,
        start_method: Optional[str] = None,
    ):
        self.workers = max(1, workers or (os.cpu_count() or 2))
        self.keystore_root = keystore_root
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        self._ctx = multiprocessing.get_context(start_method)
        self._pool: Optional[ProcessPoolExecutor] = None

    def _pool_executor(self) -> ProcessPoolExecutor:
        # The pool persists across run() calls: worker processes keep
        # their circuit/keypair/table caches (_WORKER_STORES) warm from
        # batch to batch, which is the amortisation this module exists
        # for.  It is torn down only after a worker death poisons it.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            # If this executor is dropped without close(), shut the pool
            # down at GC time: an orphaned ProcessPoolExecutor races the
            # interpreter's exit hook and spews a harmless-but-ugly
            # "Bad file descriptor" traceback on some CPython versions.
            self._finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=False
            )
        return self._pool

    def shutdown(self) -> None:
        if self._pool is not None:
            self._finalizer.detach()
            self._pool.shutdown(wait=False)
            self._pool = None

    def start(self, tasks: Sequence[Tuple[ChunkTag, bytes]]):
        """Submit ``(tag, jobs_blob)`` chunks without blocking.

        Returns the ``(tag, future)`` list for :meth:`finish`.  Callers
        overlap work by submitting first, doing in-process serving, then
        finishing — all from one thread, so worker forks never happen
        from a helper thread of a lock-holding process.
        """
        pool = self._pool_executor()
        return [
            (tag, pool.submit(_prove_group_worker, self.keystore_root, blob))
            for tag, blob in tasks
        ]

    def finish(
        self, tasks: Sequence[Tuple[ChunkTag, bytes]], futures
    ) -> PoolOutcome:
        """Collect :meth:`start`'s futures; never raises for a chunk.

        Worker exceptions are reported per chunk in ``errors``; a dying
        worker poisons only its own chunk (see module docstring).
        """
        outcome = PoolOutcome()
        broken: List[ChunkTag] = []
        for tag, fut in futures:
            try:
                outcome.results[tag] = serialize.job_results_from_bytes(
                    fut.result()
                )
            except BrokenProcessPool:
                broken.append(tag)
            except Exception as exc:  # noqa: BLE001 — reported per chunk
                outcome.errors[tag] = f"{type(exc).__name__}: {exc}"
        if broken:
            self.shutdown()  # the shared pool is poisoned; rebuild lazily
            by_tag = dict(tasks)
            for tag in broken:
                outcome.retried.append(tag)
                try:
                    with ProcessPoolExecutor(
                        max_workers=1, mp_context=self._ctx
                    ) as solo:
                        blob = solo.submit(
                            _prove_group_worker, self.keystore_root, by_tag[tag]
                        ).result()
                    outcome.results[tag] = serialize.job_results_from_bytes(blob)
                except Exception as exc:  # noqa: BLE001
                    outcome.errors[tag] = f"{type(exc).__name__}: {exc}"
        return outcome

    def run(self, tasks: Sequence[Tuple[ChunkTag, bytes]]) -> PoolOutcome:
        """Submit and collect in one blocking call."""
        if not tasks:
            return PoolOutcome()
        return self.finish(tasks, self.start(tasks))
