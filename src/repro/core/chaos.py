"""Seeded chaos soak for the remote proving fleet.

One-shot fault tests (``tests/test_resilience.py``, ``tests/test_remote.py``)
prove each failure mode is *handled*; this harness proves the transport
survives *sustained, overlapping* churn — workers SIGKILLed and restarted
mid-batch, replies eaten by the network (``net_drop``), replies stalled
past the chunk lease (``net_stall``) — while the service keeps its
exactly-once results contract:

* **zero lost jobs** — every submitted job id comes back proven;
* **zero duplicated jobs** — no job id is reported twice;
* **byte-identical bundles** — under ``REPRO_WORKER_RNG_SEED`` the
  surviving Groth16 bundles equal a fault-free reference run's, byte for
  byte, no matter which worker (or which retry) proved them.

Everything is driven by one integer seed: the job matrices, the
kill/restart schedule, and (via the fault plan's ``times`` budgets and
marker files) the network faults all replay identically.  Workers are
launched on *explicit* ports so a killed worker restarts at the same
registry address — the fleet topology the dispatcher sees never changes,
only its health.

The CI smoke mode (``tests/test_chaos.py``) runs the acceptance-sized
soak (200 jobs, 3 kills, drops + stalls) inside a ~60 s budget; bigger
soaks just scale :class:`ChaosConfig`.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .artifacts import CircuitRegistry, KeyStore
from .faultinject import ENV_VAR as FAULT_ENV
from .faultinject import FaultPlan, FaultSpec
from .pool import GroupChunkPolicy
from .remote import TOKEN_ENV, parse_worker_addr
from .remote_worker import launch_worker, stop_workers
from .resilience import RetryPolicy
from .service import ProvingService

RNG_SEED_ENV = "REPRO_WORKER_RNG_SEED"


@dataclass
class ChaosConfig:
    """Everything a soak run needs, all deterministic from ``seed``."""

    seed: int = 0xC4A05
    jobs: int = 200
    batches: int = 8
    workers: int = 2
    kills: int = 3  # SIGKILL + same-port restart events, spread over batches
    net_drops: int = 2  # RESULTS frames eaten by the "network"
    net_stalls: int = 1  # replies stalled past the chunk lease
    stall_seconds: float = 6.0  # must exceed the chunk lease below
    shape: Tuple[int, int, int] = (2, 2, 2)
    strategy: str = "crpc_psq"
    backend: str = "groth16"  # the rng-threaded backend: byte-stable
    rng_seed: str = "chaos-soak-9"
    heartbeat_seconds: float = 0.25  # fast revival of restarted workers
    kill_delay_range: Tuple[float, float] = (0.05, 0.4)  # into-the-batch jitter
    verify_reference: bool = True  # batch-verify the fault-free run

    def retry_policy(self) -> RetryPolicy:
        """Chaos-tuned: enough attempt budget that transport-level
        recovery absorbs every injected fault (a chunk only goes inline
        if *all* retries exhaust — which would also break byte-identity,
        so the soak asserts it never happens), leases short enough that a
        ``net_stall`` trips them inside the smoke budget, and the ladder
        pinned to the remote tier."""
        return RetryPolicy(
            max_attempts=5,
            backoff_base_seconds=0.01,
            backoff_max_seconds=0.25,
            lease_multiplier=3.0,
            lease_floor_seconds=4.0,
            seed=self.seed & 0xFFFF,
            bisect=True,
            max_pool_breakages=1 << 30,
        )


@dataclass
class ChaosReport:
    """What the soak observed; the test layer asserts on this."""

    submitted: List[int] = field(default_factory=list)
    bundles: Dict[int, bytes] = field(default_factory=dict)
    duplicate_ids: List[int] = field(default_factory=list)
    lost_ids: List[int] = field(default_factory=list)
    kills: int = 0
    restarts: int = 0
    net_faults_fired: int = 0
    fallbacks: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    transport: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    reference_verified: Optional[bool] = None
    reference_bundles: Dict[int, bytes] = field(default_factory=dict)

    @property
    def byte_identical(self) -> bool:
        return bool(self.reference_bundles) and self.bundles == self.reference_bundles


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _make_jobs(config: ChaosConfig, rng: random.Random):
    """The full deterministic job list (x, w matrix pairs)."""
    a, n, b = config.shape
    jobs = []
    for _ in range(config.jobs):
        x = [[rng.randrange(1, 97) for _ in range(n)] for _ in range(a)]
        w = [[rng.randrange(1, 97) for _ in range(b)] for _ in range(n)]
        jobs.append((x, w))
    return jobs


def _make_service(
    config: ChaosConfig, executor: str, keys_root: str, addrs=None
) -> ProvingService:
    registry = CircuitRegistry()
    keystore = KeyStore(root=keys_root, registry=registry)
    kwargs = {}
    if executor == "remote":
        kwargs["remote_workers"] = addrs
        kwargs["heartbeat_seconds"] = config.heartbeat_seconds
    return ProvingService(
        workers=config.workers,
        registry=registry,
        keystore=keystore,
        executor=executor,
        chunk_policy=GroupChunkPolicy(
            workers=config.workers,
            min_dispatch_seconds=0.0,
            target_chunk_seconds=0.0001,
        ),
        retry_policy=config.retry_policy(),
        **kwargs,
    )


def run_chaos(
    config: ChaosConfig,
    workdir: str,
    auth_token: Optional[str] = None,
) -> ChaosReport:
    """Run the soak and its fault-free reference; returns the evidence.

    ``workdir`` holds the shared keystore root (both runs must prove
    under the *same* keypair for byte-identity) and the fault plan's
    firing markers.  ``auth_token`` (or an ambient ``REPRO_FLEET_TOKEN``)
    makes the whole fleet — dispatch, heartbeats, teardown — run over
    authenticated sessions.
    """
    rng = random.Random(config.seed)
    job_mats = _make_jobs(config, rng)  # consumed by BOTH runs, pre-schedule
    report = ChaosReport()
    keys_root = os.path.join(workdir, "keys")
    state_dir = os.path.join(workdir, "faults")
    os.makedirs(keys_root, exist_ok=True)

    plan = FaultPlan(
        specs=[
            FaultSpec(
                kind="net_drop", tier="remote", times=config.net_drops
            ),
            FaultSpec(
                kind="net_stall",
                tier="remote",
                times=config.net_stalls,
                seconds=config.stall_seconds,
            ),
        ],
        state_dir=state_dir,
    )

    saved_env = {
        k: os.environ.get(k) for k in (RNG_SEED_ENV, TOKEN_ENV, FAULT_ENV)
    }
    os.environ[RNG_SEED_ENV] = config.rng_seed
    if auth_token is not None:
        os.environ[TOKEN_ENV] = auth_token
    # The plan goes to the *workers'* environment only (scoped_env keeps
    # it tier-addressed); the dispatcher never fires transport faults.
    worker_env = dict(os.environ)
    plan.install(worker_env)

    ports = [_free_port() for _ in range(config.workers)]
    addrs: List[str] = []
    procs: List = []
    guard = threading.Lock()  # procs/addrs slots are swapped on restart
    t_start = time.monotonic()
    try:
        for port in ports:
            addr, proc = launch_worker(
                port=port, keystore_root=keys_root, env=worker_env
            )
            addrs.append(addr)
            procs.append(proc)

        svc = _make_service(config, "remote", keys_root, addrs)

        # -- deterministic kill/restart schedule (batch -> victim, delay) ----
        kill_batches = sorted(
            rng.sample(
                range(1, config.batches), min(config.kills, config.batches - 1)
            )
        )
        schedule = {
            b: (
                rng.randrange(config.workers),
                rng.uniform(*config.kill_delay_range),
            )
            for b in kill_batches
        }

        def _kill_and_restart(victim: int, delay: float) -> None:
            time.sleep(delay)
            with guard:
                proc = procs[victim]
            proc.kill()  # SIGKILL: no drain, no goodbye — the hard case
            proc.wait(timeout=10)
            report.kills += 1
            addr, fresh = launch_worker(
                port=ports[victim], keystore_root=keys_root, env=worker_env
            )
            with guard:
                procs[victim] = fresh
            report.restarts += 1
            # One prompt probe so the registry revives the slot without
            # waiting a full heartbeat interval.
            svc._remote.registry.ping(parse_worker_addr(addr))

        # -- the soak ---------------------------------------------------------
        try:
            per_batch = (config.jobs + config.batches - 1) // config.batches
            cursor = 0
            for batch in range(config.batches):
                mats = job_mats[cursor:cursor + per_batch]
                cursor += per_batch
                if not mats:
                    break
                for x, w in mats:
                    report.submitted.append(
                        svc.submit(
                            x, w, strategy=config.strategy, backend=config.backend
                        )
                    )
                killer = None
                if batch in schedule:
                    killer = threading.Thread(
                        target=_kill_and_restart, args=schedule[batch]
                    )
                    killer.start()
                batch_report = svc.run(verify=False)
                if killer is not None:
                    killer.join(timeout=60)
                report.fallbacks.extend(batch_report.fallbacks)
                report.errors.extend(
                    f"job {o.job_id}: {o.status}: {o.error}"
                    for o in batch_report.job_outcomes.values()
                    if o.status != "ok"
                )
                for r in batch_report.results:
                    if r.job_id in report.bundles:
                        report.duplicate_ids.append(r.job_id)
                    else:
                        report.bundles[r.job_id] = r.bundle_bytes
            if svc._remote is not None:
                report.transport = svc._remote.transport_stats()
        finally:
            svc.close()

        report.lost_ids = sorted(set(report.submitted) - set(report.bundles))
        report.net_faults_fired = sum(
            plan.fired(i) for i in range(len(plan.specs))
        )
        report.wall_seconds = time.monotonic() - t_start

        # -- fault-free reference run (process tier, same keys, same rng) ----
        ref = _make_service(config, "process", keys_root)
        try:
            for x, w in job_mats:
                ref.submit(x, w, strategy=config.strategy, backend=config.backend)
            ref_report = ref.run(verify=config.verify_reference)
            if config.verify_reference:
                report.reference_verified = ref_report.verified
            report.reference_bundles = {
                r.job_id: r.bundle_bytes for r in ref_report.results
            }
        finally:
            ref.close()
    finally:
        stop_workers(procs)
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return report


__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]
