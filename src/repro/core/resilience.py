"""Retry, backoff, and lease policy for the proving pipeline.

:class:`RetryPolicy` is the one configuration object the fault-tolerant
serving stack reads: how many times a failed chunk is re-dispatched, how
long to back off between attempts (exponential, with *deterministic*
seeded jitter so tests replay exactly), which error classes are worth
retrying at all (delegated to the taxonomy in
:mod:`repro.core.errors`), how chunk lease deadlines are derived from the
cost model's per-job estimates, and when a persistently failing executor
tier should be abandoned for the next rung of the degradation ladder.

:class:`ChunkLease` is the per-chunk deadline record the process executor
keeps while futures are in flight: issued at dispatch, checked against a
monotonic clock, expired leases trigger pool teardown and re-dispatch.
"""

from __future__ import annotations

import hashlib
import struct
import time
from dataclasses import dataclass
from typing import Optional

from .errors import ProvingError


@dataclass
class RetryPolicy:
    """Tunable fault-tolerance parameters (all deterministic).

    ``max_attempts`` counts *dispatches* of one chunk, the first included;
    ``1`` disables retries entirely.  Backoff for attempt *k* (after the
    k-th failure) is ``base * multiplier**(k-1)``, capped at
    ``backoff_max_seconds``, scaled by ``1 + jitter_fraction * u`` where
    ``u ∈ [0, 1)`` is derived by hashing ``(seed, tag, attempt)`` — the
    same schedule on every run, but decorrelated across chunks.

    Chunk leases are ``lease_multiplier ×`` the chunk's predicted proving
    seconds (from :meth:`repro.core.pool.GroupChunkPolicy.job_seconds`),
    floored at ``lease_floor_seconds``; the generous defaults make a
    spurious expiry on a slow machine far less likely than a real hang.
    ``lease_multiplier <= 0`` disables deadlines (the pre-resilience
    behaviour: wait forever).

    ``bisect`` controls whether a chunk that exhausts its retries with an
    isolatable error is split to hunt the poison job;
    ``max_pool_breakages`` is the degradation-ladder trigger: once one
    service tears down that many broken/hung pools, it stops dispatching
    to processes and degrades to the thread tier.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 1.0
    jitter_fraction: float = 0.25
    seed: int = 0x5EED
    lease_multiplier: float = 40.0
    lease_floor_seconds: float = 30.0
    bisect: bool = True
    max_pool_breakages: int = 3

    def is_retryable(self, error: ProvingError) -> bool:
        """Whether the error class permits another dispatch (attempt
        budget is the caller's concern)."""
        return bool(error.retryable)

    def backoff_seconds(self, tag, attempt: int) -> float:
        """Deterministic backoff before dispatch ``attempt + 1`` of
        ``tag`` (``attempt`` = dispatches already failed, >= 1)."""
        if self.max_attempts <= 1 or self.backoff_base_seconds <= 0:
            return 0.0
        base = self.backoff_base_seconds * (
            self.backoff_multiplier ** max(0, attempt - 1)
        )
        base = min(base, self.backoff_max_seconds)
        digest = hashlib.sha256(
            struct.pack(">Q", self.seed & 0xFFFFFFFFFFFFFFFF)
            + repr(tag).encode()
            + struct.pack(">I", attempt)
        ).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter_fraction * u)

    def lease_seconds(
        self, predicted_job_seconds: float, n_jobs: int
    ) -> Optional[float]:
        """Deadline for a chunk of ``n_jobs`` jobs, or ``None`` for no
        deadline (``lease_multiplier <= 0``)."""
        if self.lease_multiplier <= 0:
            return None
        predicted = max(0.0, predicted_job_seconds) * max(1, n_jobs)
        return max(self.lease_floor_seconds, self.lease_multiplier * predicted)


#: the pre-resilience configuration: single dispatch, no deadline, no
#: bisection — used by the overhead benchmark to price the layer itself
BARE_POLICY = RetryPolicy(
    max_attempts=1, lease_multiplier=0.0, bisect=False, max_pool_breakages=1 << 30
)


@dataclass
class ChunkLease:
    """One in-flight chunk's deadline accounting.

    ``timeout_seconds=None`` means the chunk holds an indefinite lease
    (never expires).  Times are ``time.monotonic`` values.
    """

    tag: object
    timeout_seconds: Optional[float] = None
    started: float = 0.0
    attempt: int = 1

    def __post_init__(self):
        if not self.started:
            self.started = time.monotonic()

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout_seconds is None:
            return None
        return self.started + self.timeout_seconds

    def expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= deadline

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        deadline = self.deadline
        if deadline is None:
            return None
        return max(
            0.0, deadline - (time.monotonic() if now is None else now)
        )

    def renew(self) -> "ChunkLease":
        """A fresh lease for the next dispatch attempt of this chunk."""
        return ChunkLease(
            tag=self.tag,
            timeout_seconds=self.timeout_seconds,
            started=time.monotonic(),
            attempt=self.attempt + 1,
        )
