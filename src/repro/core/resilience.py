"""Retry, backoff, and lease policy for the proving pipeline.

:class:`RetryPolicy` is the one configuration object the fault-tolerant
serving stack reads: how many times a failed chunk is re-dispatched, how
long to back off between attempts (exponential, with *deterministic*
seeded jitter so tests replay exactly), which error classes are worth
retrying at all (delegated to the taxonomy in
:mod:`repro.core.errors`), how chunk lease deadlines are derived from the
cost model's per-job estimates, and when a persistently failing executor
tier should be abandoned for the next rung of the degradation ladder.

:class:`ChunkLease` is the per-chunk deadline record the process executor
keeps while futures are in flight: issued at dispatch, checked against a
monotonic clock, expired leases trigger pool teardown and re-dispatch.

:class:`CircuitBreaker` is the per-worker health gate the remote
registry consults before placement: dispatch outcomes feed failure and
latency EWMAs, a worker that fails too often trips *open* (no dispatches),
and after a deterministic cooldown a single *half-open* probe decides
whether it closes again or re-opens with an escalated cooldown.  The
clock is injectable, so every transition is replayable in tests.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import time
from dataclasses import dataclass
from typing import Optional

from .errors import ProvingError


@dataclass
class RetryPolicy:
    """Tunable fault-tolerance parameters (all deterministic).

    ``max_attempts`` counts *dispatches* of one chunk, the first included;
    ``1`` disables retries entirely.  Backoff for attempt *k* (after the
    k-th failure) is ``base * multiplier**(k-1)``, capped at
    ``backoff_max_seconds``, scaled by ``1 + jitter_fraction * u`` where
    ``u ∈ [0, 1)`` is derived by hashing ``(seed, tag, attempt)`` — the
    same schedule on every run, but decorrelated across chunks.

    Chunk leases are ``lease_multiplier ×`` the chunk's predicted proving
    seconds (from :meth:`repro.core.pool.GroupChunkPolicy.job_seconds`),
    floored at ``lease_floor_seconds``; the generous defaults make a
    spurious expiry on a slow machine far less likely than a real hang.
    ``lease_multiplier <= 0`` disables deadlines (the pre-resilience
    behaviour: wait forever).

    ``bisect`` controls whether a chunk that exhausts its retries with an
    isolatable error is split to hunt the poison job;
    ``max_pool_breakages`` is the degradation-ladder trigger: once one
    service tears down that many broken/hung pools, it stops dispatching
    to processes and degrades to the thread tier.
    """

    max_attempts: int = 3
    backoff_base_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    backoff_max_seconds: float = 1.0
    jitter_fraction: float = 0.25
    seed: int = 0x5EED
    lease_multiplier: float = 40.0
    lease_floor_seconds: float = 30.0
    bisect: bool = True
    max_pool_breakages: int = 3

    def is_retryable(self, error: ProvingError) -> bool:
        """Whether the error class permits another dispatch (attempt
        budget is the caller's concern)."""
        return bool(error.retryable)

    def backoff_seconds(self, tag, attempt: int) -> float:
        """Deterministic backoff before dispatch ``attempt + 1`` of
        ``tag`` (``attempt`` = dispatches already failed, >= 1)."""
        if self.max_attempts <= 1 or self.backoff_base_seconds <= 0:
            return 0.0
        base = self.backoff_base_seconds * (
            self.backoff_multiplier ** max(0, attempt - 1)
        )
        base = min(base, self.backoff_max_seconds)
        digest = hashlib.sha256(
            struct.pack(">Q", self.seed & 0xFFFFFFFFFFFFFFFF)
            + repr(tag).encode()
            + struct.pack(">I", attempt)
        ).digest()
        u = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return base * (1.0 + self.jitter_fraction * u)

    def lease_seconds(
        self, predicted_job_seconds: float, n_jobs: int
    ) -> Optional[float]:
        """Deadline for a chunk of ``n_jobs`` jobs, or ``None`` for no
        deadline (``lease_multiplier <= 0``)."""
        if self.lease_multiplier <= 0:
            return None
        predicted = max(0.0, predicted_job_seconds) * max(1, n_jobs)
        return max(self.lease_floor_seconds, self.lease_multiplier * predicted)


# -- per-worker circuit breaker ---------------------------------------------------

#: breaker states (strings, not an enum: they travel into stats dicts)
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass
class BreakerConfig:
    """Tunable thresholds for :class:`CircuitBreaker` (all deterministic).

    A breaker opens when either ``consecutive_failures`` dispatches in a
    row fail, or — once at least ``min_samples`` outcomes are recorded —
    the failure EWMA (per-outcome exponential moving average with weight
    ``ewma_alpha``) crosses ``failure_threshold``.  An open breaker
    schedules its half-open probe ``cooldown_seconds`` later, doubling
    (``cooldown_multiplier``) per consecutive re-open up to
    ``cooldown_max_seconds`` — a flapping worker is probed ever more
    lazily, a recovered one rejoins after a single successful probe.
    """

    consecutive_failures: int = 3
    failure_threshold: float = 0.5
    min_samples: int = 4
    ewma_alpha: float = 0.35
    cooldown_seconds: float = 2.0
    cooldown_multiplier: float = 2.0
    cooldown_max_seconds: float = 30.0


class CircuitBreaker:
    """closed → open → half-open gate for one remote worker.

    Thread-safe; fed by dispatch outcomes only (heartbeat reachability is
    tracked separately by the registry — a worker that *answers pings but
    botches chunks* is exactly what this catches).  All scheduling is
    against the injected ``clock`` (``time.monotonic`` by default), so a
    test with a fake clock steps every transition deterministically.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        clock=time.monotonic,
    ):
        self.config = config if config is not None else BreakerConfig()
        self.clock = clock
        self._guard = threading.Lock()
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.failure_ewma = 0.0  # 0.0 = all success, 1.0 = all failure
        self.latency_ewma: Optional[float] = None  # seconds; None until sampled
        self.samples = 0
        self.opened_count = 0  # escalation level (halved on each close)
        self.total_opens = 0  # lifetime opens (stats only)
        self.probe_at: Optional[float] = None  # when half-open admits a probe
        self._probe_in_flight = False

    # -- placement gate -----------------------------------------------------------
    def admissible(self, now: Optional[float] = None) -> bool:
        """Whether placement may offer this worker a chunk right now.
        Read-only: claiming the half-open probe slot happens in
        :meth:`note_dispatch`."""
        with self._guard:
            if self.state == BREAKER_CLOSED:
                return True
            now = self.clock() if now is None else now
            if self.state == BREAKER_OPEN and self.probe_at is not None:
                if now >= self.probe_at:
                    return True  # cooldown served; a probe may be claimed
                return False
            if self.state == BREAKER_HALF_OPEN:
                return not self._probe_in_flight
            return False

    def note_dispatch(self, now: Optional[float] = None) -> None:
        """Record that placement chose this worker.  An open breaker past
        its cooldown transitions to half-open here and claims the single
        probe slot, so concurrent dispatch threads cannot double-probe."""
        with self._guard:
            now = self.clock() if now is None else now
            if self.state == BREAKER_OPEN and (
                self.probe_at is not None and now >= self.probe_at
            ):
                self.state = BREAKER_HALF_OPEN
                self._probe_in_flight = True
            elif self.state == BREAKER_HALF_OPEN:
                self._probe_in_flight = True

    # -- outcome feed -------------------------------------------------------------
    def record_success(self, latency_seconds: Optional[float] = None) -> None:
        with self._guard:
            self._sample(failed=False, latency=latency_seconds)
            self.consecutive_failures = 0
            if self.state in (BREAKER_HALF_OPEN, BREAKER_OPEN):
                # The probe (or a straggler dispatch) came back good:
                # close, but keep the escalation history — a flapper that
                # re-opens gets the next-longer cooldown.
                self.state = BREAKER_CLOSED
                self._probe_in_flight = False
                self.probe_at = None
                # Decay rather than reset the history: one good probe is
                # evidence, not absolution — a flapper that re-opens still
                # serves an escalated cooldown.
                self.failure_ewma *= 0.5
                self.opened_count //= 2

    def record_failure(self, latency_seconds: Optional[float] = None) -> None:
        with self._guard:
            self._sample(failed=True, latency=latency_seconds)
            self.consecutive_failures += 1
            cfg = self.config
            if self.state == BREAKER_HALF_OPEN:
                self._open()  # failed probe: straight back to open, longer
                return
            if self.state == BREAKER_OPEN:
                return  # stragglers from before the trip change nothing
            tripped = self.consecutive_failures >= cfg.consecutive_failures or (
                self.samples >= cfg.min_samples
                and self.failure_ewma >= cfg.failure_threshold
            )
            if tripped:
                self._open()

    # -- internals ---------------------------------------------------------------
    def _sample(self, failed: bool, latency: Optional[float]) -> None:
        a = self.config.ewma_alpha
        self.failure_ewma += a * ((1.0 if failed else 0.0) - self.failure_ewma)
        if latency is not None:
            if self.latency_ewma is None:
                self.latency_ewma = latency
            else:
                self.latency_ewma += a * (latency - self.latency_ewma)
        self.samples += 1

    def _open(self) -> None:
        cfg = self.config
        self.state = BREAKER_OPEN
        self._probe_in_flight = False
        self.opened_count += 1
        self.total_opens += 1
        cooldown = min(
            cfg.cooldown_max_seconds,
            cfg.cooldown_seconds
            * cfg.cooldown_multiplier ** max(0, self.opened_count - 1),
        )
        self.probe_at = self.clock() + cooldown

    def snapshot(self) -> dict:
        """Stats-dict view (registry PONG/report plumbing)."""
        with self._guard:
            return {
                "state": self.state,
                "failure_ewma": round(self.failure_ewma, 4),
                "latency_ewma": (
                    None
                    if self.latency_ewma is None
                    else round(self.latency_ewma, 6)
                ),
                "samples": self.samples,
                "total_opens": self.total_opens,
            }


#: the pre-resilience configuration: single dispatch, no deadline, no
#: bisection — used by the overhead benchmark to price the layer itself
BARE_POLICY = RetryPolicy(
    max_attempts=1, lease_multiplier=0.0, bisect=False, max_pool_breakages=1 << 30
)


@dataclass
class ChunkLease:
    """One in-flight chunk's deadline accounting.

    ``timeout_seconds=None`` means the chunk holds an indefinite lease
    (never expires).  Times are ``time.monotonic`` values.
    """

    tag: object
    timeout_seconds: Optional[float] = None
    started: float = 0.0
    attempt: int = 1

    def __post_init__(self):
        if not self.started:
            self.started = time.monotonic()

    @property
    def deadline(self) -> Optional[float]:
        if self.timeout_seconds is None:
            return None
        return self.started + self.timeout_seconds

    def expired(self, now: Optional[float] = None) -> bool:
        deadline = self.deadline
        if deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= deadline

    def remaining(self, now: Optional[float] = None) -> Optional[float]:
        deadline = self.deadline
        if deadline is None:
            return None
        return max(
            0.0, deadline - (time.monotonic() if now is None else now)
        )

    def renew(self) -> "ChunkLease":
        """A fresh lease for the next dispatch attempt of this chunk."""
        return ChunkLease(
            tag=self.tag,
            timeout_seconds=self.timeout_seconds,
            started=time.monotonic(),
            attempt=self.attempt + 1,
        )
