"""CRPC — Constraint-Reduced Polynomial Circuits (paper Sec. III-A).

Pure-math helpers for the packing transform, plus the constraint-count
theory the paper states (``a*b*n -> n``).  The circuit construction itself
lives in :mod:`repro.gadgets.matmul`; these functions are used by tests and
benchmarks to audit it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS


def pack_x_column(x_mat: Sequence[Sequence[int]], k: int, b: int, z: int) -> int:
    """``X_k(z) = sum_i z^{i*b} x_ik`` — a column of X as a polynomial."""
    return sum(
        pow(z, i * b, R) * (int(row[k]) % R) for i, row in enumerate(x_mat)
    ) % R


def pack_w_row(w_mat: Sequence[Sequence[int]], k: int, z: int) -> int:
    """``W_k(z) = sum_j z^j w_kj`` — a row of W as a polynomial."""
    return sum(
        pow(z, j, R) * (int(v) % R) for j, v in enumerate(w_mat[k])
    ) % R


def pack_y(y_mat: Sequence[Sequence[int]], b: int, z: int) -> int:
    """``Y(z) = sum_{ij} z^{i*b+j} y_ij``."""
    return sum(
        pow(z, i * b + j, R) * (int(v) % R)
        for i, row in enumerate(y_mat)
        for j, v in enumerate(row)
    ) % R


def crpc_identity_holds(
    x_mat, w_mat, y_mat, z: int
) -> bool:
    """Check the paper's generalised CRPC identity at a concrete point:

    ``sum_{ij} Z^{ib+j} y_ij == sum_k X_k(Z) * W_k(Z)``.
    """
    if not x_mat or not x_mat[0] or not w_mat or not w_mat[0]:
        raise ValueError("crpc identity needs non-empty matrices")
    a = len(x_mat)
    n = len(x_mat[0])
    b = len(w_mat[0])
    if len(w_mat) != n:
        raise ValueError(
            f"shape mismatch: X is {a}x{n} but W has {len(w_mat)} rows"
        )
    if any(len(row) != n for row in x_mat) or any(len(row) != b for row in w_mat):
        raise ValueError("ragged matrix rows")
    if len(y_mat) != a or any(len(row) != b for row in y_mat):
        raise ValueError(f"Y must be {a}x{b}")
    del a
    lhs = pack_y(y_mat, b, z)
    rhs = sum(
        pack_x_column(x_mat, k, b, z) * pack_w_row(w_mat, k, z)
        for k in range(n)
    ) % R
    return lhs == rhs


@dataclass
class ConstraintTheory:
    """Closed-form constraint/variable counts per strategy, as the paper
    reports them (Sec. III-A/B)."""

    strategy: str
    constraints: int
    variables: int
    left_wire_terms: int


def theory_counts(a: int, n: int, b: int, strategy: str) -> ConstraintTheory:
    if min(a, n, b) < 1:
        # crpc_psq/zen count ``n - 1`` packing variables, so n == 0 would
        # silently yield negative totals instead of an impossible shape.
        raise ValueError(f"matmul dimensions must be positive, got {a}x{n}x{b}")
    io = a * n + n * b + a * b  # x, w, y wires
    if strategy == "vanilla":
        return ConstraintTheory(
            strategy,
            constraints=a * b * n + a * b,
            variables=io + a * b * n,
            left_wire_terms=a * b * n + a * b * n,
        )
    if strategy == "vanilla_psq":
        return ConstraintTheory(
            strategy,
            constraints=a * b * n,
            variables=io + a * b * (n - 1),
            left_wire_terms=a * b * n,
        )
    if strategy == "crpc":
        return ConstraintTheory(
            strategy,
            constraints=n + a * b,
            variables=io + a * b * n,
            left_wire_terms=a * n + a * b * n,
        )
    if strategy == "crpc_psq":
        return ConstraintTheory(
            strategy,
            constraints=n,
            variables=io + (n - 1),
            left_wire_terms=a * n,
        )
    if strategy == "vcnn":
        return ConstraintTheory(
            strategy,
            constraints=a * b,
            variables=io + a * b * (2 * n - 2),
            left_wire_terms=a * b * n,
        )
    if strategy == "zen":
        pairs, tail = n // 2, n % 2
        return ConstraintTheory(
            strategy,
            constraints=a * b * (pairs + tail + 1),
            variables=io + a * b * (3 * pairs + tail),
            left_wire_terms=a * b * (2 * pairs + tail)
            + a * b * (pairs + tail),
        )
    raise ValueError(f"unknown strategy {strategy!r}")
