"""Typed error taxonomy for the proving pipeline.

Every failure the serving stack can produce is a :class:`ProvingError`
carrying structured context (circuit key, chunk index, job id, attempt
count) instead of a bare exception string.  Two class attributes drive the
resilience machinery in :mod:`repro.core.resilience` /
:mod:`repro.core.pool`:

* ``retryable`` — whether re-dispatching the same work can plausibly
  succeed (a crashed or hung worker may have been transient OOM or
  scheduling; a missing key will be missing again);
* ``isolate`` — whether the failure is worth *bisecting*: splitting the
  chunk to pin the blame on a single poison job (a crash or a per-job
  Python error is; a key the whole group lacks is not).

This module is import-light on purpose (stdlib only): ``serialize.py``
raises :class:`CorruptEnvelope` and must not drag the whole ``core``
package in, and instances cross process boundaries, so they pickle
through a plain ``(class, message, context)`` triple.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: context attributes every ProvingError carries (and pickles)
_CONTEXT_FIELDS = (
    "circuit_key",
    "chunk_index",
    "job_id",
    "attempts",
    "deadline_seconds",
    "offset",
)


def _rebuild_error(cls, message, context):
    err = cls(message)
    for name, value in context.items():
        setattr(err, name, value)
    return err


class ProvingError(Exception):
    """Base of the proving-pipeline failure taxonomy.

    ``message`` is the human-readable cause; the keyword context fields
    locate the failure (which circuit, which chunk, which job, how many
    attempts were burned).  ``str()`` renders both, so legacy callers
    that stored ``f"{type}: {exc}"`` strings lose nothing.
    """

    #: taxonomy label, stable across renames (used in reports/logs)
    kind = "proving-error"
    #: re-dispatching the identical work may succeed
    retryable = False
    #: bisecting the chunk can pin the failure on a poison job
    isolate = True

    def __init__(
        self,
        message: str = "",
        *,
        circuit_key: Optional[Tuple] = None,
        chunk_index: Optional[int] = None,
        job_id: Optional[int] = None,
        attempts: int = 1,
        deadline_seconds: Optional[float] = None,
        offset: Optional[int] = None,
    ):
        super().__init__(message)
        self.message = message
        self.circuit_key = circuit_key
        self.chunk_index = chunk_index
        self.job_id = job_id
        self.attempts = attempts
        self.deadline_seconds = deadline_seconds
        self.offset = offset

    # -- pickling (workers raise these across the process boundary) -----------
    def __reduce__(self):
        context = {name: getattr(self, name) for name in _CONTEXT_FIELDS}
        return (_rebuild_error, (type(self), self.message, context))

    # -- rendering ------------------------------------------------------------
    def context(self) -> str:
        parts = []
        if self.circuit_key is not None:
            parts.append(f"circuit={self.circuit_key}")
        if self.chunk_index is not None:
            parts.append(f"chunk={self.chunk_index}")
        if self.job_id is not None:
            parts.append(f"job={self.job_id}")
        if self.attempts > 1:
            parts.append(f"attempts={self.attempts}")
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds:.3g}s")
        if self.offset is not None:
            parts.append(f"offset={self.offset}")
        return ", ".join(parts)

    def __str__(self) -> str:
        ctx = self.context()
        base = self.message or self.kind
        return f"{base} [{ctx}]" if ctx else base


class WorkerCrash(ProvingError):
    """A worker process died without reporting (segfault, ``os._exit``,
    OOM-kill) — observed as ``BrokenProcessPool`` or a terminated pool."""

    kind = "worker-crash"
    retryable = True
    isolate = True


class ChunkTimeout(ProvingError):
    """A chunk outlived its lease deadline; the worker was presumed hung
    and its pool was torn down so the chunk could be re-dispatched."""

    kind = "chunk-timeout"
    retryable = True
    isolate = True


class CorruptEnvelope(ProvingError, ValueError):
    """A job or result wire envelope failed to decode.

    Subclasses ``ValueError`` so every existing ``except ValueError``
    (and the fuzzing contract in ``tests/test_serialize_fuzz.py``) still
    holds.  Retryable: a corrupt *result* envelope is a transport-layer
    fault a re-dispatch can outrun; a corrupt *jobs* blob will fail again
    and exhausts into a chunk-fatal error (it cannot be bisected — the
    jobs inside it are unreadable)."""

    kind = "corrupt-envelope"
    retryable = True
    isolate = False


class MissingKey(ProvingError):
    """A worker found no setup artifacts to rehydrate (workers must adopt
    the parent's keypair or fail — never mint their own).  Not retryable
    and not bisectable: the whole group lacks the key equally.  The
    degradation ladder re-serves the group in-process instead, where the
    parent *may* run setup."""

    kind = "missing-key"
    retryable = False
    isolate = False


class PoisonJob(ProvingError):
    """A single job confirmed (by bisection or repeated single-job
    failure) to kill every worker or attempt it touches.  Quarantined
    into the report; never retried."""

    kind = "poison-job"
    retryable = False
    isolate = True


class FleetAuthError(ProvingError):
    """The HMAC session handshake failed: missing/wrong fleet token,
    a malformed handshake frame, or a worker that closed the connection
    before granting a session.  Not retryable — the same credentials will
    fail the same way on every dispatch — and never bisected: the jobs
    were never even decoded.  Exhausts straight to chunk-fatal, so the
    degradation ladder re-serves the group locally."""

    kind = "auth-failed"
    retryable = False
    isolate = False


class WorkerUnavailable(ProvingError):
    """No worker could be reached to run the chunk (connection refused,
    empty registry, every host marked dead).  Retryable — a host may come
    back, or another may take the chunk — but never bisected: the jobs
    are innocent, the *fleet* is the problem.  Exhausted retries go
    chunk-fatal so the degradation ladder re-serves the group locally."""

    kind = "worker-unavailable"
    retryable = True
    isolate = False


#: kind tag -> class, for rehydrating a typed error that crossed the wire
#: as a ``(kind, message, job_id)`` payload (see ``serialize.remote_error_*``).
ERROR_KINDS = {
    cls.kind: cls
    for cls in (
        ProvingError,
        WorkerCrash,
        ChunkTimeout,
        CorruptEnvelope,
        MissingKey,
        PoisonJob,
        FleetAuthError,
        WorkerUnavailable,
    )
}


def error_from_kind(kind: str, message: str, **context) -> ProvingError:
    """Rebuild a typed error from its wire ``kind`` tag (unknown tags
    degrade to the base class — a newer worker must not crash an older
    dispatcher)."""
    return ERROR_KINDS.get(kind, ProvingError)(message, **context)


def wrap_error(exc: BaseException, **context) -> ProvingError:
    """Classify an arbitrary exception into the taxonomy.

    Already-typed errors pass through (context merged in); everything
    else maps by cause: dead pools to :class:`WorkerCrash`, future
    timeouts to :class:`ChunkTimeout`, ``KeyError`` (the keystore's
    rehydrate-or-fail contract) to :class:`MissingKey`, decode failures
    to :class:`CorruptEnvelope`.  The generic fallback is a deterministic,
    non-retryable :class:`ProvingError` (a Python-level error in the
    prover fails the same way every time) that is still ``isolate`` —
    bisection can pin it on the job that caused it.
    """
    if isinstance(exc, ProvingError):
        for name, value in context.items():
            if value is not None:
                setattr(exc, name, value)
        return exc
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool

    message = f"{type(exc).__name__}: {exc}"
    if isinstance(exc, BrokenProcessPool):
        cls = WorkerCrash
    elif isinstance(exc, FuturesTimeout):
        cls = ChunkTimeout
    elif isinstance(exc, KeyError):
        cls = MissingKey
    else:
        cls = ProvingError
    return cls(message, **context)
