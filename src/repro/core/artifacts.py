"""Process-wide circuit and key artifact store.

Building a :class:`~repro.gadgets.matmul.MatmulCircuit` and (for Groth16)
running trusted setup dominate cold-start cost, and both depend only on
``(shape, strategy, backend)`` — never on the concrete matrices.  This
module caches them once per process and optionally persists keypairs to
disk, so that:

* every ``MatmulProver`` of the same circuit shares one keypair, making
  proofs verifiable across instances (the seed code re-ran setup per
  instance, so a fresh verifier held a *different* key and rejected
  everything);
* a restarted service reloads its keys instead of re-paying setup;
* the :class:`~repro.core.service.ProvingService` amortises setup across a
  whole batch.

``CircuitRegistry`` also hands out a per-circuit lock: circuits hold
mutable witness values during ``assign``, so concurrent provers of the same
shape must serialise the assign+prove critical section.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, Optional, Tuple

from ..gadgets.matmul import MatmulCircuit
from .backends import ProofBackend, get_backend

CircuitKey = Tuple[int, int, int, str]          # (a, n, b, strategy)
ArtifactKey = Tuple[int, int, int, str, str]    # + backend name

# Distinguishes tmp files of concurrent KeyStore instances within one
# process (the pid alone only separates processes).
_TMP_COUNTER = itertools.count()

# Publish retry/repair tuning: ~10s of polling before the last-resort
# replace.  The repair lock is an fcntl flock, so a crashed holder's lock
# releases with its process — no stale-timeout reclaim window in which
# two repairers could both think they hold it.
_PUBLISH_ATTEMPTS = 100
_REPAIR_POLL_SECONDS = 0.1


class CircuitRegistry:
    """Cache of built circuits, keyed by ``(a, n, b, strategy)``."""

    def __init__(self) -> None:
        self._circuits: Dict[CircuitKey, MatmulCircuit] = {}
        self._locks: Dict[CircuitKey, threading.Lock] = {}
        self._guard = threading.Lock()
        self.builds = 0
        self.hits = 0

    def get(self, a: int, n: int, b: int, strategy: str) -> MatmulCircuit:
        key = (a, n, b, strategy)
        with self._guard:
            circuit = self._circuits.get(key)
            if circuit is not None:
                self.hits += 1
                return circuit
        # Build outside the guard (construction is slow for big shapes);
        # a racing duplicate build is wasted work, not an error.
        circuit = MatmulCircuit(a, n, b, strategy)
        with self._guard:
            self.builds += 1
            return self._circuits.setdefault(key, circuit)

    def lock_for(self, a: int, n: int, b: int, strategy: str) -> threading.Lock:
        """The witness-assignment lock for one circuit."""
        key = (a, n, b, strategy)
        with self._guard:
            return self._locks.setdefault(key, threading.Lock())

    def clear(self) -> None:
        with self._guard:
            self._circuits.clear()
            self._locks.clear()


class KeyStore:
    """Setup-artifact cache: memory, then disk, then (optionally) setup.

    ``root=None`` keeps everything in memory.  With a directory, Groth16
    keypairs persist as ``<backend>-<circuit_id>.keys`` files (the circuit
    id hashes shape and strategy, so a stale file can never be served for
    the wrong circuit) and survive process restarts.

    ``readonly=True`` is the worker-side discipline for the process-pool
    executor: the store consults memory and disk only, never runs setup,
    and never writes (no tmp files, no repair, no lock files) — a pool
    worker that raced its siblings to a half-provisioned root must fail
    with ``KeyError`` instead of minting a divergent keypair.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        registry: Optional[CircuitRegistry] = None,
        readonly: bool = False,
    ) -> None:
        self.root = root
        self.readonly = readonly
        self.registry = registry if registry is not None else default_registry()
        self._artifacts: Dict[ArtifactKey, object] = {}
        self._setup_seconds: Dict[ArtifactKey, float] = {}
        self._key_locks: Dict[ArtifactKey, threading.Lock] = {}
        self._guard = threading.Lock()
        self.setups = 0
        self.disk_loads = 0
        self.hits = 0
        if root is not None and not readonly:
            os.makedirs(root, exist_ok=True)

    # -- internals ---------------------------------------------------------------
    def _path(self, backend: ProofBackend, circuit: MatmulCircuit) -> str:
        name = f"{backend.name}-{circuit.circuit_id().hex()[:16]}.keys"
        return os.path.join(self.root, name)

    # -- artifact access ---------------------------------------------------------
    def artifacts(
        self,
        a: int,
        n: int,
        b: int,
        strategy: str,
        backend_name: str,
        rng=None,
        create: bool = True,
    ):
        """The cached setup artifacts for one circuit key.

        With ``create=False`` (forced by ``readonly`` stores) only memory
        and disk are consulted; a miss raises ``KeyError`` instead of
        silently producing a *new* keypair that could never verify
        existing proofs.
        """
        if self.readonly:
            create = False
        backend = get_backend(backend_name)
        if not backend.requires_setup:
            return None
        key = (a, n, b, strategy, backend_name)
        with self._guard:
            if key in self._artifacts:
                self.hits += 1
                return self._artifacts[key]
            # Per-key lock: a multi-second setup for one circuit must not
            # stall hits or setups for every other circuit.
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        circuit = self.registry.get(a, n, b, strategy)
        with key_lock:
            with self._guard:
                if key in self._artifacts:  # lost the build race
                    self.hits += 1
                    return self._artifacts[key]
            artifacts = None
            loaded_from_disk = False
            if self.root is not None:
                path = self._path(backend, circuit)
                if os.path.exists(path):
                    try:
                        with open(path, "rb") as fh:
                            artifacts = backend.artifacts_from_bytes(
                                fh.read(), circuit
                            )
                        loaded_from_disk = True
                    except (OSError, ValueError):
                        # Corrupt or truncated file (e.g. a crashed
                        # writer): treat as missing so a fresh setup can
                        # overwrite it instead of failing forever.
                        artifacts = None
            if artifacts is None:
                if not create:
                    raise KeyError(
                        f"no setup artifacts for {key}; import a verifying "
                        "key or point the KeyStore at the prover's artifact "
                        "root"
                    )
                t0 = time.perf_counter()
                artifacts = backend.setup(circuit, rng)
                setup_s = time.perf_counter() - t0
                # Publish (and possibly adopt a racing winner's keypair)
                # BEFORE caching, so no thread ever proves with a keypair
                # that is about to be discarded.
                if self.root is not None:
                    blob = backend.artifacts_to_bytes(artifacts)
                    if blob:
                        published = self._publish(backend, circuit, artifacts, blob)
                        if published is not artifacts:
                            artifacts = published
                            setup_s = None  # our setup was discarded
            with self._guard:
                if loaded_from_disk:
                    self.disk_loads += 1
                else:
                    self.setups += 1
                    if setup_s is not None:
                        self._setup_seconds[key] = setup_s
                self._artifacts[key] = artifacts
            return artifacts

    def _publish(self, backend, circuit, artifacts, blob):
        """Atomically publish freshly set-up artifacts to disk.

        Exactly one process may win a cold-start race: ``os.link`` fails
        if the file already exists, in which case the winner's keypair is
        read back and *adopted* in place of ours — otherwise this process
        would ship proofs that every disk-loading verifier rejects.

        The corrupt-file corner needs more care than a single shot: if
        two fresh processes both find a damaged file, both would
        ``os.replace`` it and each keep *its own* keypair in memory —
        disk ends up holding one key while the other process serves
        proofs nobody can verify (double-publish).  Repair is therefore
        serialized through an ``O_EXCL`` lock file, and losers loop back
        to adopt whatever the repairer installed.
        """
        path = self._path(backend, circuit)
        # pid+instance-unique tmp: concurrent processes — and concurrent
        # KeyStore instances sharing one root within a process — must not
        # interleave writes.
        tmp = f"{path}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        with open(tmp, "wb") as fh:
            fh.write(blob)
        try:
            for _ in range(_PUBLISH_ATTEMPTS):
                try:
                    os.link(tmp, path)
                    return artifacts  # we won the publish race
                except FileExistsError:
                    pass
                except OSError:
                    # Filesystem without hard links (CIFS, some container
                    # volumes): plain atomic rename — loses the
                    # adopt-on-race guarantee but keeps persistence
                    # working.
                    os.replace(tmp, path)
                    return artifacts
                try:
                    with open(path, "rb") as fh:
                        return backend.artifacts_from_bytes(fh.read(), circuit)
                except FileNotFoundError:
                    continue  # repairer unlinked it; race the link again
                except (OSError, ValueError):
                    pass  # damaged file: fall through to serialized repair
                lock_fd = self._acquire_repair_lock(path)
                if lock_fd is not None:
                    try:
                        # Re-check under the lock: a racing repairer may
                        # have already installed a good file.
                        try:
                            with open(path, "rb") as fh:
                                return backend.artifacts_from_bytes(
                                    fh.read(), circuit
                                )
                        except (OSError, ValueError):
                            os.replace(tmp, path)
                            return artifacts
                    finally:
                        self._release_repair_lock(lock_fd)
                else:
                    # Repair in progress elsewhere; a crashed repairer
                    # releases its flock with its process, so one of the
                    # waiters will take the lock on a later attempt.
                    time.sleep(_REPAIR_POLL_SECONDS)
            # Pathological contention: give up on adoption, keep disk valid.
            os.replace(tmp, path)
            return artifacts
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    @staticmethod
    def _acquire_repair_lock(path: str) -> Optional[int]:
        """Take the repair flock; returns the held fd, or ``None`` if a
        live process holds it.  flock dies with its holder, so a crashed
        repairer can never wedge the key — and there is no stale-timeout
        reclaim in which two repairers could both believe they hold the
        lock."""
        lock = path + ".repair"
        try:
            import fcntl

            fd = os.open(lock, os.O_CREAT | os.O_WRONLY)
        except (ImportError, OSError):
            return -1  # no flock on this platform/fs: proceed unlocked
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return None
        return fd

    @staticmethod
    def _release_repair_lock(fd: int) -> None:
        if fd >= 0:
            os.close(fd)  # closing drops the flock

    def adopt(
        self,
        a: int,
        n: int,
        b: int,
        strategy: str,
        backend_name: str,
        blob: bytes,
    ):
        """Adopt serialized setup artifacts pushed from elsewhere (the
        remote-fleet key-distribution path: a dispatcher answers a
        worker's KEY_REQUEST with the keypair bytes it already holds).

        Memory-only and allowed even on ``readonly`` stores — adoption is
        the opposite of minting: the worker takes the dispatcher's
        keypair verbatim, which is exactly the discipline ``readonly``
        exists to enforce.  Raises ``ValueError`` on malformed bytes.
        """
        backend = get_backend(backend_name)
        if not backend.requires_setup:
            return None
        circuit = self.registry.get(a, n, b, strategy)
        artifacts = backend.artifacts_from_bytes(blob, circuit)
        key = (a, n, b, strategy, backend_name)
        with self._guard:
            return self._artifacts.setdefault(key, artifacts)

    def setup_seconds(
        self, a: int, n: int, b: int, strategy: str, backend_name: str
    ) -> Optional[float]:
        """Wall time of the setup this process ran for the key, if any."""
        return self._setup_seconds.get((a, n, b, strategy, backend_name))

    def export_vk(
        self, a: int, n: int, b: int, strategy: str, backend_name: str
    ) -> bytes:
        """Serialized verification material for a detached verifier."""
        backend = get_backend(backend_name)
        if not backend.requires_setup:
            return b""
        artifacts = self.artifacts(a, n, b, strategy, backend_name, create=False)
        return backend.export_vk(artifacts)

    def clear_memory(self) -> None:
        """Drop in-memory artifacts (disk files survive) — simulates a
        process restart in tests."""
        with self._guard:
            self._artifacts.clear()
            self._setup_seconds.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "setups": self.setups,
            "hits": self.hits,
            "disk_loads": self.disk_loads,
        }


# -- process-wide defaults -------------------------------------------------------

_DEFAULT_REGISTRY = CircuitRegistry()
_DEFAULT_KEYSTORE: Optional[KeyStore] = None
_DEFAULT_GUARD = threading.Lock()


def default_registry() -> CircuitRegistry:
    return _DEFAULT_REGISTRY


def default_keystore() -> KeyStore:
    global _DEFAULT_KEYSTORE
    with _DEFAULT_GUARD:
        if _DEFAULT_KEYSTORE is None:
            _DEFAULT_KEYSTORE = KeyStore(registry=_DEFAULT_REGISTRY)
        return _DEFAULT_KEYSTORE


def set_default_keystore(store: KeyStore) -> KeyStore:
    """Swap the process-wide store (e.g. to one with a disk root)."""
    global _DEFAULT_KEYSTORE
    with _DEFAULT_GUARD:
        _DEFAULT_KEYSTORE = store
        return store
