"""Remote proving fleet: chunk dispatch to worker hosts over TCP.

This is ROADMAP direction 1 — the step from "all the cores in one box" to
"all the boxes".  The process-pool executor (:mod:`repro.core.pool`)
already ships circuit groups as bytes-only job envelopes and gets
wire-format bundles back; this module moves those same bytes over a
socket instead of a pipe:

* **Frames.**  Every message is ``MAGIC ‖ kind ‖ u32 length ‖ payload``
  (:func:`send_frame` / :func:`recv_frame`).  The length prefix is capped
  by :data:`MAX_FRAME` *before* any allocation, the magic pins the
  protocol, and a connection that dies mid-frame raises — a remote peer
  is untrusted input, so the decode discipline of
  :mod:`repro.serialize` applies to the transport layer too.
* **Pooled, persistent connections.**  :class:`ConnectionPool` keeps one
  small LIFO of authenticated sockets per worker: a dispatch *acquires*
  (reusing the warmest idle socket or dialling a new one), sends a
  ``JOBS`` frame, waits for ``RESULTS`` or a typed ``ERROR`` — a worker
  that misses key material interleaves a ``KEY_REQUEST``/``KEY_PUSH``
  exchange first — then *releases* the socket for the next chunk.  Idle
  sockets are reaped after ``idle_seconds``; a reused socket that turns
  out to be half-open (the worker died while it sat idle) is discarded
  and the dispatch silently retried once on a fresh dial.  The
  ``connects``/``reuses`` counters make reuse auditable — the bench
  records ``connects_per_proof`` and the regression gate watches it.
* **Authenticated sessions.**  With ``REPRO_FLEET_TOKEN`` set, every new
  connection runs an HMAC-SHA256 challenge–response handshake
  (``HELLO``/``CHALLENGE``/``AUTH``/``AUTH_OK`` frames, mutual,
  constant-time compares) before any payload-bearing frame; workers
  reject unauthenticated peers with a typed ``auth-failed`` ERROR
  *before decoding a single job byte*.
* **Failure accounting is reused wholesale.**  The socket layer maps
  failures into the PR-6 taxonomy — connection refused/empty fleet ⇒
  :class:`~repro.core.errors.WorkerUnavailable`, handshake rejection ⇒
  :class:`~repro.core.errors.FleetAuthError`, connection lost mid-chunk
  ⇒ :class:`~repro.core.errors.WorkerCrash`, socket deadline (the chunk
  lease) ⇒ :class:`~repro.core.errors.ChunkTimeout` — and hands them to
  the *same* :func:`repro.core.pool.resolve_chunk`
  retry/bisect/quarantine loop the process pool uses.  ``ChunkLease``
  and ``RetryPolicy`` never learn whether the chunk died in a subprocess
  or across a socket.
* **Health-aware placement.**  :class:`WorkerRegistry` pairs each worker
  with a :class:`~repro.core.resilience.CircuitBreaker` fed by dispatch
  outcomes (failure + latency EWMAs).  Placement spreads round-robin
  over the *best-scoring admissible* workers — a flapping host trips its
  breaker open and is shed before it burns retry budget, then rejoins
  via a single half-open probe after a deterministic cooldown.
  Reachability stays separate: connection failures mark a host dead,
  heartbeat ``PING``/``PONG`` probes (optional background thread) revive
  it, and :meth:`WorkerRegistry.placeable_count` feeds
  :meth:`repro.core.pool.GroupChunkPolicy.plan` so chunk counts follow
  the fleet's actually-usable capacity.

The server side lives in :mod:`repro.core.remote_worker`
(``python -m repro.core.remote_worker``).
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# NOTE: ``serialize`` is used via attribute access only — this module is
# imported from ``repro.core.__init__`` while ``repro.serialize`` may be
# mid-initialisation (serialize itself imports ``core.errors``), so
# ``from ..serialize import <name>`` would be a circular-import landmine.
from .. import serialize
from .errors import (
    ChunkTimeout,
    CorruptEnvelope,
    FleetAuthError,
    WorkerCrash,
    WorkerUnavailable,
    error_from_kind,
    wrap_error,
)
from .pool import ChunkTag, PoolOutcome, resolve_chunk
from .resilience import BreakerConfig, CircuitBreaker, RetryPolicy

# -- frame protocol --------------------------------------------------------------

MAGIC = b"RPV1"

#: hard ceiling on a frame payload: nothing in this stack legitimately
#: ships more than a few MiB per chunk, and an adversarial (or corrupt)
#: length prefix must never size an allocation.
MAX_FRAME = 1 << 26  # 64 MiB

# frame kinds (one byte on the wire)
JOBS = 1          # dispatcher -> worker: prove_jobs envelope
RESULTS = 2       # worker -> dispatcher: job_results envelope
ERROR = 3         # worker -> dispatcher: remote_error payload (typed)
KEY_REQUEST = 4   # worker -> dispatcher: circuit_key payload
KEY_PUSH = 5      # dispatcher -> worker: keypair bytes (empty = unavailable)
PING = 6          # dispatcher -> worker: heartbeat probe (empty payload)
PONG = 7          # worker -> dispatcher: JSON stats payload
SHUTDOWN = 8      # dispatcher -> worker: drain and exit (empty payload)
HELLO = 9         # client -> worker: auth version + client nonce
CHALLENGE = 10    # worker -> client: server nonce
AUTH = 11         # client -> worker: HMAC over both nonces
AUTH_OK = 12      # worker -> client: reciprocal HMAC (mutual auth)

FRAME_KINDS = (
    JOBS,
    RESULTS,
    ERROR,
    KEY_REQUEST,
    KEY_PUSH,
    PING,
    PONG,
    SHUTDOWN,
    HELLO,
    CHALLENGE,
    AUTH,
    AUTH_OK,
)

_HEADER = struct.Struct(">4sBI")


def encode_frame(kind: int, payload: bytes) -> bytes:
    """``MAGIC ‖ kind ‖ u32 length ‖ payload``; rejects oversize payloads
    on the way *out* too — a frame this side cannot send, no peer could
    have accepted."""
    if kind not in FRAME_KINDS:
        raise serialize.SerializationError(f"unknown frame kind {kind}")
    if len(payload) > MAX_FRAME:
        raise serialize.SerializationError(
            f"frame payload {len(payload)} exceeds MAX_FRAME {MAX_FRAME}"
        )
    return _HEADER.pack(MAGIC, kind, len(payload)) + payload


def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    sock.sendall(encode_frame(kind, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Exactly ``n`` bytes or ``ConnectionError`` — a peer that goes away
    mid-frame must fail loudly, never yield a short read downstream."""
    chunks = []
    remaining = n
    while remaining:
        data = sock.recv(min(remaining, 1 << 20))
        if not data:
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """One validated frame, or ``None`` on a clean EOF at a frame
    boundary (the peer hung up between messages — a normal end of
    conversation, unlike an EOF *inside* a frame, which raises).

    Raises :class:`~repro.serialize.SerializationError` (a typed
    ``ValueError``) on a bad magic, unknown kind, or a length prefix
    above :data:`MAX_FRAME` — checked before a single payload byte is
    read, so a hostile prefix never sizes an allocation.
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exact(sock, _HEADER.size - 1)
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise serialize.SerializationError(f"bad frame magic {magic!r}", offset=0)
    if kind not in FRAME_KINDS:
        raise serialize.SerializationError(f"unknown frame kind {kind}", offset=4)
    if length > MAX_FRAME:
        raise serialize.SerializationError(
            f"frame length {length} exceeds MAX_FRAME {MAX_FRAME}", offset=5
        )
    payload = _recv_exact(sock, length) if length else b""
    return kind, payload


# -- authenticated session handshake ----------------------------------------------

#: shared-secret fleet token; when set (non-empty) both sides require the
#: HMAC handshake on every connection before any payload-bearing frame
TOKEN_ENV = "REPRO_FLEET_TOKEN"


def fleet_token(env=os.environ) -> Optional[bytes]:
    """The configured fleet token as bytes, or ``None`` (auth disabled)."""
    value = env.get(TOKEN_ENV)
    return value.encode("utf-8") if value else None


def _auth_mac(token: bytes, role: bytes, mine: bytes, theirs: bytes) -> bytes:
    """HMAC-SHA256 binding both session nonces under a role label, so a
    client proof can never be replayed as a worker proof (or vice versa)."""
    return hmac.new(token, b"RPV1-auth\x00" + role + mine + theirs, "sha256").digest()


def client_handshake(sock: socket.socket, token: bytes) -> None:
    """Run the client side of the HELLO/CHALLENGE/AUTH/AUTH_OK exchange.

    Raises :class:`~repro.core.errors.FleetAuthError` on an explicit
    rejection, a malformed handshake frame, or a failed MAC check —
    genuine trust failures, which are terminal (retrying cannot help).
    A peer that merely *dies* mid-handshake raises ``ConnectionError``
    instead: that is a transport failure like any other and must stay
    retryable, or a worker crash during dial would masquerade as an auth
    problem and poison the chunk.  Mutual: the worker's ``AUTH_OK``
    proof is verified too, so a client cannot be lured into shipping
    witness-bearing job payloads to an impostor worker.
    """

    def _expect(expected_kind: int, what: str) -> bytes:
        try:
            frame = recv_frame(sock)
        except serialize.SerializationError as exc:
            raise FleetAuthError(f"malformed frame awaiting {what}: {exc}") from exc
        if frame is None:
            raise ConnectionError(f"worker hung up awaiting {what}")
        kind, payload = frame
        if kind == ERROR:
            err_kind, message, job_id = serialize.remote_error_from_bytes(payload)
            raise error_from_kind(err_kind, message, job_id=job_id)
        if kind != expected_kind:
            raise FleetAuthError(f"expected {what}, got frame kind {kind}")
        return payload

    nonce_c = os.urandom(serialize.AUTH_NONCE_BYTES)
    send_frame(sock, HELLO, serialize.auth_hello_to_bytes(nonce_c))
    challenge = _expect(CHALLENGE, "CHALLENGE")
    try:
        nonce_s = serialize.auth_challenge_from_bytes(challenge)
    except serialize.SerializationError as exc:
        raise FleetAuthError(f"malformed CHALLENGE: {exc}") from exc
    send_frame(
        sock,
        AUTH,
        serialize.auth_mac_to_bytes(_auth_mac(token, b"client", nonce_c, nonce_s)),
    )
    proof = _expect(AUTH_OK, "AUTH_OK")
    try:
        worker_mac = serialize.auth_mac_from_bytes(proof)
    except serialize.SerializationError as exc:
        raise FleetAuthError(f"malformed AUTH_OK: {exc}") from exc
    if not hmac.compare_digest(
        worker_mac, _auth_mac(token, b"worker", nonce_s, nonce_c)
    ):
        raise FleetAuthError("worker failed mutual authentication")


def open_connection(
    addr: Tuple[str, int], timeout: float, token: Optional[bytes]
) -> socket.socket:
    """Dial ``addr`` and (when a token is configured) authenticate the
    session; the socket comes back with ``timeout`` installed.  Raises
    ``OSError`` for reachability failures and
    :class:`~repro.core.errors.FleetAuthError` for handshake ones."""
    sock = socket.create_connection(addr, timeout=timeout)
    try:
        sock.settimeout(timeout)
        if token is not None:
            client_handshake(sock, token)
    except BaseException:
        sock.close()
        raise
    return sock


# -- connection pool --------------------------------------------------------------

@dataclass
class PooledConnection:
    """One persistent socket plus the bookkeeping the pool needs."""

    sock: socket.socket
    addr: Tuple[str, int]
    last_used: float
    reused: bool = False  # True when acquire() handed out an idle socket


class ConnectionPool:
    """Per-worker pools of persistent (optionally authenticated) sockets.

    ``acquire`` pops the most-recently-used idle socket for the address
    (LIFO — the warmest socket is the least likely to have hit the
    worker's idle horizon) or dials a new one; ``release`` returns a
    socket after a clean exchange; ``discard`` destroys one after any
    fault.  Idle sockets older than ``idle_seconds`` are reaped on every
    acquire/release.  ``connects``/``reuses``/``reaped`` counters are the
    auditable record that pooling actually pools — asserted in tests and
    recorded by the bench as ``connects_per_proof``.
    """

    def __init__(
        self,
        connect_timeout: float = 2.0,
        idle_seconds: float = 30.0,
        max_idle_per_worker: int = 4,
        auth_token: Optional[bytes] = None,
        clock=time.monotonic,
    ):
        self.connect_timeout = connect_timeout
        self.idle_seconds = idle_seconds
        self.max_idle_per_worker = max_idle_per_worker
        self.auth_token = auth_token
        self.clock = clock
        self._idle: Dict[Tuple[str, int], List[PooledConnection]] = {}
        self._guard = threading.Lock()
        self.connects = 0
        self.reuses = 0
        self.reaped = 0

    def acquire(self, addr: Tuple[str, int]) -> PooledConnection:
        """An open (authenticated) connection to ``addr`` — reused when a
        fresh-enough idle one exists, newly dialled otherwise."""
        self.reap()
        with self._guard:
            idle = self._idle.get(addr)
            if idle:
                conn = idle.pop()
                conn.reused = True
                self.reuses += 1
                return conn
        sock = open_connection(addr, self.connect_timeout, self.auth_token)
        with self._guard:
            self.connects += 1
        return PooledConnection(sock=sock, addr=addr, last_used=self.clock())

    def release(self, conn: PooledConnection) -> None:
        """Return a healthy connection for reuse (closed instead when the
        per-worker idle list is full)."""
        conn.last_used = self.clock()
        conn.reused = False
        with self._guard:
            idle = self._idle.setdefault(conn.addr, [])
            if len(idle) < self.max_idle_per_worker:
                idle.append(conn)
                conn = None
        if conn is not None:
            self._close(conn)
        self.reap()

    def discard(self, conn: PooledConnection) -> None:
        """Destroy a connection after a fault; never returns it to the
        pool."""
        self._close(conn)

    def drop_worker(self, addr: Tuple[str, int]) -> None:
        """Close every idle connection to a worker believed dead."""
        with self._guard:
            idle = self._idle.pop(addr, [])
        for conn in idle:
            self._close(conn)

    def reap(self, now: Optional[float] = None) -> int:
        """Close idle connections past the idle horizon; returns how many
        were reaped (cumulative count in ``self.reaped``)."""
        now = self.clock() if now is None else now
        stale: List[PooledConnection] = []
        with self._guard:
            for addr, idle in self._idle.items():
                keep = []
                for conn in idle:
                    if now - conn.last_used > self.idle_seconds:
                        stale.append(conn)
                    else:
                        keep.append(conn)
                self._idle[addr] = keep
            self.reaped += len(stale)
        for conn in stale:
            self._close(conn)
        return len(stale)

    def close(self) -> None:
        """Close every idle connection (in-flight ones are their
        borrowers' problem).  Idempotent."""
        with self._guard:
            all_idle = [c for idle in self._idle.values() for c in idle]
            self._idle.clear()
        for conn in all_idle:
            self._close(conn)

    def idle_count(self, addr: Optional[Tuple[str, int]] = None) -> int:
        with self._guard:
            if addr is not None:
                return len(self._idle.get(addr, []))
            return sum(len(idle) for idle in self._idle.values())

    def stats(self) -> dict:
        with self._guard:
            return {
                "connects": self.connects,
                "reuses": self.reuses,
                "reaped": self.reaped,
                "idle": sum(len(idle) for idle in self._idle.values()),
            }

    @staticmethod
    def _close(conn: PooledConnection) -> None:
        try:
            conn.sock.close()
        except OSError:
            pass


# -- worker registry -------------------------------------------------------------

def parse_worker_addr(spec) -> Tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` -> ``(host, int(port))``."""
    if isinstance(spec, str):
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"worker address must be host:port, got {spec!r}")
        return host, int(port)
    host, port = spec
    return str(host), int(port)


@dataclass
class WorkerInfo:
    """Registry-side view of one worker host."""

    host: str
    port: int
    healthy: bool = True  # presumed innocent until a connection fails
    last_seen: float = 0.0  # monotonic time of the last successful contact
    stats: dict = field(default_factory=dict)  # last PONG payload
    #: dispatch-outcome circuit breaker (reachability lives in ``healthy``)
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)


class WorkerRegistry:
    """Tracks worker health and hands out dispatch targets.

    Two independent signals gate placement: ``healthy`` is binary
    reachability (a connection failure clears it, a successful ``PING``
    — one-shot via :meth:`check_now` or periodic via
    :meth:`start_heartbeat` — restores it), while each worker's
    :class:`~repro.core.resilience.CircuitBreaker` integrates *dispatch
    outcomes* into failure/latency EWMAs, so a host that answers pings
    but keeps botching or slow-walking chunks is shed anyway.
    :meth:`next_worker` round-robins over the admissible workers with the
    best (quantized) health score — with a uniform fleet that degenerates
    to plain round-robin, so placement stays spread by default.  All
    methods are thread-safe.
    """

    def __init__(
        self,
        addresses: Sequence,
        connect_timeout: float = 2.0,
        heartbeat_seconds: float = 0.0,
        auth_token: Optional[bytes] = None,
        breaker_config: Optional[BreakerConfig] = None,
        clock=time.monotonic,
    ):
        self.connect_timeout = connect_timeout
        self.heartbeat_seconds = heartbeat_seconds
        # Like the executor, fall back to the ambient fleet token: a
        # registry pinging token-protected workers must authenticate no
        # matter who constructed it.
        self.auth_token = auth_token if auth_token is not None else fleet_token()
        self.clock = clock
        config = breaker_config if breaker_config is not None else BreakerConfig()
        self._workers: List[WorkerInfo] = [
            WorkerInfo(
                *parse_worker_addr(a),
                breaker=CircuitBreaker(config, clock=clock),
            )
            for a in addresses
        ]
        self._guard = threading.Lock()
        self._rr = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def workers(self) -> List[WorkerInfo]:
        with self._guard:
            return list(self._workers)

    def healthy(self) -> List[WorkerInfo]:
        with self._guard:
            return [w for w in self._workers if w.healthy]

    def live_count(self) -> int:
        return len(self.healthy())

    def placeable_count(self) -> int:
        """Workers placement may actually use right now: reachable AND
        breaker-admissible.  Feeds chunk planning, so an open breaker
        shrinks the chunk fan-out instead of stranding chunks."""
        now = self.clock()
        with self._guard:
            live = [w for w in self._workers if w.healthy]
        return sum(1 for w in live if w.breaker.admissible(now)) or (
            # Every breaker open: planning still needs a floor — the
            # half-open probes themselves are how the fleet recovers.
            1 if live else 0
        )

    def _score(self, worker: WorkerInfo, best_latency: Optional[float]) -> int:
        """Coarse health bucket (lower = better).  Quantized so workers
        with merely-noisy differences stay tied and round-robin keeps
        them evenly loaded; only meaningful degradation (failure EWMA
        mass, or latency ≥ 4× the fleet's best) demotes a worker."""
        score = int(worker.breaker.failure_ewma * 4.0)
        latency = worker.breaker.latency_ewma
        if (
            best_latency is not None
            and latency is not None
            and best_latency > 0
            and latency >= 4.0 * best_latency
        ):
            score += 1
        return score

    def next_worker(self) -> Tuple[str, int]:
        """The next admissible worker — round-robin over the
        best-health-bucket subset; raises
        :class:`~repro.core.errors.WorkerUnavailable` when the whole
        fleet is dead, tripped, or empty."""
        now = self.clock()
        with self._guard:
            live = [w for w in self._workers if w.healthy]
            admissible = [w for w in live if w.breaker.admissible(now)]
            if not admissible:
                # A fully-tripped (but reachable) fleet still serves the
                # earliest-probing worker: someone must carry the probe.
                admissible = live
            if not admissible:
                raise WorkerUnavailable(
                    f"no healthy workers ({len(self._workers)} registered)"
                )
            latencies = [
                w.breaker.latency_ewma
                for w in admissible
                if w.breaker.latency_ewma is not None
            ]
            best_latency = min(latencies) if latencies else None
            scores = [self._score(w, best_latency) for w in admissible]
            best = min(scores)
            pool = [w for w, s in zip(admissible, scores) if s == best]
            worker = pool[self._rr % len(pool)]
            self._rr += 1
        worker.breaker.note_dispatch(now)
        return worker.addr

    def record_success(
        self, addr: Tuple[str, int], latency_seconds: Optional[float] = None
    ) -> None:
        """A dispatch on ``addr`` completed a clean exchange."""
        self.mark_alive(addr)
        w = self._find_locked(addr)
        if w is not None:
            w.breaker.record_success(latency_seconds)

    def record_failure(
        self,
        addr: Tuple[str, int],
        latency_seconds: Optional[float] = None,
        dead: bool = False,
    ) -> None:
        """A dispatch on ``addr`` failed; ``dead=True`` additionally
        clears reachability (connection-level failures)."""
        if dead:
            self.mark_dead(addr)
        w = self._find_locked(addr)
        if w is not None:
            w.breaker.record_failure(latency_seconds)

    def _find(self, addr: Tuple[str, int]) -> Optional[WorkerInfo]:
        for w in self._workers:
            if w.addr == addr:
                return w
        return None

    def _find_locked(self, addr: Tuple[str, int]) -> Optional[WorkerInfo]:
        with self._guard:
            return self._find(addr)

    def mark_dead(self, addr: Tuple[str, int]) -> None:
        with self._guard:
            w = self._find(addr)
            if w is not None:
                w.healthy = False

    def mark_alive(self, addr: Tuple[str, int], stats: Optional[dict] = None) -> None:
        with self._guard:
            w = self._find(addr)
            if w is not None:
                w.healthy = True
                w.last_seen = time.monotonic()
                if stats is not None:
                    w.stats = stats

    def ping(self, addr: Tuple[str, int]) -> Optional[dict]:
        """One ``PING``/``PONG`` round trip (on a throwaway, authenticated
        connection); updates reachability — never the breaker, which is
        dispatch-outcome-only — and returns the worker's stats payload
        (``None`` if unreachable)."""
        try:
            with open_connection(
                addr, self.connect_timeout, self.auth_token
            ) as s:
                send_frame(s, PING)
                frame = recv_frame(s)
        except (OSError, ValueError, FleetAuthError):
            self.mark_dead(addr)
            return None
        if frame is None or frame[0] != PONG:
            self.mark_dead(addr)
            return None
        try:
            stats = json.loads(frame[1].decode("utf-8")) if frame[1] else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            stats = {}
        self.mark_alive(addr, stats)
        return stats

    def check_now(self) -> int:
        """Probe every registered worker once; returns the live count."""
        for w in self.workers():
            self.ping(w.addr)
        return self.live_count()

    # -- heartbeat loop -----------------------------------------------------------
    def start_heartbeat(self) -> None:
        if self.heartbeat_seconds <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat", daemon=True
        )
        self._thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            self.check_now()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=2 * self.heartbeat_seconds + 1.0)


# -- the executor ----------------------------------------------------------------

class _StaleConnection(Exception):
    """Internal: a *reused* pooled socket failed before the worker said
    anything — almost certainly a half-open connection whose worker end
    died while it sat idle.  The dispatch retries once on a fresh dial
    without charging the worker's breaker."""


class RemoteProvingExecutor:
    """Runs same-circuit job chunks on a fleet of TCP worker hosts.

    Drop-in interface twin of
    :class:`~repro.core.pool.ProcessProvingExecutor` — ``start`` /
    ``finish`` / ``run`` / ``shutdown`` plus a ``breakages`` counter the
    service's degradation ladder reads — so
    :class:`~repro.core.service.ProvingService` drives both through one
    code path.

    ``key_provider`` answers workers' ``KEY_REQUEST`` frames: a callable
    ``(shape, strategy, backend_name) -> bytes`` returning serialized
    setup artifacts (empty/None = unavailable, the worker then fails the
    chunk with ``MissingKey``).  The service wires its KeyStore in, which
    is what lets a diskless worker prove Groth16 groups.

    ``default_timeout_seconds`` bounds a dispatch whose chunk carries no
    lease (the retry policy's indefinite-lease configuration) — a remote
    peer can silently vanish in ways a local subprocess cannot, so
    "indefinite" still gets a generous socket deadline.
    """

    def __init__(
        self,
        workers: Sequence,
        retry_policy: Optional[RetryPolicy] = None,
        key_provider=None,
        connect_timeout: float = 2.0,
        heartbeat_seconds: float = 0.0,
        default_timeout_seconds: float = 600.0,
        auth_token: Optional[bytes] = None,
        breaker_config: Optional[BreakerConfig] = None,
        pool_idle_seconds: float = 30.0,
    ):
        token = auth_token if auth_token is not None else fleet_token()
        if isinstance(token, str):
            token = token.encode("utf-8")
        self.auth_token = token
        self.registry = WorkerRegistry(
            workers,
            connect_timeout=connect_timeout,
            heartbeat_seconds=heartbeat_seconds,
            auth_token=token,
            breaker_config=breaker_config,
        )
        self.pool = ConnectionPool(
            connect_timeout=connect_timeout,
            idle_seconds=pool_idle_seconds,
            auth_token=token,
        )
        self.workers = max(1, len(self.registry.workers()))
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.key_provider = key_provider
        self.connect_timeout = connect_timeout
        self.default_timeout_seconds = default_timeout_seconds
        #: fleet-level casualties (dead/hung/unreachable workers) — the
        #: degradation-ladder signal, symmetric with the process pool's
        #: pool-teardown count
        self.breakages = 0
        #: chunk dispatches attempted (each needing one pooled connection)
        #: — with pooling, ``dispatches ≫ pool.connects``
        self.dispatches = 0
        self._stats_guard = threading.Lock()
        self._threads: Optional[ThreadPoolExecutor] = None
        self.registry.start_heartbeat()

    # -- transport ---------------------------------------------------------------
    def _dispatch(self, blob: bytes, timeout_s: Optional[float]) -> bytes:
        """One chunk on one worker over one *pooled* connection; returns
        the raw job-results envelope or raises a typed
        :class:`~repro.core.errors.ProvingError`.

        A reused socket that fails before the worker utters a byte is
        presumed half-open (its worker end died while it idled): the
        dispatch discards it and silently retries once on a freshly
        dialled connection — the worker's breaker is only charged for
        faults on a connection known to be live.
        """
        addr = self.registry.next_worker()
        deadline = timeout_s if timeout_s is not None else self.default_timeout_seconds
        with self._stats_guard:
            self.dispatches += 1
        t0 = time.monotonic()
        for attempt in (1, 2):
            try:
                conn = self.pool.acquire(addr)
            except FleetAuthError as exc:
                self.registry.record_failure(addr)
                exc.message = f"worker {addr[0]}:{addr[1]}: {exc.message}"
                raise
            except OSError as exc:
                self.registry.record_failure(addr, dead=True)
                self.pool.drop_worker(addr)
                self.breakages += 1
                raise WorkerUnavailable(
                    f"worker {addr[0]}:{addr[1]} unreachable: {exc}"
                ) from exc
            try:
                return self._exchange(
                    conn,
                    blob,
                    deadline,
                    t0,
                    # Only a *reused* socket earns the free retry, and
                    # only on the first attempt — a fresh dial that dies
                    # is a real worker fault.
                    may_be_stale=conn.reused and attempt == 1,
                )
            except _StaleConnection:
                continue
        raise AssertionError("unreachable: stale retry loop exited")  # pragma: no cover

    def _exchange(
        self,
        conn: PooledConnection,
        blob: bytes,
        deadline: float,
        t0: float,
        may_be_stale: bool,
    ) -> bytes:
        addr = conn.addr
        progressed = False  # any byte received this exchange?

        def _connection_died(exc_or_none) -> BaseException:
            self.pool.discard(conn)
            if may_be_stale and not progressed:
                return _StaleConnection()
            self.registry.record_failure(addr, dead=True)
            self.pool.drop_worker(addr)
            self.breakages += 1
            return WorkerCrash(
                f"connection to worker {addr[0]}:{addr[1]} lost mid-chunk"
                + (f": {exc_or_none}" if exc_or_none is not None else "")
            )

        try:
            conn.sock.settimeout(deadline)
            send_frame(conn.sock, JOBS, blob)
        except socket.timeout:
            self.pool.discard(conn)
            self.registry.record_failure(addr, dead=True)
            self.breakages += 1
            raise ChunkTimeout(
                f"chunk lease expired on worker {addr[0]}:{addr[1]}",
                deadline_seconds=deadline,
            ) from None
        except (ConnectionError, OSError) as exc:
            raise _connection_died(exc) from exc
        while True:
            try:
                frame = recv_frame(conn.sock)
            except socket.timeout:
                # The chunk lease expired on the wire: presume the
                # worker hung, avoid it until a heartbeat revives it.
                self.pool.discard(conn)
                self.registry.record_failure(addr, dead=True)
                self.breakages += 1
                raise ChunkTimeout(
                    f"chunk lease expired on worker {addr[0]}:{addr[1]}",
                    deadline_seconds=deadline,
                ) from None
            except (ConnectionError, OSError) as exc:
                raise _connection_died(exc) from exc
            except serialize.SerializationError as exc:
                # A mangled frame is a transport fault, same class as
                # a mangled envelope: retryable, not bisectable.
                self.pool.discard(conn)
                self.registry.record_failure(addr)
                raise CorruptEnvelope(
                    f"corrupt frame from worker {addr[0]}:{addr[1]}: {exc}",
                    offset=exc.offset,
                ) from exc
            if frame is None:
                raise _connection_died(None)
            progressed = True
            kind, payload = frame
            if kind == RESULTS:
                self.registry.record_success(addr, time.monotonic() - t0)
                self.pool.release(conn)
                return payload
            if kind == ERROR:
                err_kind, message, job_id = serialize.remote_error_from_bytes(
                    payload
                )
                # The worker is alive and talking — the *chunk* failed;
                # the exchange itself was clean, so the connection (and
                # the worker's transport health) survive.
                self.registry.record_success(addr, time.monotonic() - t0)
                self.pool.release(conn)
                raise error_from_kind(err_kind, message, job_id=job_id)
            if kind == KEY_REQUEST:
                shape, strategy, backend = serialize.circuit_key_from_bytes(
                    payload
                )
                key_blob = b""
                if self.key_provider is not None:
                    try:
                        key_blob = (
                            self.key_provider(shape, strategy, backend) or b""
                        )
                    except Exception:  # noqa: BLE001 — worker reports the miss
                        key_blob = b""
                try:
                    send_frame(conn.sock, KEY_PUSH, key_blob)
                except (ConnectionError, OSError) as exc:
                    raise _connection_died(exc) from exc
                continue
            self.pool.discard(conn)
            self.registry.record_failure(addr)
            raise CorruptEnvelope(
                f"unexpected frame kind {kind} from worker "
                f"{addr[0]}:{addr[1]} awaiting results"
            )

    # -- executor interface -------------------------------------------------------
    def start(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ):
        """Dispatch ``(tag, jobs_blob)`` chunks without blocking.

        Unlike the process pool, lease deadlines must be known *here*:
        they become socket timeouts inside the dispatch threads (a
        blocking ``recv`` is the only place a remote lease can be
        enforced).  Returns the ``(tag, future)`` list for
        :meth:`finish`.
        """
        timeouts = timeouts or {}
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=max(4, 2 * self.workers),
                thread_name_prefix="remote-dispatch",
            )
        return [
            (tag, self._threads.submit(self._dispatch, blob, timeouts.get(tag)))
            for tag, blob in tasks
        ]

    def finish(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        futures,
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Collect :meth:`start`'s futures; never raises for a chunk.

        First-dispatch failures feed the shared
        :func:`~repro.core.pool.resolve_chunk` retry/bisect/quarantine
        loop, re-dispatching over whatever workers the registry still
        trusts; whatever cannot be recovered is reported per chunk in
        ``errors`` — typed, never raised.
        """
        timeouts = timeouts or {}
        outcome = PoolOutcome()
        by_tag = dict(tasks)
        for tag, fut in futures:
            try:
                outcome.results[tag] = serialize.job_results_from_bytes(
                    fut.result()
                )
                outcome.attempts.setdefault(tag, 1)
                continue
            except Exception as exc:  # noqa: BLE001 — classified below
                err = wrap_error(exc)
            outcome.retried.append(tag)
            try:
                triples, poison, attempts = resolve_chunk(
                    self._dispatch,
                    self.retry_policy,
                    by_tag[tag],
                    timeouts.get(tag),
                    err,
                    attempts=1,
                    tag=tag,
                )
                outcome.results[tag] = triples
                outcome.attempts[tag] = attempts
                outcome.quarantined.extend(poison)
            except Exception as exc:  # noqa: BLE001 — reported per chunk
                fatal = wrap_error(exc)
                outcome.errors[tag] = fatal
                outcome.attempts[tag] = max(1, fatal.attempts)
        return outcome

    def run(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Dispatch and collect in one blocking call."""
        if not tasks:
            return PoolOutcome()
        return self.finish(tasks, self.start(tasks, timeouts), timeouts)

    def transport_stats(self) -> dict:
        """Connection-economy counters: pooled ``connects``/``reuses``
        (plus reap/idle accounting) and chunk ``dispatches``.  A healthy
        pooled fleet shows ``dispatches ≫ connects``."""
        stats = self.pool.stats()
        with self._stats_guard:
            stats["dispatches"] = self.dispatches
        return stats

    def shutdown(self, drain: bool = True) -> None:
        """Stop the heartbeat, dispatch threads, and connection pool.
        ``drain=True`` waits for in-flight dispatches to finish first
        (their results are lost either way — callers drain via
        :meth:`finish` — but the workers' in-progress chunks get their
        replies consumed instead of a reset).  Idempotent.  Does NOT stop
        the workers — the fleet outlives any one dispatcher; use
        :meth:`shutdown_workers` to drain owned (loopback) fleets."""
        self.registry.stop()
        threads, self._threads = self._threads, None
        if threads is not None:
            threads.shutdown(wait=drain, cancel_futures=not drain)
        self.pool.close()

    def shutdown_workers(self) -> None:
        """Send every registered worker a ``SHUTDOWN`` frame (best
        effort, authenticated like any other connection) — for fleets
        this process launched and owns."""
        for w in self.registry.workers():
            try:
                with open_connection(
                    w.addr, self.connect_timeout, self.auth_token
                ) as s:
                    send_frame(s, SHUTDOWN)
            except (OSError, FleetAuthError):
                pass  # already gone (or never ours to stop)


__all__ = [
    "MAGIC",
    "MAX_FRAME",
    "JOBS",
    "RESULTS",
    "ERROR",
    "KEY_REQUEST",
    "KEY_PUSH",
    "PING",
    "PONG",
    "SHUTDOWN",
    "HELLO",
    "CHALLENGE",
    "AUTH",
    "AUTH_OK",
    "FRAME_KINDS",
    "TOKEN_ENV",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "fleet_token",
    "client_handshake",
    "open_connection",
    "parse_worker_addr",
    "PooledConnection",
    "ConnectionPool",
    "WorkerInfo",
    "WorkerRegistry",
    "RemoteProvingExecutor",
]
