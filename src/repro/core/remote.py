"""Remote proving fleet: chunk dispatch to worker hosts over TCP.

This is ROADMAP direction 1 — the step from "all the cores in one box" to
"all the boxes".  The process-pool executor (:mod:`repro.core.pool`)
already ships circuit groups as bytes-only job envelopes and gets
wire-format bundles back; this module moves those same bytes over a
socket instead of a pipe:

* **Frames.**  Every message is ``MAGIC ‖ kind ‖ u32 length ‖ payload``
  (:func:`send_frame` / :func:`recv_frame`).  The length prefix is capped
  by :data:`MAX_FRAME` *before* any allocation, the magic pins the
  protocol, and a connection that dies mid-frame raises — a remote peer
  is untrusted input, so the decode discipline of
  :mod:`repro.serialize` applies to the transport layer too.
* **One connection per chunk dispatch.**  The dispatcher connects, sends
  a ``JOBS`` frame, and waits for ``RESULTS`` or a typed ``ERROR``; a
  worker that misses key material interleaves a ``KEY_REQUEST`` /
  ``KEY_PUSH`` exchange (the existing keypair wire format) before
  proving.  No connection state outlives a chunk, so a re-dispatch after
  any failure starts clean on whichever worker the registry offers next.
* **Failure accounting is reused wholesale.**  The socket layer maps
  failures into the PR-6 taxonomy — connection refused/empty fleet ⇒
  :class:`~repro.core.errors.WorkerUnavailable`, connection lost
  mid-chunk ⇒ :class:`~repro.core.errors.WorkerCrash`, socket deadline
  (the chunk lease) ⇒ :class:`~repro.core.errors.ChunkTimeout` — and
  hands them to the *same* :func:`repro.core.pool.resolve_chunk`
  retry/bisect/quarantine loop the process pool uses.  ``ChunkLease``
  and ``RetryPolicy`` never learn whether the chunk died in a subprocess
  or across a socket.
* **Registry + heartbeats.**  :class:`WorkerRegistry` round-robins
  dispatches over the workers currently believed healthy, marks hosts
  dead on connection failures, and (optionally, on a background thread)
  revives them via ``PING``/``PONG`` probes; the live count feeds
  :meth:`repro.core.pool.GroupChunkPolicy.plan` so placement follows the
  fleet's actual capacity.

The server side lives in :mod:`repro.core.remote_worker`
(``python -m repro.core.remote_worker``).
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

# NOTE: ``serialize`` is used via attribute access only — this module is
# imported from ``repro.core.__init__`` while ``repro.serialize`` may be
# mid-initialisation (serialize itself imports ``core.errors``), so
# ``from ..serialize import <name>`` would be a circular-import landmine.
from .. import serialize
from .errors import (
    ChunkTimeout,
    CorruptEnvelope,
    WorkerCrash,
    WorkerUnavailable,
    error_from_kind,
    wrap_error,
)
from .pool import ChunkTag, PoolOutcome, resolve_chunk
from .resilience import RetryPolicy

# -- frame protocol --------------------------------------------------------------

MAGIC = b"RPV1"

#: hard ceiling on a frame payload: nothing in this stack legitimately
#: ships more than a few MiB per chunk, and an adversarial (or corrupt)
#: length prefix must never size an allocation.
MAX_FRAME = 1 << 26  # 64 MiB

# frame kinds (one byte on the wire)
JOBS = 1          # dispatcher -> worker: prove_jobs envelope
RESULTS = 2       # worker -> dispatcher: job_results envelope
ERROR = 3         # worker -> dispatcher: remote_error payload (typed)
KEY_REQUEST = 4   # worker -> dispatcher: circuit_key payload
KEY_PUSH = 5      # dispatcher -> worker: keypair bytes (empty = unavailable)
PING = 6          # dispatcher -> worker: heartbeat probe (empty payload)
PONG = 7          # worker -> dispatcher: JSON stats payload
SHUTDOWN = 8      # dispatcher -> worker: drain and exit (empty payload)

FRAME_KINDS = (JOBS, RESULTS, ERROR, KEY_REQUEST, KEY_PUSH, PING, PONG, SHUTDOWN)

_HEADER = struct.Struct(">4sBI")


def encode_frame(kind: int, payload: bytes) -> bytes:
    """``MAGIC ‖ kind ‖ u32 length ‖ payload``; rejects oversize payloads
    on the way *out* too — a frame this side cannot send, no peer could
    have accepted."""
    if kind not in FRAME_KINDS:
        raise serialize.SerializationError(f"unknown frame kind {kind}")
    if len(payload) > MAX_FRAME:
        raise serialize.SerializationError(
            f"frame payload {len(payload)} exceeds MAX_FRAME {MAX_FRAME}"
        )
    return _HEADER.pack(MAGIC, kind, len(payload)) + payload


def send_frame(sock: socket.socket, kind: int, payload: bytes = b"") -> None:
    sock.sendall(encode_frame(kind, payload))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Exactly ``n`` bytes or ``ConnectionError`` — a peer that goes away
    mid-frame must fail loudly, never yield a short read downstream."""
    chunks = []
    remaining = n
    while remaining:
        data = sock.recv(min(remaining, 1 << 20))
        if not data:
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """One validated frame, or ``None`` on a clean EOF at a frame
    boundary (the peer hung up between messages — a normal end of
    conversation, unlike an EOF *inside* a frame, which raises).

    Raises :class:`~repro.serialize.SerializationError` (a typed
    ``ValueError``) on a bad magic, unknown kind, or a length prefix
    above :data:`MAX_FRAME` — checked before a single payload byte is
    read, so a hostile prefix never sizes an allocation.
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exact(sock, _HEADER.size - 1)
    magic, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise serialize.SerializationError(f"bad frame magic {magic!r}", offset=0)
    if kind not in FRAME_KINDS:
        raise serialize.SerializationError(f"unknown frame kind {kind}", offset=4)
    if length > MAX_FRAME:
        raise serialize.SerializationError(
            f"frame length {length} exceeds MAX_FRAME {MAX_FRAME}", offset=5
        )
    payload = _recv_exact(sock, length) if length else b""
    return kind, payload


# -- worker registry -------------------------------------------------------------

def parse_worker_addr(spec) -> Tuple[str, int]:
    """``"host:port"`` / ``(host, port)`` -> ``(host, int(port))``."""
    if isinstance(spec, str):
        host, _, port = spec.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(f"worker address must be host:port, got {spec!r}")
        return host, int(port)
    host, port = spec
    return str(host), int(port)


@dataclass
class WorkerInfo:
    """Registry-side view of one worker host."""

    host: str
    port: int
    healthy: bool = True  # presumed innocent until a connection fails
    last_seen: float = 0.0  # monotonic time of the last successful contact
    stats: dict = field(default_factory=dict)  # last PONG payload

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)


class WorkerRegistry:
    """Tracks worker liveness and hands out dispatch targets.

    Dispatches round-robin over the currently-healthy set; a connection
    failure marks the host dead, and a successful ``PING`` (one-shot via
    :meth:`check_now`, or periodic via :meth:`start_heartbeat`) revives
    it.  All methods are thread-safe — dispatch threads and the heartbeat
    thread share this object.
    """

    def __init__(
        self,
        addresses: Sequence,
        connect_timeout: float = 2.0,
        heartbeat_seconds: float = 0.0,
    ):
        self.connect_timeout = connect_timeout
        self.heartbeat_seconds = heartbeat_seconds
        self._workers: List[WorkerInfo] = [
            WorkerInfo(*parse_worker_addr(a)) for a in addresses
        ]
        self._guard = threading.Lock()
        self._rr = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def workers(self) -> List[WorkerInfo]:
        with self._guard:
            return list(self._workers)

    def healthy(self) -> List[WorkerInfo]:
        with self._guard:
            return [w for w in self._workers if w.healthy]

    def live_count(self) -> int:
        return len(self.healthy())

    def next_worker(self) -> Tuple[str, int]:
        """The next healthy worker, round-robin; raises
        :class:`~repro.core.errors.WorkerUnavailable` when the whole
        fleet is dead or empty."""
        with self._guard:
            live = [w for w in self._workers if w.healthy]
            if not live:
                raise WorkerUnavailable(
                    f"no healthy workers ({len(self._workers)} registered)"
                )
            worker = live[self._rr % len(live)]
            self._rr += 1
            return worker.addr

    def _find(self, addr: Tuple[str, int]) -> Optional[WorkerInfo]:
        for w in self._workers:
            if w.addr == addr:
                return w
        return None

    def mark_dead(self, addr: Tuple[str, int]) -> None:
        with self._guard:
            w = self._find(addr)
            if w is not None:
                w.healthy = False

    def mark_alive(self, addr: Tuple[str, int], stats: Optional[dict] = None) -> None:
        with self._guard:
            w = self._find(addr)
            if w is not None:
                w.healthy = True
                w.last_seen = time.monotonic()
                if stats is not None:
                    w.stats = stats

    def ping(self, addr: Tuple[str, int]) -> Optional[dict]:
        """One ``PING``/``PONG`` round trip; updates liveness and returns
        the worker's stats payload (``None`` if unreachable)."""
        try:
            with socket.create_connection(addr, timeout=self.connect_timeout) as s:
                s.settimeout(self.connect_timeout)
                send_frame(s, PING)
                frame = recv_frame(s)
        except (OSError, ValueError):
            self.mark_dead(addr)
            return None
        if frame is None or frame[0] != PONG:
            self.mark_dead(addr)
            return None
        try:
            stats = json.loads(frame[1].decode("utf-8")) if frame[1] else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            stats = {}
        self.mark_alive(addr, stats)
        return stats

    def check_now(self) -> int:
        """Probe every registered worker once; returns the live count."""
        for w in self.workers():
            self.ping(w.addr)
        return self.live_count()

    # -- heartbeat loop -----------------------------------------------------------
    def start_heartbeat(self) -> None:
        if self.heartbeat_seconds <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="worker-heartbeat", daemon=True
        )
        self._thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_seconds):
            self.check_now()

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=2 * self.heartbeat_seconds + 1.0)


# -- the executor ----------------------------------------------------------------

class RemoteProvingExecutor:
    """Runs same-circuit job chunks on a fleet of TCP worker hosts.

    Drop-in interface twin of
    :class:`~repro.core.pool.ProcessProvingExecutor` — ``start`` /
    ``finish`` / ``run`` / ``shutdown`` plus a ``breakages`` counter the
    service's degradation ladder reads — so
    :class:`~repro.core.service.ProvingService` drives both through one
    code path.

    ``key_provider`` answers workers' ``KEY_REQUEST`` frames: a callable
    ``(shape, strategy, backend_name) -> bytes`` returning serialized
    setup artifacts (empty/None = unavailable, the worker then fails the
    chunk with ``MissingKey``).  The service wires its KeyStore in, which
    is what lets a diskless worker prove Groth16 groups.

    ``default_timeout_seconds`` bounds a dispatch whose chunk carries no
    lease (the retry policy's indefinite-lease configuration) — a remote
    peer can silently vanish in ways a local subprocess cannot, so
    "indefinite" still gets a generous socket deadline.
    """

    def __init__(
        self,
        workers: Sequence,
        retry_policy: Optional[RetryPolicy] = None,
        key_provider=None,
        connect_timeout: float = 2.0,
        heartbeat_seconds: float = 0.0,
        default_timeout_seconds: float = 600.0,
    ):
        self.registry = WorkerRegistry(
            workers,
            connect_timeout=connect_timeout,
            heartbeat_seconds=heartbeat_seconds,
        )
        self.workers = max(1, len(self.registry.workers()))
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.key_provider = key_provider
        self.connect_timeout = connect_timeout
        self.default_timeout_seconds = default_timeout_seconds
        #: fleet-level casualties (dead/hung/unreachable workers) — the
        #: degradation-ladder signal, symmetric with the process pool's
        #: pool-teardown count
        self.breakages = 0
        self._threads: Optional[ThreadPoolExecutor] = None
        self.registry.start_heartbeat()

    # -- transport ---------------------------------------------------------------
    def _dispatch(self, blob: bytes, timeout_s: Optional[float]) -> bytes:
        """One chunk on one worker over one connection; returns the raw
        job-results envelope or raises a typed
        :class:`~repro.core.errors.ProvingError`."""
        addr = self.registry.next_worker()
        deadline = timeout_s if timeout_s is not None else self.default_timeout_seconds
        try:
            sock = socket.create_connection(addr, timeout=self.connect_timeout)
        except OSError as exc:
            self.registry.mark_dead(addr)
            self.breakages += 1
            raise WorkerUnavailable(
                f"worker {addr[0]}:{addr[1]} unreachable: {exc}"
            ) from exc
        try:
            sock.settimeout(deadline)
            send_frame(sock, JOBS, blob)
            while True:
                try:
                    frame = recv_frame(sock)
                except socket.timeout:
                    # The chunk lease expired on the wire: presume the
                    # worker hung, avoid it until a heartbeat revives it.
                    self.registry.mark_dead(addr)
                    self.breakages += 1
                    raise ChunkTimeout(
                        f"chunk lease expired on worker {addr[0]}:{addr[1]}",
                        deadline_seconds=deadline,
                    ) from None
                except (ConnectionError, OSError) as exc:
                    self.registry.mark_dead(addr)
                    self.breakages += 1
                    raise WorkerCrash(
                        f"connection to worker {addr[0]}:{addr[1]} lost "
                        f"mid-chunk: {exc}"
                    ) from exc
                except serialize.SerializationError as exc:
                    # A mangled frame is a transport fault, same class as
                    # a mangled envelope: retryable, not bisectable.
                    raise CorruptEnvelope(
                        f"corrupt frame from worker {addr[0]}:{addr[1]}: {exc}",
                        offset=exc.offset,
                    ) from exc
                if frame is None:
                    self.registry.mark_dead(addr)
                    self.breakages += 1
                    raise WorkerCrash(
                        f"worker {addr[0]}:{addr[1]} hung up without a result"
                    )
                kind, payload = frame
                if kind == RESULTS:
                    self.registry.mark_alive(addr)
                    return payload
                if kind == ERROR:
                    err_kind, message, job_id = serialize.remote_error_from_bytes(
                        payload
                    )
                    # The worker is alive and talking — the *chunk* failed.
                    self.registry.mark_alive(addr)
                    raise error_from_kind(err_kind, message, job_id=job_id)
                if kind == KEY_REQUEST:
                    shape, strategy, backend = serialize.circuit_key_from_bytes(
                        payload
                    )
                    key_blob = b""
                    if self.key_provider is not None:
                        try:
                            key_blob = (
                                self.key_provider(shape, strategy, backend) or b""
                            )
                        except Exception:  # noqa: BLE001 — worker reports the miss
                            key_blob = b""
                    send_frame(sock, KEY_PUSH, key_blob)
                    continue
                raise serialize.SerializationError(
                    f"unexpected frame kind {kind} awaiting results"
                )
        finally:
            sock.close()

    # -- executor interface -------------------------------------------------------
    def start(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ):
        """Dispatch ``(tag, jobs_blob)`` chunks without blocking.

        Unlike the process pool, lease deadlines must be known *here*:
        they become socket timeouts inside the dispatch threads (a
        blocking ``recv`` is the only place a remote lease can be
        enforced).  Returns the ``(tag, future)`` list for
        :meth:`finish`.
        """
        timeouts = timeouts or {}
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=max(4, 2 * self.workers),
                thread_name_prefix="remote-dispatch",
            )
        return [
            (tag, self._threads.submit(self._dispatch, blob, timeouts.get(tag)))
            for tag, blob in tasks
        ]

    def finish(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        futures,
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Collect :meth:`start`'s futures; never raises for a chunk.

        First-dispatch failures feed the shared
        :func:`~repro.core.pool.resolve_chunk` retry/bisect/quarantine
        loop, re-dispatching over whatever workers the registry still
        trusts; whatever cannot be recovered is reported per chunk in
        ``errors`` — typed, never raised.
        """
        timeouts = timeouts or {}
        outcome = PoolOutcome()
        by_tag = dict(tasks)
        for tag, fut in futures:
            try:
                outcome.results[tag] = serialize.job_results_from_bytes(
                    fut.result()
                )
                outcome.attempts.setdefault(tag, 1)
                continue
            except Exception as exc:  # noqa: BLE001 — classified below
                err = wrap_error(exc)
            outcome.retried.append(tag)
            try:
                triples, poison, attempts = resolve_chunk(
                    self._dispatch,
                    self.retry_policy,
                    by_tag[tag],
                    timeouts.get(tag),
                    err,
                    attempts=1,
                    tag=tag,
                )
                outcome.results[tag] = triples
                outcome.attempts[tag] = attempts
                outcome.quarantined.extend(poison)
            except Exception as exc:  # noqa: BLE001 — reported per chunk
                fatal = wrap_error(exc)
                outcome.errors[tag] = fatal
                outcome.attempts[tag] = max(1, fatal.attempts)
        return outcome

    def run(
        self,
        tasks: Sequence[Tuple[ChunkTag, bytes]],
        timeouts: Optional[Dict[ChunkTag, float]] = None,
    ) -> PoolOutcome:
        """Dispatch and collect in one blocking call."""
        if not tasks:
            return PoolOutcome()
        return self.finish(tasks, self.start(tasks, timeouts), timeouts)

    def shutdown(self) -> None:
        """Stop the heartbeat and dispatch threads.  Idempotent.  Does
        NOT stop the workers — the fleet outlives any one dispatcher; use
        :meth:`shutdown_workers` to drain owned (loopback) fleets."""
        self.registry.stop()
        threads, self._threads = self._threads, None
        if threads is not None:
            threads.shutdown(wait=False, cancel_futures=True)

    def shutdown_workers(self) -> None:
        """Send every registered worker a ``SHUTDOWN`` frame (best
        effort) — for fleets this process launched and owns."""
        for w in self.registry.workers():
            try:
                with socket.create_connection(
                    w.addr, timeout=self.connect_timeout
                ) as s:
                    send_frame(s, SHUTDOWN)
            except OSError:
                pass  # already gone


__all__ = [
    "MAGIC",
    "MAX_FRAME",
    "JOBS",
    "RESULTS",
    "ERROR",
    "KEY_REQUEST",
    "KEY_PUSH",
    "PING",
    "PONG",
    "SHUTDOWN",
    "FRAME_KINDS",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "parse_worker_addr",
    "WorkerInfo",
    "WorkerRegistry",
    "RemoteProvingExecutor",
]
