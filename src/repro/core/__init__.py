"""zkVC core: CRPC + PSQ matmul proving API and the hybrid mixer planner."""

from .api import (
    BACKENDS,
    MatmulProofBundle,
    MatmulProver,
    prove_matmul,
    verify_matmul,
)
from .crpc import (
    ConstraintTheory,
    crpc_identity_holds,
    pack_x_column,
    pack_w_row,
    pack_y,
    theory_counts,
)
from .psq import LeftWireReport, left_wire_report, prefix_sums, psq_reduction_factor

__all__ = [
    "BACKENDS",
    "ConstraintTheory",
    "LeftWireReport",
    "MatmulProofBundle",
    "MatmulProver",
    "crpc_identity_holds",
    "left_wire_report",
    "pack_w_row",
    "pack_x_column",
    "pack_y",
    "prefix_sums",
    "prove_matmul",
    "psq_reduction_factor",
    "theory_counts",
    "verify_matmul",
]
