"""zkVC core: CRPC + PSQ matmul proving API, the backend registry, the
artifact store, the batched proving service, and the hybrid mixer planner."""

from .api import (
    BACKENDS,
    MatmulProofBundle,
    MatmulProver,
    MatmulVerifier,
    prove_matmul,
    verify_matmul,
)
from .artifacts import (
    CircuitRegistry,
    KeyStore,
    default_keystore,
    default_registry,
    set_default_keystore,
)
from .backends import (
    ProofBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .errors import (
    ChunkTimeout,
    CorruptEnvelope,
    FleetAuthError,
    MissingKey,
    PoisonJob,
    ProvingError,
    WorkerCrash,
    WorkerUnavailable,
    wrap_error,
)
from .faultinject import FaultPlan, FaultSpec, scoped_env
from .remote import ConnectionPool, RemoteProvingExecutor, WorkerRegistry
from .resilience import (
    BARE_POLICY,
    BreakerConfig,
    ChunkLease,
    CircuitBreaker,
    RetryPolicy,
)
from .crpc import (
    ConstraintTheory,
    crpc_identity_holds,
    pack_x_column,
    pack_w_row,
    pack_y,
    theory_counts,
)
from .pool import GroupChunkPolicy, PoolOutcome, ProcessProvingExecutor
from .psq import LeftWireReport, left_wire_report, prefix_sums, psq_reduction_factor
from .service import (
    EXECUTORS,
    JobOutcome,
    JobResult,
    ProveJob,
    ProvingService,
    ServiceReport,
)

__all__ = [
    "BACKENDS",
    "BARE_POLICY",
    "BreakerConfig",
    "ChunkLease",
    "ChunkTimeout",
    "CircuitBreaker",
    "CircuitRegistry",
    "ConnectionPool",
    "FleetAuthError",
    "ConstraintTheory",
    "CorruptEnvelope",
    "EXECUTORS",
    "FaultPlan",
    "FaultSpec",
    "GroupChunkPolicy",
    "JobOutcome",
    "JobResult",
    "KeyStore",
    "LeftWireReport",
    "MissingKey",
    "PoisonJob",
    "PoolOutcome",
    "ProcessProvingExecutor",
    "ProvingError",
    "RemoteProvingExecutor",
    "RetryPolicy",
    "WorkerCrash",
    "WorkerRegistry",
    "WorkerUnavailable",
    "scoped_env",
    "MatmulProofBundle",
    "MatmulProver",
    "MatmulVerifier",
    "ProofBackend",
    "ProveJob",
    "ProvingService",
    "ServiceReport",
    "backend_names",
    "crpc_identity_holds",
    "default_keystore",
    "default_registry",
    "get_backend",
    "left_wire_report",
    "pack_w_row",
    "pack_x_column",
    "pack_y",
    "prefix_sums",
    "prove_matmul",
    "psq_reduction_factor",
    "register_backend",
    "set_default_keystore",
    "theory_counts",
    "verify_matmul",
    "wrap_error",
]
