"""The zkVC hybrid token-mixer planner (paper Sec. V-B).

The paper observes: SoftMax attention is accurate but quadratic in tokens;
SoftMax-free mixers are cheap but lose accuracy; and losing SoftMax hurts
most in *late* layers where sequences are short anyway.  zkVC therefore
"reintegrates SoftMax self-attention in later transformer layers with
shorter token sequences".

The planner formalises that: each layer picks a mixer maximising an
accuracy utility subject to a proving-cost budget, where costs come from the
real constraint accounting in :mod:`repro.zkml.compile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..nn.transformer import ModelConfig

# Relative accuracy utility of each mixer, normalised to softmax = 1.
# Derived from the paper's Tables III/IV orderings (SoftApprox > SoftFree-S
# > SoftFree-L > SoftFree-P) and reproduced on the synthetic tasks.
MIXER_UTILITY = {
    "softmax": 1.00,
    "scaling": 0.90,
    "linear": 0.80,
    "pooling": 0.70,
}

# Depth weighting: late layers benefit more from content-based attention
# (the paper's planner keeps SoftMax late where sequences are short).
def _depth_weight(layer_idx: int, total_layers: int) -> float:
    return 0.5 + layer_idx / max(1, total_layers - 1)


@dataclass
class PlanResult:
    plan: List[str]
    est_constraints: int
    budget_constraints: int
    utility: float


class MixerPlanner:
    """Greedy cost/utility planner over per-layer mixer choices."""

    def __init__(
        self,
        config: ModelConfig,
        strategy: str = "crpc_psq",
        candidates: Sequence[str] = ("softmax", "scaling", "pooling"),
        mlp_ratio: int = 4,
    ):
        self.config = config
        self.strategy = strategy
        self.candidates = list(candidates)
        self.mlp_ratio = mlp_ratio
        self._layer_costs = self._compute_layer_costs()

    def _compute_layer_costs(self) -> List[Dict[str, int]]:
        """Constraint cost of each (layer, mixer) pair."""
        from ..zkml.compile import account_model

        specs = self.config.layer_specs()
        total = len(specs)
        costs: List[Dict[str, int]] = [dict() for _ in range(total)]
        # Cost model is additive per layer: evaluate each uniform plan once
        # and attribute per-layer costs by stage spec.
        for mixer in self.candidates:
            per_spec: Dict[tuple, int] = {}
            # Per-layer accounting: a single-layer probe model per spec.
            for idx, spec in enumerate(specs):
                key = (spec.tokens, spec.dim, spec.heads, mixer)
                if key not in per_spec:
                    one_layer = ModelConfig(
                        "probe",
                        [type(spec)(layers=1, dim=spec.dim,
                                    tokens=spec.tokens, heads=spec.heads)],
                        num_classes=self.config.num_classes,
                        mlp_ratio=self.mlp_ratio,
                    )
                    cost = account_model(
                        one_layer, [mixer], self.strategy,
                        mlp_ratio=self.mlp_ratio,
                    )
                    per_spec[key] = cost.total.constraints
                costs[idx][mixer] = per_spec[key]
        return costs

    def plan(self, budget_fraction: float = 0.6) -> PlanResult:
        """Choose a mixer per layer.

        ``budget_fraction`` is the target proving cost relative to the
        all-SoftMax model (the paper's zkVC points land at ~0.4-0.6x).
        Solved exactly as a small knapsack (DP over layers with the budget
        discretised to ~2000 units): maximise depth-weighted utility subject
        to total constraints <= budget.  The depth weighting is what makes
        the optimum keep SoftMax in *late* layers, as the paper describes.
        """
        total = len(self.config.layer_specs())
        softmax_total = sum(c["softmax"] for c in self._layer_costs)
        budget = int(softmax_total * budget_fraction)
        # Never force infeasibility: the all-cheapest plan must fit.
        floor_cost = sum(min(c.values()) for c in self._layer_costs)
        budget = max(budget, floor_cost)

        unit = max(1, budget // 2000)
        # Slack absorbs the per-layer ceil rounding so a budget equal to the
        # floor plan stays feasible.
        cap = budget // unit + total

        def weight(i: int, mixer: str) -> float:
            return MIXER_UTILITY[mixer] * _depth_weight(i, total)

        # dp[b] = (best utility, plan) using layers processed so far with
        # discretised cost exactly <= b.
        NEG = float("-inf")
        dp: List[float] = [0.0] + [NEG] * cap
        choice: List[List[Optional[str]]] = []
        for i in range(total):
            ndp = [NEG] * (cap + 1)
            nchoice: List[Optional[str]] = [None] * (cap + 1)
            options = [
                (m, -(-self._layer_costs[i][m] // unit))
                for m in self.candidates
            ]
            for b in range(cap + 1):
                if dp[b] == NEG:
                    continue
                for mixer, c in options:
                    nb = b + c
                    if nb > cap:
                        continue
                    u = dp[b] + weight(i, mixer)
                    if u > ndp[nb]:
                        ndp[nb] = u
                        nchoice[nb] = mixer
            dp = ndp
            choice.append(nchoice)

        best_b = max(range(cap + 1), key=lambda b: dp[b])
        if dp[best_b] == NEG:
            raise RuntimeError("planner budget infeasible")
        # Backtrack.
        plan: List[str] = [""] * total
        b = best_b
        for i in range(total - 1, -1, -1):
            mixer = choice[i][b]
            assert mixer is not None
            plan[i] = mixer
            b -= -(-self._layer_costs[i][mixer] // unit)
        est = sum(self._layer_costs[i][m] for i, m in enumerate(plan))
        return PlanResult(
            plan=plan,
            est_constraints=est,
            budget_constraints=budget,
            utility=dp[best_b],
        )
