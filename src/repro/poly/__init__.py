"""Polynomials over the BN254 scalar field: dense univariate + multilinear."""

from .dense import Poly, lagrange_coeffs_at, lagrange_interpolate, vanishing_poly
from .multilinear import MultilinearPoly, eq_eval, eq_evals, index_bits

__all__ = [
    "MultilinearPoly",
    "Poly",
    "eq_eval",
    "eq_evals",
    "index_bits",
    "lagrange_coeffs_at",
    "lagrange_interpolate",
    "vanishing_poly",
]
