"""Dense univariate polynomials over the BN254 scalar field.

Coefficients are raw ints mod ``Fr`` in ascending-degree order.  The class is
used by the QAP compiler, the CRPC packing transform, and tests; hot loops in
the Groth16 prover use the NTT helpers directly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..field.ntt import mul_polys_ntt
from ..field.prime_field import BN254_FR_MODULUS, batch_inv_mod, inv_mod

R = BN254_FR_MODULUS


def _trim(coeffs: List[int]) -> List[int]:
    while coeffs and coeffs[-1] == 0:
        coeffs.pop()
    return coeffs


class Poly:
    """Immutable dense polynomial; ``Poly([a0, a1, a2])`` is a0+a1*X+a2*X^2."""

    __slots__ = ("coeffs",)

    def __init__(self, coeffs: Sequence[int] = ()):
        self.coeffs = tuple(_trim([c % R for c in coeffs]))

    # -- constructors --------------------------------------------------------
    @classmethod
    def zero(cls) -> "Poly":
        return cls(())

    @classmethod
    def one(cls) -> "Poly":
        return cls((1,))

    @classmethod
    def monomial(cls, degree: int, coeff: int = 1) -> "Poly":
        return cls([0] * degree + [coeff])

    @property
    def degree(self) -> int:
        """Degree; the zero polynomial reports -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    # -- ring operations -----------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = (out[i] + c) % R
        return Poly(out)

    def __sub__(self, other: "Poly") -> "Poly":
        out = list(self.coeffs) + [0] * max(0, len(other.coeffs) - len(self.coeffs))
        for i, c in enumerate(other.coeffs):
            out[i] = (out[i] - c) % R
        return Poly(out)

    def __neg__(self) -> "Poly":
        return Poly([-c % R for c in self.coeffs])

    def __mul__(self, other) -> "Poly":
        if isinstance(other, int):
            return Poly([c * other % R for c in self.coeffs])
        if self.is_zero() or other.is_zero():
            return Poly.zero()
        if len(self.coeffs) * len(other.coeffs) <= 256:
            out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
            for i, a in enumerate(self.coeffs):
                if a == 0:
                    continue
                for j, b in enumerate(other.coeffs):
                    out[i + j] = (out[i + j] + a * b) % R
            return Poly(out)
        return Poly(mul_polys_ntt(self.coeffs, other.coeffs))

    __rmul__ = __mul__

    def divmod(self, divisor: "Poly") -> Tuple["Poly", "Poly"]:
        """Long division; returns (quotient, remainder)."""
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        rem = list(self.coeffs)
        dcoe = divisor.coeffs
        dd = divisor.degree
        lead_inv = inv_mod(dcoe[-1], R)
        quot = [0] * max(0, len(rem) - dd)
        for shift in range(len(rem) - dd - 1, -1, -1):
            factor = rem[dd + shift] * lead_inv % R
            if factor:
                quot[shift] = factor
                for i, dc in enumerate(dcoe):
                    rem[shift + i] = (rem[shift + i] - factor * dc) % R
        return Poly(quot), Poly(rem[:dd])

    def __floordiv__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[0]

    def __mod__(self, divisor: "Poly") -> "Poly":
        return self.divmod(divisor)[1]

    # -- evaluation ----------------------------------------------------------
    def __call__(self, x: int) -> int:
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % R
        return acc

    def __eq__(self, other) -> bool:
        return isinstance(other, Poly) and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash(self.coeffs)

    def __repr__(self) -> str:
        if self.is_zero():
            return "Poly(0)"
        terms = [
            f"{c}*X^{i}" if i else str(c)
            for i, c in enumerate(self.coeffs)
            if c
        ]
        return "Poly(" + " + ".join(terms) + ")"


def lagrange_interpolate(xs: Sequence[int], ys: Sequence[int]) -> Poly:
    """Unique polynomial of degree < len(xs) through the given points."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(set(x % R for x in xs)) != len(xs):
        raise ValueError("interpolation points must be distinct")
    result = Poly.zero()
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if yi % R == 0:
            continue
        basis = Poly.one()
        denom = 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            basis = basis * Poly([-xj % R, 1])
            denom = denom * (xi - xj) % R
        result = result + basis * (yi * inv_mod(denom, R) % R)
    return result


def vanishing_poly(size: int) -> Poly:
    """``X^size - 1``: the vanishing polynomial of a radix-2 domain."""
    return Poly([-1 % R] + [0] * (size - 1) + [1])


def lagrange_coeffs_at(domain_size: int, omega: int, point: int) -> List[int]:
    """All Lagrange-basis values ``L_q(point)`` for the multiplicative domain
    ``{omega^q}`` in O(N) — the core of the Groth16 trusted setup.

    Uses ``L_q(x) = omega^q * (x^N - 1) / (N * (x - omega^q))``.
    """
    zx = (pow(point, domain_size, R) - 1) % R
    n_inv = inv_mod(domain_size, R)
    powers = [1] * domain_size
    for q in range(1, domain_size):
        powers[q] = powers[q - 1] * omega % R
    if zx == 0:
        # point is in the domain: L_q is an indicator function.
        return [1 if pw == point % R else 0 for pw in powers]
    denoms = [(point - pw) % R for pw in powers]
    inv_denoms = batch_inv_mod(denoms, R)
    return [
        pw * zx % R * n_inv % R * inv_d % R
        for pw, inv_d in zip(powers, inv_denoms)
    ]
