"""Multilinear extensions over the boolean hypercube.

The Spartan-style SNARK and the zkCNN baseline both work with the multilinear
extension (MLE) of a vector ``v`` of length ``2^m``:

    v~(x_1..x_m) = sum_{b in {0,1}^m} v[b] * prod_i eq(x_i, b_i)

Evaluations are stored dense as raw ints mod Fr.  Index convention: bit 0 of
the index is the *last* variable, i.e. ``evals[i]`` is the value at the
big-endian bit string of ``i`` — matching how sumcheck binds variables from
x_1 down to x_m.
"""

from __future__ import annotations

from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS


class MultilinearPoly:
    """Dense multilinear polynomial in ``num_vars`` variables."""

    __slots__ = ("evals", "num_vars")

    def __init__(self, evals: Sequence[int]):
        n = len(evals)
        if n == 0 or n & (n - 1):
            raise ValueError("evaluation table length must be a power of two")
        self.evals = [e % R for e in evals]
        self.num_vars = n.bit_length() - 1

    @classmethod
    def from_vector(cls, vec: Sequence[int], num_vars: int) -> "MultilinearPoly":
        """Zero-pad ``vec`` to length ``2^num_vars``."""
        size = 1 << num_vars
        if len(vec) > size:
            raise ValueError("vector longer than 2^num_vars")
        return cls(list(vec) + [0] * (size - len(vec)))

    def evaluate(self, point: Sequence[int]) -> int:
        """Evaluate at an arbitrary field point, O(2^m)."""
        if len(point) != self.num_vars:
            raise ValueError("point arity mismatch")
        table = self.evals
        for r in point:
            r %= R
            half = len(table) // 2
            table = [
                (table[i] + r * (table[half + i] - table[i])) % R
                for i in range(half)
            ]
        return table[0]

    def bind_first_var(self, r: int) -> "MultilinearPoly":
        """Fix x_1 = r, producing an MLE in one fewer variable."""
        r %= R
        half = len(self.evals) // 2
        lo, hi = self.evals[:half], self.evals[half:]
        return MultilinearPoly(
            [(a + r * (b - a)) % R for a, b in zip(lo, hi)]
        )

    def __len__(self) -> int:
        return len(self.evals)

    def __repr__(self) -> str:
        return f"MultilinearPoly(num_vars={self.num_vars})"


def eq_evals(point: Sequence[int]) -> List[int]:
    """Table of ``eq(point, b)`` for all boolean ``b`` — O(2^m).

    ``eq(x, b) = prod_i (x_i b_i + (1-x_i)(1-b_i))`` is the multilinear
    indicator; Spartan multiplies the R1CS identity by it so the sumcheck
    pins down every row rather than only the sum.
    """
    table = [1]
    for r in point:
        r %= R
        nr = (1 - r) % R
        table = [v * x % R for v in table for x in (nr, r)]
    return table


def eq_eval(x: Sequence[int], y: Sequence[int]) -> int:
    """eq(x, y) for two field points of equal arity."""
    if len(x) != len(y):
        raise ValueError("arity mismatch")
    acc = 1
    for a, b in zip(x, y):
        a %= R
        b %= R
        acc = acc * ((a * b + (1 - a) * (1 - b)) % R) % R
    return acc


def index_bits(index: int, num_vars: int) -> List[int]:
    """Big-endian bit list of ``index`` (matches the eval-table convention)."""
    return [(index >> (num_vars - 1 - i)) & 1 for i in range(num_vars)]
