"""Spartan-style transparent zk-SNARK backend (sumcheck + Hyrax commitment)."""

from .commitment import (
    HyraxCommitment,
    HyraxOpening,
    HyraxProver,
    hash_to_g1,
    hyrax_verify,
    pedersen_commit,
    pedersen_generators,
)
from .snark import SpartanProof, prove, verify
from .sumcheck import (
    SumcheckProof,
    sumcheck_prove,
    sumcheck_prove_reference,
    sumcheck_verify,
)
from .transcript import Transcript

__all__ = [
    "HyraxCommitment",
    "HyraxOpening",
    "HyraxProver",
    "SpartanProof",
    "SumcheckProof",
    "Transcript",
    "hash_to_g1",
    "hyrax_verify",
    "pedersen_commit",
    "pedersen_generators",
    "prove",
    "sumcheck_prove",
    "sumcheck_prove_reference",
    "sumcheck_verify",
    "verify",
]
