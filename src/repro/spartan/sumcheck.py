"""The sumcheck protocol over dense multilinear tables.

Spartan's two phases and the zkCNN baseline both reduce a claim

    sum_{x in {0,1}^m} g(x) == claim

to a single evaluation ``g(r)`` through ``m`` rounds.  ``g`` is given as a
product/combination of multilinear tables: each round the prover sends the
round polynomial's evaluations at ``t = 0..degree`` and binds the first free
variable to the verifier's challenge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from ..field.prime_field import BN254_FR_MODULUS, inv_mod
from .transcript import Transcript

R = BN254_FR_MODULUS

Combine = Callable[[Sequence[int]], int]


@dataclass
class SumcheckProof:
    """Round polynomials as evaluation lists at t = 0..degree."""

    round_polys: List[List[int]] = field(default_factory=list)

    def size_bytes(self) -> int:
        return 32 * sum(len(p) for p in self.round_polys)


def _interpolate_eval(evals: Sequence[int], x: int) -> int:
    """Evaluate the poly interpolating ``(i, evals[i])`` at ``x``
    (small-degree Lagrange over the points 0..deg)."""
    deg = len(evals) - 1
    x %= R
    if x <= deg:
        return evals[x] % R
    result = 0
    for i, yi in enumerate(evals):
        num, den = 1, 1
        for j in range(deg + 1):
            if j == i:
                continue
            num = num * ((x - j) % R) % R
            den = den * ((i - j) % R) % R
        result = (result + yi * num % R * inv_mod(den, R)) % R
    return result


def sumcheck_prove(
    tables: List[List[int]],
    combine: Combine,
    degree: int,
    claim: int,
    transcript: Transcript,
    label: bytes = b"sumcheck",
) -> Tuple[SumcheckProof, List[int], List[int]]:
    """Run the prover side.

    ``tables`` are equal-length power-of-two evaluation tables; ``combine``
    maps one value per table to the summand; ``degree`` bounds the per-round
    degree in the bound variable.

    Returns (proof, challenge point r, final bound values per table).
    """
    size = len(tables[0])
    if any(len(t) != size for t in tables):
        raise ValueError("tables must have equal length")
    num_rounds = size.bit_length() - 1
    tables = [list(t) for t in tables]
    proof = SumcheckProof()
    r_point: List[int] = []
    current_claim = claim % R

    for rnd in range(num_rounds):
        half = len(tables[0]) // 2
        # Round polynomial evaluations at t = 0..degree.
        evals = [0] * (degree + 1)
        for idx in range(half):
            los = [t[idx] for t in tables]
            his = [t[half + idx] for t in tables]
            diffs = [(h - l) % R for l, h in zip(los, his)]
            vals = los
            evals[0] = (evals[0] + combine(vals)) % R
            for t in range(1, degree + 1):
                vals = [(v + d) % R for v, d in zip(vals, diffs)]
                evals[t] = (evals[t] + combine(vals)) % R
        proof.round_polys.append(evals)
        transcript.append_scalars(label + b"/round", evals)
        r = transcript.challenge_scalar(label + b"/challenge")
        r_point.append(r)
        # Bind the variable.
        tables = [
            [(t[i] + r * ((t[half + i] - t[i]) % R)) % R for i in range(half)]
            for t in tables
        ]
        current_claim = _interpolate_eval(evals, r)

    finals = [t[0] for t in tables]
    return proof, r_point, finals


def sumcheck_verify(
    proof: SumcheckProof,
    degree: int,
    claim: int,
    num_rounds: int,
    transcript: Transcript,
    label: bytes = b"sumcheck",
) -> Tuple[bool, int, List[int]]:
    """Run the verifier side.

    Returns (rounds_consistent, final_claim, challenge point).  The caller
    must still check ``final_claim`` against an oracle evaluation of ``g`` at
    the returned point.
    """
    current = claim % R
    r_point: List[int] = []
    for rnd_poly in proof.round_polys:
        if len(rnd_poly) != degree + 1:
            return False, 0, r_point
        if (rnd_poly[0] + rnd_poly[1]) % R != current:
            return False, 0, r_point
        transcript.append_scalars(label + b"/round", rnd_poly)
        r = transcript.challenge_scalar(label + b"/challenge")
        r_point.append(r)
        current = _interpolate_eval(rnd_poly, r)
    if len(proof.round_polys) != num_rounds:
        return False, 0, r_point
    return True, current, r_point
