"""The sumcheck protocol over dense multilinear tables.

Spartan's two phases and the zkCNN baseline both reduce a claim

    sum_{x in {0,1}^m} g(x) == claim

to a single evaluation ``g(r)`` through ``m`` rounds.  ``g`` is given as a
product/combination of multilinear tables: each round the prover sends the
round polynomial's evaluations at ``t = 0..degree`` and binds the first free
variable to the verifier's challenge.

The production prover lives in :mod:`sumcheck_fast` (in-place binding, the
round-claim shortcut, and specialized no-callback kernels) and is re-exported
here, so ``snark.py``, ``baselines/zkcnn.py`` and everything above them pick
it up transparently.  ``sumcheck_prove_reference`` keeps the naive
one-combine-call-per-term prover as the cross-check oracle for equivalence
tests and benchmarks.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..field.prime_field import BN254_FR_MODULUS
from .sumcheck_fast import (  # noqa: F401  (re-exports)
    Combine,
    SumcheckProof,
    _interpolate_eval,
    sumcheck_prove,
)
from .transcript import Transcript

R = BN254_FR_MODULUS


def sumcheck_prove_reference(
    tables: List[List[int]],
    combine: Combine,
    degree: int,
    claim: int,
    transcript: Transcript,
    label: bytes = b"sumcheck",
) -> Tuple[SumcheckProof, List[int], List[int]]:
    """Naive reference prover: every round evaluation goes through the
    ``combine`` callback and every bind reallocates the tables.  Kept as the
    equivalence oracle for the fast kernels — for honest claims it emits
    byte-identical proofs to :func:`sumcheck_fast.sumcheck_prove`.
    """
    size = len(tables[0])
    if any(len(t) != size for t in tables):
        raise ValueError("tables must have equal length")
    num_rounds = size.bit_length() - 1
    tables = [list(t) for t in tables]
    proof = SumcheckProof()
    r_point: List[int] = []

    for _rnd in range(num_rounds):
        half = len(tables[0]) // 2
        # Round polynomial evaluations at t = 0..degree.
        evals = [0] * (degree + 1)
        for idx in range(half):
            los = [t[idx] for t in tables]
            his = [t[half + idx] for t in tables]
            diffs = [(h - l) % R for l, h in zip(los, his)]
            vals = los
            evals[0] = (evals[0] + combine(vals)) % R
            for t in range(1, degree + 1):
                vals = [(v + d) % R for v, d in zip(vals, diffs)]
                evals[t] = (evals[t] + combine(vals)) % R
        proof.round_polys.append(evals)
        transcript.append_scalars(label + b"/round", evals)
        r = transcript.challenge_scalar(label + b"/challenge")
        r_point.append(r)
        # Bind the variable.
        tables = [
            [(t[i] + r * ((t[half + i] - t[i]) % R)) % R for i in range(half)]
            for t in tables
        ]

    finals = [t[0] for t in tables]
    return proof, r_point, finals


def sumcheck_verify(
    proof: SumcheckProof,
    degree: int,
    claim: int,
    num_rounds: int,
    transcript: Transcript,
    label: bytes = b"sumcheck",
) -> Tuple[bool, int, List[int]]:
    """Run the verifier side.

    Returns (rounds_consistent, final_claim, challenge point).  The caller
    must still check ``final_claim`` against an oracle evaluation of ``g`` at
    the returned point.
    """
    # A sumcheck round needs p(0) + p(1); degree-0 "proofs" are malformed,
    # not an internal error.
    if degree < 1:
        return False, 0, []
    # Fail truncated/overlong proofs fast, before absorbing any rounds.
    if len(proof.round_polys) != num_rounds:
        return False, 0, []
    current = claim % R
    r_point: List[int] = []
    for rnd_poly in proof.round_polys:
        if len(rnd_poly) != degree + 1:
            return False, 0, r_point
        if (rnd_poly[0] + rnd_poly[1]) % R != current:
            return False, 0, r_point
        transcript.append_scalars(label + b"/round", rnd_poly)
        r = transcript.challenge_scalar(label + b"/challenge")
        r_point.append(r)
        current = _interpolate_eval(rnd_poly, r)
    return True, current, r_point
