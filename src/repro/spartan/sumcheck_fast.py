"""Linear-time sumcheck prover kernels.

The generic prover in :mod:`sumcheck` calls a Python ``combine`` callback
``(degree + 1) * n/2`` times per round and rebuilds every table on every
bind.  This module removes all three costs:

* **in-place binding** — tables are bound to the round challenge in place
  and truncated, so no round allocates fresh tables;
* **the round-claim shortcut** — every round polynomial satisfies
  ``s(0) + s(1) = claim``, so ``evals[1] = claim - evals[0]`` replaces one
  full combine sweep per round (the proof bytes are unchanged: an honest
  prover's ``s(1)`` already equals ``claim - s(0)``);
* **no-callback kernels** — the product-of-2 (Spartan phase 2, zkCNN) and
  ``eq * (a*b - c)`` (Spartan phase 1) combines that dominate the prover
  run as tight integer loops with one modular reduction per accumulator
  per round instead of one per term.

The public ``sumcheck_prove`` here is re-exported through ``sumcheck.py``,
so every caller picks it up transparently; ``sumcheck.py`` keeps the naive
reference implementation for equivalence tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, List, Optional, Sequence, Tuple

from ..field import vector as _vector
from ..field.prime_field import BN254_FR_MODULUS, batch_inv_mod
from .transcript import Transcript

R = BN254_FR_MODULUS

Combine = Callable[[Sequence[int]], int]


@dataclass
class SumcheckProof:
    """Round polynomials as evaluation lists at t = 0..degree."""

    round_polys: List[List[int]] = field(default_factory=list)

    def size_bytes(self) -> int:
        return 32 * sum(len(p) for p in self.round_polys)


@lru_cache(maxsize=32)
def _lagrange_denominator_invs(deg: int) -> Tuple[int, ...]:
    """Inverses of ``prod_{j != i} (i - j)`` for the fixed nodes 0..deg,
    all computed with a single batched inversion and cached per degree."""
    dens = []
    for i in range(deg + 1):
        den = 1
        for j in range(deg + 1):
            if j != i:
                den = den * ((i - j) % R) % R
        dens.append(den)
    return tuple(batch_inv_mod(dens, R))


def _interpolate_eval(evals: Sequence[int], x: int) -> int:
    """Evaluate the poly interpolating ``(i, evals[i])`` at ``x``.

    Lagrange over the fixed nodes 0..deg: the denominators never change, so
    their inverses come from a per-degree LRU (built with one batched
    inversion); the numerators are prefix/suffix products of ``(x - j)`` —
    no per-call inversions at all.
    """
    deg = len(evals) - 1
    x %= R
    if x <= deg:
        return evals[x] % R
    den_invs = _lagrange_denominator_invs(deg)
    # prefix[i] = prod_{j < i} (x - j), suffix[i] = prod_{j > i} (x - j).
    prefix = [1] * (deg + 1)
    for i in range(deg):
        prefix[i + 1] = prefix[i] * (x - i) % R
    suffix = [1] * (deg + 1)
    for i in range(deg, 0, -1):
        suffix[i - 1] = suffix[i] * (x - i) % R
    acc = 0
    for yi, pre, suf, dinv in zip(evals, prefix, suffix, den_invs):
        acc += yi * pre % R * suf % R * dinv
    return acc % R


def _bind_tables(tables: List[List[int]], half: int, r: int) -> None:
    """Bind the first free variable to ``r`` in place and truncate."""
    for t in tables:
        for i in range(half):
            lo = t[i]
            t[i] = (lo + r * (t[half + i] - lo)) % R
        del t[half:]


def _round_generic(
    tables: List[List[int]],
    half: int,
    claim: int,
    combine: Combine,
    degree: int,
) -> List[int]:
    evals = [0] * (degree + 1)
    for idx in range(half):
        los = [t[idx] for t in tables]
        diffs = [(h - l) % R for l, h in zip(los, (t[half + idx] for t in tables))]
        vals = los
        evals[0] += combine(vals)
        for t in range(1, degree + 1):
            vals = [(v + d) % R for v, d in zip(vals, diffs)]
            if t >= 2:
                evals[t] += combine(vals)
    evals[0] %= R
    if degree >= 1:
        evals[1] = (claim - evals[0]) % R
    for t in range(2, degree + 1):
        evals[t] %= R
    return evals


def _round_prod2(
    tables: List[List[int]], half: int, claim: int
) -> List[int]:
    """Degree-2 product of two tables: ``g = A * B``."""
    a, b = tables
    e0 = 0
    e2 = 0
    for i in range(half):
        al = a[i]
        bl = b[i]
        ah = a[half + i]
        bh = b[half + i]
        e0 += al * bl
        e2 += (2 * ah - al) * (2 * bh - bl)
    return [e0 % R, (claim - e0) % R, e2 % R]


def _round_prod3(
    tables: List[List[int]], half: int, claim: int
) -> List[int]:
    """Degree-3 product of three tables: ``g = A * B * C``."""
    a, b, c = tables
    e0 = 0
    e2 = 0
    e3 = 0
    for i in range(half):
        al, bl, cl = a[i], b[i], c[i]
        ah, bh, ch = a[half + i], b[half + i], c[half + i]
        e0 += al * bl % R * cl
        e2 += (2 * ah - al) * (2 * bh - bl) % R * (2 * ch - cl)
        e3 += (3 * ah - 2 * al) * (3 * bh - 2 * bl) % R * (3 * ch - 2 * cl)
    return [e0 % R, (claim - e0) % R, e2 % R, e3 % R]


def _round_eq_abc(
    tables: List[List[int]], half: int, claim: int
) -> List[int]:
    """Degree-3 Spartan phase-1 combine: ``g = E * (A*B - C)``."""
    e, a, b, c = tables
    e0 = 0
    e2 = 0
    e3 = 0
    for i in range(half):
        el, al, bl, cl = e[i], a[i], b[i], c[i]
        eh, ah, bh, ch = e[half + i], a[half + i], b[half + i], c[half + i]
        e0 += el * (al * bl - cl)
        e2 += (2 * eh - el) * ((2 * ah - al) * (2 * bh - bl) - (2 * ch - cl))
        e3 += (3 * eh - 2 * el) * (
            (3 * ah - 2 * al) * (3 * bh - 2 * bl) - (3 * ch - 2 * cl)
        )
    return [e0 % R, (claim - e0) % R, e2 % R, e3 % R]


# kernel name -> (round function, expected table count, expected degree)
_KERNELS = {
    "prod2": (_round_prod2, 2, 2),
    "prod3": (_round_prod3, 3, 3),
    "eq_abc": (_round_eq_abc, 4, 3),
}


# -- vector-engine round kernels ---------------------------------------------
#
# Limb-domain twins of the scalar kernels above.  Every accumulator is an
# exact sum of canonical residues (``vec_sum`` folds 32-bit half-limb column
# sums through one Python int), so each round's evaluation list — and hence
# the transcript and proof bytes — is identical to the scalar kernels'.
# ``t`` extensions use the identity ``k*hi - (k-1)*lo = hi + (k-1)*(hi-lo)``:
# one vec_sub per table yields both the t=2 and t=3 lines with adds only.

def _vec_lines(t, half):
    """``(lo, line2, line3, diff)`` rows for one table: the table values at
    the bound variable = 0, 2, 3 (and the hi-lo difference)."""
    lo, hi = t[:half], t[half:]
    d = _vector.vec_sub(hi, lo)
    l2 = _vector.vec_add(hi, d)
    l3 = _vector.vec_add(l2, d)
    return lo, l2, l3, d


def _vec_round_prod2(tables, half, claim):
    (al, a2, _a3, _), (bl, b2, _b3, _) = (
        _vec_lines(t, half) for t in tables
    )
    e0 = _vector.vec_sum(_vector.vec_mul(al, bl))
    e2 = _vector.vec_sum(_vector.vec_mul(a2, b2))
    return [e0, (claim - e0) % R, e2]


def _vec_round_prod3(tables, half, claim):
    (al, a2, a3, _), (bl, b2, b3, _), (cl, c2, c3, _) = (
        _vec_lines(t, half) for t in tables
    )
    e0 = _vector.vec_sum(_vector.vec_mul(_vector.vec_mul(al, bl), cl))
    e2 = _vector.vec_sum(_vector.vec_mul(_vector.vec_mul(a2, b2), c2))
    e3 = _vector.vec_sum(_vector.vec_mul(_vector.vec_mul(a3, b3), c3))
    return [e0, (claim - e0) % R, e2, e3]


def _vec_round_eq_abc(tables, half, claim):
    (el, e2t, e3t, _), (al, a2, a3, _), (bl, b2, b3, _), (cl, c2, c3, _) = (
        _vec_lines(t, half) for t in tables
    )
    e0 = _vector.vec_sum(
        _vector.vec_mul(el, _vector.vec_sub(_vector.vec_mul(al, bl), cl))
    )
    e2 = _vector.vec_sum(
        _vector.vec_mul(e2t, _vector.vec_sub(_vector.vec_mul(a2, b2), c2))
    )
    e3 = _vector.vec_sum(
        _vector.vec_mul(e3t, _vector.vec_sub(_vector.vec_mul(a3, b3), c3))
    )
    return [e0, (claim - e0) % R, e2, e3]


_VEC_KERNELS = {
    "prod2": _vec_round_prod2,
    "prod3": _vec_round_prod3,
    "eq_abc": _vec_round_eq_abc,
}


def _vec_bind(t, half, r):
    """Limb-domain :func:`_bind_tables` for one table:
    ``lo + r * (hi - lo)``, truncated to ``half`` rows."""
    lo, hi = t[:half], t[half:]
    return _vector.vec_add(
        lo, _vector.vec_mul_scalar(_vector.vec_sub(hi, lo), r)
    )


def sumcheck_prove(
    tables: List[List[int]],
    combine: Combine,
    degree: int,
    claim: int,
    transcript: Transcript,
    label: bytes = b"sumcheck",
    kernel: Optional[str] = None,
) -> Tuple[SumcheckProof, List[int], List[int]]:
    """Run the prover side (fast path).

    ``tables`` are equal-length power-of-two evaluation tables; ``combine``
    maps one value per table to the summand; ``degree`` bounds the per-round
    degree in the bound variable.  ``kernel`` selects a specialized
    no-callback round kernel (``"prod2"``, ``"prod3"``, ``"eq_abc"``) whose
    combine the caller guarantees matches; it must agree with ``tables`` and
    ``degree`` or a ``ValueError`` is raised.

    Unlike the reference prover (which never reads it), ``claim`` is
    load-bearing here: the round-claim shortcut derives ``s(1)`` from it,
    so it **must** equal the true sum of ``combine`` over the tables.  A
    placeholder claim silently yields a proof the verifier rejects.

    Produces byte-identical proofs to the naive reference prover for honest
    claims, and returns (proof, challenge point r, final bound values per
    table).
    """
    size = len(tables[0])
    if any(len(t) != size for t in tables):
        raise ValueError("tables must have equal length")
    round_fn = None
    if kernel is not None:
        try:
            round_fn, want_tables, want_degree = _KERNELS[kernel]
        except KeyError:
            raise ValueError(f"unknown sumcheck kernel {kernel!r}")
        if len(tables) != want_tables or degree != want_degree:
            raise ValueError(
                f"kernel {kernel!r} expects {want_tables} tables of "
                f"degree {want_degree}"
            )
    num_rounds = size.bit_length() - 1
    # The specialised kernels have limb-domain twins: big rounds run over
    # (n, 4) limb arrays through the vector engine and drop back to the
    # scalar loops once the tables shrink below the engine's profitability
    # floor.  Both paths emit identical round evaluations (vec_sum is an
    # exact column sum), so the transcript never notices the switch.
    vec_fn = _VEC_KERNELS.get(kernel) if round_fn is not None else None
    impl = _vector.active_impl() if vec_fn is not None else None
    vtables = None
    if impl is not None and size // 2 >= _vector.SUMCHECK_MIN_HALF[impl]:
        vtables = [_vector.to_limbs(t) for t in tables]
        tables = []
    else:
        tables = [list(t) for t in tables]  # copy once; rounds bind in place
    proof = SumcheckProof()
    r_point: List[int] = []
    current_claim = claim % R

    for _rnd in range(num_rounds):
        if vtables is not None:
            half = vtables[0].shape[0] // 2
            evals = vec_fn(vtables, half, current_claim)
        else:
            half = len(tables[0]) // 2
            if round_fn is not None:
                evals = round_fn(tables, half, current_claim)
            else:
                evals = _round_generic(
                    tables, half, current_claim, combine, degree
                )
        proof.round_polys.append(evals)
        transcript.append_scalars(label + b"/round", evals)
        r = transcript.challenge_scalar(label + b"/challenge")
        r_point.append(r)
        if vtables is not None:
            vtables = [_vec_bind(t, half, r) for t in vtables]
            if half // 2 < _vector.SUMCHECK_MIN_HALF.get(
                _vector.active_impl(), size
            ):
                tables = [_vector.from_limbs(t) for t in vtables]
                vtables = None
        else:
            _bind_tables(tables, half, r)
        current_claim = _interpolate_eval(evals, r)

    finals = [t[0] for t in tables]
    return proof, r_point, finals
