"""Pedersen / Hyrax-style multilinear polynomial commitment.

* Generators come from try-and-increment hash-to-curve, so no party knows
  their discrete logs (nothing-up-my-sleeve; this is what makes the scheme
  binding without a trusted setup).
* A vector of length ``2^m`` is laid out as a ``2^m1 x 2^m2`` matrix
  (``m1 = ceil(m/2)``); each row gets a blinded Pedersen commitment.
* Opening at a point ``r = (r1 || r2)`` uses the bilinear structure
  ``v~(r) = L(r1)^T M R(r2)``: the prover reveals ``t = M^T L`` and the
  combined blinder, the verifier checks ``commit(t) == sum_i L_i * C_i``
  homomorphically and evaluates ``<t, R(r2)>`` itself.

Proof size and verifier work are ``O(sqrt n)`` — the same profile as the
Hyrax commitment the Spartan paper builds on.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..curve.bn254 import (
    AffinePoint,
    CURVE_ORDER,
    add,
    batch_affine_pairwise_add,
    eq,
    g1_sum,
    is_on_curve,
    multiply,
    neg,
)
from ..curve.fixed_base import FixedBaseMSM, FixedBaseTable
from ..curve.msm import msm
from ..field.extension import P as FQ_MODULUS
from ..field.prime_field import sqrt_mod
from ..poly.multilinear import eq_evals

R = CURVE_ORDER


def hash_to_g1(label: bytes) -> AffinePoint:
    """Try-and-increment hash-to-curve (generator with unknown dlog)."""
    counter = 0
    while True:
        h = hashlib.sha256(label + b":" + str(counter).encode()).digest()
        x = int.from_bytes(h, "big") % FQ_MODULUS
        rhs = (x * x * x + 3) % FQ_MODULUS
        try:
            y = sqrt_mod(rhs, FQ_MODULUS)
        except ValueError:
            counter += 1
            continue
        # Normalise the root choice so the generator is deterministic.
        if y > FQ_MODULUS - y:
            y = FQ_MODULUS - y
        point = (x, y)
        assert is_on_curve(point, 3)
        return point


_GENERATOR_CACHE: List[AffinePoint] = []
_BLINDER_GEN: Optional[AffinePoint] = None

# Fixed-base window tables, grown in lockstep with the generator cache: the
# generators never change, so every row commitment in the process reuses
# the same precomputed shifted multiples.
_GEN_FIXED_BASE = FixedBaseMSM()
_BLINDER_TABLE: Optional[FixedBaseTable] = None


def pedersen_generators(count: int) -> List[AffinePoint]:
    """Deterministic independent generators G_0..G_{count-1} (cached)."""
    while len(_GENERATOR_CACHE) < count:
        idx = len(_GENERATOR_CACHE)
        _GENERATOR_CACHE.append(hash_to_g1(b"zkvc-pedersen-gen-%d" % idx))
    return _GENERATOR_CACHE[:count]


def generator_fixed_base(count: int) -> FixedBaseMSM:
    """Fixed-base tables for the first ``count`` canonical generators."""
    pedersen_generators(count)
    if len(_GEN_FIXED_BASE) < count:
        _GEN_FIXED_BASE.extend(
            _GENERATOR_CACHE[len(_GEN_FIXED_BASE):count]
        )
    return _GEN_FIXED_BASE


def blinder_generator() -> AffinePoint:
    global _BLINDER_GEN
    if _BLINDER_GEN is None:
        _BLINDER_GEN = hash_to_g1(b"zkvc-pedersen-blinder")
    return _BLINDER_GEN


def blinder_table() -> FixedBaseTable:
    global _BLINDER_TABLE
    if _BLINDER_TABLE is None:
        _BLINDER_TABLE = FixedBaseTable(blinder_generator())
    return _BLINDER_TABLE


def _is_canonical_generators(
    generators: Sequence[AffinePoint], count: int
) -> bool:
    """True iff ``generators[:count]`` are exactly the cached canonical
    generators (identity comparison — identical objects imply equal points,
    so the fixed-base fast path below is sound)."""
    if count > len(_GENERATOR_CACHE) or count > len(generators):
        return False
    cache = _GENERATOR_CACHE
    return all(generators[i] is cache[i] for i in range(count))


def pedersen_commit(
    values: Sequence[int], blinder: int, generators: Sequence[AffinePoint]
) -> AffinePoint:
    n = len(values)
    if _is_canonical_generators(generators, n):
        acc = generator_fixed_base(n).msm(values)
    else:
        acc = msm(list(generators[:n]), list(values))
    if blinder:
        acc = add(acc, blinder_table().mul(blinder))
    return acc


@dataclass
class HyraxCommitment:
    """Row commitments of the matrix layout, plus shape metadata."""

    row_commits: List[AffinePoint]
    num_vars: int
    row_vars: int  # m1
    col_vars: int  # m2

    def size_bytes(self) -> int:
        return 64 * len(self.row_commits)


@dataclass
class HyraxOpening:
    """Evaluation proof: the L-combined row and its combined blinder."""

    t: List[int]
    blinder: int
    value: int

    def size_bytes(self) -> int:
        return 32 * (len(self.t) + 2)


class HyraxProver:
    """Holds the committed vector and its blinders for later openings."""

    def __init__(self, vec: Sequence[int], num_vars: int,
                 rng: Optional[Callable[[], int]] = None):
        if rng is None:
            rng = lambda: secrets.randbits(256)  # noqa: E731
        size = 1 << num_vars
        if len(vec) > size:
            raise ValueError("vector longer than 2^num_vars")
        self.num_vars = num_vars
        self.row_vars = (num_vars + 1) // 2
        self.col_vars = num_vars - self.row_vars
        self.values = [v % R for v in vec] + [0] * (size - len(vec))
        ncols = 1 << self.col_vars
        self.rows = [
            self.values[i * ncols:(i + 1) * ncols]
            for i in range(1 << self.row_vars)
        ]
        self.blinders = [rng() % R for _ in self.rows]

    def commit(self) -> HyraxCommitment:
        # All rows share the canonical generators, so the whole matrix
        # commits through the fixed-base tables in one batched pass: every
        # bucket insertion and aggregation addition across all rows shares
        # batched inversions, and the blinder multiples come from a dense
        # window table with no doublings.
        fb = generator_fixed_base(1 << self.col_vars)
        row_accs = fb.msm_many(self.rows)
        btab = blinder_table()
        blinds = [btab.mul(b) for b in self.blinders]
        commits = batch_affine_pairwise_add(row_accs, blinds)
        return HyraxCommitment(
            row_commits=commits,
            num_vars=self.num_vars,
            row_vars=self.row_vars,
            col_vars=self.col_vars,
        )

    def open(self, point: Sequence[int]) -> HyraxOpening:
        """Open the multilinear evaluation at ``point`` (length num_vars)."""
        if len(point) != self.num_vars:
            raise ValueError("point arity mismatch")
        left = eq_evals(point[: self.row_vars])
        right = eq_evals(point[self.row_vars:])
        ncols = 1 << self.col_vars
        t = [0] * ncols
        for weight, row in zip(left, self.rows):
            if weight == 0:
                continue
            for j, v in enumerate(row):
                t[j] = (t[j] + weight * v) % R
        blinder = sum(
            w * b for w, b in zip(left, self.blinders)
        ) % R
        value = sum(tv * rv for tv, rv in zip(t, right)) % R
        return HyraxOpening(t=t, blinder=blinder, value=value)


def hyrax_verify(
    commitment: HyraxCommitment,
    point: Sequence[int],
    opening: HyraxOpening,
) -> bool:
    """Check an opening against the row commitments."""
    if len(point) != commitment.num_vars:
        return False
    left = eq_evals(point[: commitment.row_vars])
    right = eq_evals(point[commitment.row_vars:])
    gens = pedersen_generators(1 << commitment.col_vars)
    expected = msm(commitment.row_commits, left)
    actual = pedersen_commit(opening.t, opening.blinder, gens)
    if not eq(expected, actual):
        return False
    value = sum(tv * rv for tv, rv in zip(opening.t, right)) % R
    return value == opening.value % R
