"""Spartan-style transparent zk-SNARK for R1CS (no trusted setup).

Protocol (Setty, CRYPTO'20), as reproduced here:

1. The prover commits to the witness MLE with the Hyrax-style Pedersen
   commitment.
2. Sumcheck #1 proves ``sum_x eq(tau, x) * (Az~(x) Bz~(x) - Cz~(x)) = 0``,
   pinning the R1CS identity at a random row point ``rx``.
3. Sumcheck #2 proves the three matrix-vector evaluations at ``rx`` against
   a random linear combination over columns, ending at a column point ``ry``.
4. The verifier evaluates the matrix MLEs ``A~(rx, ry)`` etc. directly from
   the sparse matrices (we omit Spartan's SPARK matrix commitments — the
   matrices are public here), and gets ``w~`` from the commitment opening.

Everything is made non-interactive with the Fiat–Shamir transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..field.ntt import next_power_of_two
from ..field.prime_field import BN254_FR_MODULUS
from ..poly.multilinear import eq_eval, eq_evals
from ..r1cs.system import R1CSInstance
from .commitment import (
    HyraxCommitment,
    HyraxOpening,
    HyraxProver,
    hyrax_verify,
)
from .sumcheck import SumcheckProof, sumcheck_prove, sumcheck_verify
from .transcript import Transcript

R = BN254_FR_MODULUS


@dataclass
class SpartanProof:
    witness_commitment: HyraxCommitment
    sumcheck1: SumcheckProof
    va: int
    vb: int
    vc: int
    sumcheck2: SumcheckProof
    opening: HyraxOpening

    def size_bytes(self) -> int:
        return (
            self.witness_commitment.size_bytes()
            + self.sumcheck1.size_bytes()
            + 3 * 32
            + self.sumcheck2.size_bytes()
            + self.opening.size_bytes()
        )


def _shape(instance: R1CSInstance):
    cons_padded = max(2, next_power_of_two(instance.num_constraints))
    half = max(
        2,
        next_power_of_two(max(instance.num_public, instance.num_witness)),
    )
    full = 2 * half
    return cons_padded, half, full


def _column(index: int, num_public: int, half: int) -> int:
    """Map an original wire index to the padded z-vector layout
    ``[1, public..., 0 pad | witness..., 0 pad]``."""
    if index < num_public:
        return index
    return half + (index - num_public)


def prove(
    instance: R1CSInstance,
    assignment: Sequence[int],
    transcript: Transcript,
) -> SpartanProof:
    if len(assignment) != instance.num_wires:
        raise ValueError("assignment length mismatch")
    cons_padded, half, full = _shape(instance)
    cons_vars = cons_padded.bit_length() - 1
    col_vars = full.bit_length() - 1
    npub = instance.num_public

    # 1. Commit to the witness MLE.
    witness = [v % R for v in assignment[npub:]]
    hyrax = HyraxProver(witness, col_vars - 1)
    commitment = hyrax.commit()
    transcript.append_points(b"witness-commit", commitment.row_commits)

    # 2. Sumcheck #1 over the constraint rows.
    tau = transcript.challenge_scalars(b"tau", cons_vars)
    az = instance.matvec("A", assignment) + [0] * (
        cons_padded - instance.num_constraints
    )
    bz = instance.matvec("B", assignment) + [0] * (
        cons_padded - instance.num_constraints
    )
    cz = instance.matvec("C", assignment) + [0] * (
        cons_padded - instance.num_constraints
    )
    eq_tau = eq_evals(tau)

    def combine1(vals: Sequence[int]) -> int:
        e, a, b, c = vals
        return e * ((a * b - c) % R) % R

    sc1, rx, finals1 = sumcheck_prove(
        [eq_tau, az, bz, cz], combine1, 3, 0, transcript, b"sc1",
        kernel="eq_abc",
    )
    va, vb, vc = finals1[1], finals1[2], finals1[3]
    transcript.append_scalars(b"vabc", [va, vb, vc])

    # 3. Sumcheck #2 over the columns.
    r_abc = transcript.challenge_scalars(b"rabc", 3)
    claim2 = (r_abc[0] * va + r_abc[1] * vb + r_abc[2] * vc) % R

    eq_rx = eq_evals(rx)
    m_table = [0] * full
    for which, rmul in zip("ABC", r_abc):
        for q, wire, coeff in instance.entries(which):
            col = _column(wire, npub, half)
            m_table[col] = (m_table[col] + rmul * eq_rx[q] % R * coeff) % R
    z_table = (
        [v % R for v in assignment[:npub]]
        + [0] * (half - npub)
        + witness
        + [0] * (half - len(witness))
    )

    def combine2(vals: Sequence[int]) -> int:
        return vals[0] * vals[1] % R

    sc2, ry, _finals2 = sumcheck_prove(
        [m_table, z_table], combine2, 2, claim2, transcript, b"sc2",
        kernel="prod2",
    )

    # 4. Open the witness MLE at ry[1:].
    opening = hyrax.open(ry[1:])
    transcript.append_scalars(b"opening", opening.t + [opening.value])

    return SpartanProof(
        witness_commitment=commitment,
        sumcheck1=sc1,
        va=va,
        vb=vb,
        vc=vc,
        sumcheck2=sc2,
        opening=opening,
    )


def verify(
    instance: R1CSInstance,
    public_inputs: Sequence[int],
    proof: SpartanProof,
    transcript: Transcript,
) -> bool:
    cons_padded, half, full = _shape(instance)
    cons_vars = cons_padded.bit_length() - 1
    col_vars = full.bit_length() - 1
    npub = instance.num_public
    if len(public_inputs) != npub - 1:
        return False

    transcript.append_points(
        b"witness-commit", proof.witness_commitment.row_commits
    )
    tau = transcript.challenge_scalars(b"tau", cons_vars)

    ok1, final1, rx = sumcheck_verify(
        proof.sumcheck1, 3, 0, cons_vars, transcript, b"sc1"
    )
    if not ok1:
        return False
    eq_tau_rx = eq_eval(tau, rx)
    if final1 != eq_tau_rx * ((proof.va * proof.vb - proof.vc) % R) % R:
        return False
    transcript.append_scalars(b"vabc", [proof.va, proof.vb, proof.vc])

    r_abc = transcript.challenge_scalars(b"rabc", 3)
    claim2 = (
        r_abc[0] * proof.va + r_abc[1] * proof.vb + r_abc[2] * proof.vc
    ) % R
    ok2, final2, ry = sumcheck_verify(
        proof.sumcheck2, 2, claim2, col_vars, transcript, b"sc2"
    )
    if not ok2:
        return False

    # Oracle evaluations the verifier does itself.
    eq_rx = eq_evals(rx)
    eq_ry_rest = eq_evals(ry[1:])
    m_eval = 0
    for which, rmul in zip("ABC", r_abc):
        acc = 0
        for q, wire, coeff in instance.entries(which):
            col = _column(wire, npub, half)
            # col < half -> first-half leg, else second-half leg of ry[0].
            if col < half:
                weight = (1 - ry[0]) % R * eq_ry_rest[col] % R
            else:
                weight = ry[0] * eq_ry_rest[col - half] % R
            acc = (acc + coeff * eq_rx[q] % R * weight) % R
        m_eval = (m_eval + rmul * acc) % R

    pub_vec = [1] + [v % R for v in public_inputs]
    pub_eval = sum(
        v * eq_ry_rest[i] for i, v in enumerate(pub_vec)
    ) % R
    if not hyrax_verify(proof.witness_commitment, ry[1:], proof.opening):
        return False
    transcript.append_scalars(
        b"opening", proof.opening.t + [proof.opening.value]
    )
    z_eval = ((1 - ry[0]) * pub_eval + ry[0] * proof.opening.value) % R

    return final2 == m_eval * z_eval % R
