"""Fiat–Shamir transcript (SHA-256 sponge) for the Spartan backend.

Every prover message is absorbed with a label; challenges are squeezed by
hashing the running state.  Deterministic, so prover and verifier derive the
same challenges from the same message sequence.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from ..curve.bn254 import AffinePoint, point_to_bytes
from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS


class Transcript:
    def __init__(self, label: bytes = b"zkvc-spartan"):
        self._state = hashlib.sha256(b"transcript-init:" + label).digest()

    def _absorb(self, label: bytes, data: bytes) -> None:
        self._state = hashlib.sha256(
            self._state + b"|" + label + b":" + data
        ).digest()

    def append_bytes(self, label: bytes, data: bytes) -> None:
        self._absorb(label, data)

    def append_scalar(self, label: bytes, value: int) -> None:
        self._absorb(label, (value % R).to_bytes(32, "big"))

    def append_scalars(self, label: bytes, values: Sequence[int]) -> None:
        blob = b"".join((v % R).to_bytes(32, "big") for v in values)
        self._absorb(label, blob)

    def append_point(self, label: bytes, point: AffinePoint) -> None:
        self._absorb(label, point_to_bytes(point))

    def append_points(self, label: bytes, points: Sequence[AffinePoint]) -> None:
        self._absorb(label, b"".join(point_to_bytes(p) for p in points))

    def challenge_scalar(self, label: bytes) -> int:
        self._state = hashlib.sha256(
            self._state + b"|challenge:" + label
        ).digest()
        wide = hashlib.sha512(self._state).digest()
        return int.from_bytes(wide, "big") % R

    def challenge_scalars(self, label: bytes, count: int) -> List[int]:
        return [
            self.challenge_scalar(label + b"/" + str(i).encode())
            for i in range(count)
        ]
