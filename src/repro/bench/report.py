"""Machine-readable table collection shared by every bench target.

The paper-table/figure benchmarks historically only *printed* formatted
tables, so nothing downstream could consume them.  ``emit_table`` is a
drop-in replacement for ``format_table`` that additionally records the
table (key, title, headers, raw rows, optional metadata) in a
process-wide collector; ``write_json`` dumps everything collected to one
schema-versioned JSON document.

Wiring:

* pytest benches: ``pytest benchmarks/ --json out.json`` (option added in
  ``benchmarks/conftest.py``) writes the collected tables at session end;
* ``benchmarks/bench_observatory.py --json out.json`` does the same for
  suite runs;
* ``REPRO_BENCH_JSON=<path>`` works for either when passing a flag is
  awkward (CI matrix entries).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Dict, List, Optional, Sequence

from .harness import format_table

JSON_SCHEMA_VERSION = 1

_lock = threading.Lock()
_tables: List[Dict[str, object]] = []


def emit_table(
    key: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Record a table under ``key`` and return its formatted rendering."""
    doc = {
        "key": key,
        "title": title,
        "headers": [str(h) for h in headers],
        "rows": [[str(c) for c in row] for row in rows],
    }
    if meta:
        doc["meta"] = meta
    with _lock:
        # Re-emitting a key replaces the previous table: a re-run bench
        # (pytest retries, repeated suite runs in one process) must not
        # duplicate rows in the JSON document.
        _tables[:] = [t for t in _tables if t["key"] != key]
        _tables.append(doc)
    return format_table(title, [str(h) for h in headers],
                        [[str(c) for c in row] for row in rows])


def collected() -> List[Dict[str, object]]:
    with _lock:
        return [dict(t) for t in _tables]


def reset() -> None:
    with _lock:
        _tables.clear()


def write_json(path: str) -> str:
    """Atomically write every collected table to ``path``."""
    doc = {"schema": JSON_SCHEMA_VERSION, "tables": collected()}
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=".tmp-bench-", suffix=".json",
                               dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def env_json_path() -> Optional[str]:
    """The ``REPRO_BENCH_JSON`` fallback destination, if set."""
    return os.environ.get("REPRO_BENCH_JSON") or None
