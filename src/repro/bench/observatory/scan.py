"""Declarative parameter scans over benchmark cross-products.

A :class:`ScanSpec` names its axes (:class:`Dimension`) and a runner;
the harness expands the deterministic cross-product (row-major in the
declared dimension order, values in declared order — the same spec
always visits the same points in the same order), filters through a skip
predicate, brackets the sweep and each point with setup/cleanup hooks,
and appends one :class:`~repro.bench.observatory.store.RunRecord` per
executed point.

The shape follows the queue-drain parameter-scan pattern (dax
``base/scan.py``): scans are data, execution is one generic loop, so a
new benchmark is a spec — not another hand-rolled script.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .store import ResultStore, RunRecord

Params = Dict[str, object]
# runner(params, context) -> metrics dict (numeric values) or None to
# record nothing for the point.
Runner = Callable[[Params, Dict[str, object]], Optional[Dict[str, float]]]


@dataclass(frozen=True)
class Dimension:
    """One scan axis: a name and its ordered values."""

    name: str
    values: Tuple[object, ...]

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"dimension {self.name!r} has no values")


@dataclass
class ScanOutcome:
    """What one sweep did: executed records plus skipped points."""

    records: List[RunRecord] = field(default_factory=list)
    skipped: List[Tuple[Params, str]] = field(default_factory=list)
    elapsed_s: float = 0.0


class ScanSpec:
    """A named scan: dimensions × runner (+ hooks and skip predicate).

    ``setup(context)`` runs once before the first point and may populate
    ``context`` (shared mutable dict — prover caches, datasets, cost
    models); ``cleanup(context)`` always runs afterwards, even on error.
    ``point_setup(params, context)`` / ``point_cleanup(params, context)``
    bracket every executed point.  ``skip(params)`` returns a reason
    string (or True) to drop a point from the sweep; skipped points never
    touch the hooks.
    """

    def __init__(
        self,
        name: str,
        dimensions: Sequence[Dimension],
        runner: Runner,
        *,
        setup: Optional[Callable[[Dict[str, object]], None]] = None,
        cleanup: Optional[Callable[[Dict[str, object]], None]] = None,
        point_setup: Optional[Callable[[Params, Dict[str, object]], None]] = None,
        point_cleanup: Optional[Callable[[Params, Dict[str, object]], None]] = None,
        skip: Optional[Callable[[Params], object]] = None,
    ):
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names in scan {name!r}")
        self.name = name
        self.dimensions = tuple(dimensions)
        self.runner = runner
        self.setup = setup
        self.cleanup = cleanup
        self.point_setup = point_setup
        self.point_cleanup = point_cleanup
        self.skip = skip

    def points(self) -> Iterator[Params]:
        """The full cross-product in deterministic row-major order
        (including points the skip predicate will drop)."""
        names = [d.name for d in self.dimensions]
        for combo in itertools.product(*(d.values for d in self.dimensions)):
            yield dict(zip(names, combo))

    def run(
        self,
        store: Optional[ResultStore] = None,
        suite: str = "adhoc",
        context: Optional[Dict[str, object]] = None,
        meta: Optional[Dict[str, object]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> ScanOutcome:
        """Execute the sweep, appending one record per executed point."""
        outcome = ScanOutcome()
        ctx: Dict[str, object] = context if context is not None else {}
        t_start = time.perf_counter()
        if self.setup is not None:
            self.setup(ctx)
        try:
            for params in self.points():
                if self.skip is not None:
                    reason = self.skip(params)
                    if reason:
                        outcome.skipped.append(
                            (params,
                             reason if isinstance(reason, str) else "skipped")
                        )
                        continue
                if progress is not None:
                    progress(f"{self.name}: {params}")
                if self.point_setup is not None:
                    self.point_setup(params, ctx)
                try:
                    metrics = self.runner(params, ctx)
                finally:
                    if self.point_cleanup is not None:
                        self.point_cleanup(params, ctx)
                if metrics is None:
                    continue
                if store is not None:
                    rec = store.append(
                        suite, self.name, params, metrics, meta=meta
                    )
                else:
                    rec = RunRecord(suite=suite, scan=self.name,
                                    point=dict(params), metrics=dict(metrics))
                outcome.records.append(rec)
        finally:
            if self.cleanup is not None:
                self.cleanup(ctx)
        outcome.elapsed_s = time.perf_counter() - t_start
        return outcome
