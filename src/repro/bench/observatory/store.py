"""On-disk run store for benchmark records.

Every scan point that runs appends one schema-versioned JSON file under
the store root (default ``benchmarks/runs/``).  Records are immutable
once written — history accumulates, it is never rewritten — and the
store keeps a cached aggregate summary (``summary-cache.json``) that is
invalidated by fingerprint whenever new records land, so readers never
serve stale aggregates and repeated queries don't re-read every record.

Concurrency: appends are safe across processes.  Each record gets a
process-unique filename (timestamp + pid + random suffix) and is written
to a temp file in the store root then ``os.replace``d into place, so a
reader can never observe a half-written record and two writers can never
clobber each other.  The summary cache is advisory — a racing rebuild
just rebuilds twice, both ending at the same content.
"""

from __future__ import annotations

import json
import os
import secrets
import socket
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Optional

SCHEMA_VERSION = 1

_CACHE_NAME = "summary-cache.json"


class SchemaVersionError(ValueError):
    """A record (or cache) was written by an incompatible schema."""


def _git_rev() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def host_meta() -> Dict[str, object]:
    """Host facts recorded with every run so cross-machine history can be
    normalised (or excluded) downstream."""
    import platform

    return {
        "hostname": socket.gethostname(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def point_key(point: Dict[str, object]) -> str:
    """Canonical identity of a scan point: sorted ``k=v`` pairs."""
    return ",".join(f"{k}={point[k]}" for k in sorted(point))


@dataclass
class RunRecord:
    suite: str
    scan: str
    point: Dict[str, object]
    metrics: Dict[str, float]
    meta: Dict[str, object] = field(default_factory=dict)
    schema: int = SCHEMA_VERSION
    path: Optional[str] = None  # set once persisted / loaded

    @property
    def created(self) -> float:
        return float(self.meta.get("created", 0.0))

    def key(self) -> str:
        return point_key(self.point)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "suite": self.suite,
            "scan": self.scan,
            "point": self.point,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, object], path: Optional[str] = None
                  ) -> "RunRecord":
        schema = doc.get("schema")
        if schema != SCHEMA_VERSION:
            raise SchemaVersionError(
                f"record schema {schema!r} != supported {SCHEMA_VERSION}"
                + (f" ({path})" if path else "")
            )
        for req in ("suite", "scan", "point", "metrics"):
            if req not in doc:
                raise ValueError(f"record missing {req!r} field"
                                 + (f" ({path})" if path else ""))
        return cls(
            suite=doc["suite"], scan=doc["scan"], point=dict(doc["point"]),
            metrics=dict(doc["metrics"]), meta=dict(doc.get("meta", {})),
            schema=schema, path=path,
        )


def load_record(path: str) -> RunRecord:
    with open(path) as fh:
        doc = json.load(fh)
    return RunRecord.from_json(doc, path=path)


def default_root() -> str:
    """``REPRO_RUN_STORE`` env override, else ``benchmarks/runs`` under
    the current working directory."""
    env = os.environ.get("REPRO_RUN_STORE")
    if env:
        return env
    return os.path.join(os.getcwd(), "benchmarks", "runs")


class ResultStore:
    """Append-only store of :class:`RunRecord` files plus a cached summary."""

    def __init__(self, root: Optional[str] = None):
        self.root = os.path.abspath(root or default_root())
        os.makedirs(self.root, exist_ok=True)

    # -- writing ----------------------------------------------------------

    def append(
        self,
        suite: str,
        scan: str,
        point: Dict[str, object],
        metrics: Dict[str, float],
        meta: Optional[Dict[str, object]] = None,
    ) -> RunRecord:
        """Persist one run record atomically; returns it with ``path`` set."""
        full_meta: Dict[str, object] = {
            "created": time.time(),
            "git_rev": _git_rev(),
            "host": host_meta(),
        }
        if meta:
            full_meta.update(meta)
        rec = RunRecord(suite=suite, scan=scan, point=dict(point),
                        metrics=dict(metrics), meta=full_meta)
        name = (
            f"r-{int(full_meta['created'] * 1000):015d}"
            f"-{os.getpid()}-{secrets.token_hex(4)}.json"
        )
        path = os.path.join(self.root, name)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", suffix=".json",
                                   dir=self.root)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(rec.to_json(), fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        rec.path = path
        return rec

    # -- reading ----------------------------------------------------------

    def record_files(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return sorted(
            n for n in names if n.startswith("r-") and n.endswith(".json")
        )

    def records(
        self,
        suite: Optional[str] = None,
        scan: Optional[str] = None,
        strict: bool = False,
    ) -> List[RunRecord]:
        """All matching records, oldest first.  Unreadable or
        wrong-schema files are skipped (collected in :attr:`skipped`)
        unless ``strict``, in which case they raise."""
        out: List[RunRecord] = []
        self.skipped: List[str] = []
        for name in self.record_files():
            path = os.path.join(self.root, name)
            try:
                rec = load_record(path)
            except (ValueError, OSError) as exc:
                if strict:
                    raise
                self.skipped.append(f"{name}: {exc}")
                continue
            if suite is not None and rec.suite != suite:
                continue
            if scan is not None and rec.scan != scan:
                continue
            out.append(rec)
        out.sort(key=lambda r: (r.created, r.path or ""))
        return out

    def latest(self, suite: str, scan: Optional[str] = None
               ) -> Dict[str, RunRecord]:
        """Newest record per scan point (keyed by ``scan/point_key``)."""
        out: Dict[str, RunRecord] = {}
        for rec in self.records(suite=suite, scan=scan):
            out[f"{rec.scan}/{rec.key()}"] = rec  # records() is oldest-first
        return out

    def series(self, suite: str, scan: str, key: str, metric: str
               ) -> List[float]:
        """Chronological values of one metric at one scan point."""
        return [
            float(rec.metrics[metric])
            for rec in self.records(suite=suite, scan=scan)
            if rec.key() == key and metric in rec.metrics
        ]

    # -- cached summary ---------------------------------------------------

    def _fingerprint(self) -> str:
        import hashlib

        h = hashlib.sha256()
        for name in self.record_files():
            h.update(name.encode())
            h.update(b"\0")
        return h.hexdigest()

    def summary(self, rebuild: bool = False) -> Dict[str, object]:
        """Aggregates per (suite, scan, point, metric): count / median /
        best / last.  Served from ``summary-cache.json`` when its
        fingerprint still matches the record listing; any append changes
        the listing and therefore invalidates the cache."""
        cache_path = os.path.join(self.root, _CACHE_NAME)
        fp = self._fingerprint()
        if not rebuild and os.path.exists(cache_path):
            try:
                with open(cache_path) as fh:
                    cached = json.load(fh)
                if (cached.get("schema") == SCHEMA_VERSION
                        and cached.get("fingerprint") == fp):
                    return cached
            except (ValueError, OSError):
                pass  # corrupt/stale cache: rebuild below
        built = self._build_summary(fp)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-cache-", suffix=".json",
                                   dir=self.root)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(built, fh, indent=1, sort_keys=True)
            os.replace(tmp, cache_path)
        except OSError:  # pragma: no cover - cache write is best-effort
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return built

    def _build_summary(self, fingerprint: str) -> Dict[str, object]:
        series: Dict[str, List[float]] = {}
        suites: Dict[str, int] = {}
        for rec in self.records():
            suites[rec.suite] = suites.get(rec.suite, 0) + 1
            for metric, value in rec.metrics.items():
                if not isinstance(value, (int, float)):
                    continue
                k = f"{rec.suite}/{rec.scan}/{rec.key()}/{metric}"
                series.setdefault(k, []).append(float(value))
        aggregates = {
            k: {
                "count": len(vals),
                "median": median(vals),
                "best": max(vals),
                "min": min(vals),
                "last": vals[-1],
            }
            for k, vals in series.items()
        }
        return {
            "schema": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "record_count": len(self.record_files()),
            "suites": suites,
            "aggregates": aggregates,
        }
