"""The declarative benchmark suites and their table renderers.

Each paper table/figure is one :class:`~repro.bench.observatory.scan.ScanSpec`
(what to measure, as data) plus one renderer (how to present the stored
records).  Running a suite appends records to the
:class:`~repro.bench.observatory.store.ResultStore`; rendering *only*
reads the store — so ``python -m repro.bench.observatory show fig3``
reprints any table from history without re-running a single prover, and
``benchmarks/bench_observatory.py --suite paper`` is just "run every
spec, then render every table from what the store now holds".

Point values are kept to strings/ints so the canonical point key
survives the JSON round-trip unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..harness import (
    fmt_bytes,
    fmt_s,
    model_scheme_at_scale,
    random_matrices,
    run_circuit_scheme,
    run_zkcnn,
    run_zkml_modelled,
)
from ..report import emit_table
from ..tables import TABLE1_HEADERS, TABLE1_SCHEMES
from .scan import Dimension, ScanOutcome, ScanSpec
from .store import ResultStore, RunRecord, point_key

PAPER_SUITE_NAME = "paper"

# Scaled / paper dims shared with the pytest benches.
FIG3_SCALED = (7, 16, 32)
FIG3_PAPER = (49, 64, 128)
TABLE2_SHAPE = (7, 16, 32)
FIG6_TOKENS, FIG6_PAPER_TOKENS = 7, 49
FIG6_MEASURED_DIMS = (8, 16)
FIG6_PAPER_DIMS = (64, 128, 320, 512)
FIG6_SCHEMES = ("groth16", "spartan", "vCNN", "ZEN", "zkCNN", "zkML",
                "zkVC-G", "zkVC-S")
FIG6_LIVE = ("groth16", "spartan", "vCNN", "ZEN", "zkVC-G", "zkVC-S")
CRPC_SCALED = ("4x8x8", "7x16x16", "7x16x32")
CRPC_PAPER = ("49x32x64", "49x64x128", "49x160x320", "49x256x512")
PSQ_SHAPE = (8, 16, 8)

TABLE3_DATASETS = ("cifar10", "tiny-imagenet", "imagenet")
TABLE3_VARIANTS = ("SoftApprox.", "SoftFree-S", "SoftFree-P", "zkVC")
TABLE4_TASKS = ("mnli", "qnli", "sst2", "mrpc")
TABLE4_VARIANTS = ("SoftApprox.", "SoftFree-S", "SoftFree-L", "zkVC")


@dataclass
class SuiteOptions:
    """Knobs shared by every spec builder.

    ``full`` selects paper-fidelity training budgets for the accuracy
    scans (the default is a reduced budget that keeps one suite pass in
    minutes, clearly labelled in the rendered tables).
    """

    full: bool = False
    seed: int = 0

    @property
    def vision_budget(self) -> Tuple[int, int]:  # (samples, epochs)
        return (600, 10) if self.full else (240, 3)

    @property
    def nlp_budget(self) -> Tuple[int, int]:
        return (600, 6) if self.full else (240, 2)


def _cost_model(ctx: Dict[str, object]):
    if "cost_model" not in ctx:
        from ...zkml.costmodel import CostModel

        ctx["cost_model"] = CostModel()
    return ctx["cost_model"]


def _prover_cache(ctx: Dict[str, object]) -> Dict:
    return ctx.setdefault("prover_cache", {})


def _shape(text: str) -> Tuple[int, int, int]:
    a, n, b = (int(p) for p in text.split("x"))
    return a, n, b


def _numpy_missing() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return True
    return False


def _scheme_metrics(res) -> Dict[str, float]:
    return {
        "prove_s": res.prove_s,
        "verify_s": res.verify_s,
        "proof_bytes": float(res.proof_bytes),
        "online_s": res.online_s,
        "modelled": 1.0 if res.modelled else 0.0,
    }


# -- fig3: matmul proving-time comparison -----------------------------------

def build_fig3(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        model = _cost_model(ctx)
        if p["dims"] == "scaled":
            a, n, b = FIG3_SCALED
            if p["scheme"] == "zkML":
                res = run_zkml_modelled(a, n, b, model)
            else:
                res = run_circuit_scheme(
                    p["scheme"], a, n, b, seed=opts.seed,
                    prover_cache=_prover_cache(ctx),
                )
        else:
            res = model_scheme_at_scale(p["scheme"], *FIG3_PAPER, model)
        return _scheme_metrics(res)

    return ScanSpec(
        "fig3",
        [Dimension("scheme", ("vCNN", "ZEN", "zkML", "zkVC-G")),
         Dimension("dims", ("scaled", "paper"))],
        runner,
    )


def render_fig3(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "fig3")
    rows = []
    for dims, shape in (("scaled", FIG3_SCALED), ("paper", FIG3_PAPER)):
        a, n, b = shape
        for scheme in ("vCNN", "ZEN", "zkML", "zkVC-G"):
            rec = latest.get(f"fig3/{point_key({'scheme': scheme, 'dims': dims})}")
            if rec is None:
                continue
            source = "modelled" if rec.metrics.get("modelled") else "measured"
            if dims == "paper":
                source = "modelled @ paper dims"
            rows.append([scheme, f"[{a},{n}]x[{n},{b}]",
                         fmt_s(rec.metrics["prove_s"]), source])
    return emit_table(
        "fig3",
        "Fig. 3: matmul proving time (paper: vCNN 9s -> zkVC 0.73s, 12.5x)",
        ["scheme", "dims", "prove", "source"], rows,
    )


# -- table2: CRPC/PSQ ablation ----------------------------------------------

_TABLE2_ROWS = (
    ("-", "-", "vanilla"),
    ("-", "yes", "vanilla_psq"),
    ("yes", "-", "crpc"),
    ("yes", "yes", "crpc_psq"),
)


def build_table2(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        from ...core.api import MatmulProver

        a, n, b = TABLE2_SHAPE
        x, w, _ = random_matrices(a, n, b, seed=11)
        prover = MatmulProver(a, n, b, strategy=p["strategy"],
                              backend=p["backend"])
        bundle = prover.prove(x, w)
        if not prover.verify(bundle):
            raise RuntimeError(
                f"table2 {p['strategy']}/{p['backend']} failed to verify"
            )
        return {"prove_s": bundle.timings["prove"],
                "verify_s": bundle.timings["verify"]}

    return ScanSpec(
        "table2",
        [Dimension("strategy", tuple(r[2] for r in _TABLE2_ROWS)),
         Dimension("backend", ("groth16", "spartan"))],
        runner,
    )


def render_table2(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "table2")
    a, n, b = TABLE2_SHAPE
    rows = []
    for crpc, psq, strategy in _TABLE2_ROWS:
        cells = [crpc, psq]
        for backend in ("groth16", "spartan"):
            rec = latest.get(
                f"table2/{point_key({'strategy': strategy, 'backend': backend})}"
            )
            if rec is None:
                cells += ["?", "?"]
            else:
                cells += [fmt_s(rec.metrics["prove_s"]),
                          fmt_s(rec.metrics["verify_s"])]
        rows.append(cells)
    return emit_table(
        "table2",
        f"Table II: ablation at scaled dims [{a},{n}]x[{n},{b}] "
        "(paper: 9.12 -> 0.73 groth16, 9.04 -> 1.75 spartan)",
        ["CRPC", "PSQ", "G-prove", "G-verify", "S-prove", "S-verify"], rows,
    )


# -- fig6: four-panel matmul comparison -------------------------------------

def _fig6_shape(d: int, paper: bool) -> Tuple[int, int, int]:
    tokens = FIG6_PAPER_TOKENS if paper else FIG6_TOKENS
    return (tokens, d // 2, d)


def build_fig6(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        model = _cost_model(ctx)
        d, scheme = int(p["d"]), p["scheme"]
        paper = d in FIG6_PAPER_DIMS
        shape = _fig6_shape(d, paper)
        if paper:
            if scheme == "zkCNN":
                # Interactive sumcheck prover: linear field work, no
                # commitments — model as a slice of Spartan's field cost.
                res = model_scheme_at_scale("spartan", *shape, model)
                res.prove_s *= 0.15
                res.verify_s *= 1.5
                res.online_s = res.prove_s + res.verify_s
                res.scheme = "zkCNN"
            else:
                res = model_scheme_at_scale(scheme, *shape, model)
        elif scheme == "zkCNN":
            res = run_zkcnn(*shape, seed=opts.seed)
        elif scheme == "zkML":
            res = run_zkml_modelled(*shape, model)
        else:
            res = run_circuit_scheme(scheme, *shape, seed=opts.seed,
                                     prover_cache=_prover_cache(ctx))
        return _scheme_metrics(res)

    return ScanSpec(
        "fig6",
        [Dimension("scheme", FIG6_SCHEMES),
         Dimension("d", FIG6_MEASURED_DIMS + FIG6_PAPER_DIMS)],
        runner,
    )


_FIG6_PANELS = (
    ("fig6a", "Fig. 6a: prover time (* = modelled at paper dims, tokens=49)",
     "prove_s", fmt_s),
    ("fig6b", "Fig. 6b: verifier time", "verify_s", fmt_s),
    ("fig6c", "Fig. 6c: proof size", "proof_bytes",
     lambda v: fmt_bytes(int(v))),
    ("fig6d", "Fig. 6d: online time", "online_s", fmt_s),
)


def render_fig6(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "fig6")
    headers = (["scheme"] + [f"d={d}" for d in FIG6_MEASURED_DIMS]
               + [f"d={d}*" for d in FIG6_PAPER_DIMS])
    panels = []
    for key, title, metric, fmt in _FIG6_PANELS:
        rows = []
        for scheme in FIG6_SCHEMES:
            cells = [scheme]
            for d in FIG6_MEASURED_DIMS + FIG6_PAPER_DIMS:
                rec = latest.get(
                    f"fig6/{point_key({'scheme': scheme, 'd': d})}"
                )
                cells.append("?" if rec is None else fmt(rec.metrics[metric]))
            rows.append(cells)
        panels.append(emit_table(key, title, headers, rows))
    return "\n\n".join(panels)


# -- crpc scaling sweep (X1) ------------------------------------------------

def build_crpc_scaling(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        a, n, b = _shape(p["shape"])
        if p["shape"] in CRPC_SCALED:
            from ...core.api import MatmulProver

            x, w, _ = random_matrices(a, n, b, seed=3)
            prover = MatmulProver(a, n, b, strategy=p["strategy"],
                                  backend="spartan")
            bundle = prover.prove(x, w)
            if not prover.verify(bundle):
                raise RuntimeError("crpc_scaling proof failed to verify")
            return {"prove_s": bundle.timings["prove"], "modelled": 0.0}
        from ...zkml.compile import matmul_cost

        model = _cost_model(ctx)
        cost = matmul_cost(a, n, b, p["strategy"])
        return {"prove_s": model.groth16_prove_time(cost), "modelled": 1.0}

    return ScanSpec(
        "crpc_scaling",
        [Dimension("shape", CRPC_SCALED + CRPC_PAPER),
         Dimension("strategy", ("vanilla", "crpc_psq"))],
        runner,
    )


def render_crpc_scaling(store: ResultStore,
                        suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "crpc_scaling")
    rows = []
    for shape in CRPC_SCALED + CRPC_PAPER:
        recs = {
            strategy: latest.get(
                f"crpc_scaling/{point_key({'shape': shape, 'strategy': strategy})}"
            )
            for strategy in ("vanilla", "crpc_psq")
        }
        if None in recs.values():
            continue
        v = recs["vanilla"].metrics["prove_s"]
        z = recs["crpc_psq"].metrics["prove_s"]
        source = ("modelled (groth16)"
                  if recs["vanilla"].metrics.get("modelled")
                  else "measured (spartan)")
        rows.append([str(_shape(shape)), fmt_s(v), fmt_s(z),
                     f"{v / z:.1f}x", source])
    return emit_table(
        "crpc_scaling",
        "X1: CRPC speedup over vanilla circuits (paper: 7-9x from CRPC)",
        ["shape (a,n,b)", "vanilla", "zkVC", "speedup", "source"], rows,
    )


# -- table1: qualitative feature matrix -------------------------------------

_TABLE1_FEATURES = (
    "zero_knowledge", "non_interactive", "constant_proof",
    "no_trusted_setup", "transformers", "efficient_matmult", "zkml_codesign",
)


def build_table1(opts: SuiteOptions) -> ScanSpec:
    by_name = {s.name: s for s in TABLE1_SCHEMES}

    def runner(p, ctx):
        s = by_name[p["scheme"]]
        return {f: 1.0 if getattr(s, f) else 0.0 for f in _TABLE1_FEATURES}

    return ScanSpec(
        "table1",
        [Dimension("scheme", tuple(s.name for s in TABLE1_SCHEMES))],
        runner,
    )


def render_table1(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "table1")
    rows = []
    for s in TABLE1_SCHEMES:
        rec = latest.get(f"table1/{point_key({'scheme': s.name})}")
        if rec is None:
            continue
        rows.append([s.name] + [
            "yes" if rec.metrics.get(f) else "-" for f in _TABLE1_FEATURES
        ])
    return emit_table("table1", "Table I: scheme feature comparison",
                      TABLE1_HEADERS, rows)


# -- psq left-wire accounting (X2) ------------------------------------------

def build_psq(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        from ...core.psq import left_wire_report
        from ...gadgets.matmul import MatmulCircuit

        a, n, b = PSQ_SHAPE
        rep = left_wire_report(
            p["strategy"], MatmulCircuit(a, n, b, p["strategy"]).cs
        )
        return {
            "constraints": float(rep.num_constraints),
            "wires": float(rep.num_wires),
            "a_wires": float(rep.a_wires),
            "a_terms": float(rep.a_terms),
        }

    return ScanSpec(
        "psq",
        [Dimension("strategy",
                   ("vanilla", "vanilla_psq", "crpc", "crpc_psq"))],
        runner,
    )


def render_psq(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "psq")
    rows = []
    for strategy in ("vanilla", "vanilla_psq", "crpc", "crpc_psq"):
        rec = latest.get(f"psq/{point_key({'strategy': strategy})}")
        if rec is None:
            continue
        m = rec.metrics
        rows.append([strategy] + [
            str(int(m[k])) for k in ("constraints", "wires", "a_wires",
                                     "a_terms")
        ])
    return emit_table(
        "psq",
        f"X2: left-wire accounting at {PSQ_SHAPE} "
        "(paper Fig. 5: 6 -> 3 wires per dot product)",
        ["strategy", "constraints", "wires", "A-side wires", "A-side terms"],
        rows,
    )


# -- nonlinear gadget approximations (X3) -----------------------------------

_NONLINEAR_CASES = ("softmax8", "gelu", "exp@-0.5", "exp@-2.0", "exp@-4.0",
                    "exp@-7.5")


def build_nonlinear(opts: SuiteOptions) -> ScanSpec:
    def runner(p, ctx):
        from ...field.prime_field import BN254_FR_MODULUS as R
        from ...gadgets.bits import field_to_signed
        from ...gadgets.nonlinear import (
            exp_gadget,
            gelu_gadget,
            gelu_poly_reference,
            softmax_gadget,
            softmax_reference,
        )
        from ...r1cs import ConstraintSystem

        F = 12
        S = 1 << F
        case = p["case"]
        cs = ConstraintSystem()
        if case == "softmax8":
            xs = [1.3, -0.2, 0.8, 2.0, -1.5, 0.1, 0.4, -0.9]
            wires = [cs.alloc(f"x{i}", round(v * S) % R)
                     for i, v in enumerate(xs)]
            res = softmax_gadget(cs, wires, F)
            got = [cs.value(w) / S for w in res.outputs]
            err = max(abs(g - r)
                      for g, r in zip(got, softmax_reference(xs)))
        elif case == "gelu":
            w = cs.alloc("x", round(0.6 * S) % R)
            out = gelu_gadget(cs, w, F)
            err = abs(field_to_signed(cs.value(out)) / S
                      - gelu_poly_reference(0.6))
        else:
            x = float(case.split("@")[1])
            w = cs.alloc("x", round(x * S) % R)
            out = exp_gadget(cs, w, F)
            err = abs(cs.value(out.out) / S - math.exp(x))
        return {"abs_error": err, "constraints": float(len(cs.constraints))}

    return ScanSpec(
        "nonlinear", [Dimension("case", _NONLINEAR_CASES)], runner,
    )


def render_nonlinear(store: ResultStore,
                     suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "nonlinear")
    rows = []
    for case in _NONLINEAR_CASES:
        rec = latest.get(f"nonlinear/{point_key({'case': case})}")
        if rec is None:
            continue
        rows.append([case, f"{rec.metrics['abs_error']:.5f}",
                     str(int(rec.metrics["constraints"]))])
    return emit_table(
        "nonlinear",
        "X3: nonlinear gadget approximation error and constraint cost",
        ["gadget", "abs error", "constraints"], rows,
    )


# -- table3/table4: token-mixer accuracy + modelled proving latency ---------

def _vision_plan(variant: str) -> List[str]:
    return {
        "SoftApprox.": ["softmax", "softmax"],
        "SoftFree-S": ["scaling", "scaling"],
        "SoftFree-P": ["pooling", "pooling"],
        "zkVC": ["pooling", "softmax"],
    }[variant]


def _nlp_plan(variant: str) -> List[str]:
    return {
        "SoftApprox.": ["softmax", "softmax"],
        "SoftFree-S": ["scaling", "scaling"],
        "SoftFree-L": ["linear", "linear"],
        "zkVC": ["linear", "softmax"],
    }[variant]


def _paper_plan_vision(variant: str, layers: int) -> List[str]:
    if variant == "SoftApprox.":
        return ["softmax"] * layers
    if variant == "SoftFree-S":
        return ["scaling"] * layers
    if variant == "SoftFree-P":
        return ["pooling"] * layers
    cheap = (2 * layers) // 3
    return ["pooling"] * cheap + ["softmax"] * (layers - cheap)


def _paper_plan_nlp(variant: str, layers: int) -> List[str]:
    if variant == "SoftApprox.":
        return ["softmax"] * layers
    if variant == "SoftFree-S":
        return ["scaling"] * layers
    if variant == "SoftFree-L":
        return ["linear"] * layers
    half = layers // 2
    return ["linear"] * half + ["softmax"] * (layers - half)


def build_table3(opts: SuiteOptions) -> ScanSpec:
    samples, epochs = opts.vision_budget

    def runner(p, ctx):
        from ...nn.transformer import PAPER_CONFIGS
        from ...zkml import account_model

        model = _cost_model(ctx)
        cfg = PAPER_CONFIGS[p["dataset"]]()
        cost = account_model(
            cfg, _paper_plan_vision(p["variant"], cfg.total_layers),
            "crpc_psq",
        )
        metrics = {
            "prove_g_s": model.groth16_prove_time(cost.total),
            "prove_s_s": model.spartan_prove_time(cost.total),
            "constraints": float(cost.total.constraints),
        }
        if p["dataset"] != "imagenet":
            import numpy as np

            from ...nn import VisionTransformer, make_vision_dataset, train_model
            from ...nn.train import evaluate

            cache_key = ("vision", p["dataset"])
            if cache_key not in ctx:
                ctx[cache_key] = make_vision_dataset(
                    p["dataset"], samples, seed=3
                )
            data = ctx[cache_key]
            net = VisionTransformer(
                16, 4, dim=48, heads=4, num_classes=8,
                mixer_plan=_vision_plan(p["variant"]),
                rng=np.random.default_rng(0),
            )
            train_model(net, data, epochs=epochs, lr=0.08, seed=1)
            metrics["top1"] = evaluate(net, data.test_x, data.test_y)
        return metrics

    def skip(p):
        if _numpy_missing() and p["dataset"] != "imagenet":
            return "numpy unavailable: accuracy training skipped"
        return None

    return ScanSpec(
        "table3",
        [Dimension("dataset", TABLE3_DATASETS),
         Dimension("variant", TABLE3_VARIANTS)],
        runner,
        skip=skip,
    )


def render_table3(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "table3")
    rows = []
    for dataset in TABLE3_DATASETS:
        for variant in TABLE3_VARIANTS:
            rec = latest.get(
                f"table3/{point_key({'dataset': dataset, 'variant': variant})}"
            )
            if rec is None:
                continue
            top1 = rec.metrics.get("top1")
            rows.append([
                dataset, variant,
                f"{top1:.3f}" if top1 is not None else "(see cifar/tiny)",
                fmt_s(rec.metrics["prove_g_s"]) + "*",
                fmt_s(rec.metrics["prove_s_s"]) + "*",
            ])
    return emit_table(
        "table3",
        "Table III: vision mixers (accuracy on synthetic stand-ins; "
        "* = modelled proving time at paper architecture)",
        ["dataset", "variant", "top-1", "P_G", "P_S"], rows,
    )


def build_table4(opts: SuiteOptions) -> ScanSpec:
    samples, epochs = opts.nlp_budget

    def runner(p, ctx):
        import numpy as np

        from ...nn import make_nlp_task, train_model
        from ...nn.train import evaluate
        from ...nn.transformer import TextTransformer, bert_small_config
        from ...zkml import account_model

        model = _cost_model(ctx)
        cfg = bert_small_config()
        cost = account_model(
            cfg, _paper_plan_nlp(p["variant"], cfg.total_layers), "crpc_psq"
        )
        cache_key = ("nlp", p["task"])
        if cache_key not in ctx:
            ctx[cache_key] = make_nlp_task(
                p["task"], samples, seq_len=12, seed=4
            )
        data, classes = ctx[cache_key]
        net = TextTransformer(
            24, 12, 32, 4, classes, _nlp_plan(p["variant"]),
            np.random.default_rng(0),
        )
        train_model(net, data, epochs=epochs, lr=0.08, seed=1)
        return {
            "top1": evaluate(net, data.test_x, data.test_y),
            "prove_g_s": model.groth16_prove_time(cost.total),
            "prove_s_s": model.spartan_prove_time(cost.total),
            "constraints": float(cost.total.constraints),
        }

    def skip(p):
        return "numpy unavailable" if _numpy_missing() else None

    return ScanSpec(
        "table4",
        [Dimension("task", TABLE4_TASKS),
         Dimension("variant", TABLE4_VARIANTS)],
        runner,
        skip=skip,
    )


def render_table4(store: ResultStore, suite: str = PAPER_SUITE_NAME) -> str:
    latest = store.latest(suite, "table4")
    rows = []
    for variant in TABLE4_VARIANTS:
        accs = []
        pg = ps = None
        for task in TABLE4_TASKS:
            rec = latest.get(
                f"table4/{point_key({'task': task, 'variant': variant})}"
            )
            if rec is None:
                accs.append("?")
                continue
            accs.append(f"{rec.metrics['top1']:.3f}")
            pg, ps = rec.metrics["prove_g_s"], rec.metrics["prove_s_s"]
        if pg is None:
            continue
        rows.append([variant] + accs + [fmt_s(pg) + "*", fmt_s(ps) + "*"])
    return emit_table(
        "table4",
        "Table IV: NLP mixers on GLUE-like synthetic tasks "
        "(* = modelled at BERT-small scale)",
        ["variant"] + [t.upper() for t in TABLE4_TASKS] + ["P_G", "P_S"],
        rows,
    )


# -- suite registry ---------------------------------------------------------

@dataclass
class TableTarget:
    """One paper table: how to measure it and how to render it."""

    name: str
    build: Callable[[SuiteOptions], ScanSpec]
    render: Callable[..., str]


@dataclass
class Suite:
    name: str
    targets: Tuple[TableTarget, ...]

    def target_names(self) -> List[str]:
        return [t.name for t in self.targets]

    def run(
        self,
        store: ResultStore,
        scans: Optional[Sequence[str]] = None,
        options: Optional[SuiteOptions] = None,
        progress: Optional[Callable[[str], None]] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> Dict[str, ScanOutcome]:
        """Run (a subset of) the suite's scans against one shared context,
        appending every executed point to ``store``."""
        opts = options or SuiteOptions()
        wanted = set(scans) if scans is not None else None
        unknown = (wanted or set()) - set(self.target_names())
        if unknown:
            raise ValueError(f"unknown scans {sorted(unknown)}; "
                             f"available: {self.target_names()}")
        ctx: Dict[str, object] = {}
        outcomes = {}
        for target in self.targets:
            if wanted is not None and target.name not in wanted:
                continue
            spec = target.build(opts)
            outcomes[target.name] = spec.run(
                store, suite=self.name, context=ctx, meta=meta,
                progress=progress,
            )
        return outcomes

    def render(
        self,
        store: ResultStore,
        scans: Optional[Sequence[str]] = None,
    ) -> List[Tuple[str, str]]:
        """Render (a subset of) the suite's tables from the store."""
        wanted = set(scans) if scans is not None else None
        out = []
        for target in self.targets:
            if wanted is not None and target.name not in wanted:
                continue
            out.append((target.name, target.render(store, self.name)))
        return out


PAPER_SUITE = Suite(
    PAPER_SUITE_NAME,
    (
        TableTarget("table1", build_table1, render_table1),
        TableTarget("fig3", build_fig3, render_fig3),
        TableTarget("table2", build_table2, render_table2),
        TableTarget("fig6", build_fig6, render_fig6),
        TableTarget("crpc_scaling", build_crpc_scaling, render_crpc_scaling),
        TableTarget("psq", build_psq, render_psq),
        TableTarget("nonlinear", build_nonlinear, render_nonlinear),
        TableTarget("table3", build_table3, render_table3),
        TableTarget("table4", build_table4, render_table4),
    ),
)

SUITES: Dict[str, Suite] = {PAPER_SUITE.name: PAPER_SUITE}
