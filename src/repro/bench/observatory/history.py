"""History-aware regression gating over the run store.

``check_regression.py --history`` appends each fresh hot-path pass as
one flattened, machine-normalized record (suite ``hotpaths``, scan
``regression``) and gates against the *median of the last N* stored
runs instead of the single committed ``BENCH_prover.json`` snapshot.

Normalisation: every throughput metric is divided by the run's overall
machine factor (median new/old ratio vs the committed baseline — see
``check_regression.machine_factor``) before it is stored, so records
written on differently-fast hosts land in one comparable series.
Lower-is-better counters (``*_per_proof``) are hardware-independent
counts and are stored raw.  The raw factor is kept in the record's meta
so a reader can always undo the normalisation.
"""

from __future__ import annotations

from statistics import median
from typing import Dict, Iterable, List, Optional, Tuple

from .store import ResultStore, RunRecord

HISTORY_SUITE = "hotpaths"
HISTORY_SCAN = "regression"
# Gate only once this many historical runs exist; below that the caller
# should fall back to (or also run) the snapshot gate.
MIN_RUNS = 2
DEFAULT_WINDOW = 5

# Metric name suffixes that are lower-is-better counters (never
# machine-normalized; regression = the value *grew*).
_INVERSE_SUFFIXES = ("_per_proof",)


def is_inverse(metric: str) -> bool:
    return metric.endswith(_INVERSE_SUFFIXES)


def flatten(fresh: Dict[str, object]) -> Dict[str, float]:
    """``{section: {size: {metric: v}}}`` -> ``{"section.size.metric": v}``
    for every numeric metric (``meta`` is not a measurement section)."""
    out: Dict[str, float] = {}
    for section, sizes in fresh.items():
        if section == "meta" or not isinstance(sizes, dict):
            continue
        for size, entry in sizes.items():
            if not isinstance(entry, dict):
                continue
            for metric, value in entry.items():
                if isinstance(value, (int, float)):
                    out[f"{section}.{size}.{metric}"] = float(value)
    return out


def normalize(flat: Dict[str, float], factor: float) -> Dict[str, float]:
    """Divide throughput metrics by the machine factor; counters pass
    through raw."""
    if factor <= 0:
        raise ValueError(f"machine factor must be positive, got {factor}")
    return {
        metric: value if is_inverse(metric) else value / factor
        for metric, value in flat.items()
    }


def append_history(
    store: ResultStore,
    fresh: Dict[str, object],
    factor: float,
    extra_meta: Optional[Dict[str, object]] = None,
) -> RunRecord:
    """Persist one normalized history record for a fresh benchmark pass."""
    meta: Dict[str, object] = {
        "machine_factor": factor,
        "bench_meta": fresh.get("meta", {}),
    }
    if extra_meta:
        meta.update(extra_meta)
    flat = normalize(flatten(fresh), factor)
    return store.append(HISTORY_SUITE, HISTORY_SCAN, {}, flat, meta=meta)


def history_series(
    store: ResultStore, window: int = DEFAULT_WINDOW
) -> Dict[str, List[float]]:
    """Per-metric normalized values of the last ``window`` stored runs
    (chronological)."""
    records = store.records(suite=HISTORY_SUITE, scan=HISTORY_SCAN)
    if window > 0:
        records = records[-window:]
    series: Dict[str, List[float]] = {}
    for rec in records:
        for metric, value in rec.metrics.items():
            if isinstance(value, (int, float)):
                series.setdefault(metric, []).append(float(value))
    return series


def history_gate(
    store: ResultStore,
    fresh: Dict[str, object],
    factor: float,
    gated_metrics: Iterable[str],
    threshold: float = 0.25,
    window: int = DEFAULT_WINDOW,
    min_runs: int = MIN_RUNS,
) -> Tuple[List[Tuple[str, float, float, float]], int]:
    """Gate a fresh pass against the stored trend.

    ``gated_metrics`` are bare metric names (e.g. ``fast_ops_per_sec``);
    every flattened ``section.size.metric`` whose metric part matches is
    checked when at least ``min_runs`` historical values exist.  Returns
    ``(regressions, checked)`` where each regression is
    ``(flat_name, expected_median, got, ratio)``.  Throughput metrics
    regress by falling more than ``threshold`` below the median of the
    last ``window`` normalized runs; inverse counters by growing past it
    (plus a small absolute slack, mirroring the snapshot gate).
    """
    gated = set(gated_metrics)
    series = history_series(store, window=window)
    flat = normalize(flatten(fresh), factor)
    regressions: List[Tuple[str, float, float, float]] = []
    checked = 0
    for name, value in sorted(flat.items()):
        metric = name.rsplit(".", 1)[-1]
        if metric not in gated:
            continue
        past = series.get(name, [])
        if len(past) < min_runs:
            continue
        mid = median(past)
        if mid <= 0:
            continue
        checked += 1
        if is_inverse(metric):
            if value > mid * (1.0 + threshold) + 0.02:
                regressions.append((name, mid, value, value / mid))
        else:
            if value < mid * (1.0 - threshold):
                regressions.append((name, mid, value, value / mid))
    return regressions, checked
