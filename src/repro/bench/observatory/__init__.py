"""Scenario-scan observatory: declarative benchmark scans, an on-disk
run store with cached summaries, and history-aware regression gating.

See PERF.md "Observatory" for the store layout and gate semantics, and
DESIGN.md for how to add a scan dimension.
"""

from .history import (
    DEFAULT_WINDOW,
    HISTORY_SCAN,
    HISTORY_SUITE,
    MIN_RUNS,
    append_history,
    flatten,
    history_gate,
    history_series,
    is_inverse,
    normalize,
)
from .scan import Dimension, ScanOutcome, ScanSpec
from .store import (
    SCHEMA_VERSION,
    ResultStore,
    RunRecord,
    SchemaVersionError,
    default_root,
    host_meta,
    load_record,
    point_key,
)
from .suites import PAPER_SUITE, SUITES, Suite, SuiteOptions, TableTarget

__all__ = [
    "DEFAULT_WINDOW",
    "Dimension",
    "HISTORY_SCAN",
    "HISTORY_SUITE",
    "MIN_RUNS",
    "PAPER_SUITE",
    "ResultStore",
    "RunRecord",
    "SCHEMA_VERSION",
    "SUITES",
    "ScanOutcome",
    "ScanSpec",
    "SchemaVersionError",
    "Suite",
    "SuiteOptions",
    "TableTarget",
    "append_history",
    "default_root",
    "flatten",
    "history_gate",
    "history_series",
    "host_meta",
    "is_inverse",
    "load_record",
    "normalize",
    "point_key",
]
