"""Query CLI over the run store.

    python -m repro.bench.observatory list             # what the store holds
    python -m repro.bench.observatory show fig3        # re-render one table
    python -m repro.bench.observatory frontier         # history frontier

``--store`` (or ``REPRO_RUN_STORE``) points at a store root; the default
is ``benchmarks/runs`` under the current directory.  Rendering reads
stored records only — no prover runs.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from ..harness import format_table
from .history import HISTORY_SCAN, HISTORY_SUITE
from .store import ResultStore
from .suites import PAPER_SUITE_NAME, SUITES


def _fmt_when(ts: float) -> str:
    if not ts:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M", time.localtime(ts))


def cmd_list(store: ResultStore, args) -> int:
    records = store.records()
    if not records:
        print(f"run store at {store.root} is empty")
        return 0
    groups = {}
    for rec in records:
        key = (rec.suite, rec.scan)
        entry = groups.setdefault(
            key, {"runs": 0, "points": set(), "first": rec.created,
                  "last": rec.created}
        )
        entry["runs"] += 1
        entry["points"].add(rec.key())
        entry["first"] = min(entry["first"], rec.created)
        entry["last"] = max(entry["last"], rec.created)
    rows = [
        [suite, scan, str(e["runs"]), str(len(e["points"])),
         _fmt_when(e["first"]), _fmt_when(e["last"])]
        for (suite, scan), e in sorted(groups.items())
    ]
    print(format_table(
        f"run store: {store.root} ({len(records)} records)",
        ["suite", "scan", "records", "points", "first", "last"], rows,
    ))
    if store.skipped:
        print(f"\nskipped {len(store.skipped)} unreadable records:")
        for line in store.skipped:
            print(f"  {line}")
    return 0


def cmd_show(store: ResultStore, args) -> int:
    suite = SUITES.get(args.suite)
    if suite is not None and args.scan in suite.target_names():
        for _, text in suite.render(store, scans=[args.scan]):
            print(text)
            print()
        return 0
    # Not a known paper table: dump the raw latest record per point.
    latest = store.latest(args.suite, args.scan)
    if not latest:
        print(f"no records for suite={args.suite!r} scan={args.scan!r} "
              f"in {store.root}")
        return 1
    for key, rec in sorted(latest.items()):
        print(f"{key}  ({_fmt_when(rec.created)}, "
              f"git {rec.meta.get('git_rev') or '?'})")
        for metric, value in sorted(rec.metrics.items()):
            print(f"  {metric} = {value}")
    return 0


def cmd_frontier(store: ResultStore, args) -> int:
    """Cross-history view: per point/metric, how the latest run sits
    against the stored median and best."""
    summary = store.summary()
    aggregates = summary.get("aggregates", {})
    prefix = f"{args.suite}/"
    rows: List[List[str]] = []
    for key in sorted(aggregates):
        if not key.startswith(prefix):
            continue
        agg = aggregates[key]
        if args.metric and not key.endswith(f"/{args.metric}"):
            continue
        _, scan, point, metric = key.split("/", 3)
        trend = agg["last"] / agg["median"] if agg["median"] else float("nan")
        rows.append([
            scan, point or "-", metric, str(agg["count"]),
            f"{agg['median']:.4g}", f"{agg['best']:.4g}",
            f"{agg['last']:.4g}", f"{trend:.2f}x",
        ])
    if not rows:
        print(f"no aggregates for suite {args.suite!r} in {store.root}")
        return 1
    print(format_table(
        f"frontier: suite {args.suite} over {summary['record_count']} "
        "stored records (trend = last/median)",
        ["scan", "point", "metric", "runs", "median", "best", "last",
         "trend"],
        rows,
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.observatory", description=__doc__,
    )
    ap.add_argument("--store", default=None,
                    help="run-store root (default benchmarks/runs, "
                         "or REPRO_RUN_STORE)")
    sub = ap.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="summarize the records in the store")
    show = sub.add_parser("show", help="render one table from the store")
    show.add_argument("scan", help="scan name (e.g. fig3, table2)")
    show.add_argument("--suite", default=PAPER_SUITE_NAME)
    frontier = sub.add_parser(
        "frontier", help="history frontier (median/best/last per metric)"
    )
    frontier.add_argument("--suite", default=HISTORY_SUITE)
    frontier.add_argument("--metric", default=None,
                          help="only this metric name")
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    store = ResultStore(args.store)
    if args.command == "list":
        return cmd_list(store, args)
    if args.command == "show":
        return cmd_show(store, args)
    return cmd_frontier(store, args)
