"""Table I — the qualitative scheme-feature matrix, generated from scheme
metadata so the benchmark run prints the paper's comparison."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass
class SchemeFeatures:
    name: str
    zero_knowledge: bool
    non_interactive: bool
    constant_proof: bool
    no_trusted_setup: bool
    transformers: bool
    efficient_matmult: bool
    zkml_codesign: bool

    def row(self) -> List[str]:
        def mark(b: bool) -> str:
            return "yes" if b else "-"

        return [
            self.name,
            mark(self.zero_knowledge),
            mark(self.non_interactive),
            mark(self.constant_proof),
            mark(self.no_trusted_setup),
            mark(self.transformers),
            mark(self.efficient_matmult),
            mark(self.zkml_codesign),
        ]


TABLE1_HEADERS = [
    "Scheme", "zk", "Non-Inter.", "Const. Proof", "No Trusted Setup",
    "Transformers", "Efficient MatMult", "zk-ML Codesign",
]

# Feature rows exactly as the paper's Table I states them.
TABLE1_SCHEMES = [
    SchemeFeatures("SafetyNets", False, False, False, True, False, False, False),
    SchemeFeatures("zkCNN", True, False, False, True, False, False, False),
    SchemeFeatures("Keuffer's", True, True, True, False, False, False, False),
    SchemeFeatures("vCNN", True, True, True, False, False, False, False),
    SchemeFeatures("VeriML", True, True, True, False, False, False, False),
    SchemeFeatures("ZEN", True, True, True, False, False, False, False),
    SchemeFeatures("zkML", True, True, False, False, False, False, False),
    SchemeFeatures("pvCNN", True, True, True, False, False, False, False),
    SchemeFeatures("zkVC", True, True, True, True, True, True, True),
]


def table1_rows() -> List[List[str]]:
    return [s.row() for s in TABLE1_SCHEMES]
