"""Shared benchmark harness: scheme runners and table/figure printers.

Every benchmark in ``benchmarks/`` reproduces one table or figure of the
paper.  Real measurements come from actually running the provers at scaled
dimensions; paper-scale rows are produced by the calibrated cost model and
are explicitly labelled ``(modelled)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.zkcnn import ZkCnnMatmul
from ..baselines.zkml_halo2 import estimate_halo2, halo2_matmul_cost
from ..core.api import MatmulProver
from ..field.prime_field import BN254_FR_MODULUS
from ..zkml.compile import matmul_cost
from ..zkml.costmodel import CostModel

R = BN254_FR_MODULUS


@dataclass
class SchemeResult:
    scheme: str
    prove_s: float
    verify_s: float
    proof_bytes: int
    online_s: float
    modelled: bool = False


def random_matrices(a: int, n: int, b: int, seed: int = 0, lo: int = 0,
                    hi: int = 256):
    rng = random.Random(seed)
    x = [[rng.randrange(lo, hi) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(lo, hi) for _ in range(b)] for _ in range(n)]
    y = [
        [sum(x[i][k] * w[k][j] for k in range(n)) % R for j in range(b)]
        for i in range(a)
    ]
    return x, w, y


# Scheme -> (backend, strategy) for the circuit-based schemes.
CIRCUIT_SCHEMES: Dict[str, Tuple[str, str]] = {
    "groth16": ("groth16", "vanilla"),
    "spartan": ("spartan", "vanilla"),
    "vCNN": ("groth16", "vcnn"),
    "ZEN": ("groth16", "zen"),
    "zkVC-G": ("groth16", "crpc_psq"),
    "zkVC-S": ("spartan", "crpc_psq"),
}


def run_circuit_scheme(
    scheme: str, a: int, n: int, b: int, seed: int = 0,
    prover_cache: Optional[Dict] = None,
) -> SchemeResult:
    backend, strategy = CIRCUIT_SCHEMES[scheme]
    x, w, _y = random_matrices(a, n, b, seed)
    key = (scheme, a, n, b)
    if prover_cache is not None and key in prover_cache:
        prover = prover_cache[key]
    else:
        prover = MatmulProver(a, n, b, strategy=strategy, backend=backend)
        if prover_cache is not None:
            prover_cache[key] = prover
    bundle = prover.prove(x, w)
    ok = prover.verify(bundle)
    if not ok:
        raise RuntimeError(f"{scheme} proof failed to verify")
    verify_s = bundle.timings["verify"]
    return SchemeResult(
        scheme=scheme,
        prove_s=bundle.timings["prove"],
        verify_s=verify_s,
        proof_bytes=bundle.proof_size_bytes(),
        online_s=verify_s,  # non-interactive: online time = verification
    )


def run_zkcnn(a: int, n: int, b: int, seed: int = 0) -> SchemeResult:
    x, w, y = random_matrices(a, n, b, seed)
    zk = ZkCnnMatmul(a, n, b)
    proof = zk.prove(x, w, y)
    t0 = time.perf_counter()
    if not zk.verify(y, proof):
        raise RuntimeError("zkCNN proof failed to verify")
    verify_s = time.perf_counter() - t0
    return SchemeResult(
        scheme="zkCNN",
        prove_s=proof.prover_time_s,
        verify_s=verify_s,
        proof_bytes=proof.size_bytes(),
        # Interactive: both parties stay online for the whole protocol.
        online_s=proof.online_time_s + verify_s,
    )


def run_zkml_modelled(a: int, n: int, b: int,
                      model: CostModel) -> SchemeResult:
    est = estimate_halo2(halo2_matmul_cost(a, n, b), model)
    return SchemeResult(
        scheme="zkML",
        prove_s=est.prove_s,
        verify_s=est.verify_s,
        proof_bytes=est.proof_bytes,
        online_s=est.verify_s,
        modelled=True,
    )


def model_scheme_at_scale(
    scheme: str, a: int, n: int, b: int, model: CostModel
) -> SchemeResult:
    """Cost-model prediction for a circuit scheme at paper-scale dims."""
    if scheme == "zkML":
        return run_zkml_modelled(a, n, b, model)
    backend, strategy = CIRCUIT_SCHEMES[scheme]
    cost = matmul_cost(a, n, b, strategy)
    if backend == "groth16":
        prove = model.groth16_prove_time(cost)
        verify = model.groth16_verify_time(a * b)
        size = model.groth16_proof_size()
    else:
        prove = model.spartan_prove_time(cost)
        verify = model.spartan_verify_time(cost)
        size = model.spartan_proof_size(cost)
    return SchemeResult(
        scheme=scheme, prove_s=prove, verify_s=verify,
        proof_bytes=size, online_s=verify, modelled=True,
    )


# -- pretty printing --------------------------------------------------------

def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(r, widths))
        )
    return "\n".join(lines)


def fmt_s(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def fmt_bytes(n: int) -> str:
    if n < 1024:
        return f"{n}B"
    if n < 1024 * 1024:
        return f"{n / 1024:.1f}KB"
    return f"{n / 1024 / 1024:.1f}MB"
