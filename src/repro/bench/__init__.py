"""Benchmark harness shared by the per-table/figure targets in benchmarks/."""

from .harness import (
    CIRCUIT_SCHEMES,
    SchemeResult,
    fmt_bytes,
    fmt_s,
    format_table,
    model_scheme_at_scale,
    random_matrices,
    run_circuit_scheme,
    run_zkcnn,
    run_zkml_modelled,
)
from .report import collected, emit_table, env_json_path, reset, write_json
from .tables import TABLE1_HEADERS, TABLE1_SCHEMES, table1_rows

__all__ = [
    "CIRCUIT_SCHEMES",
    "SchemeResult",
    "TABLE1_HEADERS",
    "TABLE1_SCHEMES",
    "collected",
    "emit_table",
    "env_json_path",
    "fmt_bytes",
    "fmt_s",
    "format_table",
    "reset",
    "write_json",
    "model_scheme_at_scale",
    "random_matrices",
    "run_circuit_scheme",
    "run_zkcnn",
    "run_zkml_modelled",
    "table1_rows",
]
