"""Multi-scalar multiplication (Pippenger bucket method) over BN254 G1.

MSM dominates Groth16's prover cost, so it gets a real algorithm rather than
a naive loop: with ``n`` points and window size ``c`` the cost is roughly
``(254/c) * (n + 2^c)`` point additions instead of ``254 * n / 2`` for the
naive double-and-add per point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .bn254 import (
    JAC_INFINITY,
    AffinePoint,
    CURVE_ORDER,
    JacPoint,
    _affine_to_jac,
    _jac_add,
    _jac_double,
    _jac_to_affine,
)


def _window_size(n: int) -> int:
    if n < 4:
        return 2
    if n < 32:
        return 4
    if n < 256:
        return 6
    if n < 4096:
        return 8
    return 12


def msm(points: Sequence[AffinePoint], scalars: Sequence[int]) -> AffinePoint:
    """``sum_i scalars[i] * points[i]`` over G1.

    ``None`` points and zero scalars are skipped.  The scalar list is reduced
    mod the curve order first.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pairs: List[Tuple[JacPoint, int]] = []
    for pt, sc in zip(points, scalars):
        sc %= CURVE_ORDER
        if pt is None or sc == 0:
            continue
        pairs.append((_affine_to_jac(pt), sc))
    if not pairs:
        return None
    if len(pairs) == 1:
        jac, sc = pairs[0]
        return _jac_to_affine(_jac_mul_simple(jac, sc))

    c = _window_size(len(pairs))
    num_windows = (CURVE_ORDER.bit_length() + c - 1) // c
    mask = (1 << c) - 1

    result: JacPoint = JAC_INFINITY
    for w in range(num_windows - 1, -1, -1):
        if result != JAC_INFINITY:
            for _ in range(c):
                result = _jac_double(result)
        buckets: List[Optional[JacPoint]] = [None] * (1 << c)
        shift = w * c
        for jac, sc in pairs:
            digit = (sc >> shift) & mask
            if digit:
                cur = buckets[digit]
                buckets[digit] = jac if cur is None else _jac_add(cur, jac)
        running: Optional[JacPoint] = None
        window_sum: Optional[JacPoint] = None
        for digit in range(len(buckets) - 1, 0, -1):
            b = buckets[digit]
            if b is not None:
                running = b if running is None else _jac_add(running, b)
            if running is not None:
                window_sum = (
                    running
                    if window_sum is None
                    else _jac_add(window_sum, running)
                )
        if window_sum is not None:
            result = _jac_add(result, window_sum)
    return _jac_to_affine(result)


def _jac_mul_simple(pt: JacPoint, scalar: int) -> JacPoint:
    result = JAC_INFINITY
    addend = pt
    while scalar:
        if scalar & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        scalar >>= 1
    return result
