"""Multi-scalar multiplication (Pippenger bucket method) over BN254 G1.

MSM dominates Groth16's prover cost, so it gets a real algorithm rather than
a naive loop.  Two variants live here:

* a classic Jacobian Pippenger (``_msm_jacobian``), kept for tiny inputs
  where scheduling overhead would dominate, and
* a signed-digit (wNAF) Pippenger with batch-affine bucket accumulation
  (``_msm_batch_affine``).  Signed digits halve the bucket count (the
  negation of an affine point is free), and every bucket addition within a
  round shares a single field inversion via Montgomery's trick, so the
  per-point cost drops from ~16 Jacobian multiplications to ~9
  affine-equivalent multiplications.

With ``n`` points and window size ``c`` the cost is roughly
``(254/c) * n`` batched affine additions plus ``(254/c) * 2^c`` Jacobian
additions for the bucket aggregation, instead of ``254 * n / 2`` doublings
and additions for naive double-and-add per point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..field.extension import P as _FQ
from .bn254 import (
    JAC_INFINITY,
    AffinePoint,
    CURVE_ORDER,
    JacPoint,
    _affine_to_jac,
    _jac_add,
    _jac_add_affine,
    _jac_double,
    _jac_to_affine,
    batch_affine_reduce,
    batch_affine_weighted_bucket_sums,
)

_SCALAR_BITS = CURVE_ORDER.bit_length()

# Below this count the Jacobian fallback wins (no batch scheduling to set up).
_BATCH_AFFINE_MSM_THRESHOLD = 16


def _window_size(n: int) -> int:
    if n < 4:
        return 2
    if n < 32:
        return 4
    if n < 256:
        return 6
    if n < 4096:
        return 8
    return 12


def _signed_window_size(n: int) -> int:
    """Window size for the batch-affine path.

    Bucket aggregation costs ``2^(c-1)`` lockstep batched rounds per MSM,
    which weighs more per op than the batched per-point additions — the
    optimum (measured on CPython) sits well below the classic ``log2 n``
    rule.
    """
    if n < 128:
        return 5
    if n < 512:
        return 6
    if n < 2048:
        return 7
    if n < 8192:
        return 8
    if n < 32768:
        return 9
    return 10


def signed_digits(scalar: int, c: int, num_windows: int) -> List[int]:
    """Base-``2^c`` signed-digit recoding with digits in ``[-2^(c-1)+1,
    2^(c-1)]``; ``num_windows`` must cover ``scalar.bit_length() + 1`` bits
    so the final carry is absorbed."""
    mask = (1 << c) - 1
    half = 1 << (c - 1)
    digits = [0] * num_windows
    carry = 0
    for i in range(num_windows):
        d = ((scalar >> (i * c)) & mask) + carry
        if d > half:
            d -= 1 << c
            carry = 1
        else:
            carry = 0
        digits[i] = d
    if carry:
        raise ValueError("num_windows too small for scalar")
    return digits


def msm(points: Sequence[AffinePoint], scalars: Sequence[int]) -> AffinePoint:
    """``sum_i scalars[i] * points[i]`` over G1.

    ``None`` points and zero scalars are skipped.  The scalar list is reduced
    mod the curve order first.
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    pts: List[Tuple[int, int]] = []
    scs: List[int] = []
    for pt, sc in zip(points, scalars):
        sc %= CURVE_ORDER
        if pt is None or sc == 0:
            continue
        pts.append(pt)
        scs.append(sc)
    if not pts:
        return None
    if len(pts) == 1:
        return _jac_to_affine(_jac_mul_simple(_affine_to_jac(pts[0]), scs[0]))
    if len(pts) < _BATCH_AFFINE_MSM_THRESHOLD:
        return _msm_jacobian(pts, scs)
    return _msm_batch_affine(pts, scs)


def _msm_batch_affine(
    pts: List[Tuple[int, int]], scs: List[int]
) -> AffinePoint:
    """Signed-digit Pippenger with batch-affine buckets.

    All windows' buckets are filled and reduced in one
    :func:`batch_affine_reduce` call, maximising the batch size each
    inversion is shared across; only the per-window aggregation and the
    window-combining doublings stay in Jacobian coordinates.
    """
    c = _signed_window_size(len(pts))
    half = 1 << (c - 1)
    num_windows = (_SCALAR_BITS + c) // c + 1
    # groups[w * half + (|d| - 1)] collects points with digit d in window w.
    groups: List[List[Tuple[int, int]]] = [
        [] for _ in range(num_windows * half)
    ]
    for pt, sc in zip(pts, scs):
        base = 0
        for d in signed_digits(sc, c, num_windows):
            if d > 0:
                groups[base + d - 1].append(pt)
            elif d < 0:
                groups[base - d - 1].append((pt[0], -pt[1] % _FQ))
            base += half
    buckets = batch_affine_reduce(groups)
    window_sums = batch_affine_weighted_bucket_sums(
        [buckets[w * half:(w + 1) * half] for w in range(num_windows)]
    )

    result: JacPoint = JAC_INFINITY
    for w in range(num_windows - 1, -1, -1):
        if result != JAC_INFINITY:
            for _ in range(c):
                result = _jac_double(result)
        if window_sums[w] is not None:
            result = _jac_add_affine(result, window_sums[w])
    return _jac_to_affine(result)


def _msm_jacobian(
    pts: List[Tuple[int, int]], scs: List[int]
) -> AffinePoint:
    """Classic unsigned-window Pippenger in Jacobian coordinates."""
    c = _window_size(len(pts))
    num_windows = (_SCALAR_BITS + c - 1) // c
    mask = (1 << c) - 1
    jacs = [_affine_to_jac(pt) for pt in pts]

    result: JacPoint = JAC_INFINITY
    for w in range(num_windows - 1, -1, -1):
        if result != JAC_INFINITY:
            for _ in range(c):
                result = _jac_double(result)
        buckets: List[Optional[JacPoint]] = [None] * (1 << c)
        shift = w * c
        for jac, sc in zip(jacs, scs):
            digit = (sc >> shift) & mask
            if digit:
                cur = buckets[digit]
                buckets[digit] = jac if cur is None else _jac_add(cur, jac)
        running: Optional[JacPoint] = None
        window_sum: Optional[JacPoint] = None
        for digit in range(len(buckets) - 1, 0, -1):
            b = buckets[digit]
            if b is not None:
                running = b if running is None else _jac_add(running, b)
            if running is not None:
                window_sum = (
                    running
                    if window_sum is None
                    else _jac_add(window_sum, running)
                )
        if window_sum is not None:
            result = _jac_add(result, window_sum)
    return _jac_to_affine(result)


def _jac_mul_simple(pt: JacPoint, scalar: int) -> JacPoint:
    result = JAC_INFINITY
    addend = pt
    while scalar:
        if scalar & 1:
            result = _jac_add(result, addend)
        addend = _jac_double(addend)
        scalar >>= 1
    return result
