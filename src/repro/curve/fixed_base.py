"""Fixed-base scalar multiplication: precomputed window tables over G1.

The prover's hottest MSMs run over *fixed* generator vectors — the Pedersen
generators behind every Hyrax row commitment, and the Groth16 proving-key
queries, which are reused across proofs.  Precomputing shifted multiples of
each base turns those MSMs into pure table lookups:

* :class:`FixedBaseTable` — a dense digit table for one heavily reused point
  (the Pedersen blinder generator, the G1 generator).  A scalar mul becomes
  ``~254/w`` mixed additions with **no doublings**.
* :class:`FixedBaseMSM` — per base point, the shifted copies
  ``2^(i*w) * P_j``.  An MSM then scatters signed digits into a *single*
  shared bucket space (the window shift is baked into the point, so digits
  from every window can share buckets) and reduces it with batch-affine
  additions — no doublings, no per-window passes.
* :func:`fixed_base_msm` — a keyed cache with promote-on-reuse semantics:
  the first sighting of a base vector uses the generic Pippenger MSM, the
  second builds tables.  One-shot callers never pay the precompute.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..field.extension import P as _FQ
from .bn254 import (
    JAC_INFINITY,
    AffinePoint,
    CURVE_ORDER,
    JacPoint,
    _affine_to_jac,
    _jac_add,
    _jac_add_affine,
    _jac_double,
    _jac_normalize_batch,
    _jac_to_affine,
    batch_affine_reduce,
    batch_affine_weighted_bucket_sums,
)
from .msm import msm as _generic_msm
from .msm import signed_digits

_SCALAR_BITS = CURVE_ORDER.bit_length()


class FixedBaseTable:
    """Dense windowed table for one reused point.

    Window ``i`` stores ``d * 2^(i*w) * P`` for every digit ``d`` in
    ``1..2^w-1``, so ``mul`` is one mixed addition per window and nothing
    else.  Storage is ``(254/w) * (2^w - 1)`` affine points — w=4 keeps that
    under a thousand, the sweet spot for points reused hundreds of times.
    """

    def __init__(self, point: AffinePoint, window: int = 4):
        self.point = point
        self.window = window
        self.num_windows = (_SCALAR_BITS + window - 1) // window
        self.tables: List[List[AffinePoint]] = []
        if point is None:
            return
        digits_per_window = (1 << window) - 1
        jacs: List[JacPoint] = []
        base = _affine_to_jac(point)
        for _ in range(self.num_windows):
            acc = base
            for _d in range(digits_per_window):
                jacs.append(acc)
                acc = _jac_add(acc, base)
            base = acc  # (2^w - 1) * base + base = 2^w * base
        flat = _jac_normalize_batch(jacs)
        self.tables = [
            flat[i * digits_per_window:(i + 1) * digits_per_window]
            for i in range(self.num_windows)
        ]

    def mul(self, scalar: int) -> AffinePoint:
        """``scalar * P`` via table lookups (matches ``multiply``)."""
        scalar %= CURVE_ORDER
        if scalar == 0 or self.point is None:
            return None
        mask = (1 << self.window) - 1
        acc: JacPoint = JAC_INFINITY
        i = 0
        while scalar:
            d = scalar & mask
            if d:
                acc = _jac_add_affine(acc, self.tables[i][d - 1])
            scalar >>= self.window
            i += 1
        return _jac_to_affine(acc)


class FixedBaseMSM:
    """Fixed-base MSM over a vector of bases with shared signed-digit
    buckets.

    Per base only the shifted copies ``2^(i*w) * P_j`` are stored (33 points
    at w=8), built with a doubling chain and one batched normalisation.
    Because each window's shift lives in the precomputed point, the digits
    of *every* window land in one bucket space of ``2^(w-1)`` signed
    buckets; the whole MSM is ``n * 254/w`` batch-affine bucket insertions
    plus a single aggregation sweep.
    """

    def __init__(
        self, points: Sequence[AffinePoint] = (), window: int = 8
    ):
        self.window = window
        self.half = 1 << (window - 1)
        self.num_windows = (_SCALAR_BITS + window) // window + 1
        self.shifted: List[Optional[List[AffinePoint]]] = []
        if points:
            self.extend(points)

    def __len__(self) -> int:
        return len(self.shifted)

    def extend(self, points: Sequence[AffinePoint]) -> None:
        """Append precomputed rows for ``points``."""
        jacs: List[JacPoint] = []
        for pt in points:
            if pt is None:
                continue
            cur = _affine_to_jac(pt)
            for i in range(self.num_windows):
                jacs.append(cur)
                if i + 1 < self.num_windows:
                    for _ in range(self.window):
                        cur = _jac_double(cur)
        flat = _jac_normalize_batch(jacs)
        offset = 0
        for pt in points:
            if pt is None:
                self.shifted.append(None)
            else:
                self.shifted.append(flat[offset:offset + self.num_windows])
                offset += self.num_windows

    def _fill_groups(
        self,
        groups: List[List[Tuple[int, int]]],
        scalars: Sequence[int],
        base: int,
    ) -> None:
        w, nw, half = self.window, self.num_windows, self.half
        for j, sc in enumerate(scalars):
            sc %= CURVE_ORDER
            row = self.shifted[j]
            if sc == 0 or row is None:
                continue
            for i, d in enumerate(signed_digits(sc, w, nw)):
                if d > 0:
                    groups[base + d - 1].append(row[i])
                elif d:
                    pt = row[i]
                    groups[base - d - 1].append((pt[0], -pt[1] % _FQ))

    def msm(self, scalars: Sequence[int]) -> AffinePoint:
        """``sum_j scalars[j] * P_j`` (scalars may be a prefix)."""
        if len(scalars) > len(self.shifted):
            raise ValueError("more scalars than precomputed bases")
        groups: List[List[Tuple[int, int]]] = [[] for _ in range(self.half)]
        self._fill_groups(groups, scalars, 0)
        buckets = batch_affine_reduce(groups)
        running: JacPoint = JAC_INFINITY
        total: JacPoint = JAC_INFINITY
        for d in range(self.half - 1, -1, -1):
            b = buckets[d]
            if b is not None:
                running = _jac_add_affine(running, b)
            if running != JAC_INFINITY:
                total = _jac_add(total, running)
        return _jac_to_affine(total)

    def msm_many(
        self, scalar_rows: Sequence[Sequence[int]]
    ) -> List[AffinePoint]:
        """Many MSMs over the same bases — every row's buckets reduce in one
        batch-affine call and aggregate in one lockstep sweep, so the
        inversion cost is shared across the whole matrix (this is the Hyrax
        row-commitment hot path)."""
        half = self.half
        groups: List[List[Tuple[int, int]]] = [
            [] for _ in range(len(scalar_rows) * half)
        ]
        for r, row in enumerate(scalar_rows):
            if len(row) > len(self.shifted):
                raise ValueError("more scalars than precomputed bases")
            self._fill_groups(groups, row, r * half)
        buckets = batch_affine_reduce(groups)
        return batch_affine_weighted_bucket_sums(
            [buckets[r * half:(r + 1) * half] for r in range(len(scalar_rows))]
        )


class _CacheEntry:
    __slots__ = ("points", "table", "hits")

    def __init__(self, points: Sequence[AffinePoint]):
        self.points = points
        self.table: Optional[FixedBaseMSM] = None
        self.hits = 0


# LRU keyed by caller label; sized for ~6 proving keys (4 labels each)
# resident at once so rotating among a few keys never churns out a
# half-promoted entry or a built table.  A second, size-based bound caps
# the total bases held by *promoted* entries: each promoted base pins ~33
# affine tuples of window table, so without it a few huge proving keys
# could pin gigabytes for the life of the process.
_FIXED_BASE_CACHE: Dict[object, _CacheEntry] = {}
_CACHE_LIMIT = 24
_CACHE_TABLE_POINT_LIMIT = 1 << 14


def _cache_entry_for(label: object, points: Sequence[AffinePoint]) -> _CacheEntry:
    """Find-or-create the cache entry for ``label``, enforcing the
    points-identity/content reset, back-of-dict LRU reinsertion, and size
    bound — the one place those invariants live."""
    entry = _FIXED_BASE_CACHE.pop(label, None)
    if entry is not None and entry.points is not points:
        # Identity miss: fall back to a content check so a rehydrated copy
        # of the same base vector (a proving key reloaded from disk under
        # its stable fingerprint label) keeps its promoted table.  Rebind
        # to the new list so subsequent calls take the identity fast path.
        if len(entry.points) == len(points) and all(
            a == b for a, b in zip(entry.points, points)
        ):
            entry.points = points
        else:
            entry = None
    if entry is None:
        entry = _CacheEntry(points)
    # Re-insert at the back: LRU order, so hot labels survive eviction.
    _FIXED_BASE_CACHE[label] = entry
    while len(_FIXED_BASE_CACHE) > _CACHE_LIMIT:
        _FIXED_BASE_CACHE.pop(next(iter(_FIXED_BASE_CACHE)))
    return entry


def fixed_base_msm(
    label: object,
    points: Sequence[AffinePoint],
    scalars: Sequence[int],
    build_after: int = 2,
) -> AffinePoint:
    """MSM over ``points`` with promote-on-reuse fixed-base caching.

    The first call under a given ``label`` runs the generic Pippenger MSM;
    once the same base vector shows up ``build_after`` times, window tables
    are built and every later call skips all doublings.  The cache holds a
    reference to ``points`` and checks identity first, falling back to a
    one-time content comparison (after which the entry rebinds to the new
    list) — so a content-equal rehydrated vector keeps its tables, while a
    label rebound to a genuinely different vector resets its entry.
    """
    entry = _cache_entry_for(label, points)
    entry.hits += 1
    if entry.table is None and entry.hits >= build_after:
        entry.table = FixedBaseMSM(points)
        _evict_oversized_tables(keep=entry)
    if len(scalars) > len(points):
        raise ValueError("more scalars than bases")
    if entry.table is not None:
        return entry.table.msm(scalars)
    if len(scalars) < len(points):
        return _generic_msm(list(points[: len(scalars)]), scalars)
    return _generic_msm(points, scalars)


def prewarm_fixed_base(label: object, points: Sequence[AffinePoint]) -> None:
    """Eagerly build the window tables for a base vector.

    Promote-on-reuse makes the first two MSMs under a label pay generic
    Pippenger prices — right for one-shot callers, wrong for a pool
    worker that *knows* it is about to prove a whole chunk against one
    proving key.  Such callers warm the cache up front so every proof in
    the chunk, including the first, runs at table speed.
    """
    entry = _cache_entry_for(label, points)
    if entry.table is None:
        entry.table = FixedBaseMSM(points)
        _evict_oversized_tables(keep=entry)


def _evict_oversized_tables(keep: _CacheEntry) -> None:
    """Drop the least-recently-used *promoted* entries until the total
    table footprint fits the point budget (the newest table always stays)."""
    total = sum(
        len(e.points) for e in _FIXED_BASE_CACHE.values() if e.table
    )
    if total <= _CACHE_TABLE_POINT_LIMIT:
        return
    for lbl in list(_FIXED_BASE_CACHE):
        e = _FIXED_BASE_CACHE[lbl]
        if e.table is None or e is keep:
            continue
        total -= len(e.points)
        del _FIXED_BASE_CACHE[lbl]
        if total <= _CACHE_TABLE_POINT_LIMIT:
            return


def clear_fixed_base_cache() -> None:
    _FIXED_BASE_CACHE.clear()
