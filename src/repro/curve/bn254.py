"""BN254 (alt_bn128) elliptic-curve arithmetic.

* ``G1``: points over Fq on ``y^2 = x^3 + 3``, affine tuples plus a Jacobian
  fast path for scalar multiplication.
* ``G2``: points over Fq2 on the sextic twist ``y^2 = x^3 + 3/(9+u)``.

Points are represented as ``(x, y)`` tuples of field values with ``None``
standing for the point at infinity — the same convention py_ecc uses, which
keeps the pairing code generic over the coordinate field.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..field.extension import Fq2, Fq12, P
from ..field.prime_field import BN254_FR_MODULUS, batch_inv_mod, inv_mod

# Group order (prime) — scalars live mod this.
CURVE_ORDER = BN254_FR_MODULUS

B1 = 3
# b for the twist: 3 / (9 + u) in Fq2.
B2 = Fq2([3, 0]) / Fq2([9, 1])
# b lifted to Fq12 for twisted points.
B12 = Fq12.from_int(3)

G1_GENERATOR: Tuple[int, int] = (1, 2)
G2_GENERATOR: Tuple[Fq2, Fq2] = (
    Fq2([
        10857046999023057135944570762232829481370756359578518086990519993285655852781,
        11559732032986387107991004021392285783925812861821192530917403151452391805634,
    ]),
    Fq2([
        8495653923123431417604973247489272438418190587263600148770280649306958101930,
        4082367875863433681332203403145435568316851327593401208105741076214120093531,
    ]),
)

AffinePoint = Optional[Tuple[object, object]]


# --------------------------------------------------------------------------
# Generic affine arithmetic (works for Fq ints, Fq2 and Fq12 coordinates).
# --------------------------------------------------------------------------

def is_on_curve(point: AffinePoint, b) -> bool:
    """Check the short-Weierstrass equation for a point (None = infinity)."""
    if point is None:
        return True
    x, y = point
    if isinstance(x, int):
        return (y * y - x * x * x - b) % P == 0
    return y * y - x * x * x == b


def _field_inv(v):
    if isinstance(v, int):
        return inv_mod(v, P)
    return v.inv()


def double(point: AffinePoint) -> AffinePoint:
    if point is None:
        return None
    x, y = point
    if isinstance(x, int):
        if y == 0:
            return None
        slope = 3 * x * x % P * inv_mod(2 * y % P, P) % P
        nx = (slope * slope - 2 * x) % P
        ny = (slope * (x - nx) - y) % P
        return (nx, ny)
    if y.is_zero():
        return None
    slope = (x * x * 3) / (y * 2)
    nx = slope * slope - x * 2
    ny = slope * (x - nx) - y
    return (nx, ny)


def add(p1: AffinePoint, p2: AffinePoint) -> AffinePoint:
    if p1 is None:
        return p2
    if p2 is None:
        return p1
    x1, y1 = p1
    x2, y2 = p2
    if isinstance(x1, int):
        if x1 == x2:
            if (y1 + y2) % P == 0:
                return None
            return double(p1)
        slope = (y2 - y1) % P * inv_mod((x2 - x1) % P, P) % P
        nx = (slope * slope - x1 - x2) % P
        ny = (slope * (x1 - nx) - y1) % P
        return (nx, ny)
    if x1 == x2:
        if (y1 + y2).is_zero():
            return None
        return double(p1)
    slope = (y2 - y1) / (x2 - x1)
    nx = slope * slope - x1 - x2
    ny = slope * (x1 - nx) - y1
    return (nx, ny)


def neg(point: AffinePoint) -> AffinePoint:
    if point is None:
        return None
    x, y = point
    if isinstance(x, int):
        return (x, -y % P)
    return (x, -y)


def multiply(point: AffinePoint, scalar: int) -> AffinePoint:
    """Scalar multiplication; Jacobian fast paths for both coordinate
    types (no inversions inside the loop)."""
    scalar %= CURVE_ORDER
    if point is None or scalar == 0:
        return None
    if isinstance(point[0], int):
        return _jac_to_affine(_jac_mul(_affine_to_jac(point), scalar))
    return _ext_jac_to_affine(_ext_jac_mul(point, scalar))


def eq(p1: AffinePoint, p2: AffinePoint) -> bool:
    return p1 == p2


# --------------------------------------------------------------------------
# Jacobian coordinates for G1 (x, y, z) with X = x/z^2, Y = y/z^3.
# --------------------------------------------------------------------------

JacPoint = Tuple[int, int, int]
JAC_INFINITY: JacPoint = (1, 1, 0)


def _affine_to_jac(point: AffinePoint) -> JacPoint:
    if point is None:
        return JAC_INFINITY
    return (point[0], point[1], 1)


def _jac_to_affine(point: JacPoint) -> AffinePoint:
    x, y, z = point
    if z == 0:
        return None
    z_inv = inv_mod(z, P)
    z2 = z_inv * z_inv % P
    return (x * z2 % P, y * z2 % P * z_inv % P)


def _jac_double(pt: JacPoint) -> JacPoint:
    x, y, z = pt
    if z == 0 or y == 0:
        return JAC_INFINITY
    ysq = y * y % P
    s = 4 * x * ysq % P
    m = 3 * x * x % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = 2 * y * z % P
    return (nx, ny, nz)


def _jac_add(p1: JacPoint, p2: JacPoint) -> JacPoint:
    if p1[2] == 0:
        return p2
    if p2[2] == 0:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = z1 * z1 % P
    z2z2 = z2 * z2 % P
    u1 = x1 * z2z2 % P
    u2 = x2 * z1z1 % P
    s1 = y1 * z2 % P * z2z2 % P
    s2 = y2 * z1 % P * z1z1 % P
    if u1 == u2:
        if s1 != s2:
            return JAC_INFINITY
        return _jac_double(p1)
    h = (u2 - u1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - s1) % P
    v = u1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * s1 * j) % P
    nz = 2 * h % P * z1 % P * z2 % P
    return (nx, ny, nz)


def _jac_add_affine(p1: JacPoint, p2: Tuple[int, int]) -> JacPoint:
    """Mixed addition: Jacobian + affine (z2 = 1), saving ~4 field muls."""
    if p1[2] == 0:
        return (p2[0], p2[1], 1)
    x1, y1, z1 = p1
    x2, y2 = p2
    z1z1 = z1 * z1 % P
    u2 = x2 * z1z1 % P
    s2 = y2 * z1 % P * z1z1 % P
    if x1 == u2:
        if y1 != s2:
            return JAC_INFINITY
        return _jac_double(p1)
    h = (u2 - x1) % P
    i = 4 * h * h % P
    j = h * i % P
    r = 2 * (s2 - y1) % P
    v = x1 * i % P
    nx = (r * r - j - 2 * v) % P
    ny = (r * (v - nx) - 2 * y1 * j) % P
    nz = 2 * h * z1 % P
    return (nx, ny, nz)


def _jac_normalize_batch(points: Sequence[JacPoint]) -> List[AffinePoint]:
    """Convert many Jacobian points to affine with one shared inversion
    (Montgomery's trick); infinities come back as ``None``."""
    zs = [pt[2] for pt in points if pt[2] != 0]
    invs = iter(batch_inv_mod(zs, P))
    out: List[AffinePoint] = []
    for x, y, z in points:
        if z == 0:
            out.append(None)
            continue
        z_inv = next(invs)
        z2 = z_inv * z_inv % P
        out.append((x * z2 % P, y * z2 % P * z_inv % P))
    return out


def batch_affine_reduce(
    groups: Sequence[Sequence[AffinePoint]],
) -> List[AffinePoint]:
    """Sum each group of affine points using batched-inversion affine adds.

    An affine addition costs one field inversion plus ~6 multiplications;
    Montgomery's trick shares a single inversion across every independent
    addition in a round.  Each group is reduced as a binary tree, so all
    groups finish in ``O(log max_group)`` rounds and the per-addition cost
    approaches ~9 multiplications — versus ~16 for a Jacobian addition
    (plus the final normalisation inversions a Jacobian accumulator needs).
    """
    queues: List[List[Tuple[int, int]]] = [
        [pt for pt in grp if pt is not None] for grp in groups
    ]
    active = [qi for qi, q in enumerate(queues) if len(q) >= 2]
    while active:
        dens: List[int] = []
        qis: List[int] = []
        lhs: List[Tuple[int, int]] = []
        rhs: List[Tuple[int, int]] = []
        for qi in active:
            pts = queues[qi]
            keep: List[Tuple[int, int]] = []
            n = len(pts)
            for i in range(0, n - 1, 2):
                p1 = pts[i]
                p2 = pts[i + 1]
                if p1[0] == p2[0] and (p1[1] + p2[1]) % P == 0:
                    continue  # p1 + p2 = infinity: drop the pair.
                qis.append(qi)
                lhs.append(p1)
                rhs.append(p2)
                # Doubling needs 2y, chord addition x2 - x1; batch_inv_mod
                # reduces mod P itself.
                dens.append(2 * p1[1] if p1[0] == p2[0] else p2[0] - p1[0])
            if n & 1:
                keep.append(pts[n - 1])
            queues[qi] = keep
        if not dens:
            break
        invs = batch_inv_mod(dens, P)
        for qi, p1, p2, inv in zip(qis, lhs, rhs, invs):
            x1, y1 = p1
            x2, y2 = p2
            if x1 == x2:
                slope = 3 * x1 * x1 % P * inv % P
            else:
                slope = (y2 - y1) * inv % P
            nx = (slope * slope - x1 - x2) % P
            queues[qi].append((nx, (slope * (x1 - nx) - y1) % P))
        active = [qi for qi in active if len(queues[qi]) >= 2]
    return [q[0] if q else None for q in queues]


def batch_affine_pairwise_add(
    lhs: Sequence[AffinePoint], rhs: Sequence[AffinePoint]
) -> List[AffinePoint]:
    """Elementwise ``lhs[i] + rhs[i]`` sharing one inversion across all the
    independent additions (infinities pass through for free)."""
    dens: List[int] = []
    idxs: List[int] = []
    out: List[AffinePoint] = [None] * len(lhs)
    for i, (p1, p2) in enumerate(zip(lhs, rhs)):
        if p1 is None:
            out[i] = p2
            continue
        if p2 is None:
            out[i] = p1
            continue
        if p1[0] == p2[0] and (p1[1] + p2[1]) % P == 0:
            continue  # cancels to infinity
        idxs.append(i)
        dens.append(2 * p1[1] if p1[0] == p2[0] else p2[0] - p1[0])
    if not dens:
        return out
    invs = batch_inv_mod(dens, P)
    for i, inv in zip(idxs, invs):
        x1, y1 = lhs[i]
        x2, y2 = rhs[i]
        if x1 == x2:
            slope = 3 * x1 * x1 % P * inv % P
        else:
            slope = (y2 - y1) * inv % P
        nx = (slope * slope - x1 - x2) % P
        out[i] = (nx, (slope * (x1 - nx) - y1) % P)
    return out


def batch_affine_weighted_bucket_sums(
    bucket_sets: Sequence[Sequence[AffinePoint]],
) -> List[AffinePoint]:
    """For each bucket array compute ``sum_d (d+1) * buckets[d]`` — the
    Pippenger window aggregation — running every array's suffix-sum sweep in
    lockstep so each step's additions share a single batched inversion."""
    if not bucket_sets:
        return []
    width = len(bucket_sets)
    length = len(bucket_sets[0])
    running: List[AffinePoint] = [None] * width
    totals: List[AffinePoint] = [None] * width
    for d in range(length - 1, -1, -1):
        running = batch_affine_pairwise_add(
            running, [bs[d] for bs in bucket_sets]
        )
        totals = batch_affine_pairwise_add(totals, running)
    return totals


def batch_affine_sum(points: Sequence[AffinePoint]) -> AffinePoint:
    """Sum one list of affine points via :func:`batch_affine_reduce`."""
    return batch_affine_reduce([points])[0]


def _jac_mul(pt: JacPoint, scalar: int) -> JacPoint:
    """Left-to-right 4-bit windowed scalar multiplication."""
    if scalar == 0 or pt[2] == 0:
        return JAC_INFINITY
    window = 4
    table = [JAC_INFINITY, pt]
    for _ in range(2, 1 << window):
        table.append(_jac_add(table[-1], pt))
    result = JAC_INFINITY
    nibbles = []
    while scalar:
        nibbles.append(scalar & ((1 << window) - 1))
        scalar >>= window
    for digit in reversed(nibbles):
        for _ in range(window):
            result = _jac_double(result)
        if digit:
            result = _jac_add(result, table[digit])
    return result


# --------------------------------------------------------------------------
# Jacobian coordinates over extension fields (Fq2 / Fq12), for G2.
# --------------------------------------------------------------------------

def _ext_jac_double(pt):
    x, y, z = pt
    if z is None or y.is_zero():
        return (x, y, None)
    ysq = y * y
    s = x * ysq * 4
    m = x * x * 3
    nx = m * m - s * 2
    ny = m * (s - nx) - ysq * ysq * 8
    nz = y * z * 2
    return (nx, ny, nz)


def _ext_jac_add(p1, p2):
    if p1[2] is None:
        return p2
    if p2[2] is None:
        return p1
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    z1z1 = z1 * z1
    z2z2 = z2 * z2
    u1 = x1 * z2z2
    u2 = x2 * z1z1
    s1 = y1 * z2 * z2z2
    s2 = y2 * z1 * z1z1
    if u1 == u2:
        if s1 != s2:
            return (x1, y1, None)
        return _ext_jac_double(p1)
    h = u2 - u1
    i = (h * 2) * (h * 2)
    j = h * i
    r = (s2 - s1) * 2
    v = u1 * i
    nx = r * r - j - v * 2
    ny = r * (v - nx) - s1 * j * 2
    nz = z1 * z2 * h * 2
    return (nx, ny, nz)


def _wnaf_digits(scalar: int, w: int) -> List[int]:
    """Width-``w`` NAF: odd digits in ``(-2^(w-1), 2^(w-1))`` separated by
    at least ``w - 1`` zeros, so only ``~254/w`` additions are needed."""
    digits: List[int] = []
    half = 1 << (w - 1)
    full = 1 << w
    while scalar:
        if scalar & 1:
            d = scalar & (full - 1)
            if d >= half:
                d -= full
            scalar -= d
        else:
            d = 0
        digits.append(d)
        scalar >>= 1
    return digits


def _ext_jac_mul(point, scalar: int):
    """wNAF scalar multiplication over extension-field Jacobian points:
    one doubling per bit plus ~254/4 additions from an odd-multiples table
    (extension-field additions are expensive, so the window pays off fast).
    """
    one = type(point[0]).one()
    if scalar == 0:
        return (one, one, None)
    w = 4
    base = (point[0], point[1], one)
    dbl = _ext_jac_double(base)
    # Odd multiples 1P, 3P, ..., (2^(w-1) - 1)P.
    odd = [base]
    for _ in range((1 << (w - 2)) - 1):
        odd.append(_ext_jac_add(odd[-1], dbl))
    result = (one, one, None)
    for d in reversed(_wnaf_digits(scalar, w)):
        result = _ext_jac_double(result)
        if d > 0:
            result = _ext_jac_add(result, odd[d >> 1])
        elif d < 0:
            x, y, z = odd[(-d) >> 1]
            result = _ext_jac_add(result, (x, -y, z))
    return result


def _ext_jac_to_affine(pt) -> AffinePoint:
    x, y, z = pt
    if z is None:
        return None
    z_inv = z.inv()
    z2 = z_inv * z_inv
    return (x * z2, y * z2 * z_inv)


# --------------------------------------------------------------------------
# Twist: embed G2 (Fq2 coordinates) into Fq12 for the Miller loop.
# --------------------------------------------------------------------------

def twist(point: Optional[Tuple[Fq2, Fq2]]) -> AffinePoint:
    """Map a G2 point to the curve over Fq12 (py_ecc's untwisting map)."""
    if point is None:
        return None
    x, y = point
    # Coefficients as polynomials in w: (a + b*u) -> (a - 9b) + b*w^6-ish
    # representation: first re-express over Fq[w^6].
    xc = [(x.coeffs[0] - 9 * x.coeffs[1]) % P, x.coeffs[1]]
    yc = [(y.coeffs[0] - 9 * y.coeffs[1]) % P, y.coeffs[1]]
    nx = Fq12([xc[0], 0, 0, 0, 0, 0, xc[1], 0, 0, 0, 0, 0])
    ny = Fq12([yc[0], 0, 0, 0, 0, 0, yc[1], 0, 0, 0, 0, 0])
    w = Fq12([0, 1] + [0] * 10)
    return (nx * w ** 2, ny * w ** 3)


# --------------------------------------------------------------------------
# Convenience wrappers used throughout the SNARK code.
# --------------------------------------------------------------------------

def g1_generator() -> AffinePoint:
    return G1_GENERATOR


def g2_generator() -> Tuple[Fq2, Fq2]:
    return G2_GENERATOR


def g1_mul(point: AffinePoint, scalar: int) -> AffinePoint:
    return multiply(point, scalar)


def g2_mul(point, scalar: int):
    return multiply(point, scalar)


def g1_add(p1: AffinePoint, p2: AffinePoint) -> AffinePoint:
    return add(p1, p2)


def g1_neg(point: AffinePoint) -> AffinePoint:
    return neg(point)


# Below this count the Jacobian loop beats batch-affine's scheduling
# overhead; above it the shared-inversion tree reduction wins.
_BATCH_AFFINE_SUM_THRESHOLD = 16


def g1_sum(points: Sequence[AffinePoint]) -> AffinePoint:
    """Sum many G1 points.

    Small inputs use straightforward Jacobian accumulation; larger ones go
    through the batch-affine tree reduction, which shares one field
    inversion across every independent addition in a round.
    """
    live = [pt for pt in points if pt is not None]
    if len(live) >= _BATCH_AFFINE_SUM_THRESHOLD:
        return batch_affine_sum(live)
    acc = JAC_INFINITY
    for pt in live:
        acc = _jac_add_affine(acc, pt)
    return _jac_to_affine(acc)


def point_to_bytes(point: AffinePoint) -> bytes:
    """Serialize a point for transcripts / proof-size accounting."""
    if point is None:
        return b"\x00" * 64
    x, y = point
    if isinstance(x, int):
        return x.to_bytes(32, "big") + y.to_bytes(32, "big")
    out = b""
    for coord in (x, y):
        for c in coord.coeffs:
            out += c.to_bytes(32, "big")
    return out
