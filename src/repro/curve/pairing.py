"""Optimal-ate pairing on BN254.

Implements the Miller loop with the standard line functions and a naive
final exponentiation ``f^((p^12 - 1) / r)``.  The structure follows py_ecc's
``bn128_pairing`` module, which is the reference pure-Python implementation
of this curve.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..field.extension import Fq2, Fq12, P
from .bn254 import (
    AffinePoint,
    CURVE_ORDER,
    add,
    double,
    is_on_curve,
    multiply,
    neg,
    twist,
)

ATE_LOOP_COUNT = 29793968203157093288
LOG_ATE_LOOP_COUNT = 63

FINAL_EXPONENT = (P ** 12 - 1) // CURVE_ORDER


def _linefunc(p1: AffinePoint, p2: AffinePoint, t: AffinePoint):
    """Evaluate the line through p1,p2 at point t (all over Fq12)."""
    x1, y1 = p1
    x2, y2 = p2
    xt, yt = t
    if x1 != x2:
        slope = (y2 - y1) / (x2 - x1)
        return slope * (xt - x1) - (yt - y1)
    if y1 == y2:
        slope = (x1 * x1 * 3) / (y1 * 2)
        return slope * (xt - x1) - (yt - y1)
    return xt - x1


def _cast_g1_to_fq12(point: AffinePoint) -> AffinePoint:
    if point is None:
        return None
    x, y = point
    return (Fq12.from_int(x), Fq12.from_int(y))


def miller_loop(q: AffinePoint, p: AffinePoint) -> Fq12:
    """Miller loop over the twisted Q (Fq12 coords) and embedded P,
    including the final exponentiation."""
    if q is None or p is None:
        return Fq12.one()
    return miller_loop_raw(q, p) ** FINAL_EXPONENT


def pairing(q2: Optional[Tuple[Fq2, Fq2]], p1: AffinePoint) -> Fq12:
    """e(P, Q) for P in G1 (Fq coords) and Q in G2 (Fq2 coords)."""
    if p1 is None or q2 is None:
        return Fq12.one()
    if not is_on_curve(p1, 3):
        raise ValueError("P is not on G1")
    return miller_loop(twist(q2), _cast_g1_to_fq12(p1))


def pairing_product_is_one(pairs) -> bool:
    """Check ``prod e(Pi, Qi) == 1`` — the Groth16 verification shape.

    Each element of ``pairs`` is ``(g1_point, g2_point)``.
    """
    acc = Fq12.one()
    for p1, q2 in pairs:
        if p1 is None or q2 is None:
            continue
        acc = acc * miller_loop_raw(twist(q2), _cast_g1_to_fq12(p1))
    return acc ** FINAL_EXPONENT == Fq12.one()


def miller_loop_raw(q: AffinePoint, p: AffinePoint) -> Fq12:
    """Miller loop *without* the final exponentiation, so products of
    pairings can share a single final exponentiation."""
    if q is None or p is None:
        return Fq12.one()
    r = q
    f = Fq12.one()
    for i in range(LOG_ATE_LOOP_COUNT, -1, -1):
        f = f * f * _linefunc(r, r, p)
        r = double(r)
        if ATE_LOOP_COUNT & (1 << i):
            f = f * _linefunc(r, q, p)
            r = add(r, q)
    q1 = (q[0] ** P, q[1] ** P)
    nq2 = (q1[0] ** P, -(q1[1] ** P))
    f = f * _linefunc(r, q1, p)
    r = add(r, q1)
    f = f * _linefunc(r, nq2, p)
    return f
