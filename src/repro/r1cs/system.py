"""Concrete (specialised) R1CS instances.

After the CRPC packing indeterminate has been collapsed to a field value,
an instance is three sparse matrices A, B, C with the satisfaction relation
``(A z) o (B z) = (C z)`` for the assignment vector
``z = [1, public..., witness...]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS

SparseRow = List[Tuple[int, int]]  # [(wire, coeff)]


@dataclass
class R1CSInstance:
    num_wires: int
    num_public: int  # includes the constant-one wire
    a_rows: List[SparseRow]
    b_rows: List[SparseRow]
    c_rows: List[SparseRow]

    @property
    def num_constraints(self) -> int:
        return len(self.a_rows)

    @property
    def num_witness(self) -> int:
        return self.num_wires - self.num_public

    def nonzeros(self) -> int:
        return sum(
            len(r) for rows in (self.a_rows, self.b_rows, self.c_rows) for r in rows
        )

    # -- evaluation ---------------------------------------------------------
    @staticmethod
    def _row_dot(row: SparseRow, assignment: Sequence[int]) -> int:
        return sum(c * assignment[w] for w, c in row) % R

    def eval_products(self, assignment: Sequence[int]):
        """Yield (Az_q, Bz_q, Cz_q) per constraint."""
        for ra, rb, rc in zip(self.a_rows, self.b_rows, self.c_rows):
            yield (
                self._row_dot(ra, assignment),
                self._row_dot(rb, assignment),
                self._row_dot(rc, assignment),
            )

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        if len(assignment) != self.num_wires:
            raise ValueError("assignment length mismatch")
        return all(a * b % R == c for a, b, c in self.eval_products(assignment))

    def matvec(self, which: str, assignment: Sequence[int]) -> List[int]:
        """Dense ``A z`` / ``B z`` / ``C z`` vector (used by Spartan)."""
        rows = {"A": self.a_rows, "B": self.b_rows, "C": self.c_rows}[which]
        return [self._row_dot(row, assignment) for row in rows]

    def entries(self, which: str):
        """Iterate sparse entries as (row, col, coeff)."""
        rows = {"A": self.a_rows, "B": self.b_rows, "C": self.c_rows}[which]
        for q, row in enumerate(rows):
            for wire, coeff in row:
                yield q, wire, coeff
