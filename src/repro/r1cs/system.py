"""Concrete (specialised) R1CS instances.

After the CRPC packing indeterminate has been collapsed to a field value,
an instance is three sparse matrices A, B, C with the satisfaction relation
``(A z) o (B z) = (C z)`` for the assignment vector
``z = [1, public..., witness...]``.

The evaluation kernels (``matvec``, ``eval_products``, ``is_satisfied``)
run over a lazily built, cached :class:`FlatR1CS` — a CSR-style flattening
of each matrix into parallel wire-index/coefficient arrays with row
pointers — so the per-row inner product is a single ``sum(map(mul, ...))``
over list slices instead of a generator unpacking ``(wire, coeff)`` tuples
term by term.  The tuple-unpacking reference is retained as
``naive_matvec`` / ``_row_dot`` for the equivalence tests and benchmarks.
The sparse rows are treated as immutable once a kernel has run; a caller
that mutates ``a_rows``/``b_rows``/``c_rows`` afterwards must call
``invalidate_flat_cache()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import mul
from typing import Dict, List, Optional, Sequence, Tuple

from ..field import vector as _vector
from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS

SparseRow = List[Tuple[int, int]]  # [(wire, coeff)]


class FlatR1CS:
    """CSR-style flattening of one sparse matrix.

    ``wires``/``coeffs`` hold every entry of every row back to back;
    ``row_ptr[q] : row_ptr[q+1]`` delimits row ``q``.  Coefficients are
    reduced into ``[0, R)`` at build time so the matvec inner loop never
    re-reduces them.
    """

    __slots__ = ("wires", "coeffs", "row_ptr", "_vec")

    def __init__(self, rows: Sequence[SparseRow]):
        wires: List[int] = []
        coeffs: List[int] = []
        row_ptr = [0]
        for row in rows:
            for wire, coeff in row:
                wires.append(wire)
                coeffs.append(coeff % R)
            row_ptr.append(len(wires))
        self.wires = wires
        self.coeffs = coeffs
        self.row_ptr = row_ptr
        self._vec: Dict[str, object] = {}

    @property
    def num_rows(self) -> int:
        return len(self.row_ptr) - 1

    def vec_kernel(self):
        """CSR kernel for the active vector engine, or ``None`` when the
        scalar backend is active or the matrix is below the engine's
        profitability floor.  Cached per implementation; dropping the
        :class:`FlatR1CS` (``invalidate_flat_cache``) drops the kernels."""
        impl = _vector.active_impl()
        if impl is None or len(self.wires) < _vector.MATVEC_MIN_TERMS[impl]:
            return None
        kern = self._vec.get(impl)
        if kern is None:
            kern = self._vec[impl] = _vector.make_csr_kernel(
                self.wires, self.coeffs, self.row_ptr
            )
        return kern

    def matvec_limbs(self, z_limbs):
        """Limb-domain matvec over a pre-converted ``(num_wires, 4)``
        assignment, or ``None`` when no vector kernel is engaged — lets the
        Groth16 quotient convert the assignment once for all three
        matrices and stay in limb space."""
        kern = self.vec_kernel()
        if kern is None:
            return None
        return kern.matvec_limbs(z_limbs)

    def matvec(self, assignment: Sequence[int]) -> List[int]:
        """Dense matrix-vector product, one reduction per row."""
        kern = self.vec_kernel()
        if kern is not None:
            return _vector.from_limbs(
                kern.matvec_limbs(_vector.to_limbs(assignment))
            )
        lookup = assignment.__getitem__
        wires = self.wires
        coeffs = self.coeffs
        out: List[int] = []
        append = out.append
        start = 0
        for end in self.row_ptr[1:]:
            append(
                sum(map(mul, coeffs[start:end], map(lookup, wires[start:end])))
                % R
            )
            start = end
        return out


@dataclass
class R1CSInstance:
    num_wires: int
    num_public: int  # includes the constant-one wire
    a_rows: List[SparseRow]
    b_rows: List[SparseRow]
    c_rows: List[SparseRow]

    @property
    def num_constraints(self) -> int:
        return len(self.a_rows)

    @property
    def num_witness(self) -> int:
        return self.num_wires - self.num_public

    def nonzeros(self) -> int:
        return sum(
            len(r) for rows in (self.a_rows, self.b_rows, self.c_rows) for r in rows
        )

    # -- evaluation ---------------------------------------------------------
    @staticmethod
    def _row_dot(row: SparseRow, assignment: Sequence[int]) -> int:
        return sum(c * assignment[w] for w, c in row) % R

    def _rows(self, which: str) -> List[SparseRow]:
        return {"A": self.a_rows, "B": self.b_rows, "C": self.c_rows}[which]

    def flat(self, which: str) -> FlatR1CS:
        """The cached CSR flattening of matrix ``which`` (built lazily).

        The sparse rows are snapshotted at first use; a caller that
        mutates ``a_rows``/``b_rows``/``c_rows`` afterwards must call
        :meth:`invalidate_flat_cache` or the kernels keep answering for
        the old matrices.
        """
        cache: Dict[str, FlatR1CS] = self.__dict__.setdefault("_flat_cache", {})
        flat = cache.get(which)
        if flat is None:
            flat = cache[which] = FlatR1CS(self._rows(which))
        return flat

    def invalidate_flat_cache(self) -> None:
        """Drop the CSR snapshots after mutating the sparse rows."""
        self.__dict__.pop("_flat_cache", None)

    def _vec_products(self, assignment: Sequence[int]):
        """``(Az, Bz, Cz)`` limb arrays when every matrix has an engaged
        vector kernel (one assignment conversion for all three), else
        ``None``."""
        kernels = [self.flat(w).vec_kernel() for w in ("A", "B", "C")]
        if not all(k is not None for k in kernels):
            return None
        z = _vector.to_limbs(assignment)
        return tuple(k.matvec_limbs(z) for k in kernels)

    def eval_products(self, assignment: Sequence[int]):
        """Yield (Az_q, Bz_q, Cz_q) per constraint."""
        prods = self._vec_products(assignment)
        if prods is not None:
            az, bz, cz = (_vector.from_limbs(p) for p in prods)
            yield from zip(az, bz, cz)
            return
        yield from zip(
            self.flat("A").matvec(assignment),
            self.flat("B").matvec(assignment),
            self.flat("C").matvec(assignment),
        )

    def is_satisfied(self, assignment: Sequence[int]) -> bool:
        if len(assignment) != self.num_wires:
            raise ValueError("assignment length mismatch")
        prods = self._vec_products(assignment)
        if prods is not None:
            # Entirely in limb space: Az o Bz and Cz are both canonical,
            # so satisfaction is plain array equality.
            az, bz, cz = prods
            return bool(
                _vector.np.array_equal(_vector.vec_mul(az, bz), cz)
            )
        return all(a * b % R == c for a, b, c in self.eval_products(assignment))

    def matvec(self, which: str, assignment: Sequence[int]) -> List[int]:
        """Dense ``A z`` / ``B z`` / ``C z`` vector (used by the Groth16
        quotient and Spartan)."""
        return self.flat(which).matvec(assignment)

    def matvec_limbs(self, which: str, z_limbs) -> Optional[object]:
        """Limb-domain matvec against a pre-converted assignment, or
        ``None`` when the vector kernel is not engaged for that matrix."""
        return self.flat(which).matvec_limbs(z_limbs)

    def naive_matvec(self, which: str, assignment: Sequence[int]) -> List[int]:
        """Tuple-unpacking reference matvec, kept for equivalence tests and
        the benchmark baseline."""
        return [self._row_dot(row, assignment) for row in self._rows(which)]

    def entries(self, which: str):
        """Iterate sparse entries as (row, col, coeff)."""
        for q, row in enumerate(self._rows(which)):
            for wire, coeff in row:
                yield q, wire, coeff
