"""Constraint-system builder: the circuit-construction API.

Usage pattern (mirrors bellman/libsnark's ``ConstraintSystem``)::

    cs = ConstraintSystem()
    x = cs.alloc_public("x", 3)
    y = cs.alloc("y", 9)
    cs.enforce(LC.from_wire(x), LC.from_wire(x), LC.from_wire(y))
    assert cs.is_satisfied()

Wire 0 is the constant ``1``.  Public wires (statement) come first so the
Groth16 IC query and Spartan's input handling can slice the assignment as
``[1, public..., witness...]``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..field.prime_field import BN254_FR_MODULUS
from .lincomb import LC, LinearCombination

R = BN254_FR_MODULUS


@dataclass
class Constraint:
    a: LinearCombination
    b: LinearCombination
    c: LinearCombination
    label: str = ""


@dataclass
class CircuitStats:
    """Accounting used to reproduce the paper's constraint/wire claims."""

    num_constraints: int = 0
    num_wires: int = 0
    num_public: int = 0
    a_terms: int = 0  # "left wires" in the paper's Fig. 5 language
    b_terms: int = 0
    c_terms: int = 0
    a_wires: int = 0  # distinct wires appearing on the A side
    b_wires: int = 0
    c_wires: int = 0
    max_z_degree: int = 0

    @property
    def total_terms(self) -> int:
        return self.a_terms + self.b_terms + self.c_terms


class ConstraintSystem:
    """Mutable builder for (possibly Z-packed) R1CS instances."""

    def __init__(self) -> None:
        self.wire_names: List[str] = ["~one"]
        self.values: List[Optional[int]] = [1]
        self.num_public = 1  # wire 0 (constant one) is public by convention
        self.constraints: List[Constraint] = []
        self._public_frozen = False

    # -- wires -----------------------------------------------------------------
    def alloc_public(self, name: str, value: Optional[int] = None) -> int:
        """Allocate a statement wire.  All public wires must be allocated
        before the first witness wire."""
        if self._public_frozen:
            raise ValueError(
                "public wires must be allocated before witness wires"
            )
        idx = len(self.wire_names)
        self.wire_names.append(name)
        self.values.append(None if value is None else value % R)
        self.num_public += 1
        return idx

    def alloc(self, name: str, value: Optional[int] = None) -> int:
        """Allocate a witness (private) wire."""
        self._public_frozen = True
        idx = len(self.wire_names)
        self.wire_names.append(name)
        self.values.append(None if value is None else value % R)
        return idx

    def set_value(self, wire: int, value: int) -> None:
        self.values[wire] = value % R

    def value(self, wire: int) -> int:
        v = self.values[wire]
        if v is None:
            raise ValueError(f"wire {wire} ({self.wire_names[wire]}) unset")
        return v

    @property
    def num_wires(self) -> int:
        return len(self.wire_names)

    # -- constraints -------------------------------------------------------------
    def enforce(
        self,
        a: LinearCombination,
        b: LinearCombination,
        c: LinearCombination,
        label: str = "",
    ) -> None:
        self.constraints.append(Constraint(a, b, c, label))

    def enforce_equal(
        self, left: LinearCombination, right: LinearCombination, label: str = ""
    ) -> None:
        """left == right, encoded as (left - right) * 1 = 0."""
        self.enforce(left - right, LC.constant(1), LC([]), label)

    def mul(
        self,
        a: LinearCombination,
        b: LinearCombination,
        name: str = "prod",
        z: int = 1,
    ) -> int:
        """Allocate a wire holding a*b (evaluated at packing point ``z`` if
        the combinations are packed) and constrain it."""
        value = None
        try:
            value = (
                a.evaluate(self._assignment(), z)
                * b.evaluate(self._assignment(), z)
                % R
            )
        except ValueError:
            pass
        wire = self.alloc(name, value)
        self.enforce(a, b, LC.from_wire(wire), label=name)
        return wire

    def _assignment(self) -> List[int]:
        out = []
        for i, v in enumerate(self.values):
            if v is None:
                raise ValueError(
                    f"wire {i} ({self.wire_names[i]}) has no value"
                )
            out.append(v)
        return out

    def assignment(self) -> List[int]:
        """The full assignment vector [1, public..., witness...]."""
        return self._assignment()

    def public_inputs(self) -> List[int]:
        """Statement values, excluding the constant-one wire."""
        return self._assignment()[1:self.num_public]

    # -- satisfaction -------------------------------------------------------------
    @property
    def is_packed(self) -> bool:
        return any(
            t.z_deg
            for con in self.constraints
            for lc in (con.a, con.b, con.c)
            for t in lc.terms
        )

    def max_z_degree(self) -> int:
        return max(
            (
                lc.max_z_degree
                for con in self.constraints
                for lc in (con.a, con.b, con.c)
            ),
            default=0,
        )

    def is_satisfied(self, z: Optional[int] = None) -> bool:
        """Check every constraint.  For packed systems a concrete ``z`` is
        required (tests typically derive one pseudo-randomly)."""
        if z is None:
            z = derive_z(b"satisfaction-check") if self.is_packed else 1
        assignment = self._assignment()
        for con in self.constraints:
            lhs = (
                con.a.evaluate(assignment, z)
                * con.b.evaluate(assignment, z)
                % R
            )
            if lhs != con.c.evaluate(assignment, z):
                return False
        return True

    def first_unsatisfied(self, z: Optional[int] = None) -> Optional[str]:
        """Debugging aid: label/index of the first failing constraint."""
        if z is None:
            z = derive_z(b"satisfaction-check") if self.is_packed else 1
        assignment = self._assignment()
        for i, con in enumerate(self.constraints):
            lhs = (
                con.a.evaluate(assignment, z)
                * con.b.evaluate(assignment, z)
                % R
            )
            if lhs != con.c.evaluate(assignment, z):
                return f"#{i} {con.label}"
        return None

    # -- reporting / lowering --------------------------------------------------
    def stats(self) -> CircuitStats:
        s = CircuitStats(
            num_constraints=len(self.constraints),
            num_wires=self.num_wires,
            num_public=self.num_public,
            max_z_degree=self.max_z_degree(),
        )
        a_w, b_w, c_w = set(), set(), set()
        for con in self.constraints:
            s.a_terms += len(con.a)
            s.b_terms += len(con.b)
            s.c_terms += len(con.c)
            a_w.update(t.wire for t in con.a.terms)
            b_w.update(t.wire for t in con.b.terms)
            c_w.update(t.wire for t in con.c.terms)
        s.a_wires, s.b_wires, s.c_wires = len(a_w), len(b_w), len(c_w)
        return s

    def specialize(self, z: int) -> "R1CSInstance":
        from .system import R1CSInstance

        rows_a, rows_b, rows_c = [], [], []
        for con in self.constraints:
            rows_a.append(con.a.specialize(z))
            rows_b.append(con.b.specialize(z))
            rows_c.append(con.c.specialize(z))
        return R1CSInstance(
            num_wires=self.num_wires,
            num_public=self.num_public,
            a_rows=rows_a,
            b_rows=rows_b,
            c_rows=rows_c,
        )


def derive_z(seed: bytes) -> int:
    """Deterministic Fiat–Shamir-style packing challenge from a seed."""
    digest = hashlib.sha256(b"zkvc-packing-point" + seed).digest()
    return int.from_bytes(digest, "big") % R
