"""Linear combinations over R1CS wires, with optional CRPC packing degrees.

A term is ``(wire, coeff, z_deg)`` meaning ``coeff * Z^z_deg * value(wire)``.
Vanilla R1CS uses ``z_deg == 0`` everywhere; zkVC's CRPC circuits pack matrix
rows/columns into polynomials of the indeterminate ``Z``, which the backend
later specialises to a secret (Groth16 setup) or Fiat–Shamir challenge
(Spartan).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple

from ..field.prime_field import BN254_FR_MODULUS

R = BN254_FR_MODULUS


class Term(NamedTuple):
    wire: int
    coeff: int
    z_deg: int


class LinearCombination:
    """A sum of packed terms; immutable once built into a constraint."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[Tuple[int, int, int]] = ()):
        merged: Dict[Tuple[int, int], int] = {}
        for wire, coeff, z_deg in terms:
            coeff %= R
            if coeff == 0:
                continue
            key = (wire, z_deg)
            new = (merged.get(key, 0) + coeff) % R
            if new:
                merged[key] = new
            else:
                merged.pop(key, None)
        self.terms = tuple(
            Term(w, c, d) for (w, d), c in sorted(merged.items())
        )

    # -- construction helpers -------------------------------------------------
    @classmethod
    def from_wire(cls, wire: int, coeff: int = 1, z_deg: int = 0):
        return cls([(wire, coeff, z_deg)])

    @classmethod
    def constant(cls, value: int):
        """Constant via the fixed wire 0 (which always carries 1)."""
        return cls([(0, value, 0)])

    def __add__(self, other: "LinearCombination") -> "LinearCombination":
        return LinearCombination(list(self.terms) + list(other.terms))

    def __sub__(self, other: "LinearCombination") -> "LinearCombination":
        return LinearCombination(
            list(self.terms) + [(t.wire, -t.coeff % R, t.z_deg) for t in other.terms]
        )

    def scale(self, factor: int) -> "LinearCombination":
        factor %= R
        return LinearCombination(
            [(t.wire, t.coeff * factor % R, t.z_deg) for t in self.terms]
        )

    def shift_z(self, delta: int) -> "LinearCombination":
        """Multiply the whole combination by ``Z^delta``."""
        return LinearCombination(
            [(t.wire, t.coeff, t.z_deg + delta) for t in self.terms]
        )

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, assignment: Sequence[int], z: int = 1) -> int:
        acc = 0
        for wire, coeff, z_deg in self.terms:
            v = coeff * assignment[wire]
            if z_deg:
                v *= pow(z, z_deg, R)
            acc += v
        return acc % R

    def specialize(self, z: int) -> List[Tuple[int, int]]:
        """Collapse ``Z`` to a concrete field value, merging duplicate wires.

        Returns ``[(wire, coeff), ...]`` sorted by wire.
        """
        merged: Dict[int, int] = {}
        for wire, coeff, z_deg in self.terms:
            c = coeff * pow(z, z_deg, R) % R if z_deg else coeff
            new = (merged.get(wire, 0) + c) % R
            if new:
                merged[wire] = new
            else:
                merged.pop(wire, None)
        return sorted(merged.items())

    @property
    def max_z_degree(self) -> int:
        return max((t.z_deg for t in self.terms), default=0)

    def wires(self) -> List[int]:
        return sorted({t.wire for t in self.terms})

    def __len__(self) -> int:
        return len(self.terms)

    def __bool__(self) -> bool:
        return bool(self.terms)

    def __repr__(self) -> str:
        parts = []
        for wire, coeff, z_deg in self.terms[:6]:
            z = f"*Z^{z_deg}" if z_deg else ""
            parts.append(f"{coeff}*w{wire}{z}")
        if len(self.terms) > 6:
            parts.append("...")
        return "LC(" + " + ".join(parts) + ")"


LC = LinearCombination
