"""R1CS constraint systems with CRPC-style ``Z``-packed coefficients."""

from .builder import CircuitStats, Constraint, ConstraintSystem, derive_z
from .lincomb import LC, LinearCombination, Term
from .system import R1CSInstance

__all__ = [
    "CircuitStats",
    "Constraint",
    "ConstraintSystem",
    "LC",
    "LinearCombination",
    "R1CSInstance",
    "Term",
    "derive_z",
]
