"""Circuit gadgets: matmul strategies, bit decomposition, fixed point,
nonlinear-function approximations, and LayerNorm."""

from .bits import (
    assert_in_range,
    assert_less_equal,
    bit_decompose,
    field_to_signed,
    is_greater_equal,
    max_gadget,
)
from .fixedpoint import (
    fixed_mul_gadget,
    from_fixed,
    rescale_gadget,
    signed_rescale_gadget,
    to_fixed,
)
from .convolution import CONV_STRATEGIES, Conv1dCircuit, conv1d_reference
from .layernorm import LayerNormResult, layernorm_gadget
from .matmul import STRATEGIES, MatmulCircuit, build_matmul_circuit
from .nonlinear import (
    ExpResult,
    SoftmaxResult,
    exp_gadget,
    gelu_gadget,
    gelu_poly_reference,
    gelu_reference,
    softmax_gadget,
    softmax_reference,
)

__all__ = [
    "CONV_STRATEGIES",
    "Conv1dCircuit",
    "ExpResult",
    "conv1d_reference",
    "LayerNormResult",
    "MatmulCircuit",
    "STRATEGIES",
    "SoftmaxResult",
    "assert_in_range",
    "assert_less_equal",
    "bit_decompose",
    "build_matmul_circuit",
    "exp_gadget",
    "field_to_signed",
    "fixed_mul_gadget",
    "from_fixed",
    "gelu_gadget",
    "gelu_poly_reference",
    "gelu_reference",
    "is_greater_equal",
    "layernorm_gadget",
    "max_gadget",
    "rescale_gadget",
    "signed_rescale_gadget",
    "softmax_gadget",
    "softmax_reference",
    "to_fixed",
]
