"""Fixed-point arithmetic gadgets.

Quantised Transformer inference works in scale ``2^frac_bits`` fixed point
(NITI-style power-of-two scaling).  A fixed-point multiply is a field
multiply followed by a *rescale* (floor division by the scale), which in
R1CS costs a Euclidean-division constraint plus range proofs on quotient
and remainder.
"""

from __future__ import annotations

from typing import Tuple

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem
from ..r1cs.lincomb import LC
from .bits import bit_decompose, field_to_signed

R = BN254_FR_MODULUS

DEFAULT_FRAC_BITS = 12


def to_fixed(x: float, frac_bits: int = DEFAULT_FRAC_BITS) -> int:
    """Quantise a float to signed fixed point (plain int, may be negative)."""
    return round(x * (1 << frac_bits))


def from_fixed(v: int, frac_bits: int = DEFAULT_FRAC_BITS) -> float:
    return v / (1 << frac_bits)


def rescale_gadget(
    cs: ConstraintSystem,
    wire: int,
    shift_bits: int,
    quotient_bits: int,
    name: str = "rescale",
) -> int:
    """Floor-divide a *non-negative* wire by ``2^shift_bits``.

    Enforces ``v == q * 2^shift + r`` with ``r`` range-proved to
    ``shift_bits`` and ``q`` to ``quotient_bits``.  Returns the quotient
    wire.
    """
    value = cs.value(wire)
    if value > R // 2:
        raise ValueError("rescale_gadget requires a non-negative value")
    q_val = value >> shift_bits
    r_val = value - (q_val << shift_bits)
    q = cs.alloc(f"{name}-q", q_val)
    r = cs.alloc(f"{name}-r", r_val)
    recompose = LC([(q, 1 << shift_bits, 0), (r, 1, 0)])
    cs.enforce_equal(recompose, LC.from_wire(wire), label=f"{name}-def")
    bit_decompose(cs, r, shift_bits, f"{name}-r")
    bit_decompose(cs, q, quotient_bits, f"{name}-q")
    return q


def signed_rescale_gadget(
    cs: ConstraintSystem,
    wire: int,
    shift_bits: int,
    magnitude_bits: int,
    name: str = "srescale",
) -> int:
    """Floor-divide a signed wire by ``2^shift_bits`` via the bias trick.

    Adds ``2^(magnitude_bits + shift_bits)`` so the biased value is
    non-negative, rescales, then removes the bias ``2^magnitude_bits``.
    """
    bias = 1 << (magnitude_bits + shift_bits)
    value = field_to_signed(cs.value(wire))
    if not -bias <= value < bias:
        raise ValueError("value exceeds declared magnitude")
    biased = cs.alloc(f"{name}-biased", (value + bias) % R)
    cs.enforce_equal(
        LC.from_wire(biased),
        LC.from_wire(wire) + LC.constant(bias),
        label=f"{name}-bias",
    )
    q_biased = rescale_gadget(
        cs, biased, shift_bits, magnitude_bits + 1, name
    )
    q = cs.alloc(
        f"{name}-q-signed",
        (cs.value(q_biased) - (1 << magnitude_bits)) % R,
    )
    cs.enforce_equal(
        LC.from_wire(q),
        LC.from_wire(q_biased) - LC.constant(1 << magnitude_bits),
        label=f"{name}-unbias",
    )
    return q


def fixed_mul_gadget(
    cs: ConstraintSystem,
    lhs: int,
    rhs: int,
    frac_bits: int,
    magnitude_bits: int,
    name: str = "fmul",
) -> Tuple[int, int]:
    """Fixed-point multiply: raw product wire + rescaled result wire."""
    raw_val = cs.value(lhs) * cs.value(rhs) % R
    raw = cs.alloc(f"{name}-raw", raw_val)
    cs.enforce(
        LC.from_wire(lhs),
        LC.from_wire(rhs),
        LC.from_wire(raw),
        label=f"{name}-mul",
    )
    # The raw product carries scale^2; its magnitude is the result's
    # magnitude plus frac_bits, hence the widened declaration below.
    scaled = signed_rescale_gadget(
        cs, raw, frac_bits, magnitude_bits + frac_bits, f"{name}-rs"
    )
    return raw, scaled
