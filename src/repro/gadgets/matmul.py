"""Matrix-multiplication circuit strategies.

This module is the heart of the reproduction: it builds R1CS circuits for
``Y[a,b] = X[a,n] @ W[n,b]`` under six encodings.

======================  =====================================================
strategy                encoding
======================  =====================================================
``vanilla``             one constraint per scalar product plus one long-
                        addition row per output (the paper's Fig. 4a / 5a)
``vanilla_psq``         PSQ only: per-product constraints fold the running
                        prefix sum into the C side, removing the long
                        additions and the separate product wires (Fig. 5b)
``crpc``                CRPC only: one packed polynomial-multiplication
                        constraint per inner index k (Fig. 4b) with explicit
                        per-(k,i,j) product wires and long-addition rows
``crpc_psq``            zkVC: CRPC packing + scalar prefix-sum accumulators;
                        n constraints, O(n^2) wires, A side holds only X
``vcnn``                vCNN's convolution packing applied to matmul: one
                        polynomial product per output with 2n-2 dummy-term
                        wires (the paper's "another possible transformation")
``zen``                 ZEN-style stranded encoding: two scalar products per
                        field multiplication via base-B limb packing
======================  =====================================================

The packing indeterminate ``Z`` appears symbolically in the constraints and
is specialised by the backend (Groth16 bakes the circuit's Fiat–Shamir point
into the CRS at setup; Spartan derives it in-protocol).
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Sequence

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem, derive_z
from ..r1cs.lincomb import LC

R = BN254_FR_MODULUS

STRATEGIES = ("vanilla", "vanilla_psq", "crpc", "crpc_psq", "vcnn", "zen")

# Limb base for the ZEN stranded encoding: large enough that 16-bit-ish
# quantised products never overflow a limb.
ZEN_BASE = 1 << 64


def _as_rows(mat, rows: int, cols: int) -> List[List[int]]:
    out = [[int(mat[i][j]) % R for j in range(cols)] for i in range(rows)]
    return out


class MatmulCircuit:
    """A matmul constraint system plus the bookkeeping to assign witnesses.

    Build once per shape/strategy, then :meth:`assign` per concrete input.
    ``Y`` entries are public (the statement); ``X`` and ``W`` are witness
    wires (the server's activations and proprietary weights).
    """

    def __init__(self, a: int, n: int, b: int, strategy: str = "crpc_psq"):
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}")
        if min(a, n, b) < 1:
            raise ValueError("matrix dimensions must be positive")
        self.a, self.n, self.b = a, n, b
        self.strategy = strategy
        self.cs = ConstraintSystem()

        # Statement: the claimed outputs.
        self.y_wires = [
            [self.cs.alloc_public(f"y[{i}][{j}]") for j in range(b)]
            for i in range(a)
        ]
        # Witness: inputs and weights.
        self.x_wires = [
            [self.cs.alloc(f"x[{i}][{k}]") for k in range(n)]
            for i in range(a)
        ]
        self.w_wires = [
            [self.cs.alloc(f"w[{k}][{j}]") for j in range(b)]
            for k in range(n)
        ]

        builder = getattr(self, f"_build_{strategy}")
        builder()

    # -- public API -------------------------------------------------------------
    def circuit_id(self) -> bytes:
        """Stable identifier used to derive the public packing point."""
        desc = f"matmul/{self.strategy}/{self.a}x{self.n}x{self.b}"
        return hashlib.sha256(desc.encode()).digest()

    def packing_point(self, extra: bytes = b"") -> int:
        return derive_z(self.circuit_id() + extra)

    def product(self, x_mat, w_mat) -> List[List[int]]:
        """The O(a*n*b) product ``Y = X @ W`` as field values.

        Callers that need Y *before* assigning witnesses (the Spartan
        commit-then-prove flow derives the packing point from it) compute
        it here once and pass it back to :meth:`assign` so the work is not
        repeated.
        """
        return self._product_rows(
            _as_rows(x_mat, self.a, self.n), _as_rows(w_mat, self.n, self.b)
        )

    def _product_rows(self, x, w) -> List[List[int]]:
        a, n, b = self.a, self.n, self.b
        return [
            [sum(x[i][k] * w[k][j] for k in range(n)) % R for j in range(b)]
            for i in range(a)
        ]

    def assign(
        self,
        x_mat,
        w_mat,
        z: Optional[int] = None,
        y: Optional[List[List[int]]] = None,
    ) -> List[List[int]]:
        """Fill every wire value from concrete matrices.

        Returns the product ``Y`` as field values.  ``z`` is required for
        packed strategies whose accumulator wires depend on the packing
        point; defaults to :meth:`packing_point`.  ``y`` may carry a
        precomputed :meth:`product` result; a wrong value only yields an
        unsatisfiable assignment (the constraints still bind Y to X @ W).
        """
        if z is None:
            z = self.packing_point()
        a, n, b = self.a, self.n, self.b
        x = _as_rows(x_mat, a, n)
        w = _as_rows(w_mat, n, b)
        if y is None:
            y = self._product_rows(x, w)
        cs = self.cs
        for i in range(a):
            for k in range(n):
                cs.set_value(self.x_wires[i][k], x[i][k])
        for k in range(n):
            for j in range(b):
                cs.set_value(self.w_wires[k][j], w[k][j])
        for i in range(a):
            for j in range(b):
                cs.set_value(self.y_wires[i][j], y[i][j])
        filler = getattr(self, f"_fill_{self.strategy}", None)
        if filler is not None:
            filler(x, w, y, z)
        return y

    # -- vanilla -----------------------------------------------------------------
    def _build_vanilla(self) -> None:
        cs = self.cs
        a, n, b = self.a, self.n, self.b
        self._prod_wires = [
            [
                [cs.alloc(f"p[{i}][{j}][{k}]") for k in range(n)]
                for j in range(b)
            ]
            for i in range(a)
        ]
        for i in range(a):
            for j in range(b):
                for k in range(n):
                    cs.enforce(
                        LC.from_wire(self.x_wires[i][k]),
                        LC.from_wire(self.w_wires[k][j]),
                        LC.from_wire(self._prod_wires[i][j][k]),
                        label=f"prod[{i}][{j}][{k}]",
                    )
                # Long addition: heavyweight A-side row (Fig. 5a).
                total = LC(
                    [(self._prod_wires[i][j][k], 1, 0) for k in range(n)]
                )
                cs.enforce(
                    total,
                    LC.constant(1),
                    LC.from_wire(self.y_wires[i][j]),
                    label=f"sum[{i}][{j}]",
                )

    def _fill_vanilla(self, x, w, y, z) -> None:
        for i in range(self.a):
            for j in range(self.b):
                for k in range(self.n):
                    self.cs.set_value(
                        self._prod_wires[i][j][k], x[i][k] * w[k][j] % R
                    )

    # -- vanilla + PSQ -------------------------------------------------------------
    def _build_vanilla_psq(self) -> None:
        cs = self.cs
        a, n, b = self.a, self.n, self.b
        # Prefix-sum wires replace product wires; the last prefix IS y_ij.
        self._prefix_wires = [
            [
                [cs.alloc(f"s[{i}][{j}][{k}]") for k in range(n - 1)]
                for j in range(b)
            ]
            for i in range(a)
        ]
        for i in range(a):
            for j in range(b):
                prev: Optional[int] = None
                for k in range(n):
                    cur = (
                        self.y_wires[i][j]
                        if k == n - 1
                        else self._prefix_wires[i][j][k]
                    )
                    c = LC.from_wire(cur)
                    if prev is not None:
                        c = c - LC.from_wire(prev)
                    cs.enforce(
                        LC.from_wire(self.x_wires[i][k]),
                        LC.from_wire(self.w_wires[k][j]),
                        c,
                        label=f"psq[{i}][{j}][{k}]",
                    )
                    prev = cur

    def _fill_vanilla_psq(self, x, w, y, z) -> None:
        for i in range(self.a):
            for j in range(self.b):
                acc = 0
                for k in range(self.n - 1):
                    acc = (acc + x[i][k] * w[k][j]) % R
                    self.cs.set_value(self._prefix_wires[i][j][k], acc)

    # -- CRPC (packed, explicit products) ------------------------------------------
    def _x_packed(self, k: int) -> LC:
        """sum_i Z^{i*b} x_ik — a column of X as a polynomial in Z."""
        return LC(
            [(self.x_wires[i][k], 1, i * self.b) for i in range(self.a)]
        )

    def _w_packed(self, k: int) -> LC:
        """sum_j Z^j w_kj — a row of W as a polynomial in Z."""
        return LC([(self.w_wires[k][j], 1, j) for j in range(self.b)])

    def _y_packed(self) -> LC:
        return LC(
            [
                (self.y_wires[i][j], 1, i * self.b + j)
                for i in range(self.a)
                for j in range(self.b)
            ]
        )

    def _build_crpc(self) -> None:
        cs = self.cs
        a, n, b = self.a, self.n, self.b
        # Packed product constraint per k, with per-(k,i,j) product wires —
        # CRPC reduces constraints but keeps O(abn) variables (Table II's
        # "CRPC only" row); PSQ removes them.
        self._prod_wires = [
            [[cs.alloc(f"p[{k}][{i}][{j}]") for j in range(b)] for i in range(a)]
            for k in range(n)
        ]
        for k in range(n):
            packed_products = LC(
                [
                    (self._prod_wires[k][i][j], 1, i * b + j)
                    for i in range(a)
                    for j in range(b)
                ]
            )
            cs.enforce(
                self._x_packed(k),
                self._w_packed(k),
                packed_products,
                label=f"crpc[{k}]",
            )
        # Long-addition rows reconstruct each output from its products.
        for i in range(a):
            for j in range(b):
                total = LC(
                    [(self._prod_wires[k][i][j], 1, 0) for k in range(n)]
                )
                cs.enforce(
                    total,
                    LC.constant(1),
                    LC.from_wire(self.y_wires[i][j]),
                    label=f"crpc-sum[{i}][{j}]",
                )

    def _fill_crpc(self, x, w, y, z) -> None:
        for k in range(self.n):
            for i in range(self.a):
                for j in range(self.b):
                    self.cs.set_value(
                        self._prod_wires[k][i][j], x[i][k] * w[k][j] % R
                    )

    # -- CRPC + PSQ: the zkVC circuit ------------------------------------------------
    def _build_crpc_psq(self) -> None:
        cs = self.cs
        n = self.n
        # Scalar prefix accumulators over the packed per-k products; the
        # final accumulator is the packed Y statement itself.
        self._acc_wires = [cs.alloc(f"acc[{k}]") for k in range(n - 1)]
        for k in range(n):
            if k == n - 1:
                c = self._y_packed()
            else:
                c = LC.from_wire(self._acc_wires[k])
            if k > 0:
                c = c - LC.from_wire(self._acc_wires[k - 1])
            cs.enforce(
                self._x_packed(k),
                self._w_packed(k),
                c,
                label=f"crpc-psq[{k}]",
            )

    def _fill_crpc_psq(self, x, w, y, z) -> None:
        a, n, b = self.a, self.n, self.b
        acc = 0
        for k in range(n - 1):
            xk = sum(pow(z, i * b, R) * x[i][k] for i in range(a)) % R
            wk = sum(pow(z, j, R) * w[k][j] for j in range(b)) % R
            acc = (acc + xk * wk) % R
            self.cs.set_value(self._acc_wires[k], acc)

    # -- vCNN-style packing with dummy terms --------------------------------------
    def _build_vcnn(self) -> None:
        cs = self.cs
        a, n, b = self.a, self.n, self.b
        # Per output: X_i(Z) * W_j(Z) where deg aligns the wanted dot product
        # at Z^{n-1}; every other coefficient is a dummy wire.
        self._dummy_wires = [
            [
                [cs.alloc(f"d[{i}][{j}][{deg}]") for deg in range(2 * n - 2)]
                for j in range(b)
            ]
            for i in range(a)
        ]
        for i in range(a):
            for j in range(b):
                xi = LC([(self.x_wires[i][k], 1, k) for k in range(n)])
                wj = LC(
                    [(self.w_wires[k][j], 1, n - 1 - k) for k in range(n)]
                )
                terms = []
                for deg in range(2 * n - 1):
                    if deg == n - 1:
                        terms.append((self.y_wires[i][j], 1, deg))
                    else:
                        d = deg if deg < n - 1 else deg - 1
                        terms.append(
                            (self._dummy_wires[i][j][d], 1, deg)
                        )
                cs.enforce(xi, wj, LC(terms), label=f"vcnn[{i}][{j}]")

    def _fill_vcnn(self, x, w, y, z) -> None:
        a, n, b = self.a, self.n, self.b
        for i in range(a):
            for j in range(b):
                # Coefficient of Z^deg in X_i(Z) * W_j(Z).
                coeffs = [0] * (2 * n - 1)
                for k1 in range(n):
                    for k2 in range(n):
                        coeffs[k1 + n - 1 - k2] = (
                            coeffs[k1 + n - 1 - k2] + x[i][k1] * w[k2][j]
                        ) % R
                for deg in range(2 * n - 1):
                    if deg == n - 1:
                        continue
                    d = deg if deg < n - 1 else deg - 1
                    self.cs.set_value(
                        self._dummy_wires[i][j][d], coeffs[deg]
                    )

    # -- ZEN-style stranded encoding ------------------------------------------------
    def _build_zen(self) -> None:
        cs = self.cs
        a, n, b = self.a, self.n, self.b
        base = ZEN_BASE
        pairs = n // 2
        self._zen_ps = [
            [[cs.alloc(f"ps[{i}][{j}][{p}]") for p in range(pairs)] for j in range(b)]
            for i in range(a)
        ]
        self._zen_hi = [
            [[cs.alloc(f"hi[{i}][{j}][{p}]") for p in range(pairs)] for j in range(b)]
            for i in range(a)
        ]
        self._zen_lo = [
            [[cs.alloc(f"lo[{i}][{j}][{p}]") for p in range(pairs)] for j in range(b)]
            for i in range(a)
        ]
        self._zen_tail = (
            [
                [[cs.alloc(f"tp[{i}][{j}]")] for j in range(b)]
                for i in range(a)
            ]
            if n % 2
            else None
        )
        for i in range(a):
            for j in range(b):
                for p in range(pairs):
                    k = 2 * p
                    # (B*x_k + x_{k+1}) * (w_k + B*w_{k+1})
                    #   = B^2*(x_k w_{k+1}) + B*(x_k w_k + x_{k+1} w_{k+1})
                    #     + x_{k+1} w_k
                    left = LC(
                        [
                            (self.x_wires[i][k], base, 0),
                            (self.x_wires[i][k + 1], 1, 0),
                        ]
                    )
                    right = LC(
                        [
                            (self.w_wires[k][j], 1, 0),
                            (self.w_wires[k + 1][j], base, 0),
                        ]
                    )
                    out = LC(
                        [
                            (self._zen_hi[i][j][p], base * base % R, 0),
                            (self._zen_ps[i][j][p], base, 0),
                            (self._zen_lo[i][j][p], 1, 0),
                        ]
                    )
                    cs.enforce(left, right, out, label=f"zen[{i}][{j}][{p}]")
                terms = [(self._zen_ps[i][j][p], 1, 0) for p in range(pairs)]
                if self._zen_tail is not None:
                    tail = self._zen_tail[i][j][0]
                    cs.enforce(
                        LC.from_wire(self.x_wires[i][n - 1]),
                        LC.from_wire(self.w_wires[n - 1][j]),
                        LC.from_wire(tail),
                        label=f"zen-tail[{i}][{j}]",
                    )
                    terms.append((tail, 1, 0))
                cs.enforce(
                    LC(terms),
                    LC.constant(1),
                    LC.from_wire(self.y_wires[i][j]),
                    label=f"zen-sum[{i}][{j}]",
                )

    def _fill_zen(self, x, w, y, z) -> None:
        a, n, b = self.a, self.n, self.b
        pairs = n // 2
        for i in range(a):
            for j in range(b):
                for p in range(pairs):
                    k = 2 * p
                    self.cs.set_value(
                        self._zen_hi[i][j][p], x[i][k] * w[k + 1][j] % R
                    )
                    self.cs.set_value(
                        self._zen_ps[i][j][p],
                        (x[i][k] * w[k][j] + x[i][k + 1] * w[k + 1][j]) % R,
                    )
                    self.cs.set_value(
                        self._zen_lo[i][j][p], x[i][k + 1] * w[k][j] % R
                    )
                if self._zen_tail is not None:
                    self.cs.set_value(
                        self._zen_tail[i][j][0],
                        x[i][n - 1] * w[n - 1][j] % R,
                    )


def build_matmul_circuit(
    a: int, n: int, b: int, strategy: str = "crpc_psq"
) -> MatmulCircuit:
    """Convenience constructor matching the paper's Y = X @ W orientation."""
    return MatmulCircuit(a, n, b, strategy)
