"""Bit-decomposition and comparison gadgets.

The paper verifies ``x_max`` and the exponential's clipping branch with
comparisons, which ZKP supports "by bit-decomposition" (Sec. III-C).  These
gadgets are value-eager: wires passed in must already carry values, and the
gadget allocates+fills its auxiliary wires while emitting constraints.
"""

from __future__ import annotations

from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem
from ..r1cs.lincomb import LC

R = BN254_FR_MODULUS


def field_to_signed(v: int) -> int:
    """Interpret a field element as a signed integer in (-R/2, R/2]."""
    v %= R
    return v - R if v > R // 2 else v


def bit_decompose(
    cs: ConstraintSystem, wire: int, num_bits: int, name: str = "bits"
) -> List[int]:
    """Allocate ``num_bits`` boolean wires with ``sum 2^i b_i == wire``.

    Doubles as a range proof: the constraint system is satisfiable only when
    the wire's value is in ``[0, 2^num_bits)``.
    """
    value = cs.value(wire)
    if value >= (1 << num_bits):
        raise ValueError(
            f"value {value} does not fit in {num_bits} bits "
            f"(range-check would fail)"
        )
    bit_wires = []
    for i in range(num_bits):
        b = cs.alloc(f"{name}[{i}]", (value >> i) & 1)
        # b * (b - 1) == 0
        cs.enforce(
            LC.from_wire(b),
            LC.from_wire(b) - LC.constant(1),
            LC([]),
            label=f"{name}[{i}]-bool",
        )
        bit_wires.append(b)
    recomposed = LC([(b, 1 << i, 0) for i, b in enumerate(bit_wires)])
    cs.enforce_equal(recomposed, LC.from_wire(wire), label=f"{name}-recompose")
    return bit_wires


def assert_in_range(
    cs: ConstraintSystem, wire: int, num_bits: int, name: str = "range"
) -> None:
    """Range-proof ``0 <= value < 2^num_bits``."""
    bit_decompose(cs, wire, num_bits, name)


def assert_less_equal(
    cs: ConstraintSystem,
    lhs: int,
    rhs: int,
    num_bits: int,
    name: str = "le",
) -> None:
    """Enforce ``lhs <= rhs`` for wires whose values fit in ``num_bits``.

    Encoded as a range proof on the difference, per the paper's
    bit-decomposition comparison.
    """
    diff_val = (cs.value(rhs) - cs.value(lhs)) % R
    diff = cs.alloc(f"{name}-diff", diff_val)
    cs.enforce_equal(
        LC.from_wire(diff),
        LC.from_wire(rhs) - LC.from_wire(lhs),
        label=f"{name}-diff-def",
    )
    bit_decompose(cs, diff, num_bits, f"{name}-bits")


def is_greater_equal(
    cs: ConstraintSystem,
    lhs: int,
    rhs: int,
    num_bits: int,
    name: str = "ge",
) -> int:
    """Allocate a boolean wire ``s = [lhs >= rhs]`` and constrain it.

    The selector trick: ``d = s*(lhs - rhs) + (1-s)*(rhs - lhs - 1)`` must be
    non-negative (range-checked), which forces ``s`` to the honest branch.
    """
    lv = field_to_signed(cs.value(lhs))
    rv = field_to_signed(cs.value(rhs))
    s_val = 1 if lv >= rv else 0
    s = cs.alloc(f"{name}-sel", s_val)
    cs.enforce(
        LC.from_wire(s),
        LC.from_wire(s) - LC.constant(1),
        LC([]),
        label=f"{name}-sel-bool",
    )
    # d = s*(lhs-rhs) + (1-s)*(rhs-lhs-1)
    #   = s*(2*(lhs-rhs) + 1) + (rhs-lhs-1): one multiplication.
    d_val = (lv - rv) if s_val else (rv - lv - 1)
    d = cs.alloc(f"{name}-d", d_val)
    two_diff_plus1 = (
        LC.from_wire(lhs).scale(2)
        - LC.from_wire(rhs).scale(2)
        + LC.constant(1)
    )
    rem = LC.from_wire(rhs) - LC.from_wire(lhs) - LC.constant(1)
    cs.enforce(
        LC.from_wire(s),
        two_diff_plus1,
        LC.from_wire(d) - rem,
        label=f"{name}-d-def",
    )
    bit_decompose(cs, d, num_bits, f"{name}-d-bits")
    return s


def max_gadget(
    cs: ConstraintSystem,
    wires: Sequence[int],
    num_bits: int,
    name: str = "max",
) -> int:
    """The paper's verified max (Sec. III-C):

    1. ``x_max >= x_j`` for every j (bit-decomposition comparisons), and
    2. ``prod_j (x_max - x_j) == 0`` so x_max is one of the inputs.

    Values may be signed; comparisons shift by the implied bias.
    """
    if not wires:
        raise ValueError("max of empty set")
    values = [field_to_signed(cs.value(w)) for w in wires]
    max_val = max(values)
    m = cs.alloc(f"{name}-val", max_val)
    for idx, wj in enumerate(wires):
        assert_less_equal(cs, wj, m, num_bits, f"{name}-ge[{idx}]")
    # Running product of (m - x_j) must hit zero.
    prod_lc = LC.from_wire(m) - LC.from_wire(wires[0])
    prod_val = (max_val - values[0]) % R
    for idx, wj in enumerate(wires[1:], start=1):
        term_val = (max_val - field_to_signed(cs.value(wj))) % R
        prod_val = prod_val * term_val % R
        p = cs.alloc(f"{name}-prod[{idx}]", prod_val)
        cs.enforce(
            prod_lc,
            LC.from_wire(m) - LC.from_wire(wj),
            LC.from_wire(p),
            label=f"{name}-prod[{idx}]",
        )
        prod_lc = LC.from_wire(p)
    cs.enforce_equal(prod_lc, LC([]), label=f"{name}-prod-zero")
    return m
