"""Convolution circuits — the operation vCNN packs natively.

The paper's CRPC generalises vCNN's observation that a 1-D convolution *is*
one polynomial multiplication: for ``y = x (*) w`` (full correlation with a
flipped kernel),

    X(Z) * W(Z) = Y(Z)   with   Y(Z) = sum_t Z^t y_t

holds *exactly* — every coefficient of the product is an output, so one
packed constraint proves the whole convolution.  This module provides both
encodings (vanilla per-product vs. single packed constraint) so the
CRPC-for-matmul story can be compared against its convolutional ancestor,
and a batched strided variant used for patch embeddings.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem, derive_z
from ..r1cs.lincomb import LC

R = BN254_FR_MODULUS

CONV_STRATEGIES = ("vanilla", "packed")


class Conv1dCircuit:
    """Prove ``y[t] = sum_k x[t - k] w[k]`` (full convolution, length
    ``n + m - 1`` for signal length n, kernel length m)."""

    def __init__(self, signal_len: int, kernel_len: int,
                 strategy: str = "packed"):
        if strategy not in CONV_STRATEGIES:
            raise ValueError(f"unknown conv strategy {strategy!r}")
        if signal_len < 1 or kernel_len < 1:
            raise ValueError("lengths must be positive")
        self.n, self.m = signal_len, kernel_len
        self.out_len = signal_len + kernel_len - 1
        self.strategy = strategy
        self.cs = ConstraintSystem()
        self.y_wires = [
            self.cs.alloc_public(f"y[{t}]") for t in range(self.out_len)
        ]
        self.x_wires = [self.cs.alloc(f"x[{i}]") for i in range(self.n)]
        self.w_wires = [self.cs.alloc(f"w[{k}]") for k in range(self.m)]
        if strategy == "vanilla":
            self._build_vanilla()
        else:
            self._build_packed()

    # -- encodings ---------------------------------------------------------------
    def _build_vanilla(self) -> None:
        cs = self.cs
        self._prod_wires: List[List[int]] = []
        for t in range(self.out_len):
            prods = []
            for k in range(self.m):
                i = t - k
                if 0 <= i < self.n:
                    p = cs.alloc(f"p[{t}][{k}]")
                    cs.enforce(
                        LC.from_wire(self.x_wires[i]),
                        LC.from_wire(self.w_wires[k]),
                        LC.from_wire(p),
                        label=f"conv-prod[{t}][{k}]",
                    )
                    prods.append(p)
            cs.enforce(
                LC([(p, 1, 0) for p in prods]),
                LC.constant(1),
                LC.from_wire(self.y_wires[t]),
                label=f"conv-sum[{t}]",
            )
            self._prod_wires.append(prods)

    def _build_packed(self) -> None:
        """vCNN's single polynomial-multiplication constraint."""
        cs = self.cs
        x_packed = LC([(w, 1, i) for i, w in enumerate(self.x_wires)])
        w_packed = LC([(w, 1, k) for k, w in enumerate(self.w_wires)])
        y_packed = LC([(w, 1, t) for t, w in enumerate(self.y_wires)])
        cs.enforce(x_packed, w_packed, y_packed, label="conv-packed")

    # -- assignment ----------------------------------------------------------------
    def circuit_id(self) -> bytes:
        desc = f"conv1d/{self.strategy}/{self.n}x{self.m}"
        return hashlib.sha256(desc.encode()).digest()

    def packing_point(self) -> int:
        return derive_z(self.circuit_id())

    def assign(self, x, w) -> List[int]:
        if len(x) != self.n or len(w) != self.m:
            raise ValueError("input lengths do not match circuit")
        cs = self.cs
        xv = [int(v) % R for v in x]
        wv = [int(v) % R for v in w]
        y = [0] * self.out_len
        for i, a in enumerate(xv):
            for k, b in enumerate(wv):
                y[i + k] = (y[i + k] + a * b) % R
        for i, v in enumerate(xv):
            cs.set_value(self.x_wires[i], v)
        for k, v in enumerate(wv):
            cs.set_value(self.w_wires[k], v)
        for t, v in enumerate(y):
            cs.set_value(self.y_wires[t], v)
        if self.strategy == "vanilla":
            for t in range(self.out_len):
                idx = 0
                for k in range(self.m):
                    i = t - k
                    if 0 <= i < self.n:
                        cs.set_value(
                            self._prod_wires[t][idx], xv[i] * wv[k] % R
                        )
                        idx += 1
        return y


def conv1d_reference(x, w) -> List[int]:
    """Plain full convolution over the integers (no reduction)."""
    out = [0] * (len(x) + len(w) - 1)
    for i, a in enumerate(x):
        for k, b in enumerate(w):
            out[i + k] += a * b
    return out
