"""Verified integer LayerNorm.

LayerNorm needs mean, variance and an inverse square root — none of which
are native R1CS operations.  The standard zkML recipe (which we follow) is
hint-and-check: the prover supplies mean / variance / inv-std as witness
hints and the circuit checks them with Euclidean-division and inequality
constraints:

* ``sum(x) = t * mu + rem_mu``, ``0 <= rem_mu < t``
* ``sum((x - mu)^2) = t * v + rem_v``, ``0 <= rem_v < t``  (v has scale^2)
* ``0 <= scale^4 - r^2 (v + eps) < (2r + 1)(v + eps)``  so that
  ``r = floor(scale^2 / sqrt(v + eps))`` is the unique valid inv-std hint
* ``y_i = (x_i - mu) * r / scale^2`` via signed rescale

Affine gamma/beta are folded by the caller (they are plain linear ops).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem
from ..r1cs.lincomb import LC
from .bits import bit_decompose, field_to_signed
from .fixedpoint import signed_rescale_gadget

R = BN254_FR_MODULUS


@dataclass
class LayerNormResult:
    outputs: List[int]
    mean_wire: int
    var_wire: int
    inv_std_wire: int


def _div_check(
    cs: ConstraintSystem,
    numerator_lc: LC,
    numerator_val: int,
    divisor: int,
    rem_bits: int,
    quot_bits: int,
    name: str,
) -> int:
    """Verified floored division by a public constant: returns quotient wire.

    The numerator may be signed; quotient is floored toward -inf (matching
    numpy's ``//``), encoded by biasing with ``2^quot_bits * divisor``.
    """
    bias_q = 1 << quot_bits
    signed_num = numerator_val if numerator_val <= R // 2 else numerator_val - R
    q_val = signed_num // divisor
    r_val = signed_num - q_val * divisor
    if not -bias_q <= q_val < bias_q:
        raise ValueError(f"{name}: quotient exceeds declared bits")
    q = cs.alloc(f"{name}-q", q_val % R)
    rem = cs.alloc(f"{name}-r", r_val)
    cs.enforce_equal(
        LC([(q, divisor, 0), (rem, 1, 0)]),
        numerator_lc,
        label=f"{name}-def",
    )
    bit_decompose(cs, rem, rem_bits, f"{name}-rem")
    # Range-check the biased quotient.
    qb = cs.alloc(f"{name}-qb", (q_val + bias_q) % R)
    cs.enforce_equal(
        LC.from_wire(qb),
        LC.from_wire(q) + LC.constant(bias_q),
        label=f"{name}-qb-def",
    )
    bit_decompose(cs, qb, quot_bits + 1, f"{name}-qbits")
    # rem < divisor: divisor - 1 - rem >= 0.
    slack = cs.alloc(f"{name}-slack", (divisor - 1 - r_val) % R)
    cs.enforce_equal(
        LC.from_wire(slack),
        LC.constant(divisor - 1) - LC.from_wire(rem),
        label=f"{name}-slack-def",
    )
    bit_decompose(cs, slack, rem_bits, f"{name}-slackbits")
    return q


def layernorm_gadget(
    cs: ConstraintSystem,
    x_wires: Sequence[int],
    frac_bits: int,
    magnitude_bits: int = 8,
    name: str = "ln",
) -> LayerNormResult:
    """Normalise a token vector to zero mean / unit variance (fixed point)."""
    t = len(x_wires)
    scale = 1 << frac_bits
    eps = max(1, scale // 16)

    values = [field_to_signed(cs.value(w)) for w in x_wires]
    total = sum(values)
    sum_lc = LC([(w, 1, 0) for w in x_wires])
    value_bits = frac_bits + magnitude_bits

    mu = _div_check(
        cs, sum_lc, total % R, t,
        rem_bits=max(2, t.bit_length()),
        quot_bits=value_bits + 2,
        name=f"{name}-mu",
    )
    mu_val = field_to_signed(cs.value(mu))

    # Centered values and their squares.
    sq_wires = []
    var_sum = 0
    for i, w in enumerate(x_wires):
        c_val = values[i] - mu_val
        sq_val = c_val * c_val
        var_sum += sq_val
        sq = cs.alloc(f"{name}-sq[{i}]", sq_val % R)
        centered = LC.from_wire(w) - LC.from_wire(mu)
        cs.enforce(centered, centered, LC.from_wire(sq), label=f"{name}-sq[{i}]")
        sq_wires.append(sq)

    v = _div_check(
        cs, LC([(w, 1, 0) for w in sq_wires]), var_sum % R, t,
        rem_bits=max(2, t.bit_length()),
        quot_bits=2 * value_bits + 2,
        name=f"{name}-var",
    )
    v_val = field_to_signed(cs.value(v))  # scale^2 * real variance

    # inv-std hint: r = isqrt(scale^4 // (v + eps)), i.e. the integer
    # square root of the scaled reciprocal — this is the unique r with
    # 0 <= scale^4 - r^2 (v+eps) < (2r+2)(v+eps).
    r_val = math.isqrt(scale ** 4 // (v_val + eps))
    r_hint = cs.alloc(f"{name}-r", r_val)
    # Non-negativity: without this a prover could flip the sign of every
    # output (r and -r square identically).
    bit_decompose(cs, r_hint, 2 * frac_bits + 2, f"{name}-rbits")
    v_eps = LC.from_wire(v) + LC.constant(eps)
    # rsq = r^2
    rsq = cs.alloc(f"{name}-rsq", r_val * r_val % R)
    cs.enforce(
        LC.from_wire(r_hint), LC.from_wire(r_hint), LC.from_wire(rsq),
        label=f"{name}-rsq",
    )
    # d = scale^4 - r^2 (v + eps) must satisfy 0 <= d < (2r+1)(v+eps).
    d_val = (scale ** 4 - r_val * r_val * (v_val + eps)) % R
    d = cs.alloc(f"{name}-d", d_val)
    cs.enforce(
        LC.from_wire(rsq),
        v_eps,
        LC.constant(scale ** 4) - LC.from_wire(d),
        label=f"{name}-d-def",
    )
    d_bits = 4 * frac_bits + 4
    bit_decompose(cs, d, d_bits, f"{name}-d")
    # bound = (2r+2)(v+eps) - 1 - d >= 0
    bound_val = ((2 * r_val + 2) * (v_val + eps) - 1 - field_to_signed(d_val)) % R
    bound = cs.alloc(f"{name}-bound", bound_val)
    cs.enforce(
        LC.from_wire(r_hint).scale(2) + LC.constant(2),
        v_eps,
        LC.from_wire(bound) + LC.constant(1) + LC.from_wire(d),
        label=f"{name}-bound-def",
    )
    bit_decompose(cs, bound, d_bits, f"{name}-bound")

    # Outputs: y_i = (x_i - mu) * r / scale^2.
    outputs = []
    for i, w in enumerate(x_wires):
        c_val = values[i] - mu_val
        prod_val = c_val * r_val % R
        prod = cs.alloc(f"{name}-prod[{i}]", prod_val)
        cs.enforce(
            LC.from_wire(w) - LC.from_wire(mu),
            LC.from_wire(r_hint),
            LC.from_wire(prod),
            label=f"{name}-prod[{i}]",
        )
        # c has scale S, r has scale S (r = S / sigma_real), so c*r has
        # scale S^2 and one rescale by S yields the S-scaled output.
        y = signed_rescale_gadget(
            cs, prod, frac_bits, frac_bits + 6, f"{name}-y[{i}]"
        )
        outputs.append(y)

    return LayerNormResult(
        outputs=outputs, mean_wire=mu, var_wire=v, inv_std_wire=r_hint
    )
