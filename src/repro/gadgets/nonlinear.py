"""Nonlinear-function approximation gadgets (paper Sec. III-C).

* SoftMax: max-normalise, then ``e^x ~ (1 + x/2^n)^(2^n)`` on the negative
  inputs (clipped below threshold ``T``), then a verified division.
* GELU: the paper's polynomial ``x^2/8 + x/4 + 1/2``.

All gadgets work in ``2^frac_bits`` fixed point and are value-eager.  Each
returns its output wires plus enough structure for tests to audit the
approximation error against the float reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..field.prime_field import BN254_FR_MODULUS
from ..r1cs.builder import ConstraintSystem
from ..r1cs.lincomb import LC
from .bits import bit_decompose, field_to_signed, is_greater_equal, max_gadget
from .fixedpoint import rescale_gadget

R = BN254_FR_MODULUS

# Paper defaults: clip e^x to 0 below T; 2^n squaring depth for the Taylor
# limit approximation.
DEFAULT_EXP_ITERS = 5
DEFAULT_CLIP_T = -8.0


@dataclass
class ExpResult:
    out: int                # wire: ~ 2^frac_bits * e^x, clipped
    selector: int           # wire: 1 if x >= T else 0


def exp_gadget(
    cs: ConstraintSystem,
    x_wire: int,
    frac_bits: int,
    iters: int = DEFAULT_EXP_ITERS,
    clip_t: float = DEFAULT_CLIP_T,
    name: str = "exp",
) -> ExpResult:
    """Approximate ``e^x`` for a *non-positive* fixed-point input.

    Implements the paper's piecewise form: 0 below ``T``, otherwise
    ``(1 + x/2^n)^(2^n)`` via ``iters`` verified squarings.
    """
    scale = 1 << frac_bits
    x_val = field_to_signed(cs.value(x_wire))
    if x_val > 0:
        raise ValueError("exp_gadget expects non-positive input")
    t_fixed = round(clip_t * scale)

    # Selector for the clip branch: s = [x >= T].
    t_wire = cs.alloc(f"{name}-T", t_fixed % R)
    cs.enforce_equal(
        LC.from_wire(t_wire), LC.constant(t_fixed % R), label=f"{name}-T-def"
    )
    # Comparisons need |x - T| to fit; magnitudes here are < 2^(frac+6).
    cmp_bits = frac_bits + 8
    s = is_greater_equal(cs, x_wire, t_wire, cmp_bits, f"{name}-clip")

    # u = -x (non-negative), clamped at -T so the base stays in [0, scale].
    x_eff = max(x_val, t_fixed)
    u_val = -x_eff
    u = cs.alloc(f"{name}-u", u_val % R)
    # s=1 -> u == -x; s=0 -> u == -T.  One constraint:
    #   u = s*(-x + T) - T  ->  s*(T - x) = u + T
    cs.enforce(
        LC.from_wire(s),
        LC.from_wire(t_wire) - LC.from_wire(x_wire),
        LC.from_wire(u) + LC.constant(t_fixed % R),
        label=f"{name}-u-def",
    )

    # base = scale - u / 2^iters  (floor division, verified).
    u_shift = rescale_gadget(
        cs, u, iters, frac_bits + 4, f"{name}-ushift"
    )
    base_val = (scale - cs.value(u_shift)) % R
    base = cs.alloc(f"{name}-base", base_val)
    cs.enforce_equal(
        LC.from_wire(base),
        LC.constant(scale) - LC.from_wire(u_shift),
        label=f"{name}-base-def",
    )

    # iters verified squarings with rescale: sq <- sq^2 / scale.
    cur = base
    for t in range(iters):
        raw_val = cs.value(cur) * cs.value(cur) % R
        raw = cs.alloc(f"{name}-sq{t}-raw", raw_val)
        cs.enforce(
            LC.from_wire(cur),
            LC.from_wire(cur),
            LC.from_wire(raw),
            label=f"{name}-sq{t}",
        )
        cur = rescale_gadget(
            cs, raw, frac_bits, frac_bits + 2, f"{name}-sq{t}-rs"
        )

    # Clip: out = s * cur.
    out_val = cs.value(s) * cs.value(cur) % R
    out = cs.alloc(f"{name}-out", out_val)
    cs.enforce(
        LC.from_wire(s),
        LC.from_wire(cur),
        LC.from_wire(out),
        label=f"{name}-clip-mul",
    )
    return ExpResult(out=out, selector=s)


@dataclass
class SoftmaxResult:
    outputs: List[int]      # wires: ~ 2^frac_bits * softmax_i(x)
    max_wire: int
    exp_wires: List[int]


def softmax_gadget(
    cs: ConstraintSystem,
    x_wires: Sequence[int],
    frac_bits: int,
    iters: int = DEFAULT_EXP_ITERS,
    clip_t: float = DEFAULT_CLIP_T,
    name: str = "softmax",
) -> SoftmaxResult:
    """The paper's verified SoftMax: max-normalise, approximate exp, divide.

    Division ``out_i = e_i * scale / sum`` is verified Euclidean-style:
    ``out_i * sum + rem_i == e_i * scale`` with ``0 <= rem_i < sum``.
    """
    scale = 1 << frac_bits
    cmp_bits = frac_bits + 8

    m = max_gadget(cs, list(x_wires), cmp_bits, f"{name}-max")

    exp_results = []
    for idx, xw in enumerate(x_wires):
        shifted_val = (cs.value(xw) - cs.value(m)) % R
        shifted = cs.alloc(f"{name}-shift[{idx}]", shifted_val)
        cs.enforce_equal(
            LC.from_wire(shifted),
            LC.from_wire(xw) - LC.from_wire(m),
            label=f"{name}-shift[{idx}]-def",
        )
        exp_results.append(
            exp_gadget(
                cs, shifted, frac_bits, iters, clip_t, f"{name}-exp[{idx}]"
            )
        )
    exp_wires = [er.out for er in exp_results]

    sum_val = sum(cs.value(w) for w in exp_wires) % R
    total = cs.alloc(f"{name}-sum", sum_val)
    cs.enforce_equal(
        LC([(w, 1, 0) for w in exp_wires]),
        LC.from_wire(total),
        label=f"{name}-sum-def",
    )
    if sum_val == 0:
        raise ValueError("softmax sum underflowed to zero; raise frac_bits")

    sum_bits = max(sum_val.bit_length() + 1, frac_bits + 2)
    outputs = []
    for idx, ew in enumerate(exp_wires):
        e_val = cs.value(ew)
        out_val = (e_val * scale) // sum_val
        rem_val = e_val * scale - out_val * sum_val
        out = cs.alloc(f"{name}-out[{idx}]", out_val)
        rem = cs.alloc(f"{name}-rem[{idx}]", rem_val)
        # out * sum == e * scale - rem
        cs.enforce(
            LC.from_wire(out),
            LC.from_wire(total),
            LC.from_wire(ew).scale(scale) - LC.from_wire(rem),
            label=f"{name}-div[{idx}]",
        )
        bit_decompose(cs, rem, sum_bits, f"{name}-rem[{idx}]")
        # rem < sum  <=>  sum - 1 - rem >= 0
        slack_val = (sum_val - 1 - rem_val) % R
        slack = cs.alloc(f"{name}-slack[{idx}]", slack_val)
        cs.enforce_equal(
            LC.from_wire(slack),
            LC.from_wire(total) - LC.constant(1) - LC.from_wire(rem),
            label=f"{name}-slack[{idx}]-def",
        )
        bit_decompose(cs, slack, sum_bits, f"{name}-slack[{idx}]")
        bit_decompose(cs, out, frac_bits + 2, f"{name}-out[{idx}]")
        outputs.append(out)

    return SoftmaxResult(outputs=outputs, max_wire=m, exp_wires=exp_wires)


def gelu_gadget(
    cs: ConstraintSystem,
    x_wire: int,
    frac_bits: int,
    magnitude_bits: int = 8,
    name: str = "gelu",
) -> int:
    """The paper's GELU polynomial: ``x^2/8 + x/4 + 1/2`` in fixed point.

    One verified multiplication (the square) plus one rescale; the /8, /4
    and +1/2 fold into constants.  Returns the output wire
    (~ ``2^frac_bits * gelu(x)``).
    """
    scale = 1 << frac_bits
    x_val = field_to_signed(cs.value(x_wire))

    sq_val = x_val * x_val % R
    sq = cs.alloc(f"{name}-sq", sq_val)
    cs.enforce(
        LC.from_wire(x_wire),
        LC.from_wire(x_wire),
        LC.from_wire(sq),
        label=f"{name}-sq",
    )
    # x^2 is scale^2-scaled and non-negative; divide by (8 * scale) to get
    # the scale-scaled x^2/8 term.
    q = rescale_gadget(
        cs, sq, frac_bits + 3, 2 * magnitude_bits + frac_bits, f"{name}-q"
    )
    out_val = (cs.value(q) + x_val // 4 + scale // 2) % R
    # x/4 in fixed point: exact only when x is a multiple of 4; use a signed
    # rescale-free encoding: out*4 = 4*q + x + 2*scale  (folds the floor
    # into the statement, erring <= 1 LSB like the float-side quantiser).
    out = cs.alloc(f"{name}-out", out_val)
    rem_val = (4 * cs.value(q) + x_val + 2 * scale - 4 * field_to_signed(out_val)) % R
    rem = cs.alloc(f"{name}-rem", rem_val)
    cs.enforce_equal(
        LC.from_wire(out).scale(4) + LC.from_wire(rem),
        LC.from_wire(q).scale(4) + LC.from_wire(x_wire) + LC.constant(2 * scale),
        label=f"{name}-out-def",
    )
    bit_decompose(cs, rem, 2, f"{name}-rem")
    return out


def softmax_reference(xs: Sequence[float]) -> List[float]:
    m = max(xs)
    es = [math.exp(x - m) for x in xs]
    s = sum(es)
    return [e / s for e in es]


def gelu_reference(x: float) -> float:
    return 0.5 * x * (
        1.0 + math.tanh(math.sqrt(2.0 / math.pi) * (x + 0.044715 * x ** 3))
    )


def gelu_poly_reference(x: float) -> float:
    """The paper's polynomial approximation, in floats."""
    return x * x / 8.0 + x / 4.0 + 0.5
