"""zkVC reproduction — fast zero-knowledge proofs for matrix multiplication
and verifiable Transformer inference (DAC 2025).

Public entry points live in :mod:`repro.core`:

* :func:`repro.core.prove_matmul` / :func:`repro.core.verify_matmul` — prove
  a quantised matrix product with the CRPC + PSQ circuit on a Groth16 or
  Spartan backend.
* :class:`repro.core.MixerPlanner` — the hybrid token-mixer planner used for
  end-to-end verifiable Transformers.
"""

__version__ = "0.1.0"
