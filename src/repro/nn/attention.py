"""Token mixers (paper Sec. IV / Tables III-IV).

* ``SoftmaxAttention``  — standard multi-head self-attention ("SoftApprox."
  when combined with the approximated SoftMax at proving time).
* ``ScalingAttention``  — SoftMax-free linear attention ("SoftFree-S"):
  ``Q (K^T V) / t`` with learned output scaling; linear in sequence length.
* ``PoolingMixer``      — MetaFormer-style average pooling ("SoftFree-P").
* ``LinearMixer``       — learnable linear token mixing ("SoftFree-L",
  the FNet-style linear-transformation module).

Every mixer exposes ``mixer_name`` and ``proving_profile(tokens, dim)``
describing the matmul shapes it needs at inference, which the zkML compiler
uses for constraint accounting.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .autograd import Tensor
from .layers import Linear, Module

MatmulShape = Tuple[int, int, int]  # (a, n, b) for Y[a,b] = X[a,n] W[n,b]


class SoftmaxAttention(Module):
    mixer_name = "softmax"

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads:
            raise ValueError("heads must divide dim")
        self.dim, self.heads = dim, heads
        self.head_dim = dim // heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        h, hd = self.heads, self.head_dim
        qkv = self.qkv(x)  # [b, t, 3d]
        qkv = qkv.reshape(b, t, 3, h, hd)
        qkv = qkv.transpose(1, 2).transpose(0, 1)  # [3, b, t, h, hd]
        q = _select(qkv, 0).transpose(1, 2)
        k = _select(qkv, 1).transpose(1, 2)
        v = _select(qkv, 2).transpose(1, 2)
        scores = (q @ k.transpose()) .scale(1.0 / hd ** 0.5)
        att = scores.softmax(axis=-1)
        mixed = att @ v  # [b, h, t, hd]
        mixed = mixed.transpose(1, 2).reshape(b, t, d)
        return self.proj(mixed)

    def proving_profile(self, tokens: int, dim: int) -> List[MatmulShape]:
        hd = self.head_dim
        shapes: List[MatmulShape] = [(tokens, dim, 3 * dim)]  # qkv proj
        for _ in range(self.heads):
            shapes.append((tokens, hd, tokens))   # Q K^T
            shapes.append((tokens, tokens, hd))   # att V
        shapes.append((tokens, dim, dim))          # output proj
        return shapes

    @property
    def softmax_rows(self) -> bool:
        return True


class ScalingAttention(Module):
    mixer_name = "scaling"

    def __init__(self, dim: int, heads: int, rng: np.random.Generator):
        if dim % heads:
            raise ValueError("heads must divide dim")
        self.dim, self.heads = dim, heads
        self.head_dim = dim // heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        b, t, d = x.shape
        h, hd = self.heads, self.head_dim
        qkv = self.qkv(x).reshape(b, t, 3, h, hd)
        qkv = qkv.transpose(1, 2).transpose(0, 1)
        q = _select(qkv, 0).transpose(1, 2)
        k = _select(qkv, 1).transpose(1, 2)
        v = _select(qkv, 2).transpose(1, 2)
        # SoftMax-free: context = K^T V (d x d), out = Q context / t.
        context = (k.transpose() @ v).scale(1.0 / t)
        mixed = (q @ context).scale(1.0 / hd ** 0.5)
        mixed = mixed.transpose(1, 2).reshape(b, t, d)
        return self.proj(mixed)

    def proving_profile(self, tokens: int, dim: int) -> List[MatmulShape]:
        hd = self.head_dim
        shapes: List[MatmulShape] = [(tokens, dim, 3 * dim)]
        for _ in range(self.heads):
            shapes.append((hd, tokens, hd))       # K^T V
            shapes.append((tokens, hd, hd))       # Q context
        shapes.append((tokens, dim, dim))
        return shapes

    @property
    def softmax_rows(self) -> bool:
        return False


class PoolingMixer(Module):
    mixer_name = "pooling"

    def __init__(self, dim: int, rng: np.random.Generator):
        self.dim = dim

    def forward(self, x: Tensor) -> Tensor:
        # MetaFormer pooling: subtract input so the residual adds it back.
        return x.mean(axis=1, keepdims=True) - x

    def proving_profile(self, tokens: int, dim: int) -> List[MatmulShape]:
        # Pooling is a linear combination: free in R1CS apart from the
        # rescale; model it as one tall-thin matmul.
        return [(1, tokens, dim)]

    @property
    def softmax_rows(self) -> bool:
        return False


class LinearMixer(Module):
    mixer_name = "linear"

    def __init__(self, dim: int, num_tokens: int, rng: np.random.Generator):
        self.dim = dim
        self.num_tokens = num_tokens
        self.token_mix = Linear(num_tokens, num_tokens, rng)

    def forward(self, x: Tensor) -> Tensor:
        # Mix along the token axis: transpose, linear, transpose back.
        return self.token_mix(x.transpose(1, 2)).transpose(1, 2)

    def proving_profile(self, tokens: int, dim: int) -> List[MatmulShape]:
        return [(dim, tokens, tokens)]

    @property
    def softmax_rows(self) -> bool:
        return False


def _select(t: Tensor, index: int) -> Tensor:
    """Select t[index] along axis 0, keeping gradients flowing."""
    data = t.data[index]

    def backward(g):
        if t.requires_grad:
            full = np.zeros_like(t.data)
            full[index] = g
            t._accumulate(full)

    out = Tensor(data)
    if t.requires_grad:
        out.requires_grad = True
        out._parents = (t,)
        out._backward = backward
    return out


MIXER_CLASSES = {
    "softmax": SoftmaxAttention,
    "scaling": ScalingAttention,
    "pooling": PoolingMixer,
    "linear": LinearMixer,
}


def make_mixer(
    name: str, dim: int, heads: int, num_tokens: int, rng: np.random.Generator
) -> Module:
    if name == "softmax":
        return SoftmaxAttention(dim, heads, rng)
    if name == "scaling":
        return ScalingAttention(dim, heads, rng)
    if name == "pooling":
        return PoolingMixer(dim, rng)
    if name == "linear":
        return LinearMixer(dim, num_tokens, rng)
    raise ValueError(f"unknown mixer {name!r}")
