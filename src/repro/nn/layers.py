"""Basic neural-network modules on the autograd engine.

Float path (training) only; the quantised integer inference path that gets
compiled to ZKP circuits lives in :mod:`repro.zkml.quantized` and shares
these modules' weights.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .autograd import Tensor


class Module:
    """Base class: parameter collection + pythonic call syntax."""

    def parameters(self) -> List[Tensor]:
        params: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator):
        scale = (2.0 / (in_dim + out_dim)) ** 0.5
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_dim, out_dim)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_dim), requires_grad=True)
        self.in_dim, self.out_dim = in_dim, out_dim

    def forward(self, x: Tensor) -> Tensor:
        return x @ self.weight + self.bias


class LayerNorm(Module):
    def __init__(self, dim: int):
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x.layernorm() * self.gamma + self.beta


class MLP(Module):
    """Transformer feed-forward block; activation is either exact GELU or
    the paper's ZKP-friendly polynomial."""

    def __init__(
        self,
        dim: int,
        hidden: int,
        rng: np.random.Generator,
        poly_gelu: bool = False,
    ):
        self.fc1 = Linear(dim, hidden, rng)
        self.fc2 = Linear(hidden, dim, rng)
        self.poly_gelu = poly_gelu

    def forward(self, x: Tensor) -> Tensor:
        h = self.fc1(x)
        h = h.gelu_poly() if self.poly_gelu else h.gelu()
        return self.fc2(h)


class Embedding(Module):
    """Token embedding via one-hot matmul (small vocabularies only)."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator):
        self.table = Tensor(
            rng.normal(0.0, 0.5, size=(vocab, dim)), requires_grad=True
        )
        self.vocab = vocab

    def forward(self, ids: np.ndarray) -> Tensor:
        onehot = np.eye(self.vocab)[ids]
        return Tensor(onehot) @ self.table


class PatchEmbed(Module):
    """Split [B, H, W] images into non-overlapping patches, project to dim."""

    def __init__(
        self, image_size: int, patch_size: int, dim: int,
        rng: np.random.Generator,
    ):
        if image_size % patch_size:
            raise ValueError("patch size must divide image size")
        self.patch_size = patch_size
        self.grid = image_size // patch_size
        self.num_tokens = self.grid * self.grid
        self.proj = Linear(patch_size * patch_size, dim, rng)

    def patches(self, images: np.ndarray) -> np.ndarray:
        b, h, w = images.shape
        p, g = self.patch_size, self.grid
        x = images.reshape(b, g, p, g, p).transpose(0, 1, 3, 2, 4)
        return x.reshape(b, g * g, p * p)

    def forward(self, images: np.ndarray) -> Tensor:
        return self.proj(Tensor(self.patches(images)))


def sgd_step(
    params: Iterable[Tensor],
    velocities: List[np.ndarray],
    lr: float,
    momentum: float = 0.9,
    clip: float = 5.0,
) -> None:
    """In-place SGD with momentum and global-norm clipping."""
    params = list(params)
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    norm = total ** 0.5
    factor = min(1.0, clip / (norm + 1e-12))
    for p, v in zip(params, velocities):
        if p.grad is None:
            continue
        v *= momentum
        v += p.grad * factor
        p.data -= lr * v
        p.grad = None
