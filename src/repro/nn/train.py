"""Training loop for the synthetic accuracy experiments (Tables III-IV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from .autograd import Tensor, cross_entropy
from .datasets import SplitData
from .layers import Module, sgd_step


@dataclass
class TrainResult:
    train_acc: float
    test_acc: float
    losses: List[float]


def evaluate(model: Module, xs: np.ndarray, ys: np.ndarray,
             batch_size: int = 64) -> float:
    correct = 0
    for start in range(0, len(xs), batch_size):
        batch = xs[start:start + batch_size]
        logits = model(batch).data
        correct += int((logits.argmax(axis=-1) == ys[start:start + batch_size]).sum())
    return correct / len(xs)


def train_model(
    model: Module,
    data: SplitData,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 0.05,
    momentum: float = 0.9,
    lr_decay: float = 0.85,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> TrainResult:
    """Plain SGD-with-momentum training on a synthetic split."""
    rng = np.random.default_rng(seed)
    params = model.parameters()
    velocities = [np.zeros_like(p.data) for p in params]
    losses: List[float] = []
    cur_lr = lr
    for epoch in range(epochs):
        order = rng.permutation(len(data.train_x))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(order), batch_size):
            idx = order[start:start + batch_size]
            logits = model(data.train_x[idx])
            loss = cross_entropy(logits, data.train_y[idx])
            loss.backward()
            sgd_step(params, velocities, cur_lr, momentum)
            epoch_loss += float(loss.data)
            batches += 1
        losses.append(epoch_loss / max(1, batches))
        cur_lr *= lr_decay
        if log is not None:
            log(f"epoch {epoch}: loss={losses[-1]:.4f}")
    return TrainResult(
        train_acc=evaluate(model, data.train_x, data.train_y),
        test_acc=evaluate(model, data.test_x, data.test_y),
        losses=losses,
    )
