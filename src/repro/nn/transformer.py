"""Transformer models: ViT variants, hierarchical MetaFormer, BERT-small.

Each model carries a per-layer *mixer plan* (list of mixer names) so the
paper's four variants are just plans:

* SoftApprox.  -> ``["softmax"] * L``
* SoftFree-S   -> ``["scaling"] * L``
* SoftFree-P   -> ``["pooling"] * L``
* SoftFree-L   -> ``["linear"] * L``
* zkVC         -> hybrid plan from :class:`repro.core.planner.MixerPlanner`

``paper_config`` objects describe the full-size architectures used for
constraint accounting and cost modelling; ``build_*`` functions construct
small trainable instances for the synthetic-dataset accuracy columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .attention import MIXER_CLASSES, MatmulShape, make_mixer
from .autograd import Tensor
from .layers import Embedding, LayerNorm, Linear, MLP, Module, PatchEmbed


@dataclass
class StageConfig:
    layers: int
    dim: int
    tokens: int
    heads: int


@dataclass
class ModelConfig:
    """Architecture description, decoupled from weights."""

    name: str
    stages: List[StageConfig]
    num_classes: int
    mlp_ratio: int = 4

    @property
    def total_layers(self) -> int:
        return sum(s.layers for s in self.stages)

    def layer_specs(self) -> List[StageConfig]:
        """One entry per transformer layer (stage config repeated)."""
        out: List[StageConfig] = []
        for s in self.stages:
            out.extend([s] * s.layers)
        return out


# -- The paper's architectures (Sec. IV) -------------------------------------

def vit_cifar_config() -> ModelConfig:
    """ViT on CIFAR-10: 7 layers, 4 heads, dim 256, patch 4 (32x32 -> 64
    tokens)."""
    return ModelConfig(
        "vit-cifar10",
        [StageConfig(layers=7, dim=256, tokens=64, heads=4)],
        num_classes=10,
    )


def vit_tiny_imagenet_config() -> ModelConfig:
    """Tiny-ImageNet: 9 layers, 12 heads, dim 192, patch 4 (64x64 -> 256
    tokens)."""
    return ModelConfig(
        "vit-tiny-imagenet",
        [StageConfig(layers=9, dim=192, tokens=256, heads=12)],
        num_classes=200,
    )


def metaformer_imagenet_config() -> ModelConfig:
    """Hierarchical 12-layer, 4-stage model with dims 64/128/320/512
    (224x224, patch 4 -> 3136 tokens at stage 1, /4 per stage)."""
    return ModelConfig(
        "metaformer-imagenet",
        [
            StageConfig(layers=3, dim=64, tokens=3136, heads=1),
            StageConfig(layers=3, dim=128, tokens=784, heads=2),
            StageConfig(layers=3, dim=320, tokens=196, heads=5),
            StageConfig(layers=3, dim=512, tokens=49, heads=8),
        ],
        num_classes=1000,
    )


def bert_small_config() -> ModelConfig:
    """NLP model: 4 layers, 4 heads, dim 256 (paper's GLUE model)."""
    return ModelConfig(
        "bert-small",
        [StageConfig(layers=4, dim=256, tokens=128, heads=4)],
        num_classes=2,
    )


PAPER_CONFIGS = {
    "cifar10": vit_cifar_config,
    "tiny-imagenet": vit_tiny_imagenet_config,
    "imagenet": metaformer_imagenet_config,
    "bert": bert_small_config,
}


# -- Trainable model -----------------------------------------------------------

class TransformerBlock(Module):
    def __init__(
        self,
        dim: int,
        heads: int,
        tokens: int,
        mixer: str,
        mlp_ratio: int,
        rng: np.random.Generator,
        poly_gelu: bool = False,
    ):
        self.norm1 = LayerNorm(dim)
        self.mixer = make_mixer(mixer, dim, heads, tokens, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, dim * mlp_ratio, rng, poly_gelu=poly_gelu)
        self.mixer_name = mixer

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.mixer(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class Transformer(Module):
    """A single-stage transformer classifier over pre-embedded tokens."""

    def __init__(
        self,
        dim: int,
        heads: int,
        tokens: int,
        num_classes: int,
        mixer_plan: Sequence[str],
        rng: np.random.Generator,
        mlp_ratio: int = 2,
        poly_gelu: bool = False,
    ):
        self.blocks = [
            TransformerBlock(
                dim, heads, tokens, mixer, mlp_ratio, rng, poly_gelu
            )
            for mixer in mixer_plan
        ]
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng)
        self.mixer_plan = list(mixer_plan)
        self.dim, self.tokens = dim, tokens

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        x = self.norm(x)
        pooled = x.mean(axis=1, keepdims=False)
        return self.head(pooled)


class VisionTransformer(Module):
    def __init__(
        self,
        image_size: int,
        patch_size: int,
        dim: int,
        heads: int,
        num_classes: int,
        mixer_plan: Sequence[str],
        rng: np.random.Generator,
        mlp_ratio: int = 2,
        poly_gelu: bool = False,
    ):
        self.embed = PatchEmbed(image_size, patch_size, dim, rng)
        tokens = self.embed.num_tokens
        self.pos = Tensor(
            rng.normal(0.0, 0.02, size=(1, tokens, dim)), requires_grad=True
        )
        self.encoder = Transformer(
            dim, heads, tokens, num_classes, mixer_plan, rng,
            mlp_ratio, poly_gelu,
        )
        self.mixer_plan = list(mixer_plan)

    def forward(self, images: np.ndarray) -> Tensor:
        x = self.embed(images) + self.pos
        return self.encoder(x)


class TextTransformer(Module):
    def __init__(
        self,
        vocab: int,
        seq_len: int,
        dim: int,
        heads: int,
        num_classes: int,
        mixer_plan: Sequence[str],
        rng: np.random.Generator,
        mlp_ratio: int = 2,
        poly_gelu: bool = False,
    ):
        self.embed = Embedding(vocab, dim, rng)
        self.pos = Tensor(
            rng.normal(0.0, 0.02, size=(1, seq_len, dim)), requires_grad=True
        )
        self.encoder = Transformer(
            dim, heads, seq_len, num_classes, mixer_plan, rng,
            mlp_ratio, poly_gelu,
        )
        self.mixer_plan = list(mixer_plan)

    def forward(self, ids: np.ndarray) -> Tensor:
        x = self.embed(ids) + self.pos
        return self.encoder(x)


def uniform_plan(mixer: str, layers: int) -> List[str]:
    if mixer not in MIXER_CLASSES:
        raise ValueError(f"unknown mixer {mixer!r}")
    return [mixer] * layers
