"""Synthetic datasets standing in for CIFAR-10 / Tiny-ImageNet / ImageNet /
GLUE (offline substitution; see DESIGN.md).

Each task is constructed so *content-based token mixing* matters: labels
depend on relations between tokens at arbitrary positions, which SoftMax
attention resolves best, scaling (linear) attention approximately, and
pooling/static-linear mixing only weakly — reproducing the accuracy ordering
of the paper's Tables III and IV.

Vision — "pair-pattern" images: two marked patches carry pattern ids; the
label is ``(id_a + id_b) mod num_classes``.

NLP — four GLUE-like token tasks (MNLI/QNLI/SST-2/MRPC analogues) over a
small vocabulary.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class SplitData:
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray


def _split(x: np.ndarray, y: np.ndarray, test_frac: float) -> SplitData:
    n_test = max(1, int(len(x) * test_frac))
    return SplitData(
        train_x=x[:-n_test], train_y=y[:-n_test],
        test_x=x[-n_test:], test_y=y[-n_test:],
    )


# -- vision -------------------------------------------------------------------

def make_patch_retrieval_images(
    num: int,
    image_size: int = 16,
    patch_size: int = 4,
    num_classes: int = 8,
    num_distractors: int = 11,
    noise: float = 0.6,
    marker: float = 2.0,
    amplitude: float = 1.6,
    seed: int = 0,
    test_frac: float = 0.25,
) -> SplitData:
    """Marked-patch retrieval with distractors.

    Exactly one patch carries a marker column; its two-stripe pattern encodes
    the label.  ``num_distractors`` unmarked patches carry random patterns,
    so pooled/static mixing drowns in distractor signal while content-based
    attention retrieves the marked token — this is what separates the mixers
    the way the paper's Table III does.
    """
    rng = np.random.default_rng(seed)
    grid = image_size // patch_size
    n_tokens = grid * grid
    if num_distractors + 1 > n_tokens:
        raise ValueError("too many distractors for the token grid")
    xs = rng.normal(0.0, noise, size=(num, image_size, image_size))
    ys = np.zeros(num, dtype=np.int64)
    for idx in range(num):
        positions = rng.choice(n_tokens, size=num_distractors + 1,
                               replace=False)
        ys[idx] = int(rng.integers(num_classes))
        for pi, pos in enumerate(positions):
            pid = ys[idx] if pi == 0 else int(rng.integers(num_classes))
            r, c = divmod(int(pos), grid)
            r0, c0 = r * patch_size, c * patch_size
            xs[idx, r0 + pid % patch_size, c0:c0 + patch_size] += amplitude
            xs[idx, r0 + (pid // patch_size) % patch_size,
               c0:c0 + patch_size] += amplitude * 0.5
            if pi == 0:
                xs[idx, r0:r0 + patch_size, c0] += marker
    return _split(xs, ys, test_frac)


VISION_PRESETS = {
    # Difficulty scales with the paper's datasets: CIFAR-10 (easiest) ->
    # Tiny-ImageNet -> ImageNet (hardest, most tokens).
    "cifar10": dict(image_size=16, patch_size=4, num_classes=8,
                    num_distractors=9, noise=0.5),
    "tiny-imagenet": dict(image_size=16, patch_size=4, num_classes=8,
                          num_distractors=11, noise=0.6),
    "imagenet": dict(image_size=24, patch_size=4, num_classes=8,
                     num_distractors=18, noise=0.7),
}


def make_vision_dataset(preset: str, num: int, seed: int = 0) -> SplitData:
    if preset not in VISION_PRESETS:
        raise ValueError(f"unknown vision preset {preset!r}")
    return make_patch_retrieval_images(num, seed=seed,
                                       **VISION_PRESETS[preset])


# -- NLP ----------------------------------------------------------------------

NLP_TASKS = ("mnli", "qnli", "sst2", "mrpc")


def make_nlp_task(
    task: str,
    num: int,
    seq_len: int = 16,
    vocab: int = 24,
    seed: int = 0,
    test_frac: float = 0.25,
) -> Tuple[SplitData, int]:
    """Token-sequence analogues of the paper's GLUE tasks.

    Returns ``(split, num_classes)``.  Content tokens occupy ids
    ``[4, vocab)``; ids 0-3 are reserved (pad/sep/probe/marker).
    """
    # zlib.crc32 rather than hash(): the latter is salted per process and
    # would make datasets irreproducible across runs.
    rng = np.random.default_rng(seed + zlib.crc32(task.encode()) % 1000)
    half = seq_len // 2
    xs = rng.integers(4, vocab, size=(num, seq_len))
    ys = np.zeros(num, dtype=np.int64)

    if task == "mnli":
        # 3-way relation between the two segments' dominant tokens:
        # same token -> 0 (entail-ish), adjacent ids -> 1 (neutral-ish),
        # otherwise -> 2 (contradict-ish).
        num_classes = 3
        for i in range(num):
            ta = int(rng.integers(4, vocab))
            tb_choice = int(rng.integers(3))
            tb = ta if tb_choice == 0 else (
                ta + 1 if tb_choice == 1 else ta + 2
            )
            tb = 4 + (tb - 4) % (vocab - 4)
            xs[i, :half][rng.choice(half, size=half // 2, replace=False)] = ta
            xs[i, half:][rng.choice(half, size=half // 2, replace=False)] = tb
            xs[i, half - 1] = 1  # separator
            ys[i] = tb_choice
    elif task == "qnli":
        # Does segment B contain segment A's probe token?
        num_classes = 2
        for i in range(num):
            probe = int(rng.integers(4, vocab))
            xs[i, 0] = 2           # probe marker
            xs[i, 1] = probe
            contains = int(rng.integers(2))
            if contains:
                xs[i, half + int(rng.integers(seq_len - half))] = probe
            else:
                seg = xs[i, half:]
                seg[seg == probe] = (probe - 4 + 1) % (vocab - 4) + 4
            ys[i] = contains
    elif task == "sst2":
        # Majority sentiment: even content ids positive, odd negative.
        num_classes = 2
        for i in range(num):
            pos = int((xs[i] % 2 == 0).sum())
            neg = seq_len - pos
            if pos == neg:  # break ties deterministically
                xs[i, 0] = 4
                pos += 1 if xs[i, 0] % 2 == 0 else 0
            ys[i] = int(pos > neg)
    elif task == "mrpc":
        # Is the second half a permutation of the first half?
        num_classes = 2
        for i in range(num):
            match = int(rng.integers(2))
            if match:
                xs[i, half:] = rng.permutation(xs[i, :half])
            else:
                j = int(rng.integers(half))
                xs[i, half:] = rng.permutation(xs[i, :half])
                xs[i, half + j] = int(rng.integers(4, vocab))
            ys[i] = match
    else:
        raise ValueError(f"unknown NLP task {task!r}")

    return _split(xs, ys, test_frac), num_classes
