"""Minimal reverse-mode autograd over numpy arrays.

Just enough machinery to train the paper's small Transformer variants on the
synthetic datasets: tensors wrap ``numpy`` arrays, ops record a backward
closure, and :meth:`Tensor.backward` runs the tape in reverse topological
order.  No broadcasting surprises: gradients are unbroadcast back to the
input shapes explicitly.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum out broadcast dimensions so ``grad`` matches ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # -- graph plumbing ---------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    def _make(self, data, parents, backward) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad needs a scalar")
            grad = np.ones_like(self.data)
        # Topological order via DFS.
        order: List[Tensor] = []
        seen = set()

        def visit(t: "Tensor") -> None:
            if id(t) in seen or not t.requires_grad:
                return
            seen.add(id(t))
            for p in t._parents:
                visit(p)
            order.append(t)

        visit(self)
        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- operations ------------------------------------------------------------
    def __add__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(self.data + other.data, (self, other), backward)

    def __sub__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-g, other.shape))

        return self._make(self.data - other.data, (self, other), backward)

    def __mul__(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(self.data * other.data, (self, other), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = _ensure(other)

        def backward(g):
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(g @ np.swapaxes(other.data, -1, -2), self.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(np.swapaxes(self.data, -1, -2) @ g, other.shape)
                )

        return self._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(np.swapaxes(g, axis1, axis2))

        return self._make(
            np.swapaxes(self.data, axis1, axis2), (self,), backward
        )

    def reshape(self, *shape) -> "Tensor":
        old = self.data.shape

        def backward(g):
            if self.requires_grad:
                self._accumulate(g.reshape(old))

        return self._make(self.data.reshape(*shape), (self,), backward)

    def mean(self, axis: int, keepdims: bool = True) -> "Tensor":
        n = self.data.shape[axis]

        def backward(g):
            if self.requires_grad:
                gg = g if keepdims else np.expand_dims(g, axis)
                self._accumulate(
                    np.broadcast_to(gg / n, self.data.shape).copy()
                )

        return self._make(
            self.data.mean(axis=axis, keepdims=keepdims), (self,), backward
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(self.data * mask, (self,), backward)

    def gelu(self) -> "Tensor":
        x = self.data
        c = math.sqrt(2.0 / math.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        out = 0.5 * x * (1.0 + t)

        def backward(g):
            if self.requires_grad:
                dt = (1 - t ** 2) * c * (1 + 3 * 0.044715 * x ** 2)
                self._accumulate(g * (0.5 * (1 + t) + 0.5 * x * dt))

        return self._make(out, (self,), backward)

    def gelu_poly(self) -> "Tensor":
        """The paper's ZKP-friendly GELU: x^2/8 + x/4 + 1/2."""
        x = self.data

        def backward(g):
            if self.requires_grad:
                self._accumulate(g * (x / 4.0 + 0.25))

        return self._make(x * x / 8.0 + x / 4.0 + 0.5, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)

        def backward(g):
            if self.requires_grad:
                dot = (g * out).sum(axis=axis, keepdims=True)
                self._accumulate(out * (g - dot))

        return self._make(out, (self,), backward)

    def layernorm(self, eps: float = 1e-5) -> "Tensor":
        mu = self.data.mean(axis=-1, keepdims=True)
        var = self.data.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + eps)
        xhat = (self.data - mu) * inv
        d = self.data.shape[-1]

        def backward(g):
            if self.requires_grad:
                gm = g.mean(axis=-1, keepdims=True)
                gx = (g * xhat).mean(axis=-1, keepdims=True)
                self._accumulate(inv * (g - gm - xhat * gx))

        return self._make(xhat, (self,), backward)

    def scale(self, factor: float) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(g * factor)

        return self._make(self.data * factor, (self,), backward)

    def sum(self) -> "Tensor":
        def backward(g):
            if self.requires_grad:
                self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return self._make(self.data.sum(), (self,), backward)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad})"


def _ensure(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over a batch; labels are int class indices."""
    probs_t = logits.softmax(axis=-1)
    probs = probs_t.data
    n = probs.shape[0]
    eps = 1e-12
    loss_val = -np.log(probs[np.arange(n), labels] + eps).mean()

    out = Tensor(loss_val)
    if logits.requires_grad:
        out.requires_grad = True
        out._parents = (logits,)

        def backward(g):
            grad = probs.copy()
            grad[np.arange(n), labels] -= 1.0
            logits._accumulate(g * grad / n)

        out._backward = backward
    return out
