"""NITI-style power-of-two quantisation (paper Sec. IV, ref [42]).

Weights/activations are mapped to integers at scale ``2^frac_bits``; all
verifiable inference runs on these integers, and every rescale matches the
floor-division semantics of :func:`repro.gadgets.fixedpoint.rescale_gadget`
so the circuit and the numpy "reference prover" agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

DEFAULT_FRAC_BITS = 8


@dataclass
class QuantizedTensor:
    """Integer tensor + scale exponent: real value = values / 2^frac_bits."""

    values: np.ndarray  # int64
    frac_bits: int

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    def dequantize(self) -> np.ndarray:
        return self.values.astype(np.float64) / self.scale

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.int64)


def quantize(
    x: np.ndarray, frac_bits: int = DEFAULT_FRAC_BITS, clip_bits: int = 16
) -> QuantizedTensor:
    """Round to fixed point, clipping magnitude to ``2^clip_bits - 1``."""
    scale = 1 << frac_bits
    q = np.rint(np.asarray(x, dtype=np.float64) * scale).astype(np.int64)
    limit = (1 << clip_bits) - 1
    return QuantizedTensor(np.clip(q, -limit, limit), frac_bits)


def dequantize(q: QuantizedTensor) -> np.ndarray:
    return q.dequantize()


def requantize(values: np.ndarray, frac_bits: int) -> np.ndarray:
    """Floor-divide a double-scale product back to single scale.

    Matches the circuit's biased floor division for negative inputs
    (numpy's ``//`` also floors toward -inf, so they agree).
    """
    return np.asarray(values, dtype=np.int64) >> frac_bits


def int_matmul_rescale(
    x: np.ndarray, w: np.ndarray, frac_bits: int
) -> np.ndarray:
    """Quantised matmul: integer product then rescale to single scale."""
    prod = x.astype(np.int64) @ w.astype(np.int64)
    return requantize(prod, frac_bits)


def quantization_error(x: np.ndarray, frac_bits: int) -> float:
    """Max absolute error introduced by quantising ``x``."""
    q = quantize(x, frac_bits)
    return float(np.max(np.abs(q.dequantize() - x)))
