"""R1CS -> QAP lowering over a radix-2 evaluation domain.

Constraint ``q`` maps to the domain point ``omega^q``.  The Groth16 setup
only ever needs the wire polynomials *evaluated at the toxic point tau*, so
rather than materialising full Lagrange interpolations we compute all
``L_q(tau)`` in O(N) and accumulate sparse matrix entries into per-wire
evaluations — this keeps setup quasi-linear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..field.ntt import next_power_of_two
from ..field.prime_field import BN254_FR_MODULUS, fr_root_of_unity
from ..poly.dense import lagrange_coeffs_at
from ..r1cs.system import R1CSInstance

R = BN254_FR_MODULUS


@dataclass
class QAPEvaluation:
    """Wire-polynomial evaluations u_i(tau), v_i(tau), w_i(tau) plus the
    vanishing value t(tau) — everything Groth16 setup needs."""

    domain_size: int
    u: List[int]
    v: List[int]
    w: List[int]
    t_at_tau: int


def domain_size_for(instance: R1CSInstance) -> int:
    # At least 2 so the vanishing polynomial has degree >= 2 and h exists.
    return max(2, next_power_of_two(instance.num_constraints))


def evaluate_qap_at(instance: R1CSInstance, tau: int) -> QAPEvaluation:
    """Evaluate all QAP wire polynomials at ``tau``."""
    n = domain_size_for(instance)
    omega = fr_root_of_unity(n)
    lag = lagrange_coeffs_at(n, omega, tau)

    u = [0] * instance.num_wires
    v = [0] * instance.num_wires
    w = [0] * instance.num_wires
    for q, wire, coeff in instance.entries("A"):
        u[wire] = (u[wire] + coeff * lag[q]) % R
    for q, wire, coeff in instance.entries("B"):
        v[wire] = (v[wire] + coeff * lag[q]) % R
    for q, wire, coeff in instance.entries("C"):
        w[wire] = (w[wire] + coeff * lag[q]) % R

    t_at_tau = (pow(tau, n, R) - 1) % R
    return QAPEvaluation(domain_size=n, u=u, v=v, w=w, t_at_tau=t_at_tau)
