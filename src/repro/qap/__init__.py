"""QAP lowering used by the Groth16 backend."""

from .qap import QAPEvaluation, domain_size_for, evaluate_qap_at

__all__ = ["QAPEvaluation", "domain_size_for", "evaluate_qap_at"]
