"""Proof and key serialisation.

Wire formats for everything a client/server exchange needs: big-endian
32-byte field elements, 64-byte uncompressed G1 points, 128-byte G2 points,
with explicit length prefixes for variable-size sections.  Round-trip
property tests live in ``tests/test_serialize.py``.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .core.errors import CorruptEnvelope
from .curve.bn254 import AffinePoint, is_on_curve
from .field.extension import Fq2
from .field.prime_field import BN254_FQ_MODULUS, BN254_FR_MODULUS
from .groth16.keys import Groth16Keypair, Proof, ProvingKey, VerifyingKey
from .spartan.commitment import HyraxCommitment, HyraxOpening
from .spartan.snark import SpartanProof
from .spartan.sumcheck import SumcheckProof

Q = BN254_FQ_MODULUS
R = BN254_FR_MODULUS


class SerializationError(ValueError):
    """Malformed or out-of-group wire data.

    ``offset`` (when known) is the reader position at which the data
    stopped making sense — primarily the point where a declared length
    prefix exceeded the bytes actually present.
    """

    def __init__(self, message: str, offset: Optional[int] = None):
        if offset is not None:
            message = f"{message} (at byte {offset})"
        super().__init__(message)
        self.offset = offset


# -- primitives ---------------------------------------------------------------

def scalar_to_bytes(v: int) -> bytes:
    return (v % R).to_bytes(32, "big")


def scalar_from_bytes(data: bytes) -> int:
    if len(data) != 32:
        raise SerializationError("scalar must be 32 bytes")
    v = int.from_bytes(data, "big")
    if v >= R:
        raise SerializationError("scalar not reduced")
    return v


def g1_to_bytes(point: AffinePoint) -> bytes:
    if point is None:
        return b"\x00" * 64
    x, y = point
    return x.to_bytes(32, "big") + y.to_bytes(32, "big")


def g1_from_bytes(data: bytes) -> AffinePoint:
    if len(data) != 64:
        raise SerializationError("G1 point must be 64 bytes")
    if data == b"\x00" * 64:
        return None
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    if x >= Q or y >= Q:
        raise SerializationError("G1 coordinate not reduced")
    point = (x, y)
    if not is_on_curve(point, 3):
        raise SerializationError("G1 point not on curve")
    return point


def g2_to_bytes(point) -> bytes:
    if point is None:
        return b"\x00" * 128
    x, y = point
    out = b""
    for coord in (x, y):
        for c in coord.coeffs:
            out += c.to_bytes(32, "big")
    return out


def g2_from_bytes(data: bytes):
    if len(data) != 128:
        raise SerializationError("G2 point must be 128 bytes")
    if data == b"\x00" * 128:
        return None
    coords = [int.from_bytes(data[i:i + 32], "big") for i in range(0, 128, 32)]
    if any(c >= Q for c in coords):
        raise SerializationError("G2 coordinate not reduced")
    x = Fq2(coords[:2])
    y = Fq2(coords[2:])
    from .curve.bn254 import B2

    point = (x, y)
    if not is_on_curve(point, B2):
        raise SerializationError("G2 point not on twist")
    return point


def _pack_scalars(values) -> bytes:
    return struct.pack(">I", len(values)) + b"".join(
        scalar_to_bytes(v) for v in values
    )


def _pack_bytes(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _utf8(data: bytes) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError:
        raise SerializationError("malformed UTF-8 name field") from None


def _pack_g1s(points) -> bytes:
    return struct.pack(">I", len(points)) + b"".join(
        g1_to_bytes(p) for p in points
    )


def _pack_g2s(points) -> bytes:
    return struct.pack(">I", len(points)) + b"".join(
        g2_to_bytes(p) for p in points
    )


class _Reader:
    """Bounded cursor over untrusted bytes.

    Every declared ``u32`` length prefix is capped by the bytes actually
    remaining *before* any element is decoded or any list built, so a
    corrupt or adversarial prefix (e.g. ``0xFFFFFFFF``) fails immediately
    with a typed, offset-carrying :class:`SerializationError` — never an
    allocation or decode loop proportional to the declared length.  This
    mattered little while envelopes came from a trusted subprocess; it is
    load-bearing now that frames come off sockets (``repro.core.remote``).
    """

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.data):
            raise SerializationError(
                f"truncated input: need {n} bytes, "
                f"{len(self.data) - self.pos} remain",
                offset=self.pos,
            )
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def count(self, item_size: int) -> int:
        """A ``u32`` element count, validated against the remaining
        buffer: ``count * item_size`` bytes must actually be present."""
        at = self.pos
        n = self.u32()
        if n * item_size > len(self.data) - self.pos:
            raise SerializationError(
                f"declared length {n} (x{item_size} bytes) exceeds the "
                f"{len(self.data) - self.pos} bytes remaining",
                offset=at,
            )
        return n

    def scalars(self) -> List[int]:
        return [scalar_from_bytes(self.take(32)) for _ in range(self.count(32))]

    def blob(self) -> bytes:
        return self.take(self.count(1))

    def g1s(self) -> List[AffinePoint]:
        return [g1_from_bytes(self.take(64)) for _ in range(self.count(64))]

    def g2s(self) -> list:
        return [g2_from_bytes(self.take(128)) for _ in range(self.count(128))]

    def done(self) -> None:
        if self.pos != len(self.data):
            raise SerializationError("trailing bytes", offset=self.pos)


# -- Groth16 proof -------------------------------------------------------------

def groth16_proof_to_bytes(proof: Proof) -> bytes:
    return g1_to_bytes(proof.a) + g2_to_bytes(proof.b) + g1_to_bytes(proof.c)


def groth16_proof_from_bytes(data: bytes) -> Proof:
    if len(data) != 256:
        raise SerializationError("groth16 proof must be 256 bytes")
    return Proof(
        a=g1_from_bytes(data[:64]),
        b=g2_from_bytes(data[64:192]),
        c=g1_from_bytes(data[192:]),
    )


# -- Spartan proof ---------------------------------------------------------------

def _sumcheck_to_bytes(sc: SumcheckProof) -> bytes:
    out = struct.pack(">I", len(sc.round_polys))
    for poly in sc.round_polys:
        out += _pack_scalars(poly)
    return out


def _sumcheck_from_reader(r: _Reader) -> SumcheckProof:
    rounds = r.count(4)  # each round carries at least its own length prefix
    return SumcheckProof(round_polys=[r.scalars() for _ in range(rounds)])


def spartan_proof_to_bytes(proof: SpartanProof) -> bytes:
    c = proof.witness_commitment
    out = struct.pack(
        ">III", len(c.row_commits), c.num_vars, c.row_vars
    )
    out += b"".join(g1_to_bytes(p) for p in c.row_commits)
    out += _sumcheck_to_bytes(proof.sumcheck1)
    out += scalar_to_bytes(proof.va)
    out += scalar_to_bytes(proof.vb)
    out += scalar_to_bytes(proof.vc)
    out += _sumcheck_to_bytes(proof.sumcheck2)
    out += _pack_scalars(proof.opening.t)
    out += scalar_to_bytes(proof.opening.blinder)
    out += scalar_to_bytes(proof.opening.value)
    return out


# Hyrax shape header sanity bound: 2^40 table entries is far beyond any
# circuit this stack can prove, and the cap keeps hostile headers from
# forcing huge generator-table allocations in the verifier.
_MAX_HYRAX_VARS = 40


def spartan_proof_from_bytes(data: bytes) -> SpartanProof:
    r = _Reader(data)
    n_rows, num_vars, row_vars = struct.unpack(">III", r.take(12))
    if num_vars > _MAX_HYRAX_VARS or row_vars > num_vars:
        raise SerializationError("implausible hyrax shape header")
    if n_rows != 1 << row_vars:
        # hyrax_verify MSMs row_commits against a 2^row_vars eq-table; a
        # mismatched count must be rejected here, not crash the verifier.
        raise SerializationError("row commitment count mismatch")
    if n_rows * 64 > len(r.data) - r.pos:
        raise SerializationError(
            "row commitment count exceeds payload", offset=r.pos
        )
    commits = [g1_from_bytes(r.take(64)) for _ in range(n_rows)]
    commitment = HyraxCommitment(
        row_commits=commits,
        num_vars=num_vars,
        row_vars=row_vars,
        col_vars=num_vars - row_vars,
    )
    sc1 = _sumcheck_from_reader(r)
    va = scalar_from_bytes(r.take(32))
    vb = scalar_from_bytes(r.take(32))
    vc = scalar_from_bytes(r.take(32))
    sc2 = _sumcheck_from_reader(r)
    t = r.scalars()
    if len(t) != 1 << commitment.col_vars:
        raise SerializationError("opening row length mismatch")
    blinder = scalar_from_bytes(r.take(32))
    value = scalar_from_bytes(r.take(32))
    r.done()
    return SpartanProof(
        witness_commitment=commitment,
        sumcheck1=sc1,
        va=va,
        vb=vb,
        vc=vc,
        sumcheck2=sc2,
        opening=HyraxOpening(t=t, blinder=blinder, value=value),
    )


# -- Groth16 keys ---------------------------------------------------------------
#
# Absent query entries (wire polynomials that evaluate to zero on a side)
# are carried as the all-zero point encoding, which the G1/G2 primitives
# already map to/from ``None``.

def groth16_vk_to_bytes(vk: VerifyingKey) -> bytes:
    return (
        g1_to_bytes(vk.alpha_g1)
        + g2_to_bytes(vk.beta_g2)
        + g2_to_bytes(vk.gamma_g2)
        + g2_to_bytes(vk.delta_g2)
        + _pack_g1s(vk.ic)
    )


def groth16_vk_from_bytes(data: bytes) -> VerifyingKey:
    r = _Reader(data)
    vk = _groth16_vk_from_reader(r)
    r.done()
    return vk


def _groth16_vk_from_reader(r: "_Reader") -> VerifyingKey:
    alpha_g1 = g1_from_bytes(r.take(64))
    beta_g2 = g2_from_bytes(r.take(128))
    gamma_g2 = g2_from_bytes(r.take(128))
    delta_g2 = g2_from_bytes(r.take(128))
    ic = r.g1s()
    if alpha_g1 is None or beta_g2 is None or gamma_g2 is None or delta_g2 is None:
        raise SerializationError("verifying key element at infinity")
    if not ic:
        # IC entries themselves may be infinity (zero wire polynomials),
        # but the statement accumulator needs at least IC_0.
        raise SerializationError("empty IC query")
    return VerifyingKey(
        alpha_g1=alpha_g1,
        beta_g2=beta_g2,
        gamma_g2=gamma_g2,
        delta_g2=delta_g2,
        ic=ic,
    )


def groth16_pk_to_bytes(pk: ProvingKey) -> bytes:
    return (
        g1_to_bytes(pk.alpha_g1)
        + g1_to_bytes(pk.beta_g1)
        + g2_to_bytes(pk.beta_g2)
        + g1_to_bytes(pk.delta_g1)
        + g2_to_bytes(pk.delta_g2)
        + struct.pack(">II", pk.num_public, pk.domain_size)
        + _pack_g1s(pk.a_query)
        + _pack_g1s(pk.b_g1_query)
        + _pack_g2s(pk.b_g2_query)
        + _pack_g1s(pk.k_query)
        + _pack_g1s(pk.h_query)
    )


def groth16_pk_from_bytes(data: bytes) -> ProvingKey:
    r = _Reader(data)
    pk = _groth16_pk_from_reader(r)
    r.done()
    return pk


def _groth16_pk_from_reader(r: "_Reader") -> ProvingKey:
    alpha_g1 = g1_from_bytes(r.take(64))
    beta_g1 = g1_from_bytes(r.take(64))
    beta_g2 = g2_from_bytes(r.take(128))
    delta_g1 = g1_from_bytes(r.take(64))
    delta_g2 = g2_from_bytes(r.take(128))
    if any(p is None for p in (alpha_g1, beta_g1, beta_g2, delta_g1, delta_g2)):
        # Query entries may be infinity (absent wires); CRS elements not.
        raise SerializationError("proving key element at infinity")
    num_public, domain_size = struct.unpack(">II", r.take(8))
    return ProvingKey(
        alpha_g1=alpha_g1,
        beta_g1=beta_g1,
        beta_g2=beta_g2,
        delta_g1=delta_g1,
        delta_g2=delta_g2,
        a_query=r.g1s(),
        b_g1_query=r.g1s(),
        b_g2_query=r.g2s(),
        k_query=r.g1s(),
        h_query=r.g1s(),
        num_public=num_public,
        domain_size=domain_size,
    )


def groth16_keypair_to_bytes(keypair: Groth16Keypair) -> bytes:
    return _pack_bytes(groth16_pk_to_bytes(keypair.pk)) + groth16_vk_to_bytes(
        keypair.vk
    )


def groth16_keypair_from_bytes(data: bytes) -> Groth16Keypair:
    r = _Reader(data)
    pk_blob = r.blob()
    vk = _groth16_vk_from_reader(r)
    r.done()
    return Groth16Keypair(pk=groth16_pk_from_bytes(pk_blob), vk=vk)


# -- matmul proof bundles --------------------------------------------------------
#
# The bundle codec dispatches the inner proof encoding through the backend
# registry (``repro.core.backends``), imported lazily to keep this module
# free of circular imports.  Timings are local measurements and are not
# part of the wire format.

def matmul_bundle_to_bytes(bundle) -> bytes:
    from .core.backends import get_backend

    backend = get_backend(bundle.backend)
    a, n, b = bundle.shape
    out = _pack_bytes(bundle.backend.encode())
    out += _pack_bytes(bundle.strategy.encode())
    out += struct.pack(">III", a, n, b)
    out += b"".join(
        scalar_to_bytes(v) for row in bundle.y for v in row
    )
    out += scalar_to_bytes(bundle.z)
    out += _pack_bytes(bundle.commitment)
    out += _pack_bytes(backend.proof_to_bytes(bundle.proof))
    return out


def matmul_bundle_from_bytes(data: bytes):
    from .core.backends import get_backend
    from .core.bundle import MatmulProofBundle

    r = _Reader(data)
    backend_name = _utf8(r.blob())
    try:
        backend = get_backend(backend_name)
    except ValueError as exc:
        raise SerializationError(str(exc)) from None
    strategy = _utf8(r.blob())
    a, n, b = struct.unpack(">III", r.take(12))
    if min(a, n, b) < 1:
        raise SerializationError("matrix dimensions must be positive")
    if a * b * 32 > len(r.data) - r.pos:
        # Bound the Y allocation by the bytes actually present, so a tiny
        # blob with a huge shape header cannot force gigabyte loops.
        raise SerializationError("shape header exceeds payload")
    y = [
        [scalar_from_bytes(r.take(32)) for _ in range(b)] for _ in range(a)
    ]
    z = scalar_from_bytes(r.take(32))
    commitment = r.blob()
    proof = backend.proof_from_bytes(r.blob())
    r.done()
    return MatmulProofBundle(
        backend=backend_name,
        strategy=strategy,
        shape=(a, n, b),
        y=y,
        proof=proof,
        z=z,
        commitment=commitment,
    )


# -- prove-job / job-result wire envelopes ---------------------------------------
#
# The process-pool executor (``repro.core.pool``) ships whole circuit
# groups to worker processes as bytes: jobs go out as these envelopes,
# results come back as wire-format bundles plus timing.  Matrix entries
# are encoded canonically mod R — the circuits operate mod R, so the
# encoding is semantics-preserving for signed inputs.
#
# Envelope *decode* failures raise the typed
# :class:`~repro.core.errors.CorruptEnvelope` (a ``ValueError`` subclass,
# so the fuzzing contract is unchanged) carrying the reader offset — the
# resilience layer classifies and retries on the type, and the offset
# turns "truncated input" into a debuggable report.


def _corrupt(what: str, reader: "_Reader", exc: Exception) -> "CorruptEnvelope":
    return CorruptEnvelope(
        f"corrupt {what} envelope: {exc}", offset=reader.pos
    )

def prove_job_to_bytes(
    job_id: int,
    x_mat,
    w_mat,
    strategy: str,
    backend: str,
) -> bytes:
    if not x_mat or not x_mat[0] or not w_mat or not w_mat[0]:
        raise SerializationError("empty job matrix")
    a, n = len(x_mat), len(x_mat[0])
    b = len(w_mat[0])
    if len(w_mat) != n or any(len(row) != n for row in x_mat) or any(
        len(row) != b for row in w_mat
    ):
        raise SerializationError("ragged or mismatched job matrices")
    return (
        struct.pack(">I", job_id)
        + _pack_bytes(strategy.encode())
        + _pack_bytes(backend.encode())
        + struct.pack(">III", a, n, b)
        + b"".join(scalar_to_bytes(v) for row in x_mat for v in row)
        + b"".join(scalar_to_bytes(v) for row in w_mat for v in row)
    )


def prove_job_from_bytes(data: bytes):
    """Returns ``(job_id, x, w, strategy, backend)`` with field-canonical
    matrix entries.  Raises :class:`~repro.core.errors.CorruptEnvelope`
    on malformed input."""
    r = _Reader(data)
    try:
        job = _prove_job_from_reader(r)
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("prove-job", r, exc) from exc
    return job


def _prove_job_from_reader(r: _Reader):
    job_id = r.u32()
    strategy = _utf8(r.blob())
    backend = _utf8(r.blob())
    a, n, b = struct.unpack(">III", r.take(12))
    if min(a, n, b) < 1:
        raise SerializationError("job dimensions must be positive")
    if (a * n + n * b) * 32 > len(r.data) - r.pos:
        raise SerializationError("job shape header exceeds payload")
    x = [[scalar_from_bytes(r.take(32)) for _ in range(n)] for _ in range(a)]
    w = [[scalar_from_bytes(r.take(32)) for _ in range(b)] for _ in range(n)]
    return job_id, x, w, strategy, backend


def prove_jobs_to_bytes(jobs) -> bytes:
    """Batch envelope: ``jobs`` is a sequence of
    ``(job_id, x, w, strategy, backend)`` tuples (one circuit group)."""
    out = struct.pack(">I", len(jobs))
    for job_id, x, w, strategy, backend in jobs:
        out += _pack_bytes(prove_job_to_bytes(job_id, x, w, strategy, backend))
    return out


def prove_jobs_from_bytes(data: bytes):
    r = _Reader(data)
    try:
        jobs = [prove_job_from_bytes(r.blob()) for _ in range(r.count(4))]
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("prove-jobs batch", r, exc) from exc
    return jobs


def job_result_to_bytes(job_id: int, bundle_bytes: bytes, prove_seconds: float) -> bytes:
    return (
        struct.pack(">Id", job_id, prove_seconds) + _pack_bytes(bundle_bytes)
    )


def job_result_from_bytes(data: bytes):
    """Returns ``(job_id, bundle_bytes, prove_seconds)``.  Raises
    :class:`~repro.core.errors.CorruptEnvelope` on malformed input."""
    r = _Reader(data)
    try:
        job_id, prove_seconds = struct.unpack(">Id", r.take(12))
        bundle_bytes = r.blob()
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("job-result", r, exc) from exc
    return job_id, bundle_bytes, prove_seconds


def job_results_to_bytes(results) -> bytes:
    """Batch envelope over ``(job_id, bundle_bytes, prove_seconds)``."""
    out = struct.pack(">I", len(results))
    for job_id, bundle_bytes, prove_seconds in results:
        out += _pack_bytes(job_result_to_bytes(job_id, bundle_bytes, prove_seconds))
    return out


def job_results_from_bytes(data: bytes):
    r = _Reader(data)
    try:
        results = [job_result_from_bytes(r.blob()) for _ in range(r.count(4))]
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("job-results batch", r, exc) from exc
    return results


# -- detached verifier artifacts -------------------------------------------------

def verifier_artifact_to_bytes(
    backend: str, strategy: str, shape: Tuple[int, int, int], vk_bytes: bytes = b""
) -> bytes:
    """Everything a detached verifier needs: the public circuit identity
    (backend, strategy, shape) plus the backend's verification material."""
    a, n, b = shape
    return (
        _pack_bytes(backend.encode())
        + _pack_bytes(strategy.encode())
        + struct.pack(">III", a, n, b)
        + _pack_bytes(vk_bytes)
    )


def verifier_artifact_from_bytes(
    data: bytes,
) -> Tuple[str, str, Tuple[int, int, int], bytes]:
    r = _Reader(data)
    backend = _utf8(r.blob())
    strategy = _utf8(r.blob())
    a, n, b = struct.unpack(">III", r.take(12))
    vk_bytes = r.blob()
    r.done()
    return backend, strategy, (a, n, b), vk_bytes


# -- remote-fleet payloads -------------------------------------------------------

def circuit_key_to_bytes(shape: Tuple[int, int, int], strategy: str, backend: str) -> bytes:
    """Identity of a keypair in the KeyStore — the payload of a remote
    worker's KEY_REQUEST frame."""
    a, n, b = shape
    return (
        struct.pack(">III", a, n, b)
        + _pack_bytes(strategy.encode())
        + _pack_bytes(backend.encode())
    )


def circuit_key_from_bytes(data: bytes) -> Tuple[Tuple[int, int, int], str, str]:
    r = _Reader(data)
    try:
        a, n, b = struct.unpack(">III", r.take(12))
        strategy = _utf8(r.blob())
        backend = _utf8(r.blob())
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("circuit-key", r, exc) from exc
    return (a, n, b), strategy, backend


_NO_JOB = 0xFFFFFFFF


def remote_error_to_bytes(kind: str, message: str, job_id: Optional[int] = None) -> bytes:
    """A typed failure travelling back over the wire (ERROR frame payload):
    the error taxonomy ``kind`` tag, a human message, and the offending
    job id when the worker could pin one down."""
    return (
        _pack_bytes(kind.encode())
        + _pack_bytes(message.encode())
        + struct.pack(">I", _NO_JOB if job_id is None else job_id)
    )


def remote_error_from_bytes(data: bytes) -> Tuple[str, str, Optional[int]]:
    r = _Reader(data)
    try:
        kind = _utf8(r.blob())
        message = _utf8(r.blob())
        job_id = r.u32()
        r.done()
    except CorruptEnvelope:
        raise
    except (ValueError, struct.error) as exc:
        raise _corrupt("remote-error", r, exc) from exc
    return kind, message, None if job_id == _NO_JOB else job_id


# -- fleet handshake payloads (HELLO / CHALLENGE / AUTH / AUTH_OK) ----------------
#
# These carry no job material, so decode failures stay plain
# SerializationError (never CorruptEnvelope): a peer that cannot even
# complete the handshake is an auth problem, not a chunk problem.

AUTH_PROTOCOL_VERSION = 1
AUTH_NONCE_BYTES = 16
AUTH_MAC_BYTES = 32  # HMAC-SHA256 digest


def auth_hello_to_bytes(nonce: bytes, version: int = AUTH_PROTOCOL_VERSION) -> bytes:
    """HELLO payload: protocol version + the client's session nonce."""
    if len(nonce) != AUTH_NONCE_BYTES:
        raise SerializationError(
            f"handshake nonce must be {AUTH_NONCE_BYTES} bytes, got {len(nonce)}"
        )
    return struct.pack(">I", version) + nonce


def auth_hello_from_bytes(data: bytes) -> Tuple[int, bytes]:
    r = _Reader(data)
    version = struct.unpack(">I", r.take(4))[0]
    nonce = r.take(AUTH_NONCE_BYTES)
    r.done()
    if version != AUTH_PROTOCOL_VERSION:
        raise SerializationError(
            f"unsupported handshake protocol version {version}", offset=0
        )
    return version, nonce


def auth_challenge_to_bytes(nonce: bytes) -> bytes:
    """CHALLENGE payload: the worker's session nonce."""
    if len(nonce) != AUTH_NONCE_BYTES:
        raise SerializationError(
            f"handshake nonce must be {AUTH_NONCE_BYTES} bytes, got {len(nonce)}"
        )
    return nonce


def auth_challenge_from_bytes(data: bytes) -> bytes:
    r = _Reader(data)
    nonce = r.take(AUTH_NONCE_BYTES)
    r.done()
    return nonce


def auth_mac_to_bytes(mac: bytes) -> bytes:
    """AUTH / AUTH_OK payload: one HMAC-SHA256 digest, nothing else."""
    if len(mac) != AUTH_MAC_BYTES:
        raise SerializationError(
            f"handshake MAC must be {AUTH_MAC_BYTES} bytes, got {len(mac)}"
        )
    return mac


def auth_mac_from_bytes(data: bytes) -> bytes:
    r = _Reader(data)
    mac = r.take(AUTH_MAC_BYTES)
    r.done()
    return mac
