"""Proof and key serialisation.

Wire formats for everything a client/server exchange needs: big-endian
32-byte field elements, 64-byte uncompressed G1 points, 128-byte G2 points,
with explicit length prefixes for variable-size sections.  Round-trip
property tests live in ``tests/test_serialize.py``.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from .curve.bn254 import AffinePoint, is_on_curve
from .field.extension import Fq2
from .field.prime_field import BN254_FQ_MODULUS, BN254_FR_MODULUS
from .groth16.keys import Proof
from .spartan.commitment import HyraxCommitment, HyraxOpening
from .spartan.snark import SpartanProof
from .spartan.sumcheck import SumcheckProof

Q = BN254_FQ_MODULUS
R = BN254_FR_MODULUS


class SerializationError(ValueError):
    """Malformed or out-of-group wire data."""


# -- primitives ---------------------------------------------------------------

def scalar_to_bytes(v: int) -> bytes:
    return (v % R).to_bytes(32, "big")


def scalar_from_bytes(data: bytes) -> int:
    if len(data) != 32:
        raise SerializationError("scalar must be 32 bytes")
    v = int.from_bytes(data, "big")
    if v >= R:
        raise SerializationError("scalar not reduced")
    return v


def g1_to_bytes(point: AffinePoint) -> bytes:
    if point is None:
        return b"\x00" * 64
    x, y = point
    return x.to_bytes(32, "big") + y.to_bytes(32, "big")


def g1_from_bytes(data: bytes) -> AffinePoint:
    if len(data) != 64:
        raise SerializationError("G1 point must be 64 bytes")
    if data == b"\x00" * 64:
        return None
    x = int.from_bytes(data[:32], "big")
    y = int.from_bytes(data[32:], "big")
    if x >= Q or y >= Q:
        raise SerializationError("G1 coordinate not reduced")
    point = (x, y)
    if not is_on_curve(point, 3):
        raise SerializationError("G1 point not on curve")
    return point


def g2_to_bytes(point) -> bytes:
    if point is None:
        return b"\x00" * 128
    x, y = point
    out = b""
    for coord in (x, y):
        for c in coord.coeffs:
            out += c.to_bytes(32, "big")
    return out


def g2_from_bytes(data: bytes):
    if len(data) != 128:
        raise SerializationError("G2 point must be 128 bytes")
    if data == b"\x00" * 128:
        return None
    coords = [int.from_bytes(data[i:i + 32], "big") for i in range(0, 128, 32)]
    if any(c >= Q for c in coords):
        raise SerializationError("G2 coordinate not reduced")
    x = Fq2(coords[:2])
    y = Fq2(coords[2:])
    from .curve.bn254 import B2

    point = (x, y)
    if not is_on_curve(point, B2):
        raise SerializationError("G2 point not on twist")
    return point


def _pack_scalars(values) -> bytes:
    return struct.pack(">I", len(values)) + b"".join(
        scalar_to_bytes(v) for v in values
    )


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerializationError("truncated input")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def scalars(self) -> List[int]:
        return [scalar_from_bytes(self.take(32)) for _ in range(self.u32())]

    def done(self) -> None:
        if self.pos != len(self.data):
            raise SerializationError("trailing bytes")


# -- Groth16 proof -------------------------------------------------------------

def groth16_proof_to_bytes(proof: Proof) -> bytes:
    return g1_to_bytes(proof.a) + g2_to_bytes(proof.b) + g1_to_bytes(proof.c)


def groth16_proof_from_bytes(data: bytes) -> Proof:
    if len(data) != 256:
        raise SerializationError("groth16 proof must be 256 bytes")
    return Proof(
        a=g1_from_bytes(data[:64]),
        b=g2_from_bytes(data[64:192]),
        c=g1_from_bytes(data[192:]),
    )


# -- Spartan proof ---------------------------------------------------------------

def _sumcheck_to_bytes(sc: SumcheckProof) -> bytes:
    out = struct.pack(">I", len(sc.round_polys))
    for poly in sc.round_polys:
        out += _pack_scalars(poly)
    return out


def _sumcheck_from_reader(r: _Reader) -> SumcheckProof:
    rounds = r.u32()
    return SumcheckProof(round_polys=[r.scalars() for _ in range(rounds)])


def spartan_proof_to_bytes(proof: SpartanProof) -> bytes:
    c = proof.witness_commitment
    out = struct.pack(
        ">III", len(c.row_commits), c.num_vars, c.row_vars
    )
    out += b"".join(g1_to_bytes(p) for p in c.row_commits)
    out += _sumcheck_to_bytes(proof.sumcheck1)
    out += scalar_to_bytes(proof.va)
    out += scalar_to_bytes(proof.vb)
    out += scalar_to_bytes(proof.vc)
    out += _sumcheck_to_bytes(proof.sumcheck2)
    out += _pack_scalars(proof.opening.t)
    out += scalar_to_bytes(proof.opening.blinder)
    out += scalar_to_bytes(proof.opening.value)
    return out


def spartan_proof_from_bytes(data: bytes) -> SpartanProof:
    r = _Reader(data)
    n_rows, num_vars, row_vars = struct.unpack(">III", r.take(12))
    commits = [g1_from_bytes(r.take(64)) for _ in range(n_rows)]
    commitment = HyraxCommitment(
        row_commits=commits,
        num_vars=num_vars,
        row_vars=row_vars,
        col_vars=num_vars - row_vars,
    )
    sc1 = _sumcheck_from_reader(r)
    va = scalar_from_bytes(r.take(32))
    vb = scalar_from_bytes(r.take(32))
    vc = scalar_from_bytes(r.take(32))
    sc2 = _sumcheck_from_reader(r)
    t = r.scalars()
    blinder = scalar_from_bytes(r.take(32))
    value = scalar_from_bytes(r.take(32))
    r.done()
    return SpartanProof(
        witness_commitment=commitment,
        sumcheck1=sc1,
        va=va,
        vb=vb,
        vc=vc,
        sumcheck2=sc2,
        opening=HyraxOpening(t=t, blinder=blinder, value=value),
    )
