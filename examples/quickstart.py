"""Quickstart: prove a matrix multiplication with zkVC.

The server holds a private weight matrix W and computes Y = X @ W for a
client.  zkVC produces a succinct proof that Y is correct without revealing
W.  Run:

    python examples/quickstart.py
"""

import random

from repro.core import MatmulProver

random.seed(0)


def main() -> None:
    a, n, b = 4, 8, 4
    x = [[random.randrange(-10, 10) for _ in range(n)] for _ in range(a)]
    w = [[random.randrange(-10, 10) for _ in range(b)] for _ in range(n)]

    print(f"Proving Y = X @ W for X[{a},{n}], W[{n},{b}] "
          "(CRPC + PSQ circuit, Spartan backend — no trusted setup)")
    prover = MatmulProver(a, n, b, strategy="crpc_psq", backend="spartan")
    bundle = prover.prove(x, w)

    print(f"  constraints: {len(prover.circuit.cs.constraints)} "
          f"(vanilla would need {a * b * n + a * b})")
    print(f"  prove time:  {bundle.timings['prove'] * 1000:.1f} ms")
    print(f"  proof size:  {bundle.proof_size_bytes()} bytes")

    assert prover.verify(bundle)
    print(f"  verify time: {bundle.timings['verify'] * 1000:.1f} ms -> OK")

    # A tampered result is rejected.
    bundle.y[0][0] = bundle.y[0][0] + 1
    assert not prover.verify(bundle)
    print("  tampered output rejected -> OK")

    # The same circuit on the pairing-based Groth16 backend (per-circuit
    # trusted setup, constant 256-byte proofs).
    print("\nSame statement on the Groth16 backend:")
    g16 = MatmulProver(a, n, b, strategy="crpc_psq", backend="groth16")
    bundle = g16.prove(x, w)
    assert g16.verify(bundle)
    print(f"  setup: {bundle.timings.get('setup', 0):.2f} s, "
          f"prove: {bundle.timings['prove']:.2f} s, "
          f"proof: {bundle.proof_size_bytes()} B, "
          f"verify: {bundle.timings['verify']:.2f} s -> OK")


if __name__ == "__main__":
    main()
