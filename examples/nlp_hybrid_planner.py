"""The zkVC hybrid mixer planner on the paper's architectures.

Shows how the planner (paper Sec. V-B) picks SoftMax-free mixers for the
long-sequence early stages and reinstates SoftMax attention in late,
short-sequence stages — and what that buys in proving cost.

Run:  python examples/nlp_hybrid_planner.py
"""

from repro.core.planner import MixerPlanner
from repro.nn.transformer import (
    bert_small_config,
    metaformer_imagenet_config,
    vit_cifar_config,
)
from repro.zkml import CostModel, account_model
from repro.nn import uniform_plan


def show(config, budget: float) -> None:
    print(f"\n== {config.name} (layers={config.total_layers}, "
          f"budget={budget:.0%} of all-SoftMax) ==")
    planner = MixerPlanner(config)
    result = planner.plan(budget)
    print("plan:", " ".join(result.plan))

    model = CostModel()
    sm_cost = account_model(
        config, uniform_plan("softmax", config.total_layers), "crpc_psq"
    ).total
    plan_cost = account_model(config, result.plan, "crpc_psq").total
    print(f"constraints: {sm_cost.constraints:,} (all-SoftMax) -> "
          f"{plan_cost.constraints:,} "
          f"({plan_cost.constraints / sm_cost.constraints:.0%})")
    print(f"modelled Spartan prove: {model.spartan_prove_time(sm_cost):,.0f}s"
          f" -> {model.spartan_prove_time(plan_cost):,.0f}s")


def main() -> None:
    show(metaformer_imagenet_config(), 0.40)
    show(vit_cifar_config(), 0.60)
    show(bert_small_config(), 0.70)
    print("\nNote how the hierarchical ImageNet model keeps SoftMax in the "
          "late stages\n(49-196 tokens) and drops it where sequences are "
          "3136 tokens long — the\npaper's central planning insight.")


if __name__ == "__main__":
    main()
