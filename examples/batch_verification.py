"""Batch verification: amortise the verifier's pairing cost over many
proofs — relevant for the paper's cloud setting where a client checks one
proof per inference.

Run:  python examples/batch_verification.py
"""

import random
import time

import repro.groth16 as g16
from repro.groth16.batch import batch_verify
from repro.r1cs import LC, ConstraintSystem
from repro import serialize


def square_circuit(x: int) -> ConstraintSystem:
    cs = ConstraintSystem()
    xw = cs.alloc_public("x", x)
    yw = cs.alloc_public("y", x * x)
    cs.enforce(LC.from_wire(xw), LC.from_wire(xw), LC.from_wire(yw))
    return cs


def main() -> None:
    rng = random.Random(0)
    inst = square_circuit(2).specialize(1)
    keypair = g16.setup(inst, rng=lambda: rng.getrandbits(256))

    k = 5
    statements, proofs = [], []
    for _ in range(k):
        x = rng.randrange(1, 1000)
        cs = square_circuit(x)
        proof = g16.prove(keypair.pk, inst, cs.assignment())
        # round-trip through the wire format, as a client would receive it
        proof = serialize.groth16_proof_from_bytes(
            serialize.groth16_proof_to_bytes(proof)
        )
        statements.append(cs.public_inputs())
        proofs.append(proof)

    t0 = time.perf_counter()
    for s, p in zip(statements, proofs):
        assert g16.verify(keypair.vk, s, p)
    naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    assert batch_verify(keypair.vk, statements, proofs)
    batched = time.perf_counter() - t0

    print(f"{k} proofs, one-by-one verification: {naive:.2f}s")
    print(f"{k} proofs, batched verification:    {batched:.2f}s "
          f"({naive / batched:.1f}x faster)")

    statements[2][1] += 1  # corrupt one statement
    assert not batch_verify(keypair.vk, statements, proofs)
    print("corrupted batch rejected -> OK")


if __name__ == "__main__":
    main()
