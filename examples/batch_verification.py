"""Batched proof serving and detached verification.

The cloud setting from the paper: a server proves many matmul instances,
clients verify them elsewhere.  This example drives the full serving
stack:

1. a ``ProvingService`` groups same-circuit jobs so trusted setup and the
   fixed-base MSM tables are paid once for the whole batch;
2. bundles and the verifier artifact travel as *bytes*;
3. a detached ``MatmulVerifier`` — rebuilt from those bytes alone, in a
   separate OS process — accepts them without ever running setup;
4. same-key Groth16 proofs verify in one small-exponent batch check
   (k+3 Miller loops instead of 4k), and a corrupted bundle still sinks
   the batch.

Run:  PYTHONPATH=src python examples/batch_verification.py
"""

import os
import random
import subprocess
import sys
import time

from repro.core import MatmulProofBundle, MatmulVerifier, ProvingService
from repro.field.prime_field import BN254_FR_MODULUS as R

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def rand_mats(rng, a, n, b):
    x = [[rng.randrange(-40, 40) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(-40, 40) for _ in range(b)] for _ in range(n)]
    return x, w


def verify_in_subprocess(artifact: bytes, blobs) -> bool:
    """Round-trip the artifacts through a fresh Python process."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        art = os.path.join(tmp, "verifier.bin")
        with open(art, "wb") as fh:
            fh.write(artifact)
        paths = []
        for i, blob in enumerate(blobs):
            path = os.path.join(tmp, f"bundle{i}.bin")
            with open(path, "wb") as fh:
                fh.write(blob)
            paths.append(path)
        code = (
            "import sys\n"
            "from repro.core import MatmulProofBundle, MatmulVerifier\n"
            "v = MatmulVerifier.from_bytes(open(sys.argv[1], 'rb').read())\n"
            "bundles = [MatmulProofBundle.from_bytes(open(p, 'rb').read())\n"
            "           for p in sys.argv[2:]]\n"
            "sys.exit(0 if v.verify_batch(bundles) else 1)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", code, art, *paths], env=env
        )
        return result.returncode == 0


def main() -> None:
    rng = random.Random(0)
    k = 5

    # -- serve a batch of same-circuit Groth16 jobs --------------------------
    service = ProvingService(workers=2)
    for _ in range(k):
        service.submit(*rand_mats(rng, 2, 4, 2), backend="groth16")
    report = service.run()
    assert not report.errors, report.errors
    assert len(report.results) == k
    key = next(iter(report.groups))
    print(
        f"served {len(report.results)} proofs in {report.wall_seconds:.2f}s "
        f"({report.proofs_per_second:.1f} proofs/s, "
        f"setup amortised: {report.setup_seconds:.2f}s once for the batch)"
    )

    artifact = service.export_verifier(key)
    blobs = [r.bundle_bytes for r in report.results]
    print(
        f"shipping {len(artifact)} B verifier artifact + "
        f"{sum(map(len, blobs))} B of bundles"
    )

    # -- detached verification, one by one vs batched ------------------------
    verifier = MatmulVerifier.from_bytes(artifact)
    bundles = [MatmulProofBundle.from_bytes(b) for b in blobs]

    t0 = time.perf_counter()
    assert all(verifier.verify(b) for b in bundles)
    naive = time.perf_counter() - t0

    t0 = time.perf_counter()
    assert verifier.verify_batch(bundles)
    batched = time.perf_counter() - t0
    print(f"{k} proofs, one-by-one verification: {naive:.2f}s")
    print(f"{k} proofs, batched verification:    {batched:.2f}s "
          f"({naive / batched:.1f}x faster)")

    # -- the same bytes verify in a different OS process ----------------------
    assert verify_in_subprocess(artifact, blobs)
    print("separate-process verification from bytes alone -> OK")

    # -- corruption sinks the batch -------------------------------------------
    bundles[2].y[0][0] = (bundles[2].y[0][0] + 1) % R
    assert not verifier.verify_batch(bundles)
    print("corrupted batch rejected -> OK")

    # -- spartan bundles need no key at all -----------------------------------
    service.submit(*rand_mats(rng, 2, 4, 2), backend="spartan")
    spartan_report = service.run()
    assert not spartan_report.errors, spartan_report.errors
    spartan_key = next(iter(spartan_report.groups))
    spartan_artifact = service.export_verifier(spartan_key)
    assert verify_in_subprocess(
        spartan_artifact, [spartan_report.results[0].bundle_bytes]
    )
    print(f"spartan: transparent, {len(spartan_artifact)} B artifact "
          "(no key), separate-process verification -> OK")


if __name__ == "__main__":
    main()
