"""Compare all six matmul circuit encodings (the paper's Figs. 4 and 5).

Shows constraint/wire/left-wire counts and measured Spartan proving time
for each strategy on the same matrix product.  Run:

    python examples/matmul_strategies.py
"""

import random

from repro.core import MatmulProver, theory_counts
from repro.gadgets.matmul import STRATEGIES, MatmulCircuit

random.seed(1)


def main() -> None:
    a, n, b = 7, 16, 16
    x = [[random.randrange(100) for _ in range(n)] for _ in range(a)]
    w = [[random.randrange(100) for _ in range(b)] for _ in range(n)]

    print(f"Y[{a},{b}] = X[{a},{n}] @ W[{n},{b}]\n")
    header = (f"{'strategy':12s} {'constraints':>11s} {'wires':>7s} "
              f"{'left wires':>10s} {'prove(ms)':>10s}")
    print(header)
    print("-" * len(header))
    for strategy in STRATEGIES:
        stats = MatmulCircuit(a, n, b, strategy).cs.stats()
        prover = MatmulProver(a, n, b, strategy=strategy, backend="spartan")
        bundle = prover.prove(x, w)
        assert prover.verify(bundle)
        print(f"{strategy:12s} {stats.num_constraints:>11,} "
              f"{stats.num_wires:>7,} {stats.a_wires:>10,} "
              f"{bundle.timings['prove'] * 1000:>10.1f}")

    th_vanilla = theory_counts(a, n, b, "vanilla")
    th_zkvc = theory_counts(a, n, b, "crpc_psq")
    print(f"\nCRPC+PSQ constraint reduction: "
          f"{th_vanilla.constraints / th_zkvc.constraints:.0f}x "
          f"({th_vanilla.constraints} -> {th_zkvc.constraints}; "
          "paper: O(n^3) -> O(n))")


if __name__ == "__main__":
    main()
