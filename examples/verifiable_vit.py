"""End-to-end verifiable ViT inference (the paper's Fig. 1 workflow).

1. Train a small ViT on the synthetic CIFAR-10 stand-in.
2. Fine-tune with the paper's polynomial GELU (zk-ML codesign).
3. Quantise to integers (NITI-style).
4. Prove the inference matmuls with the zkVC circuit; verify as the client.

Run:  python examples/verifiable_vit.py
"""

import numpy as np

from repro.nn import (
    VisionTransformer,
    make_vision_dataset,
    train_model,
)
from repro.nn.train import evaluate
from repro.zkml import QuantizedTransformer, VerifiableInference


def main() -> None:
    print("1. training a 2-layer hybrid ViT (scaling early, softmax late)...")
    data = make_vision_dataset("cifar10", 600, seed=3)
    model = VisionTransformer(
        16, 4, dim=48, heads=4, num_classes=8,
        mixer_plan=["scaling", "softmax"],
        rng=np.random.default_rng(0),
    )
    train_model(model, data, epochs=10, lr=0.08, seed=1)
    acc = evaluate(model, data.test_x, data.test_y)
    print(f"   float accuracy: {acc:.3f}")

    print("2. fine-tuning with the polynomial GELU (x^2/8 + x/4 + 1/2)...")
    for blk in model.encoder.blocks:
        blk.mlp.poly_gelu = True
    train_model(model, data, epochs=3, lr=0.01, seed=2)
    acc = evaluate(model, data.test_x, data.test_y)
    print(f"   after codesign fine-tune: {acc:.3f}")

    print("3. quantising to fixed-point integers...")
    qmodel = QuantizedTransformer(model, frac_bits=10)
    qacc = qmodel.accuracy(data.test_x, data.test_y)
    print(f"   quantised accuracy: {qacc:.3f}")

    print("4. proving one inference (first 2 matmuls, CRPC+PSQ/Spartan)...")
    vi = VerifiableInference(
        qmodel, strategy="crpc_psq", backend="spartan", max_layers=2
    )
    proof = vi.prove(data.test_x[0])
    print(f"   prediction: class {proof.prediction} "
          f"(true: {data.test_y[0]})")
    print(f"   layers proven: {[lp.layer for lp in proof.layer_proofs]}")
    print(f"   proof bytes: {proof.total_proof_bytes()}, "
          f"time: {proof.prove_time_s:.2f}s")

    assert vi.verify(proof)
    print("5. client verification -> OK")


if __name__ == "__main__":
    main()
