"""The verified SoftMax from paper Sec. III-C, step by step.

Builds the max gadget (comparisons + membership product), the clipped
Taylor-limit exponential, and the verified division — then proves the whole
thing with the transparent backend.

Run:  python examples/softmax_gadget.py
"""

import math

from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.bits import field_to_signed
from repro.gadgets.nonlinear import softmax_gadget, softmax_reference
from repro.r1cs import ConstraintSystem
from repro.spartan import Transcript, prove, verify

R = BN254_FR_MODULUS
FRAC_BITS = 12
SCALE = 1 << FRAC_BITS


def main() -> None:
    xs = [1.3, -0.2, 0.8, 2.0]
    print(f"input logits: {xs}")

    cs = ConstraintSystem()
    wires = [
        cs.alloc(f"x{i}", round(v * SCALE) % R) for i, v in enumerate(xs)
    ]
    result = softmax_gadget(cs, wires, FRAC_BITS)

    print(f"\ncircuit: {len(cs.constraints)} constraints, "
          f"{cs.num_wires} wires")
    print(f"verified max: {field_to_signed(cs.value(result.max_wire)) / SCALE}")
    got = [cs.value(w) / SCALE for w in result.outputs]
    ref = softmax_reference(xs)
    print("softmax (circuit):", [f"{v:.4f}" for v in got])
    print("softmax (float):  ", [f"{v:.4f}" for v in ref])
    err = max(abs(g - r) for g, r in zip(got, ref))
    print(f"max abs error: {err:.4f}")
    assert cs.is_satisfied()

    print("\nproving with Spartan...")
    instance = cs.specialize(1)
    proof = prove(instance, cs.assignment(), Transcript(b"softmax"))
    ok = verify(instance, cs.public_inputs(), proof, Transcript(b"softmax"))
    print(f"proof size: {proof.size_bytes()} bytes, verified: {ok}")
    assert ok

    # Also show the exponential's clipping threshold in action.
    print("\nexp approximation e^x ~ (1 + x/2^5)^32, clipped below T=-8:")
    for x in (-0.5, -4.0, -9.0):
        approx = (1 + x / 32) ** 32 if x >= -8 else 0.0
        print(f"  x={x:+.1f}: approx={approx:.5f} true={math.exp(x):.5f}")


if __name__ == "__main__":
    main()
