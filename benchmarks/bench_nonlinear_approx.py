"""X3 — Sec. III-C: the SoftMax / GELU approximations.

Reports approximation error against the float references and the constraint
cost per gadget instance (three bit-decomposition sets + two multiplication
sets per SoftMax element, per the paper)."""

import math

from repro.bench import emit_table
from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.nonlinear import (
    exp_gadget,
    gelu_gadget,
    gelu_poly_reference,
    softmax_gadget,
    softmax_reference,
)
from repro.gadgets.bits import field_to_signed
from repro.r1cs import ConstraintSystem

R = BN254_FR_MODULUS
F = 12
S = 1 << F


def test_nonlinear_approximations(benchmark):
    def build_softmax():
        cs = ConstraintSystem()
        xs = [1.3, -0.2, 0.8, 2.0, -1.5, 0.1, 0.4, -0.9]
        wires = [
            cs.alloc(f"x{i}", round(v * S) % R) for i, v in enumerate(xs)
        ]
        res = softmax_gadget(cs, wires, F)
        return cs, xs, res

    cs, xs, res = benchmark(build_softmax)
    assert cs.is_satisfied()

    got = [cs.value(w) / S for w in res.outputs]
    ref = softmax_reference(xs)
    sm_err = max(abs(g - r) for g, r in zip(got, ref))
    sm_cost = len(cs.constraints)

    # exp error profile over the clip range.
    exp_rows = []
    for x in (-0.5, -2.0, -4.0, -7.5):
        cs2 = ConstraintSystem()
        w = cs2.alloc("x", round(x * S) % R)
        out = exp_gadget(cs2, w, F)
        err = abs(cs2.value(out.out) / S - math.exp(x))
        exp_rows.append([f"{x:+.1f}", f"{err:.5f}", str(len(cs2.constraints))])

    # gelu
    cs3 = ConstraintSystem()
    w = cs3.alloc("x", round(0.6 * S) % R)
    out3 = gelu_gadget(cs3, w, F)
    gelu_err = abs(
        field_to_signed(cs3.value(out3)) / S - gelu_poly_reference(0.6)
    )
    gelu_cost = len(cs3.constraints)

    print()
    print(emit_table(
        "nonlinear_exp",
        "X3a: exp(x) ~ (1 + x/2^n)^(2^n) on negative inputs",
        ["x", "abs error", "constraints"], exp_rows,
    ))
    print()
    print(emit_table(
        "nonlinear_summary",
        "X3b: gadget summary",
        ["gadget", "max error", "constraints"],
        [
            ["softmax (8-wide row)", f"{sm_err:.4f}", str(sm_cost)],
            ["gelu poly (1 element)", f"{gelu_err:.5f}", str(gelu_cost)],
        ],
    ))
    assert sm_err < 0.03
    assert gelu_err < 0.005
