"""Table III — token mixers on vision models.

Paper: SoftApprox / SoftFree-S (scaling) / SoftFree-P (pooling) / zkVC
(hybrid) on CIFAR-10, Tiny-ImageNet, ImageNet; accuracy vs groth16/Spartan
proving seconds.

Here: accuracy measured on the synthetic retrieval stand-ins (DESIGN.md
substitution), proving time modelled at the *paper's* architectures via the
calibrated cost model.  Reproduced shape: accuracy softmax > zkVC hybrid >
scaling > pooling; proving cost softmax > scaling > zkVC > pooling."""

import numpy as np
import pytest

from repro.bench import emit_table, fmt_s
from repro.nn import (
    VisionTransformer,
    make_vision_dataset,
    train_model,
    uniform_plan,
)
from repro.nn.train import evaluate
from repro.nn.transformer import PAPER_CONFIGS
from repro.zkml import account_model

VARIANTS = {
    "SoftApprox.": ["softmax", "softmax"],
    "SoftFree-S": ["scaling", "scaling"],
    "SoftFree-P": ["pooling", "pooling"],
    "zkVC": ["pooling", "softmax"],
}

DATASETS = ["cifar10", "tiny-imagenet"]

# Paper-scale mixer plans for the latency columns (uniform per variant;
# zkVC uses the planner's shape: cheap mixers early, softmax late).
def paper_plan(variant: str, layers: int):
    if variant == "SoftApprox.":
        return ["softmax"] * layers
    if variant == "SoftFree-S":
        return ["scaling"] * layers
    if variant == "SoftFree-P":
        return ["pooling"] * layers
    cheap = (2 * layers) // 3
    return ["pooling"] * cheap + ["softmax"] * (layers - cheap)


@pytest.fixture(scope="module")
def accuracies():
    out = {}
    for dataset in DATASETS:
        data = make_vision_dataset(dataset, 600, seed=3)
        for variant, plan in VARIANTS.items():
            model = VisionTransformer(
                16, 4, dim=48, heads=4, num_classes=8,
                mixer_plan=plan, rng=np.random.default_rng(0),
            )
            train_model(model, data, epochs=10, lr=0.08, seed=1)
            out[(dataset, variant)] = evaluate(
                model, data.test_x, data.test_y
            )
    return out


def test_table3_vision_mixers(benchmark, accuracies, cost_model):
    # Timed kernel: one training epoch worth of work.
    data = make_vision_dataset("cifar10", 120, seed=3)

    def kernel():
        model = VisionTransformer(
            16, 4, dim=32, heads=4, num_classes=8,
            mixer_plan=["pooling"], rng=np.random.default_rng(0),
        )
        return train_model(model, data, epochs=1, lr=0.08)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    rows = []
    for dataset in DATASETS + ["imagenet"]:
        cfg = PAPER_CONFIGS[dataset]()
        layers = cfg.total_layers
        for variant in VARIANTS:
            cost = account_model(
                cfg, paper_plan(variant, layers), "crpc_psq"
            )
            pg = cost_model.groth16_prove_time(cost.total)
            ps = cost_model.spartan_prove_time(cost.total)
            acc = accuracies.get((dataset, variant))
            rows.append([
                dataset, variant,
                f"{acc:.3f}" if acc is not None else "(see cifar/tiny)",
                fmt_s(pg) + "*", fmt_s(ps) + "*",
            ])
    print()
    print(emit_table(
        "table3",
        "Table III: vision mixers (accuracy on synthetic stand-ins; "
        "* = modelled proving time at paper architecture)",
        ["dataset", "variant", "top-1", "P_G", "P_S"], rows,
    ))

    for dataset in DATASETS:
        acc = {v: accuracies[(dataset, v)] for v in VARIANTS}
        # Paper ordering: SoftApprox best, pooling worst, zkVC in between
        # and above scaling-only or pooling-only.
        assert acc["SoftApprox."] >= acc["SoftFree-P"], dataset
        assert acc["zkVC"] >= acc["SoftFree-P"], dataset

    # Cost ordering at paper scale (cifar config).
    cfg = PAPER_CONFIGS["cifar10"]()
    costs = {
        v: account_model(
            cfg, paper_plan(v, cfg.total_layers), "crpc_psq"
        ).total.constraints
        for v in VARIANTS
    }
    assert costs["SoftFree-P"] < costs["zkVC"] < costs["SoftApprox."]
