"""Table I — qualitative comparison of zkVC with prior verifiable-DNN
schemes.  Regenerated from scheme metadata."""

from repro.bench import TABLE1_HEADERS, emit_table, table1_rows


def test_table1_feature_matrix(benchmark):
    rows = benchmark(table1_rows)
    print()
    print(emit_table("table1", "Table I: scheme feature comparison",
                     TABLE1_HEADERS, rows))
    zkvc = rows[-1]
    assert all(cell == "yes" for cell in zkvc[1:])
