"""Table IV — token mixers on NLP models (BERT-small, GLUE-like tasks).

Paper: SoftApprox / SoftFree-S (scaling) / SoftFree-L (linear) / zkVC
across MNLI, QNLI, SST-2, MRPC; proving seconds per variant.

Here: accuracy measured on the synthetic token tasks, proving time modelled
at the paper's BERT-small architecture.  EXPERIMENTS.md notes that the
synthetic NLP tasks are positionally structured, so static linear mixing is
more competitive than on real GLUE — the latency shape and the
vision-table accuracy ordering carry the reproduction."""

import numpy as np
import pytest

from repro.bench import emit_table, fmt_s
from repro.nn import make_nlp_task, train_model, uniform_plan
from repro.nn.train import evaluate
from repro.nn.transformer import TextTransformer, bert_small_config
from repro.zkml import account_model

VARIANTS = {
    "SoftApprox.": ["softmax", "softmax"],
    "SoftFree-S": ["scaling", "scaling"],
    "SoftFree-L": ["linear", "linear"],
    "zkVC": ["linear", "softmax"],
}

TASKS = ["mnli", "qnli", "sst2", "mrpc"]


def paper_plan(variant: str, layers: int):
    if variant == "SoftApprox.":
        return ["softmax"] * layers
    if variant == "SoftFree-S":
        return ["scaling"] * layers
    if variant == "SoftFree-L":
        return ["linear"] * layers
    half = layers // 2
    return ["linear"] * half + ["softmax"] * (layers - half)


@pytest.fixture(scope="module")
def accuracies():
    out = {}
    for task in TASKS:
        data, classes = make_nlp_task(task, 600, seq_len=12, seed=4)
        for variant, plan in VARIANTS.items():
            model = TextTransformer(
                24, 12, 32, 4, classes, plan, np.random.default_rng(0)
            )
            train_model(model, data, epochs=6, lr=0.08, seed=1)
            out[(task, variant)] = evaluate(model, data.test_x, data.test_y)
    return out


def test_table4_nlp_mixers(benchmark, accuracies, cost_model):
    data, classes = make_nlp_task("sst2", 150, seq_len=12, seed=4)

    def kernel():
        model = TextTransformer(
            24, 12, 32, 4, classes, ["linear"], np.random.default_rng(0)
        )
        return train_model(model, data, epochs=1, lr=0.08)

    benchmark.pedantic(kernel, rounds=1, iterations=1)

    cfg = bert_small_config()
    layers = cfg.total_layers
    rows = []
    for variant in VARIANTS:
        cost = account_model(cfg, paper_plan(variant, layers), "crpc_psq")
        pg = cost_model.groth16_prove_time(cost.total)
        ps = cost_model.spartan_prove_time(cost.total)
        accs = [f"{accuracies[(t, variant)]:.3f}" for t in TASKS]
        rows.append([variant] + accs + [fmt_s(pg) + "*", fmt_s(ps) + "*"])
    print()
    print(emit_table(
        "table4",
        "Table IV: NLP mixers on GLUE-like synthetic tasks "
        "(* = modelled at BERT-small scale)",
        ["variant"] + [t.upper() for t in TASKS] + ["P_G", "P_S"], rows,
    ))

    # Latency shape at paper scale: linear < zkVC < scaling < softmax.
    costs = {
        v: account_model(
            cfg, paper_plan(v, layers), "crpc_psq"
        ).total.constraints
        for v in VARIANTS
    }
    assert costs["SoftFree-L"] < costs["zkVC"] < costs["SoftApprox."]
    assert costs["SoftFree-S"] < costs["SoftApprox."]

    # Every variant learns every task above chance.
    for task in TASKS:
        chance = 1.0 / (3 if task == "mnli" else 2)
        for variant in VARIANTS:
            assert accuracies[(task, variant)] > chance - 0.05, (
                task, variant
            )
