"""Perf regression gate for the prover hot paths.

Runs a fresh (quick) pass of ``bench_prover_hotpaths`` and compares every
overlapping metric against the committed ``BENCH_prover.json`` baseline.
Exits nonzero if any fast-path metric regressed by more than the threshold
(default 25%), so it can run right after tier-1 tests:

    PYTHONPATH=src python -m pytest -x -q
    python benchmarks/check_regression.py

With ``--history`` the gate becomes trend-aware: the fresh pass is
machine-normalized (divided by the overall machine factor vs the
committed snapshot) and compared against the *median of the last N runs*
stored in the observatory run store (``benchmarks/runs/`` by default),
then appended to the store as one more history record.  Until the store
holds enough runs (two per metric) the snapshot gate still applies; from
then on one noisy committed snapshot can no longer define the baseline —
the trend does.  See PERF.md "Observatory".

Environment:
    BENCH_BASELINE     override the baseline path
    BENCH_THRESHOLD    override the allowed fractional regression (0.25)
    REPRO_RUN_STORE    override the --history run-store root
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from bench_prover_hotpaths import DEFAULT_OUT, run_benchmarks  # noqa: E402

# Only the fast paths gate: reference/naive numbers are informational.
# ``process_ops_per_sec`` (service section) gates the process-pool
# executor: committed on a single-core machine where it sits at thread
# parity, so any multi-core runner only ever beats it — when the core
# counts recorded in ``meta.cpu_count`` differ, its regressions demote to
# warnings (see ``main``).  ``remote_ops_per_sec`` gates the TCP
# loopback fleet the same way (its workers scale with the core count).
# ``batched_ops_per_sec`` (ntt section) gates the shared-plan ``ntt_many``
# path that the Groth16 quotient pipeline rides.
# The ``vector_*`` metrics (field section) gate the vectorized field
# engine's kernels against the committed baseline; the paired ``scalar_*``
# numbers are informational context.
_GATED_METRICS = (
    "fast_ops_per_sec",
    "fixed_base_ops_per_sec",
    "process_ops_per_sec",
    "remote_ops_per_sec",
    "batched_ops_per_sec",
    "vector_mulmod_ops_per_sec",
    "vector_addmod_ops_per_sec",
    "vector_batch_inv_ops_per_sec",
    "vector_ntt_many_ops_per_sec",
    "vector_matvec_ops_per_sec",
    "vector_matvec_limbs_ops_per_sec",
)

# Lower-is-better counters (not timings): gated absolutely, with no
# machine-factor adjustment — a count ratio is hardware-independent.
# ``remote_connects_per_proof`` is the pooling canary: a slide back to
# connection-per-dispatch multiplies dials-per-proof several-fold, far
# past any plausible scheduling noise.
_GATED_INVERSE = ("remote_connects_per_proof",)

# The pool metrics (process workers, loopback remote fleet) scale with
# core count; comparing across differently-cored hosts prices the
# hardware, not the code.
_CORE_SCALED = ("process_ops_per_sec", "remote_ops_per_sec")


def _paired_inverse_metrics(baseline: dict, fresh: dict):
    base_sec = baseline.get("service", {})
    for size, fresh_entry in fresh.get("service", {}).items():
        base_entry = base_sec.get(size, {})
        for metric in _GATED_INVERSE:
            if metric not in base_entry or metric not in fresh_entry:
                continue
            old = base_entry[metric]
            if old <= 0:
                continue
            yield "service", size, metric, old, fresh_entry[metric]


def _paired_metrics(baseline: dict, fresh: dict):
    for section in (
        "msm",
        "field",
        "sumcheck",
        "hyrax_commit",
        "ntt",
        "groth16_quotient",
        "service",
    ):
        base_sec = baseline.get(section, {})
        fresh_sec = fresh.get(section, {})
        for size, fresh_entry in fresh_sec.items():
            base_entry = base_sec.get(size, {})
            for metric in _GATED_METRICS:
                if metric not in base_entry or metric not in fresh_entry:
                    continue
                old = base_entry[metric]
                if old <= 0:
                    continue
                yield section, size, metric, old, fresh_entry[metric]


def machine_factor(baseline: dict, fresh: dict) -> float:
    """Median new/old ratio across all gated metrics.

    The committed baseline was measured on one machine; a uniformly slower
    (or faster) machine shifts *every* metric by roughly the same factor.
    Normalising by the median makes the gate machine-independent while a
    regression confined to one kernel still sticks out against it.  (The
    cost: a code change that slows every kernel by the same factor is
    indistinguishable from slower hardware — re-baseline to catch those.)
    """
    ratios = sorted(new / old for _, _, _, old, new in _paired_metrics(baseline, fresh))
    if not ratios:
        return 1.0
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2


def compare(baseline: dict, fresh: dict, threshold: float, factor: float = 1.0):
    """Yield (section, size, metric, old, new, ratio) for every metric more
    than ``threshold`` below the (machine-factor-adjusted) baseline."""
    for section, size, metric, old, new in _paired_metrics(baseline, fresh):
        expected = old * factor
        if new < expected * (1.0 - threshold):
            yield section, size, metric, expected, new, new / expected


def history_check(
    store_root: str,
    fresh: dict,
    factor: float,
    threshold: float,
    window=None,
):
    """Gate ``fresh`` against the stored trend, then append it as one
    more history record.

    Gating happens *before* the append so a run is never compared
    against itself; the append happens even when the run regressed so
    the store reflects reality (the median keeps one bad run from
    shifting the trend).  Core-count-scaled metrics drop out of the
    gated set whenever the trend window mixes hosts with different core
    counts.  Returns ``(regressions, checked, record, n_history)``.
    """
    from repro.bench.observatory import (
        DEFAULT_WINDOW,
        HISTORY_SCAN,
        HISTORY_SUITE,
        ResultStore,
        append_history,
        history_gate,
    )

    store = ResultStore(store_root)
    window = window or DEFAULT_WINDOW
    gated = set(_GATED_METRICS) | set(_GATED_INVERSE)
    fresh_cpu = fresh.get("meta", {}).get("cpu_count")
    hist = store.records(suite=HISTORY_SUITE, scan=HISTORY_SCAN)[-window:]
    mixed_cores = any(
        r.meta.get("bench_meta", {}).get("cpu_count") not in (None, fresh_cpu)
        for r in hist
    )
    if mixed_cores:
        gated -= set(_CORE_SCALED)
        print(
            "history: trend window mixes hosts with different core "
            f"counts; not gating {', '.join(_CORE_SCALED)}"
        )
    regressions, checked = history_gate(
        store, fresh, factor, gated, threshold=threshold, window=window
    )
    record = append_history(store, fresh, factor)
    return regressions, checked, record, len(hist)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--baseline",
        default=os.environ.get("BENCH_BASELINE", DEFAULT_OUT),
    )
    ap.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("BENCH_THRESHOLD", "0.25")),
        help="allowed fractional regression (0.25 = 25%%)",
    )
    ap.add_argument(
        "--full", action="store_true",
        help="run the full benchmark sizes instead of the quick subset",
    )
    ap.add_argument(
        "--service", action="store_true",
        help="also re-time the proving-service batch throughput "
             "(bench_service.py) and gate its baseline entries",
    )
    ap.add_argument(
        "--history", action="store_true",
        help="gate against the median of the last N stored runs and "
             "append this pass to the observatory run store",
    )
    ap.add_argument(
        "--store",
        default=os.environ.get(
            "REPRO_RUN_STORE",
            os.path.join(os.path.dirname(os.path.abspath(__file__)), "runs"),
        ),
        help="run-store root for --history",
    )
    ap.add_argument(
        "--window", type=int, default=None,
        help="--history trend window (default: observatory DEFAULT_WINDOW)",
    )
    args = ap.parse_args(argv)

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}; run bench_prover_hotpaths.py first")
        return 2
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    # Best-of-3 timing: single-shot numbers jitter more than the 25% gate.
    fresh = run_benchmarks(repeats=3, quick=not args.full)
    if args.service:
        from bench_service import run_overhead_check, run_service_bench

        fresh["service"] = run_service_bench(quick=not args.full, repeats=2)
        # Self-relative gate (same machine, same run): the resilience
        # layer must stay ~free on the fault-free path.  Not merged into
        # the committed baseline — it prices the layer, not the machine.
        overhead_ok, overhead_rows = run_overhead_check()
        for label, bare, resilient, overhead in overhead_rows:
            print(
                f"resilience overhead [{label}]: bare {bare:.3f}s, "
                f"resilient {resilient:.3f}s ({overhead:+.1%})"
            )
        if not overhead_ok:
            print("RESILIENCE OVERHEAD REGRESSION (fault-free path > 5%)")
            return 1
    factor = machine_factor(baseline, fresh)
    if abs(factor - 1.0) > 0.15:
        print(
            f"note: this machine runs {factor:.2f}x the baseline overall; "
            "gating relative to that factor (re-baseline if hardware changed)"
        )
    if args.history:
        h_regs, h_checked, record, n_hist = history_check(
            args.store, fresh, factor, args.threshold, args.window
        )
        print(
            "history: appended normalized run record "
            f"{os.path.basename(record.path)} to {args.store}"
        )
        if h_checked:
            if h_regs:
                print(
                    f"PERF REGRESSION vs history median "
                    f"({len(h_regs)} of {h_checked} metrics, "
                    f"last {n_hist} runs):"
                )
                for name, mid, got, ratio in h_regs:
                    print(
                        f"  {name}: median {mid:,.3f}, got {got:,.3f} "
                        f"({ratio:.2f}x, machine-normalized)"
                    )
                return 1
            print(
                f"perf OK vs history: {h_checked} metrics within "
                f"{args.threshold:.0%} of the median of the last "
                f"{n_hist} stored runs (machine factor {factor:.2f}x)"
            )
            return 0
        print(
            "history: not enough stored runs to gate on trend yet; "
            "falling back to the committed-snapshot gate"
        )
    regressions = list(compare(baseline, fresh, args.threshold, factor))
    checked = len(list(_paired_metrics(baseline, fresh)))
    # Inverse (lower-is-better) counters: regression = the count *grew*
    # past the threshold.  A small absolute slack forgives one extra dial
    # on a tiny batch (e.g. a reconnect after a reaped idle socket).
    inverse_regressions = []
    for section, size, metric, old, new in _paired_inverse_metrics(
        baseline, fresh
    ):
        checked += 1
        if new > old * (1.0 + args.threshold) + 0.02:
            inverse_regressions.append(
                (section, size, metric, old, new, new / old)
            )
    # Warn instead of failing on core-scaled metrics across differing
    # core counts (see _CORE_SCALED).
    base_cpu = baseline.get("meta", {}).get("cpu_count")
    fresh_cpu = fresh.get("meta", {}).get("cpu_count")
    if base_cpu is not None and fresh_cpu is not None and base_cpu != fresh_cpu:
        demoted = [r for r in regressions if r[2] in _CORE_SCALED]
        regressions = [r for r in regressions if r[2] not in _CORE_SCALED]
        for section, size, metric, expected, new, ratio in demoted:
            print(
                f"warning: {section}[n={size}].{metric} below baseline "
                f"({ratio:.2f}x) — not gating: baseline host had "
                f"{base_cpu} cores, this host has {fresh_cpu}"
            )
    if regressions or inverse_regressions:
        total = len(regressions) + len(inverse_regressions)
        print(f"PERF REGRESSION ({total} of {checked} metrics):")
        for section, size, metric, expected, new, ratio in regressions:
            print(
                f"  {section}[n={size}].{metric}: expected ~{expected:,.0f}, "
                f"got {new:,.0f} ops/sec ({ratio:.2f}x)"
            )
        for section, size, metric, old, new, ratio in inverse_regressions:
            print(
                f"  {section}[n={size}].{metric}: expected <={old:.3f}, "
                f"got {new:.3f} ({ratio:.2f}x; lower is better)"
            )
        return 1
    print(
        f"perf OK: {checked} metrics within {args.threshold:.0%} of "
        f"{args.baseline} (machine factor {factor:.2f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
