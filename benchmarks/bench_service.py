"""Proving-service throughput -> the "service" section of BENCH_prover.json.

Measures end-to-end proofs/sec for a batch of same-circuit Groth16 matmul
jobs three ways:

* ``naive_ops_per_sec`` — the seed-style loop: every job builds a fresh
  prover (its own circuit build + trusted setup), proves, and is verified
  with its own full pairing check;
* ``fast_ops_per_sec`` — one ``ProvingService`` batch on the (GIL-bound)
  thread executor: setup and fixed-base tables amortised across the
  group, bundles serialized to wire format, and the whole batch checked
  with one small-exponent ``batch_verify``;
* ``process_ops_per_sec`` — the same batch on the process executor: the
  group is sharded across worker processes that rehydrate the keypair
  from a disk keystore and return wire bundles.  This is the PR-3
  multi-core number and must not fall behind the thread executor on
  multi-core machines.
* ``remote_ops_per_sec`` — the same chunks dispatched over TCP to a
  loopback fleet of worker processes (``repro.core.remote``), keys
  rehydrated from a shared disk keystore.  Fleet startup happens outside
  the timer; the number prices the frame/socket hop against the process
  pool's pipe hop.  The timed window serves several consecutive batches
  through ONE service so the connection pool's socket reuse is actually
  on the measured path; ``remote_connects_per_proof`` (dials divided by
  proofs served) is recorded alongside and gated *lower-is-better* by
  ``check_regression.py`` — a slide back toward connection-per-dispatch
  multiplies it well past any timing noise.

Results merge into ``BENCH_prover.json`` (other sections untouched); the
committed numbers are gated by ``check_regression.py --service``.

    PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import tempfile
import time
from typing import Dict

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from bench_prover_hotpaths import DEFAULT_OUT, merge_baseline  # noqa: E402
from repro.core import (  # noqa: E402
    GroupChunkPolicy,
    MatmulProver,
    ProvingService,
)
from repro.core.artifacts import CircuitRegistry, KeyStore  # noqa: E402

PROCESS_WORKERS = min(4, os.cpu_count() or 2)

# (a, n, b, jobs): quick keeps CI fast, full is the committed baseline row.
# Batch sizes are large enough for the process executor to amortise its
# per-worker cold start (circuit rebuild + key rehydration + table build);
# on a single-core machine that makes process ~= thread, and the gap is
# pure multi-core upside on real runners.
QUICK_CASES = [(2, 4, 2, 6)]
FULL_CASES = [(2, 4, 2, 6), (4, 8, 4, 8)]


def rand_mats(rng: random.Random, a: int, n: int, b: int):
    x = [[rng.randrange(-40, 40) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(-40, 40) for _ in range(b)] for _ in range(n)]
    return x, w


def _bench_naive(jobs) -> float:
    """Seed-style serving: per-job prover (fresh setup) + per-proof verify."""
    t0 = time.perf_counter()
    for a, n, b, x, w in jobs:
        registry = CircuitRegistry()
        keystore = KeyStore(registry=registry)
        prover = MatmulProver(
            a, n, b, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(x, w)
        assert prover.verify(bundle)
    return time.perf_counter() - t0


def _bench_service(jobs) -> float:
    """Grouped serving: shared artifacts, wire bundles, batch verification."""
    registry = CircuitRegistry()
    keystore = KeyStore(registry=registry)
    service = ProvingService(workers=2, registry=registry, keystore=keystore)
    t0 = time.perf_counter()
    for a, n, b, x, w in jobs:
        service.submit(x, w, backend="groth16")
    report = service.run(verify=True)
    elapsed = time.perf_counter() - t0
    # A failed group would leave results empty and verified vacuously
    # True — that must fail the bench, not inflate the baseline.
    assert not report.errors, report.errors
    assert len(report.results) == len(jobs)
    assert report.verified
    return elapsed


def _bench_service_process(jobs) -> float:
    """Process-pool serving: the single circuit group sharded across
    worker processes, keys rehydrated from a disk keystore."""
    with tempfile.TemporaryDirectory(prefix="bench-keystore-") as root:
        registry = CircuitRegistry()
        keystore = KeyStore(root=root, registry=registry)
        service = ProvingService(
            workers=PROCESS_WORKERS,
            registry=registry,
            keystore=keystore,
            executor="process",
            # Benchmark dispatch unconditionally: the inline threshold is
            # a production safety, not part of the measured path.
            chunk_policy=GroupChunkPolicy(
                workers=PROCESS_WORKERS, min_dispatch_seconds=0.0
            ),
        )
        t0 = time.perf_counter()
        for a, n, b, x, w in jobs:
            service.submit(x, w, backend="groth16")
        report = service.run(verify=True)
        elapsed = time.perf_counter() - t0
        assert not report.errors, report.errors
        assert len(report.results) == len(jobs)
        assert report.verified
        assert all(p == "process" for p in report.placements.values())
    return elapsed


REMOTE_BATCHES = 3


def _bench_service_remote(jobs, batches: int = REMOTE_BATCHES) -> Dict[str, float]:
    """Remote-fleet serving: the same chunks over TCP to loopback worker
    hosts.  The fleet is launched (and reaped) outside the timed window —
    a fleet outlives many batches in production — and the timed window
    serves ``batches`` consecutive batches through one service, so the
    steady state being priced includes the connection pool's reuse, not
    just the first dial.  Returns the elapsed wall plus the observed
    connects-per-proof."""
    from repro.core.remote_worker import launch_loopback_workers, stop_workers

    with tempfile.TemporaryDirectory(prefix="bench-keystore-") as root:
        addrs, procs = launch_loopback_workers(PROCESS_WORKERS, keystore_root=root)
        try:
            registry = CircuitRegistry()
            keystore = KeyStore(root=root, registry=registry)
            service = ProvingService(
                workers=PROCESS_WORKERS,
                registry=registry,
                keystore=keystore,
                executor="remote",
                remote_workers=addrs,
                chunk_policy=GroupChunkPolicy(
                    workers=PROCESS_WORKERS, min_dispatch_seconds=0.0
                ),
            )
            served = 0
            try:
                t0 = time.perf_counter()
                for _ in range(batches):
                    for a, n, b, x, w in jobs:
                        service.submit(x, w, backend="groth16")
                    report = service.run(verify=True)
                    assert not report.errors, report.errors
                    assert len(report.results) == len(jobs)
                    assert report.verified
                    assert all(
                        p == "remote" for p in report.placements.values()
                    )
                    served += len(report.results)
                elapsed = time.perf_counter() - t0
                stats = service._remote.transport_stats()
            finally:
                service.close()
        finally:
            stop_workers(procs)
    return {
        "elapsed": elapsed,
        "jobs": float(served),
        "connects_per_proof": stats["connects"] / served,
    }


def run_overhead_check(
    threshold: float = 0.05,
    repeats: int = 5,
    n_jobs: int = 40,
    slack_seconds: float = 0.05,
):
    """Price the resilience layer on the fault-free path.

    Serves the identical batch twice — once under the default
    :class:`~repro.core.resilience.RetryPolicy` (retries, leases,
    bisection armed) and once under ``BARE_POLICY`` (the pre-resilience
    configuration: single dispatch, no deadline) — and requires the
    resilient run to stay within ``threshold`` (default 5%) of the bare
    run, plus a small absolute ``slack_seconds`` so scheduler noise on a
    busy runner cannot fail the gate on its own.  The comparison is
    *self-relative* (same machine, same run), so it is not part of the
    committed cross-machine baseline.

    Returns ``(ok, rows)`` where each row is
    ``(label, bare_seconds, resilient_seconds, overhead_fraction)``.
    """
    from repro.core import BARE_POLICY, RetryPolicy

    rng = random.Random(0xFA57)

    def serve(policy, executor, jobs, workers=1):
        registry = CircuitRegistry()
        with tempfile.TemporaryDirectory(prefix="bench-overhead-") as root:
            keystore = KeyStore(root=root, registry=registry)
            service = ProvingService(
                workers=workers,
                registry=registry,
                keystore=keystore,
                executor=executor,
                retry_policy=policy,
                chunk_policy=GroupChunkPolicy(
                    workers=workers, min_dispatch_seconds=0.0
                ),
            )
            try:
                t0 = time.perf_counter()
                for a, n, b, x, w in jobs:
                    # spartan: transparent setup keeps the measured path
                    # the serving loop itself, not one-off key generation
                    service.submit(x, w, backend="spartan")
                report = service.run(verify=True)
                elapsed = time.perf_counter() - t0
            finally:
                # close() in a finally: a failed assert below (or a raise
                # inside run) must not leak executor threads or pooled
                # sockets into the next measurement
                service.close()
            assert report.verified, (report.errors, report.invalid_jobs)
            assert len(report.results) == len(jobs)
        return elapsed

    cases = [
        ("inline", "serial", n_jobs, 1, repeats),
        ("process", "process", max(4, n_jobs // 4), PROCESS_WORKERS, max(2, repeats // 2)),
    ]
    rows = []
    ok = True
    for label, executor, count, workers, reps in cases:
        jobs = [(2, 4, 2, *rand_mats(rng, 2, 4, 2)) for _ in range(count)]
        bare = min(
            serve(BARE_POLICY, executor, jobs, workers) for _ in range(reps)
        )
        resilient = min(
            serve(RetryPolicy(), executor, jobs, workers) for _ in range(reps)
        )
        overhead = resilient / bare - 1.0
        rows.append((label, bare, resilient, overhead))
        if resilient > bare * (1.0 + threshold) + slack_seconds:
            ok = False
    return ok, rows


def run_service_bench(quick: bool = False, repeats: int = 1) -> Dict[str, Dict[str, float]]:
    rng = random.Random(0xD15C)
    out: Dict[str, Dict[str, float]] = {}
    for a, n, b, num_jobs in (QUICK_CASES if quick else FULL_CASES):
        jobs = [(a, n, b, *rand_mats(rng, a, n, b)) for _ in range(num_jobs)]
        naive = min(_bench_naive(jobs) for _ in range(repeats))
        fast = min(_bench_service(jobs) for _ in range(repeats))
        proc = min(_bench_service_process(jobs) for _ in range(repeats))
        rem = min(
            (_bench_service_remote(jobs) for _ in range(repeats)),
            key=lambda run: run["elapsed"],
        )
        out[f"{a}x{n}x{b}"] = {
            "jobs": num_jobs,
            "fast_ops_per_sec": num_jobs / fast,
            "naive_ops_per_sec": num_jobs / naive,
            "process_ops_per_sec": num_jobs / proc,
            "remote_ops_per_sec": rem["jobs"] / rem["elapsed"],
            "remote_connects_per_proof": rem["connects_per_proof"],
        }
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=1)
    ap.add_argument("--quick", action="store_true", help="small case only")
    ap.add_argument(
        "--overhead",
        action="store_true",
        help="only run the resilience-overhead gate (fault-free path "
        "must stay within 5%% of the bare, pre-resilience policy)",
    )
    args = ap.parse_args(argv)

    if args.overhead:
        ok, rows = run_overhead_check()
        print("[service overhead: resilient vs bare policy]")
        for label, bare, resilient, overhead in rows:
            print(
                f"  {label}: bare {bare:.3f}s, resilient {resilient:.3f}s "
                f"({overhead:+.1%})"
            )
        if not ok:
            print("RESILIENCE OVERHEAD REGRESSION (fault-free path > 5%)")
            return 1
        print("overhead OK")
        return 0

    results = run_service_bench(quick=args.quick, repeats=args.repeats)
    merge_baseline(args.out, {"service": results})

    print("[service]")
    for shape, entry in sorted(results.items()):
        ratio = entry["fast_ops_per_sec"] / entry["naive_ops_per_sec"]
        proc_ratio = entry["process_ops_per_sec"] / entry["fast_ops_per_sec"]
        rem_ratio = entry["remote_ops_per_sec"] / entry["process_ops_per_sec"]
        print(
            f"  {shape} x{entry['jobs']:.0f} jobs: "
            f"remote {entry['remote_ops_per_sec']:.2f} proofs/s "
            f"({rem_ratio:.2f}x process, "
            f"{entry['remote_connects_per_proof']:.3f} connects/proof), "
            f"process {entry['process_ops_per_sec']:.2f} proofs/s "
            f"({proc_ratio:.2f}x thread), "
            f"thread {entry['fast_ops_per_sec']:.2f} proofs/s, "
            f"sequential {entry['naive_ops_per_sec']:.2f} proofs/s "
            f"({ratio:.2f}x)"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
