"""Fig. 6 — four-panel matmul comparison across embedding dimensions:
prover time, verifier time, proof size, online time.

Paper setting: [49, d/2] x [d/2, d] for embedding dims d in
{64, 128, 320, 512}; 8 schemes.  Here the two smallest scaled dims are
measured live for every implementable scheme and the full paper grid is
produced by the calibrated cost model (labelled).  Reproduced shape:

* zkVC-G/zkVC-S fastest non-interactive provers; zkCNN's interactive
  prover faster still;
* groth16-family verification is milliseconds and constant, Spartan-family
  grows mildly, zkCNN's verification and online time are the largest;
* groth16 proofs are constant 256 B, Spartan/zkCNN proofs are KBs.
"""

import pytest

from repro.bench import (
    emit_table,
    fmt_bytes,
    fmt_s,
    model_scheme_at_scale,
    run_circuit_scheme,
    run_zkcnn,
    run_zkml_modelled,
)

# Scaled: tokens 7, dims d in {8, 16}: [7, d/2] x [d/2, d].
MEASURED_DIMS = [8, 16]
PAPER_DIMS = [64, 128, 320, 512]
TOKENS = 7
PAPER_TOKENS = 49

LIVE_SCHEMES = ["groth16", "spartan", "vCNN", "ZEN", "zkVC-G", "zkVC-S"]
ALL_SCHEMES = ["groth16", "spartan", "vCNN", "ZEN", "zkCNN", "zkML",
               "zkVC-G", "zkVC-S"]


def shape_for(dim: int, tokens: int):
    return (tokens, dim // 2, dim)


@pytest.fixture(scope="module")
def measurements(prover_cache, cost_model):
    rows = {}
    for d in MEASURED_DIMS:
        a, n, b = shape_for(d, TOKENS)
        for scheme in LIVE_SCHEMES:
            rows[(scheme, d)] = run_circuit_scheme(
                scheme, a, n, b, prover_cache=prover_cache
            )
        rows[("zkCNN", d)] = run_zkcnn(a, n, b)
        rows[("zkML", d)] = run_zkml_modelled(a, n, b, cost_model)
    return rows


def _panel(key, title, rows):
    print()
    print(emit_table(key, title,
                     ["scheme"] + [f"d={d}" for d in MEASURED_DIMS]
                     + [f"d={d}*" for d in PAPER_DIMS], rows))


def test_fig6_four_panels(benchmark, measurements, cost_model):
    a, n, b = shape_for(MEASURED_DIMS[0], TOKENS)
    benchmark.pedantic(
        run_circuit_scheme, args=("zkVC-S", a, n, b),
        rounds=1, iterations=1,
    )

    modelled = {}
    for d in PAPER_DIMS:
        shape = shape_for(d, PAPER_TOKENS)
        for scheme in ALL_SCHEMES:
            if scheme == "zkCNN":
                # Interactive sumcheck prover is linear field work; model it
                # as Spartan's field portion without commitments.
                res = model_scheme_at_scale("spartan", *shape, cost_model)
                res.prove_s *= 0.15
                res.verify_s *= 1.5
                res.online_s = res.prove_s + res.verify_s
                modelled[(scheme, d)] = res
            else:
                modelled[(scheme, d)] = model_scheme_at_scale(
                    scheme, *shape, cost_model
                )

    def row(scheme, fmt, attr):
        cells = [scheme]
        for d in MEASURED_DIMS:
            cells.append(fmt(getattr(measurements[(scheme, d)], attr)))
        for d in PAPER_DIMS:
            cells.append(fmt(getattr(modelled[(scheme, d)], attr)))
        return cells

    _panel("fig6a",
           "Fig. 6a: prover time (* = modelled at paper dims, tokens=49)",
           [row(s, fmt_s, "prove_s") for s in ALL_SCHEMES])
    _panel("fig6b", "Fig. 6b: verifier time",
           [row(s, fmt_s, "verify_s") for s in ALL_SCHEMES])
    _panel("fig6c", "Fig. 6c: proof size",
           [row(s, fmt_bytes, "proof_bytes") for s in ALL_SCHEMES])
    _panel("fig6d", "Fig. 6d: online time",
           [row(s, fmt_s, "online_s") for s in ALL_SCHEMES])

    d = MEASURED_DIMS[-1]
    # zkVC leads the non-interactive provers (measured).
    assert measurements[("zkVC-G", d)].prove_s < measurements[
        ("groth16", d)].prove_s
    assert measurements[("zkVC-S", d)].prove_s < measurements[
        ("spartan", d)].prove_s
    # zkCNN proves faster but pays in online time (interaction keeps both
    # parties engaged for the whole protocol) and proof size.  Note: the
    # paper's "zkCNN verification 200x slower than groth16" relies on
    # millisecond C++ pairings; in pure Python a pairing costs ~0.3s, so
    # that particular ratio only appears in the modelled columns.
    assert measurements[("zkCNN", d)].prove_s < measurements[
        ("zkVC-G", d)].prove_s
    assert measurements[("zkCNN", d)].online_s > measurements[
        ("zkCNN", d)].verify_s
    assert measurements[("zkCNN", d)].verify_s > measurements[
        ("zkVC-S", d)].verify_s * 0.5
    # groth16 proofs constant and smallest.
    assert measurements[("zkVC-G", d)].proof_bytes == 256
    assert measurements[("zkCNN", d)].proof_bytes > 256
    assert measurements[("zkVC-S", d)].proof_bytes > 256
