"""Fig. 3 — proving-time comparison for matrix multiplication.

Paper setting: [49, 64] x [64, 128] with vCNN ~9s, ZEN slower than zkML,
zkVC at 0.73s (12.5x faster than vCNN).

Here: the same schemes at a scaled dimension [7, 16] x [16, 32] measured
live (pure-Python provers), plus cost-model predictions at the paper's full
dimension.  The reproduced *shape* is the ordering and the zkVC speedup
factor."""

import pytest

from repro.baselines import estimate_halo2, halo2_matmul_cost
from repro.bench import (
    emit_table,
    fmt_s,
    model_scheme_at_scale,
    run_circuit_scheme,
)

SCALED = (7, 16, 32)
PAPER = (49, 64, 128)

MEASURED_SCHEMES = ["vCNN", "ZEN", "zkVC-G"]


@pytest.fixture(scope="module")
def measured(prover_cache):
    out = {}
    for scheme in MEASURED_SCHEMES:
        out[scheme] = run_circuit_scheme(
            scheme, *SCALED, prover_cache=prover_cache
        )
    return out


def test_fig3_proving_time_comparison(benchmark, measured, cost_model):
    # Timed kernel: the zkVC-G prover itself.
    result = benchmark.pedantic(
        run_circuit_scheme,
        args=("zkVC-G", *SCALED),
        kwargs={"prover_cache": None},
        rounds=1,
        iterations=1,
    )
    rows = []
    for scheme in MEASURED_SCHEMES:
        rows.append([scheme, f"[{SCALED[0]},{SCALED[1]}]x[{SCALED[1]},{SCALED[2]}]",
                     fmt_s(measured[scheme].prove_s), "measured"])
    zkml = estimate_halo2(halo2_matmul_cost(*SCALED), cost_model)
    rows.append(["zkML", f"[{SCALED[0]},{SCALED[1]}]x[{SCALED[1]},{SCALED[2]}]",
                 fmt_s(zkml.prove_s), "modelled"])
    for scheme in ("vCNN", "ZEN", "zkML", "zkVC-G"):
        res = model_scheme_at_scale(scheme, *PAPER, cost_model)
        rows.append([scheme, f"[{PAPER[0]},{PAPER[1]}]x[{PAPER[1]},{PAPER[2]}]",
                     fmt_s(res.prove_s), "modelled @ paper dims"])
    print()
    print(emit_table(
        "fig3",
        "Fig. 3: matmul proving time (paper: vCNN 9s -> zkVC 0.73s, 12.5x)",
        ["scheme", "dims", "prove", "source"], rows,
    ))
    # Shape assertions: zkVC fastest of the measured circuit schemes.
    assert measured["zkVC-G"].prove_s < measured["vCNN"].prove_s
    assert measured["zkVC-G"].prove_s < measured["ZEN"].prove_s
    speedup = measured["vCNN"].prove_s / measured["zkVC-G"].prove_s
    print(f"\nmeasured zkVC-G speedup over vCNN at scaled dims: {speedup:.1f}x")
    print("(the factor grows with dimension — see bench_crpc_scaling.py; "
          "the shared per-wire G2 work dominates at this small scale)")
    assert speedup > 1.3
