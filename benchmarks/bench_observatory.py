"""One command for every paper table: run the declarative scan suite,
append records to the run store, and regenerate the tables *from the
store*.

    PYTHONPATH=src python benchmarks/bench_observatory.py --suite paper

Useful variants:

    --scans table1,psq       run/render a subset of the suite's scans
    --render-only            skip measurement; re-render from stored runs
    --full                   paper-fidelity training budgets (slower)
    --store PATH             run-store root (default benchmarks/runs)
    --tables-dir PATH        also write each rendered table to a file
    --json PATH              machine-readable dump of every table
                             (repro.bench.report schema)

Every executed scan point becomes one schema-versioned record under the
store; ``python -m repro.bench.observatory list|show|frontier`` browses
the accumulated history without re-running anything.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.bench import report  # noqa: E402
from repro.bench.observatory import (  # noqa: E402
    ResultStore,
    SUITES,
    SuiteOptions,
)

DEFAULT_STORE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "runs")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--suite", default="paper", choices=sorted(SUITES))
    ap.add_argument("--scans", default=None,
                    help="comma-separated subset of the suite's scans")
    ap.add_argument("--full", action="store_true",
                    help="paper-fidelity training budgets for the "
                         "accuracy scans")
    ap.add_argument("--render-only", action="store_true",
                    help="no measurement: render tables from stored runs")
    ap.add_argument("--store", default=os.environ.get("REPRO_RUN_STORE",
                                                      DEFAULT_STORE))
    ap.add_argument("--tables-dir", default=None,
                    help="write each rendered table to <dir>/<scan>.txt")
    ap.add_argument("--json", default=report.env_json_path(),
                    help="write all rendered tables to one JSON document")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args(argv)

    suite = SUITES[args.suite]
    scans = args.scans.split(",") if args.scans else None
    store = ResultStore(args.store)
    say = (lambda *a: None) if args.quiet else print

    if not args.render_only:
        outcomes = suite.run(
            store, scans=scans, options=SuiteOptions(full=args.full),
            progress=lambda msg: say(f"  .. {msg}"),
        )
        ran = sum(len(o.records) for o in outcomes.values())
        skipped = sum(len(o.skipped) for o in outcomes.values())
        say(f"ran {ran} scan points across {len(outcomes)} scans "
            f"({skipped} skipped) -> {store.root}")
        for name, outcome in outcomes.items():
            for params, reason in outcome.skipped:
                say(f"  skipped {name} {params}: {reason}")

    rendered = suite.render(store, scans=scans)
    for name, text in rendered:
        say("")
        say(text)

    if args.tables_dir:
        os.makedirs(args.tables_dir, exist_ok=True)
        for name, text in rendered:
            path = os.path.join(args.tables_dir, f"{name}.txt")
            with open(path, "w") as fh:
                fh.write(text + "\n")
        say(f"\nwrote {len(rendered)} tables to {args.tables_dir}")

    if args.json:
        report.write_json(args.json)
        say(f"wrote machine-readable tables to {args.json}")

    # Surface the cached cross-history summary so a suite run ends with
    # the store's state, not just this pass.
    summary = store.summary()
    say(f"\nstore summary: {summary['record_count']} records, "
        f"suites {summary['suites']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
