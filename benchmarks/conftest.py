"""Shared benchmark fixtures.

Every benchmark prints the table/figure rows it reproduces (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and registers one
timed kernel with pytest-benchmark.
"""

import pytest

from repro.zkml.costmodel import CostModel


@pytest.fixture(scope="session")
def cost_model():
    """Session-wide calibrated cost model (primitive rates measured once)."""
    return CostModel()


@pytest.fixture(scope="session")
def prover_cache():
    """Share Groth16 trusted setups across benchmark rounds."""
    return {}
