"""Shared benchmark fixtures.

Every benchmark prints the table/figure rows it reproduces (run with
``pytest benchmarks/ --benchmark-only -s`` to see them) and registers one
timed kernel with pytest-benchmark.  Tables route through
``repro.bench.report.emit_table``, so ``--json <path>`` (or
``REPRO_BENCH_JSON``) additionally writes every table the session
produced as one machine-readable JSON document.
"""

import pytest

from repro.bench import report
from repro.zkml.costmodel import CostModel


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        help="write all emitted bench tables to this JSON path at "
             "session end (fallback: REPRO_BENCH_JSON)",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json") or report.env_json_path()
    if path and report.collected():
        out = report.write_json(path)
        print(f"\nwrote {len(report.collected())} bench tables to {out}")


@pytest.fixture(scope="session")
def cost_model():
    """Session-wide calibrated cost model (primitive rates measured once)."""
    return CostModel()


@pytest.fixture(scope="session")
def prover_cache():
    """Share Groth16 trusted setups across benchmark rounds."""
    return {}
