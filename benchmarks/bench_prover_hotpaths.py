"""Prover hot-path microbenchmarks -> BENCH_prover.json.

Times the dominant prover kernels on this machine:

* **MSM** over G1 for sizes 2^8..2^14 — the new batch-affine Pippenger and
  a warm fixed-base table, plus (at small sizes) the pre-PR-style Jacobian
  Pippenger for reference;
* **field** for sizes 2^8..2^12 — the scalar big-int loops versus the
  vector engine (``repro.field.vector``) on the same inputs: elementwise
  mulmod/addmod, batched inversion, ``ntt_many``, and the FlatR1CS CSR
  matvec;
* **sumcheck** proving for table sizes 2^10..2^16 — the specialized
  ``prod2`` kernel and the naive reference prover;
* **Hyrax commit** at 2^10 / 2^12 — the batched fixed-base path versus
  per-row generic MSMs;
* **NTT** for sizes 2^8..2^14 — the planned (cached-twiddle) transform and
  the batched ``ntt_many`` path versus the naive serial-twiddle loop;
* **Groth16 quotient** (``_compute_h``) for domain sizes 2^8..2^10 — the
  same-size-coset planned pipeline over flat R1CS kernels versus the seed
  doubled-domain reference.

Every entry records ops/sec (points/sec for MSM, table-elements/sec for
sumcheck, vector-elements/sec for commits), so future PRs have a perf
trajectory to regress against: run

    PYTHONPATH=src python benchmarks/bench_prover_hotpaths.py

then `python benchmarks/check_regression.py` to compare against the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from typing import Callable, Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.curve.bn254 import CURVE_ORDER, g1_generator, multiply  # noqa: E402
from repro.curve.fixed_base import FixedBaseMSM  # noqa: E402
from repro.curve.msm import _msm_jacobian, msm  # noqa: E402
from repro.field import vector  # noqa: E402
from repro.field.ntt import naive_ntt, ntt, ntt_many  # noqa: E402
from repro.field.prime_field import BN254_FR_MODULUS, batch_inv_mod  # noqa: E402
from repro.groth16.prove import _compute_h, _compute_h_reference  # noqa: E402
from repro.r1cs.system import R1CSInstance  # noqa: E402
from repro.spartan.commitment import HyraxProver, generator_fixed_base  # noqa: E402
from repro.spartan.sumcheck import (  # noqa: E402
    sumcheck_prove,
    sumcheck_prove_reference,
)
from repro.spartan.transcript import Transcript  # noqa: E402

R = BN254_FR_MODULUS

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "BENCH_prover.json")

MSM_SIZES = [1 << k for k in range(8, 15)]       # 2^8 .. 2^14
FIELD_SIZES = [1 << k for k in range(8, 13)]      # 2^8 .. 2^12
SUMCHECK_SIZES = [1 << k for k in range(10, 17)]  # 2^10 .. 2^16
HYRAX_SIZES = [1 << 10, 1 << 12]
NTT_SIZES = [1 << k for k in range(8, 15)]        # 2^8 .. 2^14
QUOTIENT_SIZES = [1 << 8, 1 << 9, 1 << 10]        # Groth16 domain sizes
NTT_BATCH = 4  # vectors per ntt_many call (mirrors the quotient pipeline)
# Above this size the pre-PR-style Jacobian reference gets too slow to time
# on every run; the fast paths still cover the full range.
NAIVE_MSM_LIMIT = 1 << 12
NAIVE_HYRAX_LIMIT = 1 << 12
NAIVE_NTT_LIMIT = 1 << 13


def _timed(fn: Callable[[], object], min_repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(min_repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _rand_points(n: int, rng: random.Random) -> List[object]:
    # A small pool of distinct points cycled to length n keeps setup cheap;
    # bucket behaviour only depends on the scalars, which stay random.
    g = g1_generator()
    pool = [multiply(g, rng.randrange(1, CURVE_ORDER)) for _ in range(64)]
    return [pool[i % len(pool)] for i in range(n)]


def bench_msm(sizes=MSM_SIZES, repeats: int = 1) -> Dict[str, Dict[str, float]]:
    rng = random.Random(0xBEEF)
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        pts = _rand_points(n, rng)
        scs = [rng.randrange(CURVE_ORDER) for _ in range(n)]
        entry: Dict[str, float] = {}
        entry["fast_ops_per_sec"] = n / _timed(lambda: msm(pts, scs), repeats)
        fb = FixedBaseMSM(pts)
        entry["fixed_base_ops_per_sec"] = n / _timed(
            lambda: fb.msm(scs), repeats
        )
        if n <= NAIVE_MSM_LIMIT:
            entry["naive_ops_per_sec"] = n / _timed(
                lambda: _msm_jacobian(pts, scs), repeats
            )
        out[str(n)] = entry
    return out


def bench_sumcheck(
    sizes=SUMCHECK_SIZES, repeats: int = 1
) -> Dict[str, Dict[str, float]]:
    rng = random.Random(0xFEED)
    combine = lambda v: v[0] * v[1] % R  # noqa: E731
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        a = [rng.randrange(R) for _ in range(n)]
        b = [rng.randrange(R) for _ in range(n)]
        claim = sum(x * y for x, y in zip(a, b)) % R
        entry: Dict[str, float] = {}
        entry["fast_ops_per_sec"] = n / _timed(
            lambda: sumcheck_prove(
                [list(a), list(b)], combine, 2, claim, Transcript(), b"b",
                kernel="prod2",
            ),
            repeats,
        )
        entry["naive_ops_per_sec"] = n / _timed(
            lambda: sumcheck_prove_reference(
                [list(a), list(b)], combine, 2, claim, Transcript(), b"b"
            ),
            repeats,
        )
        out[str(n)] = entry
    return out


def _naive_hyrax_commit(prover: HyraxProver) -> None:
    """The pre-PR commit path: one Jacobian Pippenger MSM per row plus a
    double-and-add scalar mult for the blinder."""
    from repro.curve.bn254 import add
    from repro.spartan.commitment import blinder_generator, pedersen_generators

    gens = pedersen_generators(len(prover.rows[0]))
    for row, blind in zip(prover.rows, prover.blinders):
        acc = _msm_jacobian(list(gens[: len(row)]), list(row))
        if blind:
            acc = add(acc, multiply(blinder_generator(), blind))


def bench_hyrax(
    sizes=HYRAX_SIZES, repeats: int = 1
) -> Dict[str, Dict[str, float]]:
    rng = random.Random(0xC0FFEE)
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        num_vars = n.bit_length() - 1
        vec = [rng.randrange(R) for _ in range(n)]
        prover = HyraxProver(vec, num_vars, rng=lambda: rng.randrange(R))
        generator_fixed_base(1 << prover.col_vars)  # warm the shared tables
        entry: Dict[str, float] = {}
        entry["fast_ops_per_sec"] = n / _timed(lambda: prover.commit(), repeats)
        if n <= NAIVE_HYRAX_LIMIT:
            entry["naive_ops_per_sec"] = n / _timed(
                lambda: _naive_hyrax_commit(prover), repeats
            )
        out[str(n)] = entry
    return out


def bench_ntt(sizes=NTT_SIZES, repeats: int = 1) -> Dict[str, Dict[str, float]]:
    rng = random.Random(0xD0FF)
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        vec = [rng.randrange(R) for _ in range(n)]
        rows = [
            [rng.randrange(R) for _ in range(n)] for _ in range(NTT_BATCH)
        ]
        ntt(vec)  # plan + stage build is a one-time cost; time the warm path
        entry: Dict[str, float] = {}
        entry["fast_ops_per_sec"] = n / _timed(lambda: ntt(vec), repeats)
        entry["batched_ops_per_sec"] = (NTT_BATCH * n) / _timed(
            lambda: ntt_many(rows), repeats
        )
        if n <= NAIVE_NTT_LIMIT:
            entry["naive_ops_per_sec"] = n / _timed(
                lambda: naive_ntt(vec), repeats
            )
        out[str(n)] = entry
    return out


def bench_field(
    sizes=FIELD_SIZES, repeats: int = 1
) -> Dict[str, Dict[str, float]]:
    """Scalar vs vector field engine on equal inputs.

    Elementwise metrics (``mulmod``/``addmod``/``batch_inv``) time the
    kernels over pre-converted limb arrays — the amortised regime every
    integrated call site (quotient chain, sumcheck rounds) actually runs
    in.  ``ntt_many`` and ``matvec`` are list-in/list-out under each
    backend, i.e. they pay the vector engine's conversions;
    ``vector_matvec_limbs`` shows the conversion-free matvec rate.  When
    no vector engine is available only the scalar metrics are recorded.
    """
    rng = random.Random(0xF1E1D)
    out: Dict[str, Dict[str, float]] = {}
    have_vec = bool(vector.available_impls())
    for n in sizes:
        a = [rng.randrange(R) for _ in range(n)]
        b = [rng.randrange(1, R) for _ in range(n)]
        rows = [
            [rng.randrange(R) for _ in range(n)] for _ in range(NTT_BATCH)
        ]
        csr_rows = [
            [(rng.randrange(n), rng.randrange(1, R)) for _ in range(6)]
            for _ in range(n)
        ]
        entry: Dict[str, float] = {}
        # Loop the elementwise ops so every timing sample covers >= ~32k
        # element-ops: a single small-n kernel call runs in tens of
        # microseconds, where timer jitter swamps the 25% regression gate.
        iters = max(1, (1 << 15) // n)

        def _loop(fn):
            def run():
                for _ in range(iters):
                    fn()
            return run

        try:
            vector.set_backend("scalar")
            from repro.r1cs.system import FlatR1CS

            flat = FlatR1CS(csr_rows)
            nnz = len(flat.wires)
            entry["scalar_mulmod_ops_per_sec"] = (iters * n) / _timed(
                _loop(lambda: [x * y % R for x, y in zip(a, b)]), repeats
            )
            entry["scalar_addmod_ops_per_sec"] = (iters * n) / _timed(
                _loop(lambda: [(x + y) % R for x, y in zip(a, b)]), repeats
            )
            entry["scalar_batch_inv_ops_per_sec"] = (iters * n) / _timed(
                _loop(lambda: batch_inv_mod(b, R)), repeats
            )
            entry["scalar_ntt_many_ops_per_sec"] = (NTT_BATCH * n) / _timed(
                lambda: ntt_many(rows), repeats
            )
            entry["scalar_matvec_ops_per_sec"] = (iters * nnz) / _timed(
                _loop(lambda: flat.matvec(a)), repeats
            )
            if have_vec:
                vector.set_backend("vector")
                al, bl = vector.to_limbs(a), vector.to_limbs(b)
                entry["vector_mulmod_ops_per_sec"] = (iters * n) / _timed(
                    _loop(lambda: vector.vec_mul(al, bl)), repeats
                )
                entry["vector_addmod_ops_per_sec"] = (iters * n) / _timed(
                    _loop(lambda: vector.vec_add(al, bl)), repeats
                )
                entry["vector_batch_inv_ops_per_sec"] = (iters * n) / _timed(
                    _loop(lambda: vector.batch_inv(bl)), repeats
                )
                ntt_many(rows)  # warm the plan's vector kernels
                entry["vector_ntt_many_ops_per_sec"] = (
                    NTT_BATCH * n
                ) / _timed(lambda: ntt_many(rows), repeats)
                flat.matvec(a)  # warm the CSR kernel
                entry["vector_matvec_ops_per_sec"] = (iters * nnz) / _timed(
                    _loop(lambda: flat.matvec(a)), repeats
                )
                kern = flat.vec_kernel()
                if kern is not None:
                    entry["vector_matvec_limbs_ops_per_sec"] = (
                        iters * nnz
                    ) / _timed(_loop(lambda: kern.matvec_limbs(al)), repeats)
        finally:
            vector.set_backend(None)  # back to the env-resolved backend
        out[str(n)] = entry
    return out


def _quotient_fixture(domain_size: int, terms_per_row: int = 3):
    """A synthetic R1CS instance filling the whole domain (satisfaction is
    irrelevant for timing the quotient transforms)."""
    rng = random.Random(0xABCD ^ domain_size)
    num_wires = domain_size

    def rows():
        return [
            [
                (rng.randrange(num_wires), rng.randrange(1, R))
                for _ in range(terms_per_row)
            ]
            for _ in range(domain_size)
        ]

    instance = R1CSInstance(
        num_wires=num_wires,
        num_public=1,
        a_rows=rows(),
        b_rows=rows(),
        c_rows=rows(),
    )
    assignment = [rng.randrange(R) for _ in range(num_wires)]
    return instance, assignment


def bench_quotient(
    sizes=QUOTIENT_SIZES, repeats: int = 1
) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for n in sizes:
        instance, assignment = _quotient_fixture(n)
        _compute_h(instance, assignment, n)  # warm plan/context/flat caches
        entry: Dict[str, float] = {}
        entry["fast_ops_per_sec"] = n / _timed(
            lambda: _compute_h(instance, assignment, n), repeats
        )
        entry["naive_ops_per_sec"] = n / _timed(
            lambda: _compute_h_reference(instance, assignment, n), repeats
        )
        out[str(n)] = entry
    return out


def merge_baseline(path: str, results: Dict[str, object]) -> Dict[str, object]:
    """Merge ``results`` into the shared baseline file per *entry*: other
    scripts' sections survive untouched, and a --quick run updates only
    the sizes it re-timed instead of dropping the full-size rows."""
    merged: Dict[str, object] = {}
    if os.path.exists(path):
        with open(path) as fh:
            merged = json.load(fh)
    for section, entries in results.items():
        existing = merged.get(section)
        if isinstance(entries, dict) and isinstance(existing, dict):
            existing.update(entries)
        else:
            merged[section] = entries
    with open(path, "w") as fh:
        json.dump(merged, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return merged


def _host_meta(quick: bool) -> Dict[str, object]:
    """Host facts a comparison needs: ``cpu_count`` lets the regression
    gate demote process-pool deltas to warnings across differing core
    counts; the backend/impl fields say which field engine produced the
    fast-path numbers."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover
        numpy_version = None
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
        "field_backend": vector.get_backend(),
        "field_impl": vector.active_impl(),
        "quick": quick,
    }


def run_benchmarks(repeats: int = 1, quick: bool = False) -> Dict[str, object]:
    msm_sizes = MSM_SIZES[:4] if quick else MSM_SIZES
    field_sizes = FIELD_SIZES[:3] if quick else FIELD_SIZES
    sc_sizes = SUMCHECK_SIZES[:4] if quick else SUMCHECK_SIZES
    hyrax_sizes = HYRAX_SIZES[:1] if quick else HYRAX_SIZES
    ntt_sizes = NTT_SIZES[:4] if quick else NTT_SIZES
    quotient_sizes = QUOTIENT_SIZES[:1] if quick else QUOTIENT_SIZES
    return {
        "meta": _host_meta(quick),
        "msm": bench_msm(msm_sizes, repeats),
        "field": bench_field(field_sizes, repeats),
        "sumcheck": bench_sumcheck(sc_sizes, repeats),
        "hyrax_commit": bench_hyrax(hyrax_sizes, repeats),
        "ntt": bench_ntt(ntt_sizes, repeats),
        "groth16_quotient": bench_quotient(quotient_sizes, repeats),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=DEFAULT_OUT)
    ap.add_argument("--repeats", type=int, default=1)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes only (for CI / regression checks)",
    )
    args = ap.parse_args(argv)
    results = run_benchmarks(repeats=args.repeats, quick=args.quick)
    merge_baseline(args.out, results)
    for section in (
        "msm", "field", "sumcheck", "hyrax_commit", "ntt", "groth16_quotient"
    ):
        print(f"[{section}]")
        for size, entry in sorted(
            results[section].items(), key=lambda kv: int(kv[0])
        ):
            parts = [f"{k}={v:,.0f}" for k, v in sorted(entry.items())]
            speed = ""
            if "naive_ops_per_sec" in entry:
                speed = (
                    f"  ({entry['fast_ops_per_sec'] / entry['naive_ops_per_sec']:.2f}x"
                    " vs naive)"
                )
            print(f"  n={size:>6}: {' '.join(parts)}{speed}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
