"""X1 — Sec. III-A claim: CRPC makes transformer-layer matmuls 7-9x faster
to prove, with the factor growing in dimension.

Measured live at growing scaled dims on the Spartan backend (fast enough in
Python to sweep), plus cost-model groth16 factors up to paper dims."""

import pytest

from repro.bench import emit_table, fmt_s
from repro.bench.harness import random_matrices
from repro.core.api import MatmulProver
from repro.zkml.compile import matmul_cost

SHAPES = [(4, 8, 8), (7, 16, 16), (7, 16, 32)]
PAPER_SHAPES = [(49, 32, 64), (49, 64, 128), (49, 160, 320), (49, 256, 512)]


@pytest.fixture(scope="module")
def sweep():
    out = []
    for shape in SHAPES:
        a, n, b = shape
        x, w, _ = random_matrices(a, n, b, seed=3)
        times = {}
        for strategy in ("vanilla", "crpc_psq"):
            prover = MatmulProver(a, n, b, strategy=strategy,
                                  backend="spartan")
            bundle = prover.prove(x, w)
            assert prover.verify(bundle)
            times[strategy] = bundle.timings["prove"]
        out.append((shape, times))
    return out


def test_crpc_scaling(benchmark, sweep, cost_model):
    a, n, b = SHAPES[0]
    x, w, _ = random_matrices(a, n, b, seed=3)
    prover = MatmulProver(a, n, b, strategy="crpc_psq", backend="spartan")
    benchmark.pedantic(prover.prove, args=(x, w), rounds=1, iterations=1)

    rows = []
    factors = []
    for shape, times in sweep:
        factor = times["vanilla"] / times["crpc_psq"]
        factors.append(factor)
        rows.append([
            f"{shape}", fmt_s(times["vanilla"]),
            fmt_s(times["crpc_psq"]), f"{factor:.1f}x", "measured (spartan)",
        ])
    for shape in PAPER_SHAPES:
        v = cost_model.groth16_prove_time(matmul_cost(*shape, "vanilla"))
        z = cost_model.groth16_prove_time(matmul_cost(*shape, "crpc_psq"))
        rows.append([
            f"{shape}", fmt_s(v), fmt_s(z), f"{v / z:.1f}x",
            "modelled (groth16)",
        ])
    print()
    print(emit_table(
        "crpc_scaling",
        "X1: CRPC speedup over vanilla circuits (paper: 7-9x from CRPC)",
        ["shape (a,n,b)", "vanilla", "zkVC", "speedup", "source"], rows,
    ))
    # The measured factor grows with size and exceeds 2x by the last point.
    assert factors[-1] > 2
    assert factors[-1] >= factors[0]
