"""X2 — Sec. III-B claims: PSQ cuts the R1CS "left wires", reducing the
R1CS computation by ~70% standalone, variables O(n^3) -> O(n^2), and the
Fig. 5 example (6 -> 3 left wires)."""

from repro.bench import emit_table
from repro.core.psq import left_wire_report, psq_reduction_factor
from repro.gadgets.matmul import MatmulCircuit


def test_psq_left_wire_accounting(benchmark):
    shape = (8, 16, 8)
    a, n, b = shape

    def build_reports():
        return {
            s: left_wire_report(s, MatmulCircuit(a, n, b, s).cs)
            for s in ("vanilla", "vanilla_psq", "crpc", "crpc_psq")
        }

    reports = benchmark(build_reports)

    rows = [
        [r.strategy, str(r.num_constraints), str(r.num_wires),
         str(r.a_wires), str(r.a_terms)]
        for r in reports.values()
    ]
    print()
    print(emit_table(
        "psq",
        f"X2: left-wire accounting at {shape} "
        "(paper Fig. 5: 6 -> 3 wires per dot product)",
        ["strategy", "constraints", "wires", "A-side wires", "A-side terms"],
        rows,
    ))

    # Fig. 5's 2x left-wire reduction at the vanilla level.
    factor = psq_reduction_factor(
        reports["vanilla"], reports["vanilla_psq"]
    )
    print(f"\nPSQ A-term reduction on vanilla: {factor:.0%}")
    assert factor >= 0.45

    # Variables: O(n^3) -> O(n^2).
    assert reports["crpc_psq"].num_wires < 4 * (a * n + n * b + a * b)
    assert reports["vanilla"].num_wires > a * b * n

    # PSQ leaves only the actual inputs on the A side.
    assert reports["crpc_psq"].a_wires == a * n

    # Against CRPC-without-PSQ, the intermediate-product wires disappear.
    assert reports["crpc"].a_wires == a * n + a * b * n
    reduction = 1 - reports["crpc_psq"].num_wires / reports["crpc"].num_wires
    print(f"PSQ wire reduction on CRPC: {reduction:.0%}")
    assert reduction > 0.7
