"""Table II — ablation of CRPC and PSQ on both backends.

Paper (at transformer patch-embedding dims):

    CRPC  PSQ   groth16 prove  spartan prove
    -     -     9.12 s         9.04 s
    -     yes   8.69 s         8.95 s
    yes   -     1.01 s         1.79 s
    yes   yes   0.73 s         1.75 s

Reproduced shape: CRPC is the big win on both backends (~9x / ~5x), PSQ
adds a further ~25-30% on groth16 but little on Spartan.
"""

import pytest

from repro.bench import emit_table, fmt_s, run_circuit_scheme
from repro.core.api import MatmulProver
from repro.bench.harness import random_matrices

SHAPE = (7, 16, 32)

ROWS = [
    ("-", "-", "vanilla"),
    ("-", "yes", "vanilla_psq"),
    ("yes", "-", "crpc"),
    ("yes", "yes", "crpc_psq"),
]


@pytest.fixture(scope="module")
def ablation(prover_cache):
    a, n, b = SHAPE
    x, w, _ = random_matrices(a, n, b, seed=11)
    out = {}
    for crpc, psq, strategy in ROWS:
        for backend in ("groth16", "spartan"):
            prover = MatmulProver(a, n, b, strategy=strategy,
                                  backend=backend)
            bundle = prover.prove(x, w)
            assert prover.verify(bundle)
            out[(strategy, backend)] = bundle
    return out


def test_table2_crpc_psq_ablation(benchmark, ablation):
    a, n, b = SHAPE
    x, w, _ = random_matrices(a, n, b, seed=11)
    prover = MatmulProver(a, n, b, strategy="crpc_psq", backend="spartan")
    benchmark.pedantic(prover.prove, args=(x, w), rounds=1, iterations=1)

    table = []
    for crpc, psq, strategy in ROWS:
        g = ablation[(strategy, "groth16")]
        s = ablation[(strategy, "spartan")]
        table.append([
            crpc, psq,
            fmt_s(g.timings["prove"]), fmt_s(g.timings["verify"]),
            fmt_s(s.timings["prove"]), fmt_s(s.timings["verify"]),
        ])
    print()
    print(emit_table(
        "table2",
        f"Table II: ablation at scaled dims [{a},{n}]x[{n},{b}] "
        "(paper: 9.12 -> 0.73 groth16, 9.04 -> 1.75 spartan)",
        ["CRPC", "PSQ", "G-prove", "G-verify", "S-prove", "S-verify"],
        table,
    ))

    g_vanilla = ablation[("vanilla", "groth16")].timings["prove"]
    g_crpc = ablation[("crpc", "groth16")].timings["prove"]
    g_zkvc = ablation[("crpc_psq", "groth16")].timings["prove"]
    s_vanilla = ablation[("vanilla", "spartan")].timings["prove"]
    s_zkvc = ablation[("crpc_psq", "spartan")].timings["prove"]

    # Shape: CRPC largest single win; full zkVC fastest overall.
    assert g_crpc < g_vanilla
    assert g_zkvc <= g_crpc * 1.05  # PSQ must not regress groth16
    assert g_zkvc < g_vanilla
    assert s_zkvc < s_vanilla
    print(f"\ngroth16 total speedup: {g_vanilla / g_zkvc:.1f}x "
          f"(paper: 12.5x at full dims)")
    print(f"spartan total speedup: {s_vanilla / s_zkvc:.1f}x "
          f"(paper: ~5x at full dims)")
