from setuptools import find_packages, setup

setup(
    name="repro-zkml",
    version="0.7.0",
    description=(
        "zkSNARK proving stack (Groth16 + Spartan over BN254) for "
        "verifiable ML inference"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # The core stack is pure-python: every kernel has a scalar big-int
    # path and the field engine degrades to it when numpy is absent
    # (REPRO_FIELD_BACKEND=scalar forces the same).  numpy unlocks the
    # vectorized limb-lane field backend (field/vector.py).
    install_requires=[],
    extras_require={
        "vector": ["numpy>=1.22"],
        "test": ["pytest", "hypothesis", "pytest-xdist", "pytest-timeout"],
    },
)
