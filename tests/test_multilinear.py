"""Multilinear-extension properties used by Spartan and zkCNN."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS
from repro.poly.multilinear import (
    MultilinearPoly,
    eq_eval,
    eq_evals,
    index_bits,
)

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)


class TestMultilinearPoly:
    @given(st.lists(elems, min_size=8, max_size=8))
    def test_agrees_on_hypercube(self, evals):
        p = MultilinearPoly(evals)
        for idx, v in enumerate(evals):
            point = index_bits(idx, p.num_vars)
            assert p.evaluate(point) == v % R

    @given(st.lists(elems, min_size=4, max_size=4), elems, elems)
    def test_multilinearity_in_each_var(self, evals, r, s):
        # p(r,...) is affine in r: p((r+s)/1 combination) check via two-point.
        p = MultilinearPoly(evals)
        half = (r + s) * pow(2, R - 2, R) % R
        v_r = p.evaluate([r, 0])
        v_s = p.evaluate([s, 0])
        v_mid = p.evaluate([half, 0])
        assert v_mid == (v_r + v_s) * pow(2, R - 2, R) % R

    def test_bind_first_var(self):
        p = MultilinearPoly([1, 2, 3, 4])
        r = 12345
        bound = p.bind_first_var(r)
        assert bound.num_vars == 1
        for x in (0, 1, 777):
            assert bound.evaluate([x]) == p.evaluate([r, x])

    def test_from_vector_pads(self):
        p = MultilinearPoly.from_vector([5, 6, 7], 2)
        assert p.evals == [5, 6, 7, 0]

    def test_from_vector_too_long(self):
        with pytest.raises(ValueError):
            MultilinearPoly.from_vector([1] * 5, 2)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            MultilinearPoly([1, 2, 3])

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            MultilinearPoly([1, 2]).evaluate([1, 2])


class TestEq:
    @given(st.lists(elems, min_size=1, max_size=4))
    def test_eq_evals_sum_to_one(self, point):
        # sum_b eq(point, b) == 1 (partition of unity).
        assert sum(eq_evals(point)) % R == 1

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=4))
    def test_eq_indicator_on_booleans(self, bits):
        table = eq_evals(bits)
        idx = int("".join(map(str, bits)), 2)
        for i, v in enumerate(table):
            assert v == (1 if i == idx else 0)

    @given(st.lists(elems, min_size=3, max_size=3))
    def test_eq_eval_matches_table(self, point):
        table = eq_evals(point)
        for idx in range(8):
            bits = index_bits(idx, 3)
            assert eq_eval(point, bits) == table[idx]

    def test_eq_eval_arity_mismatch(self):
        with pytest.raises(ValueError):
            eq_eval([1], [1, 2])

    def test_evaluate_via_eq_identity(self):
        # v~(r) == sum_b v[b] eq(r, b)
        evals = [9, 8, 7, 6]
        p = MultilinearPoly(evals)
        r = [12345, 67890]
        table = eq_evals(r)
        expected = sum(v * e for v, e in zip(evals, table)) % R
        assert p.evaluate(r) == expected


class TestIndexBits:
    def test_big_endian(self):
        assert index_bits(5, 3) == [1, 0, 1]
        assert index_bits(1, 3) == [0, 0, 1]
        assert index_bits(0, 2) == [0, 0]
