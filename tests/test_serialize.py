"""Serialisation round-trips and malformed-input rejection."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import serialize as ser
from repro.curve.bn254 import g1_generator, g2_generator, multiply
from repro.field.prime_field import BN254_FR_MODULUS
from repro.r1cs import LC, ConstraintSystem
from repro.spartan import Transcript
from repro.spartan import prove as spartan_prove
from repro.spartan import verify as spartan_verify

R = BN254_FR_MODULUS
G1, G2 = g1_generator(), g2_generator()
scalars = st.integers(min_value=0, max_value=R - 1)


class TestScalars:
    @given(scalars)
    def test_roundtrip(self, v):
        assert ser.scalar_from_bytes(ser.scalar_to_bytes(v)) == v

    def test_bad_length(self):
        with pytest.raises(ser.SerializationError):
            ser.scalar_from_bytes(b"\x01" * 31)

    def test_unreduced_rejected(self):
        with pytest.raises(ser.SerializationError):
            ser.scalar_from_bytes((R + 1).to_bytes(32, "big"))


class TestG1:
    @given(st.integers(1, 10 ** 6))
    @settings(max_examples=10)
    def test_roundtrip(self, k):
        p = multiply(G1, k)
        assert ser.g1_from_bytes(ser.g1_to_bytes(p)) == p

    def test_infinity(self):
        assert ser.g1_from_bytes(ser.g1_to_bytes(None)) is None

    def test_off_curve_rejected(self):
        bad = (1).to_bytes(32, "big") + (1).to_bytes(32, "big")
        with pytest.raises(ser.SerializationError):
            ser.g1_from_bytes(bad)

    def test_unreduced_rejected(self):
        from repro.field.prime_field import BN254_FQ_MODULUS

        bad = BN254_FQ_MODULUS.to_bytes(32, "big") + (2).to_bytes(32, "big")
        with pytest.raises(ser.SerializationError):
            ser.g1_from_bytes(bad)


class TestG2:
    @given(st.integers(1, 1000))
    @settings(max_examples=5)
    def test_roundtrip(self, k):
        p = multiply(G2, k)
        assert ser.g2_from_bytes(ser.g2_to_bytes(p)) == p

    def test_infinity(self):
        assert ser.g2_from_bytes(ser.g2_to_bytes(None)) is None

    def test_off_twist_rejected(self):
        bad = b"\x00" * 31 + b"\x01" + b"\x00" * 96
        with pytest.raises(ser.SerializationError):
            ser.g2_from_bytes(bad)


def _spartan_setup():
    cs = ConstraintSystem()
    x = cs.alloc_public("x", 3)
    y = cs.alloc_public("y", 9)
    w = cs.alloc("w", 3)
    cs.enforce(LC.from_wire(x), LC.from_wire(w), LC.from_wire(y))
    cs.mul(LC.from_wire(w), LC.from_wire(w), "w2")
    inst = cs.specialize(1)
    proof = spartan_prove(inst, cs.assignment(), Transcript(b"ser"))
    return cs, inst, proof


class TestProofSerialisation:
    def test_groth16_roundtrip(self):
        import repro.groth16 as g16

        rng = random.Random(3)
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 4)
        y = cs.alloc_public("y", 16)
        cs.enforce(LC.from_wire(x), LC.from_wire(x), LC.from_wire(y))
        inst = cs.specialize(1)
        kp = g16.setup(inst, rng=lambda: rng.getrandbits(256))
        proof = g16.prove(kp.pk, inst, cs.assignment())
        blob = ser.groth16_proof_to_bytes(proof)
        assert len(blob) == 256
        back = ser.groth16_proof_from_bytes(blob)
        assert g16.verify(kp.vk, cs.public_inputs(), back)

    def test_groth16_bad_length(self):
        with pytest.raises(ser.SerializationError):
            ser.groth16_proof_from_bytes(b"\x00" * 100)

    def test_spartan_roundtrip(self):
        cs, inst, proof = _spartan_setup()
        blob = ser.spartan_proof_to_bytes(proof)
        back = ser.spartan_proof_from_bytes(blob)
        assert spartan_verify(
            inst, cs.public_inputs(), back, Transcript(b"ser")
        )

    def test_spartan_truncated_rejected(self):
        _, _, proof = _spartan_setup()
        blob = ser.spartan_proof_to_bytes(proof)
        with pytest.raises(ser.SerializationError):
            ser.spartan_proof_from_bytes(blob[:-5])

    def test_spartan_trailing_rejected(self):
        _, _, proof = _spartan_setup()
        blob = ser.spartan_proof_to_bytes(proof)
        with pytest.raises(ser.SerializationError):
            ser.spartan_proof_from_bytes(blob + b"\x00")

    def test_spartan_size_matches_reported(self):
        _, _, proof = _spartan_setup()
        blob = ser.spartan_proof_to_bytes(proof)
        # Wire format adds only small framing over the reported proof size.
        assert abs(len(blob) - proof.size_bytes()) < 200
