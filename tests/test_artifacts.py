"""Artifact store: circuit/keypair caching, disk persistence, and the key
wire formats that make Groth16 proofs survive a process restart."""

import pytest
from _matutil import rand_mats

from repro import serialize as ser
from repro.core import MatmulProver, MatmulVerifier
from repro.core.artifacts import CircuitRegistry, KeyStore
from repro.core.backends import get_backend


@pytest.fixture
def stores(tmp_path):
    registry = CircuitRegistry()
    keystore = KeyStore(root=str(tmp_path), registry=registry)
    return registry, keystore


class TestCircuitRegistry:
    def test_cache_hit_returns_same_circuit(self):
        reg = CircuitRegistry()
        c1 = reg.get(2, 3, 2, "crpc_psq")
        c2 = reg.get(2, 3, 2, "crpc_psq")
        assert c1 is c2
        assert reg.builds == 1
        assert reg.hits == 1

    def test_distinct_keys_distinct_circuits(self):
        reg = CircuitRegistry()
        assert reg.get(2, 3, 2, "crpc_psq") is not reg.get(2, 3, 2, "vanilla")
        assert reg.get(2, 3, 2, "crpc_psq") is not reg.get(2, 4, 2, "crpc_psq")


class TestKeyStoreCaching:
    def test_one_setup_across_provers(self, stores):
        registry, keystore = stores
        x, w = rand_mats(2, 3, 2, seed=1)
        provers = [
            MatmulProver(
                2, 3, 2, backend="groth16", registry=registry, keystore=keystore
            )
            for _ in range(3)
        ]
        bundles = [p.prove(x, w) for p in provers]
        assert keystore.setups == 1
        # Every prover verifies every other prover's bundle: one keypair.
        for p in provers:
            for b in bundles:
                assert p.verify(b)

    def test_create_false_never_fabricates_keys(self, stores):
        registry, keystore = stores
        with pytest.raises(KeyError):
            keystore.artifacts(2, 3, 2, "crpc_psq", "groth16", create=False)
        assert keystore.setups == 0

    def test_spartan_needs_no_artifacts(self, stores):
        registry, keystore = stores
        assert keystore.artifacts(2, 3, 2, "crpc_psq", "spartan") is None
        assert keystore.setups == 0


class TestKeyStoreDisk:
    def test_restart_restores_keypair_and_verifies_old_proof(self, stores):
        registry, keystore = stores
        x, w = rand_mats(2, 3, 2, seed=2)
        prover = MatmulProver(
            2, 3, 2, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(x, w)
        blob = bundle.to_bytes()

        keystore.clear_memory()  # "restart": memory gone, disk survives
        restored = keystore.artifacts(2, 3, 2, "crpc_psq", "groth16")
        assert keystore.disk_loads == 1
        assert keystore.setups == 1  # no second setup ran

        backend = get_backend("groth16")
        verifier = MatmulVerifier(
            2, 3, 2, backend="groth16", vk=restored.keypair.vk, registry=registry
        )
        assert verifier.verify_bytes(blob)
        # and the restored *proving* key proves new instances too
        bundle2 = prover.prove(*rand_mats(2, 3, 2, seed=3))
        assert verifier.verify(bundle2)
        assert backend.export_vk(restored)  # exportable after restore

    def test_corrupt_keys_file_recovered_by_fresh_setup(self, tmp_path):
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")
        (keys_file,) = tmp_path.iterdir()
        keys_file.write_bytes(b"garbage")

        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        art = ks2.artifacts(2, 2, 2, "crpc_psq", "groth16")
        assert art is not None
        assert ks2.setups == 1  # re-ran setup instead of failing forever
        # and the repaired file loads cleanly next time
        ks2.clear_memory()
        ks2.artifacts(2, 2, 2, "crpc_psq", "groth16")
        assert ks2.disk_loads == 1

    def test_lost_setup_race_adopts_winner(self, tmp_path):
        """If another process published first, _publish must adopt the
        on-disk keypair instead of keeping a divergent one."""
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        winner = ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")

        backend = get_backend("groth16")
        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        circuit = reg2.get(2, 2, 2, "crpc_psq")
        loser = backend.setup(circuit)  # a racing setup that lost
        adopted = ks2._publish(
            backend, circuit, loser, backend.artifacts_to_bytes(loser)
        )
        assert adopted is not loser
        assert ser.groth16_vk_to_bytes(adopted.keypair.vk) == ser.groth16_vk_to_bytes(
            winner.keypair.vk
        )

    def test_fresh_store_on_same_root_loads_same_key(self, tmp_path):
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")
        vk1 = ks1.export_vk(2, 2, 2, "crpc_psq", "groth16")

        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        vk2 = ks2.export_vk(2, 2, 2, "crpc_psq", "groth16")
        assert ks2.setups == 0
        assert ks2.disk_loads == 1
        assert vk1 == vk2


class TestKeyWireFormats:
    @pytest.fixture(scope="class")
    def keypair(self):
        registry = CircuitRegistry()
        keystore = KeyStore(registry=registry)
        return keystore.artifacts(2, 2, 2, "crpc_psq", "groth16").keypair

    def test_vk_roundtrip(self, keypair):
        blob = ser.groth16_vk_to_bytes(keypair.vk)
        back = ser.groth16_vk_from_bytes(blob)
        assert ser.groth16_vk_to_bytes(back) == blob

    def test_pk_roundtrip(self, keypair):
        blob = ser.groth16_pk_to_bytes(keypair.pk)
        back = ser.groth16_pk_from_bytes(blob)
        assert ser.groth16_pk_to_bytes(back) == blob
        assert back.num_public == keypair.pk.num_public
        assert back.domain_size == keypair.pk.domain_size

    def test_keypair_roundtrip(self, keypair):
        blob = ser.groth16_keypair_to_bytes(keypair)
        back = ser.groth16_keypair_from_bytes(blob)
        assert ser.groth16_keypair_to_bytes(back) == blob

    def test_truncated_rejected(self, keypair):
        blob = ser.groth16_vk_to_bytes(keypair.vk)
        with pytest.raises(ser.SerializationError):
            ser.groth16_vk_from_bytes(blob[:-3])

    def test_trailing_rejected(self, keypair):
        blob = ser.groth16_keypair_to_bytes(keypair)
        with pytest.raises(ser.SerializationError):
            ser.groth16_keypair_from_bytes(blob + b"\x00")
