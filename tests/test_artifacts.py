"""Artifact store: circuit/keypair caching, disk persistence, and the key
wire formats that make Groth16 proofs survive a process restart."""

import os
import subprocess
import sys
import time

import pytest
from _matutil import rand_mats

from repro import serialize as ser
from repro.core import MatmulProver, MatmulVerifier
from repro.core.artifacts import CircuitRegistry, KeyStore
from repro.core.backends import get_backend


@pytest.fixture
def stores(tmp_path):
    registry = CircuitRegistry()
    keystore = KeyStore(root=str(tmp_path), registry=registry)
    return registry, keystore


class TestCircuitRegistry:
    def test_cache_hit_returns_same_circuit(self):
        reg = CircuitRegistry()
        c1 = reg.get(2, 3, 2, "crpc_psq")
        c2 = reg.get(2, 3, 2, "crpc_psq")
        assert c1 is c2
        assert reg.builds == 1
        assert reg.hits == 1

    def test_distinct_keys_distinct_circuits(self):
        reg = CircuitRegistry()
        assert reg.get(2, 3, 2, "crpc_psq") is not reg.get(2, 3, 2, "vanilla")
        assert reg.get(2, 3, 2, "crpc_psq") is not reg.get(2, 4, 2, "crpc_psq")


class TestKeyStoreCaching:
    def test_one_setup_across_provers(self, stores):
        registry, keystore = stores
        x, w = rand_mats(2, 3, 2, seed=1)
        provers = [
            MatmulProver(
                2, 3, 2, backend="groth16", registry=registry, keystore=keystore
            )
            for _ in range(3)
        ]
        bundles = [p.prove(x, w) for p in provers]
        assert keystore.setups == 1
        # Every prover verifies every other prover's bundle: one keypair.
        for p in provers:
            for b in bundles:
                assert p.verify(b)

    def test_create_false_never_fabricates_keys(self, stores):
        registry, keystore = stores
        with pytest.raises(KeyError):
            keystore.artifacts(2, 3, 2, "crpc_psq", "groth16", create=False)
        assert keystore.setups == 0

    def test_spartan_needs_no_artifacts(self, stores):
        registry, keystore = stores
        assert keystore.artifacts(2, 3, 2, "crpc_psq", "spartan") is None
        assert keystore.setups == 0


class TestKeyStoreDisk:
    def test_restart_restores_keypair_and_verifies_old_proof(self, stores):
        registry, keystore = stores
        x, w = rand_mats(2, 3, 2, seed=2)
        prover = MatmulProver(
            2, 3, 2, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(x, w)
        blob = bundle.to_bytes()

        keystore.clear_memory()  # "restart": memory gone, disk survives
        restored = keystore.artifacts(2, 3, 2, "crpc_psq", "groth16")
        assert keystore.disk_loads == 1
        assert keystore.setups == 1  # no second setup ran

        backend = get_backend("groth16")
        verifier = MatmulVerifier(
            2, 3, 2, backend="groth16", vk=restored.keypair.vk, registry=registry
        )
        assert verifier.verify_bytes(blob)
        # and the restored *proving* key proves new instances too
        bundle2 = prover.prove(*rand_mats(2, 3, 2, seed=3))
        assert verifier.verify(bundle2)
        assert backend.export_vk(restored)  # exportable after restore

    def test_corrupt_keys_file_recovered_by_fresh_setup(self, tmp_path):
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")
        (keys_file,) = tmp_path.iterdir()
        keys_file.write_bytes(b"garbage")

        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        art = ks2.artifacts(2, 2, 2, "crpc_psq", "groth16")
        assert art is not None
        assert ks2.setups == 1  # re-ran setup instead of failing forever
        # and the repaired file loads cleanly next time
        ks2.clear_memory()
        ks2.artifacts(2, 2, 2, "crpc_psq", "groth16")
        assert ks2.disk_loads == 1

    def test_lost_setup_race_adopts_winner(self, tmp_path):
        """If another process published first, _publish must adopt the
        on-disk keypair instead of keeping a divergent one."""
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        winner = ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")

        backend = get_backend("groth16")
        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        circuit = reg2.get(2, 2, 2, "crpc_psq")
        loser = backend.setup(circuit)  # a racing setup that lost
        adopted = ks2._publish(
            backend, circuit, loser, backend.artifacts_to_bytes(loser)
        )
        assert adopted is not loser
        assert ser.groth16_vk_to_bytes(adopted.keypair.vk) == ser.groth16_vk_to_bytes(
            winner.keypair.vk
        )

    def test_fresh_store_on_same_root_loads_same_key(self, tmp_path):
        reg1 = CircuitRegistry()
        ks1 = KeyStore(root=str(tmp_path), registry=reg1)
        ks1.artifacts(2, 2, 2, "crpc_psq", "groth16")
        vk1 = ks1.export_vk(2, 2, 2, "crpc_psq", "groth16")

        reg2 = CircuitRegistry()
        ks2 = KeyStore(root=str(tmp_path), registry=reg2)
        vk2 = ks2.export_vk(2, 2, 2, "crpc_psq", "groth16")
        assert ks2.setups == 0
        assert ks2.disk_loads == 1
        assert vk1 == vk2


_RACE_WORKER = """
import sys, time
deadline = float(sys.argv[2])
from repro import serialize
from repro.core.artifacts import CircuitRegistry, KeyStore
# All workers release at one deadline so setup+publish genuinely overlap.
time.sleep(max(0.0, deadline - time.time()))
ks = KeyStore(root=sys.argv[1], registry=CircuitRegistry())
art = ks.artifacts(2, 2, 2, "crpc_psq", "groth16")
sys.stdout.write(serialize.groth16_vk_to_bytes(art.keypair.vk).hex())
"""

_SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


class TestKeyStoreMultiprocessRace:
    """Atomic publish with adopt-on-race, driven by real OS processes.

    Two (or more) fresh worker processes adopting the same key path must
    converge on one keypair: no corruption, no double-publish where one
    process keeps serving a keypair the disk no longer holds.
    """

    def _race(self, tmp_path, n_procs, delay=2.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        deadline = str(time.time() + delay)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_WORKER, str(tmp_path), deadline],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(n_procs)
        ]
        vks = []
        for p in procs:
            out, err = p.communicate(timeout=300)
            assert p.returncode == 0, err
            vks.append(out)
        return vks

    def _assert_converged(self, tmp_path, vks):
        assert len(set(vks)) == 1, "processes diverged on the published key"
        files = sorted(f.name for f in tmp_path.iterdir())
        # exactly one published key file and no leaked tmp files (the
        # .repair flock file legitimately persists after a repair:
        # unlinking a flock file would reopen the lock race it prevents)
        assert [f for f in files if not f.endswith(".repair")] == [
            f for f in files if f.endswith(".keys")
        ], files
        assert sum(f.endswith(".keys") for f in files) == 1, files
        # the disk copy parses and matches what every process served
        reg = CircuitRegistry()
        ks = KeyStore(root=str(tmp_path), registry=reg)
        art = ks.artifacts(2, 2, 2, "crpc_psq", "groth16", create=False)
        assert ks.disk_loads == 1 and ks.setups == 0
        assert ser.groth16_vk_to_bytes(art.keypair.vk).hex() == vks[0]

    def test_fresh_processes_adopt_one_keypair(self, tmp_path):
        vks = self._race(tmp_path, n_procs=3)
        self._assert_converged(tmp_path, vks)

    def test_repair_race_over_corrupt_file(self, tmp_path):
        """Both processes find a damaged key file: repair must be
        serialized so exactly one replacement wins and the loser adopts
        it (this was the double-publish hole in the single-shot code)."""
        reg = CircuitRegistry()
        ks = KeyStore(root=str(tmp_path), registry=reg)
        circuit = reg.get(2, 2, 2, "crpc_psq")
        path = ks._path(get_backend("groth16"), circuit)
        with open(path, "wb") as fh:
            fh.write(b"corrupt keypair bytes")
        vks = self._race(tmp_path, n_procs=2)
        self._assert_converged(tmp_path, vks)


class TestKeyWireFormats:
    @pytest.fixture(scope="class")
    def keypair(self):
        registry = CircuitRegistry()
        keystore = KeyStore(registry=registry)
        return keystore.artifacts(2, 2, 2, "crpc_psq", "groth16").keypair

    def test_vk_roundtrip(self, keypair):
        blob = ser.groth16_vk_to_bytes(keypair.vk)
        back = ser.groth16_vk_from_bytes(blob)
        assert ser.groth16_vk_to_bytes(back) == blob

    def test_pk_roundtrip(self, keypair):
        blob = ser.groth16_pk_to_bytes(keypair.pk)
        back = ser.groth16_pk_from_bytes(blob)
        assert ser.groth16_pk_to_bytes(back) == blob
        assert back.num_public == keypair.pk.num_public
        assert back.domain_size == keypair.pk.domain_size

    def test_keypair_roundtrip(self, keypair):
        blob = ser.groth16_keypair_to_bytes(keypair)
        back = ser.groth16_keypair_from_bytes(blob)
        assert ser.groth16_keypair_to_bytes(back) == blob

    def test_truncated_rejected(self, keypair):
        blob = ser.groth16_vk_to_bytes(keypair.vk)
        with pytest.raises(ser.SerializationError):
            ser.groth16_vk_from_bytes(blob[:-3])

    def test_trailing_rejected(self, keypair):
        blob = ser.groth16_keypair_to_bytes(keypair)
        with pytest.raises(ser.SerializationError):
            ser.groth16_keypair_from_bytes(blob + b"\x00")
