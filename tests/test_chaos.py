"""Chaos soak: the fleet survives sustained churn with exactly-once results.

Two tiers:

* ``test_chaos_smoke`` — a scaled-down soak (one kill, one net_drop) that
  always runs; a few seconds of wall clock.
* ``test_chaos_soak_acceptance`` — the acceptance-sized soak (200 jobs,
  3 kills/restarts, net drops + a lease-busting stall, authenticated
  fleet, verified reference).  ~1 min of wall clock, so it only runs
  when ``REPRO_CHAOS_SOAK`` is set — the dedicated CI job sets it.

Both assert the same contract: zero lost jobs, zero duplicated jobs, no
degradation-ladder fallbacks (transport-level recovery absorbed every
fault), byte-identical Groth16 bundles vs a fault-free run, and a
connection pool that actually pools (dispatches > connects).
"""

import os

import pytest

from repro.core.chaos import ChaosConfig, ChaosReport, run_chaos


def _assert_contract(report: ChaosReport, config: ChaosConfig) -> None:
    assert report.errors == []
    assert report.lost_ids == [], f"lost jobs: {report.lost_ids}"
    assert report.duplicate_ids == [], f"duplicated jobs: {report.duplicate_ids}"
    assert len(report.bundles) == config.jobs
    # Transport-level recovery (retries on surviving/restarted workers)
    # must absorb every injected fault; an inline fallback would also
    # break byte-identity, so its absence is asserted separately.
    assert report.fallbacks == []
    assert report.kills == config.kills
    assert report.restarts == config.kills
    assert report.net_faults_fired >= 1, "no network fault actually fired"
    # The soak ran through a pool that pools: connection reuse dominates.
    assert report.transport["dispatches"] > report.transport["connects"]
    assert report.transport["reuses"] > 0
    # Byte-identity against the fault-free reference run.
    assert set(report.bundles) == set(report.reference_bundles)
    mismatched = [
        job_id
        for job_id, blob in report.bundles.items()
        if report.reference_bundles[job_id] != blob
    ]
    assert mismatched == [], f"bundles diverged for jobs {mismatched}"
    assert report.byte_identical


@pytest.mark.slow
def test_chaos_smoke(tmp_path):
    config = ChaosConfig(
        jobs=24,
        batches=4,
        kills=1,
        net_drops=1,
        net_stalls=0,
        verify_reference=False,
    )
    report = run_chaos(config, str(tmp_path), auth_token="chaos-smoke-token")
    _assert_contract(report, config)


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_CHAOS_SOAK"),
    reason="acceptance-sized soak (~1 min); set REPRO_CHAOS_SOAK=1 to run",
)
@pytest.mark.timeout(300)
def test_chaos_soak_acceptance(tmp_path):
    config = ChaosConfig()  # 200 jobs, 3 kills, 2 drops, 1 stall
    assert config.jobs >= 200 and config.kills >= 3
    assert config.net_drops + config.net_stalls >= 2
    report = run_chaos(config, str(tmp_path), auth_token="chaos-soak-token")
    _assert_contract(report, config)
    assert report.reference_verified is True
    assert report.net_faults_fired == config.net_drops + config.net_stalls
