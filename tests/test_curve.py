"""BN254 group-law and MSM tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curve.bn254 import (
    B2,
    CURVE_ORDER,
    add,
    double,
    eq,
    g1_generator,
    g1_sum,
    g2_generator,
    is_on_curve,
    multiply,
    neg,
    point_to_bytes,
    twist,
)
from repro.curve.msm import msm

scalars = st.integers(min_value=0, max_value=CURVE_ORDER - 1)
small = st.integers(min_value=0, max_value=300)

G1 = g1_generator()
G2 = g2_generator()


class TestG1GroupLaw:
    def test_generator_on_curve(self):
        assert is_on_curve(G1, 3)

    def test_identity(self):
        assert add(G1, None) == G1
        assert add(None, G1) == G1
        assert multiply(G1, 0) is None

    def test_inverse(self):
        assert add(G1, neg(G1)) is None

    def test_double_matches_add(self):
        assert double(G1) == add(G1, G1)

    @given(small, small)
    def test_multiply_is_homomorphic(self, a, b):
        assert multiply(G1, a + b) == add(multiply(G1, a), multiply(G1, b))

    @given(small, small)
    def test_multiply_associative_scalars(self, a, b):
        assert multiply(multiply(G1, a), b) == multiply(G1, a * b)

    def test_order_annihilates(self):
        assert multiply(G1, CURVE_ORDER) is None

    def test_multiply_stays_on_curve(self):
        for k in (2, 3, 17, 65537):
            assert is_on_curve(multiply(G1, k), 3)


class TestG2GroupLaw:
    def test_generator_on_twist(self):
        assert is_on_curve(G2, B2)

    def test_double_matches_add(self):
        assert eq(double(G2), add(G2, G2))

    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=50))
    @settings(max_examples=10)
    def test_multiply_is_homomorphic(self, a, b):
        assert multiply(G2, a + b) == add(multiply(G2, a), multiply(G2, b))

    def test_order_annihilates(self):
        assert multiply(G2, CURVE_ORDER) is None

    def test_twist_lands_on_fq12_curve(self):
        from repro.field.extension import Fq12

        tw = twist(G2)
        assert is_on_curve(tw, Fq12.from_int(3))

    def test_twist_of_none(self):
        assert twist(None) is None


class TestMsm:
    @given(st.lists(scalars, min_size=0, max_size=12))
    def test_matches_naive(self, ss):
        points = [multiply(G1, i + 1) for i in range(len(ss))]
        expected = None
        for p, s in zip(points, ss):
            expected = add(expected, multiply(p, s))
        assert msm(points, ss) == expected

    def test_empty(self):
        assert msm([], []) is None

    def test_none_points_skipped(self):
        assert msm([None, G1], [5, 7]) == multiply(G1, 7)

    def test_zero_scalars_skipped(self):
        assert msm([G1, G1], [0, 3]) == multiply(G1, 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            msm([G1], [1, 2])

    def test_large_batch(self):
        n = 100
        points = [multiply(G1, i + 1) for i in range(n)]
        ss = [(i * 7919 + 13) for i in range(n)]
        expected_scalar = sum((i + 1) * s for i, s in enumerate(ss))
        assert msm(points, ss) == multiply(G1, expected_scalar)


class TestHelpers:
    def test_g1_sum(self):
        pts = [multiply(G1, k) for k in (1, 2, 3)]
        assert g1_sum(pts) == multiply(G1, 6)
        assert g1_sum([]) is None

    def test_point_serialisation_distinct(self):
        assert point_to_bytes(G1) != point_to_bytes(multiply(G1, 2))
        assert point_to_bytes(None) == b"\x00" * 64
        assert len(point_to_bytes(G2)) == 128
