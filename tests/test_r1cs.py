"""Constraint-system builder, linear combinations, and specialisation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS
from repro.r1cs import LC, ConstraintSystem, derive_z
from repro.r1cs.system import FlatR1CS, R1CSInstance

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)


def _random_instance(rng, num_constraints, num_wires, max_terms=4):
    def rows():
        return [
            [
                (rng.randrange(num_wires), rng.randrange(R))
                for _ in range(rng.randrange(max_terms + 1))
            ]
            for _ in range(num_constraints)
        ]

    return R1CSInstance(
        num_wires=num_wires,
        num_public=1,
        a_rows=rows(),
        b_rows=rows(),
        c_rows=rows(),
    )


class TestLinearCombination:
    def test_merges_duplicate_terms(self):
        lc = LC([(1, 2, 0), (1, 3, 0)])
        assert len(lc) == 1
        assert lc.terms[0].coeff == 5

    def test_cancellation_removes_term(self):
        lc = LC([(1, 2, 0), (1, R - 2, 0)])
        assert len(lc) == 0
        assert not lc

    def test_distinct_z_degrees_kept(self):
        lc = LC([(1, 2, 0), (1, 2, 1)])
        assert len(lc) == 2
        assert lc.max_z_degree == 1

    @given(elems, elems, elems)
    def test_evaluate(self, a, b, z):
        lc = LC([(1, a, 0), (2, b, 2)])
        assignment = [1, 5, 7]
        expected = (a * 5 + b * pow(z, 2, R) * 7) % R
        assert lc.evaluate(assignment, z) == expected

    def test_add_sub_scale(self):
        x = LC.from_wire(1)
        y = LC.from_wire(2)
        combo = (x + y).scale(3) - x
        assignment = [1, 10, 20]
        assert combo.evaluate(assignment) == (3 * 30 - 10) % R

    def test_shift_z(self):
        lc = LC([(1, 1, 0)]).shift_z(3)
        assert lc.terms[0].z_deg == 3

    def test_specialize_merges_wires(self):
        lc = LC([(1, 1, 0), (1, 1, 1)])
        z = 10
        spec = lc.specialize(z)
        assert spec == [(1, 11)]

    def test_constant(self):
        lc = LC.constant(42)
        assert lc.evaluate([1]) == 42

    def test_wires_listing(self):
        lc = LC([(3, 1, 0), (1, 1, 0), (3, 1, 2)])
        assert lc.wires() == [1, 3]

    def test_repr_truncates(self):
        lc = LC([(i, 1, 0) for i in range(10)])
        assert "..." in repr(lc)


class TestConstraintSystem:
    def test_simple_satisfaction(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 3)
        y = cs.alloc("y", 9)
        cs.enforce(LC.from_wire(x), LC.from_wire(x), LC.from_wire(y))
        assert cs.is_satisfied()
        cs.set_value(y, 10)
        assert not cs.is_satisfied()

    def test_public_after_witness_rejected(self):
        cs = ConstraintSystem()
        cs.alloc("w", 1)
        with pytest.raises(ValueError):
            cs.alloc_public("x", 1)

    def test_unset_wire_raises(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x")
        cs.enforce(LC.from_wire(x), LC.constant(1), LC.from_wire(x))
        with pytest.raises(ValueError):
            cs.is_satisfied()

    def test_mul_helper(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 4)
        p = cs.mul(LC.from_wire(x), LC.from_wire(x), "x2")
        assert cs.value(p) == 16
        assert cs.is_satisfied()

    def test_enforce_equal(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 5)
        y = cs.alloc("y", 5)
        cs.enforce_equal(LC.from_wire(x), LC.from_wire(y))
        assert cs.is_satisfied()
        cs.set_value(y, 6)
        assert not cs.is_satisfied()
        assert cs.first_unsatisfied() is not None

    def test_packed_satisfaction_needs_consistent_z(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 2)
        y = cs.alloc("y")
        # x * (z*x) == y  ->  y must be z * 4
        z = 1000
        cs.set_value(y, z * 4)
        cs.enforce(
            LC.from_wire(x), LC.from_wire(x, z_deg=1), LC.from_wire(y)
        )
        assert cs.is_packed
        assert cs.is_satisfied(z)
        assert not cs.is_satisfied(z + 1)

    def test_stats(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 2)
        y = cs.alloc("y", 4)
        cs.enforce(
            LC.from_wire(x) + LC.from_wire(y),
            LC.from_wire(x),
            LC.from_wire(y, z_deg=2),
        )
        st_ = cs.stats()
        assert st_.num_constraints == 1
        assert st_.num_wires == 3
        assert st_.num_public == 2
        assert st_.a_terms == 2
        assert st_.b_terms == 1
        assert st_.c_terms == 1
        assert st_.a_wires == 2
        assert st_.max_z_degree == 2

    def test_public_inputs_slice(self):
        cs = ConstraintSystem()
        cs.alloc_public("a", 10)
        cs.alloc_public("b", 20)
        cs.alloc("w", 30)
        assert cs.public_inputs() == [10, 20]
        assert cs.assignment() == [1, 10, 20, 30]

    def test_specialize_concrete_instance(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 3)
        y = cs.alloc("y")
        z = 100
        cs.set_value(y, 3 * pow(z, 2, R) * 3 % R)
        cs.enforce(
            LC.from_wire(x, z_deg=2),
            LC.from_wire(x),
            LC.from_wire(y),
        )
        inst = cs.specialize(z)
        assert inst.num_constraints == 1
        assert inst.is_satisfied(cs.assignment())
        bad = cs.assignment()
        bad[y] = 1
        assert not inst.is_satisfied(bad)

    def test_instance_counts(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 2)
        w = cs.alloc("w", 4)
        cs.enforce(LC.from_wire(x), LC.from_wire(x), LC.from_wire(w))
        inst = cs.specialize(1)
        assert inst.num_public == 2
        assert inst.num_witness == 1
        assert inst.nonzeros() == 3
        assert inst.matvec("A", [1, 2, 4]) == [2]

    def test_instance_entry_iteration(self):
        cs = ConstraintSystem()
        x = cs.alloc_public("x", 2)
        cs.enforce(LC.from_wire(x), LC.constant(1), LC.from_wire(x))
        inst = cs.specialize(1)
        assert list(inst.entries("A")) == [(0, 1, 1)]
        assert list(inst.entries("B")) == [(0, 0, 1)]

    def test_assignment_length_checked(self):
        cs = ConstraintSystem()
        cs.alloc_public("x", 1)
        inst = cs.specialize(1)
        with pytest.raises(ValueError):
            inst.is_satisfied([1])


class TestFlatR1CS:
    """The CSR-flattened kernels must agree with the tuple-unpacking
    reference on random instances — sizes up to 2^12 nonzeros."""

    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(),
    )
    @settings(max_examples=20, deadline=None)
    def test_matvec_matches_naive(self, log_n, seed):
        rng = random.Random(seed)
        n = 1 << log_n
        inst = _random_instance(rng, n, max(2, n))
        assignment = [rng.randrange(R) for _ in range(inst.num_wires)]
        for which in "ABC":
            assert inst.matvec(which, assignment) == inst.naive_matvec(
                which, assignment
            )

    @given(st.integers())
    @settings(max_examples=15, deadline=None)
    def test_eval_products_matches_rows(self, seed):
        rng = random.Random(seed)
        inst = _random_instance(rng, 16, 8)
        assignment = [rng.randrange(R) for _ in range(inst.num_wires)]
        expected = [
            (
                inst._row_dot(ra, assignment),
                inst._row_dot(rb, assignment),
                inst._row_dot(rc, assignment),
            )
            for ra, rb, rc in zip(inst.a_rows, inst.b_rows, inst.c_rows)
        ]
        assert list(inst.eval_products(assignment)) == expected

    def test_flat_layout(self):
        flat = FlatR1CS([[(0, 2), (3, 5)], [], [(1, R + 7)]])
        assert flat.num_rows == 3
        assert flat.row_ptr == [0, 2, 2, 3]
        assert flat.wires == [0, 3, 1]
        assert flat.coeffs == [2, 5, 7]  # reduced at build time
        assert flat.matvec([1, 2, 3, 4]) == [22, 0, 14]

    def test_flat_cache_reused(self):
        rng = random.Random(3)
        inst = _random_instance(rng, 4, 4)
        assert inst.flat("A") is inst.flat("A")
        assert inst.flat("A") is not inst.flat("B")

    def test_invalidate_flat_cache_after_mutation(self):
        inst = R1CSInstance(
            num_wires=2,
            num_public=1,
            a_rows=[[(1, 1)]],
            b_rows=[[(1, 1)]],
            c_rows=[[(1, 1)]],
        )
        assert inst.matvec("A", [1, 5]) == [5]
        inst.a_rows[0].append((0, 2))
        inst.invalidate_flat_cache()
        assert inst.matvec("A", [1, 5]) == [7]

    def test_is_satisfied_via_flat_kernels(self):
        # x * x = w  with x = 2, w = 4.
        inst = R1CSInstance(
            num_wires=3,
            num_public=2,
            a_rows=[[(1, 1)]],
            b_rows=[[(1, 1)]],
            c_rows=[[(2, 1)]],
        )
        assert inst.is_satisfied([1, 2, 4])
        assert not inst.is_satisfied([1, 2, 5])

    def test_negative_coefficients_match(self):
        inst = R1CSInstance(
            num_wires=2,
            num_public=1,
            a_rows=[[(0, -3), (1, R - 1)]],
            b_rows=[[(1, 1)]],
            c_rows=[[]],
        )
        assignment = [1, 5]
        assert inst.matvec("A", assignment) == inst.naive_matvec(
            "A", assignment
        )


class TestDeriveZ:
    def test_deterministic(self):
        assert derive_z(b"abc") == derive_z(b"abc")

    def test_seed_sensitivity(self):
        assert derive_z(b"abc") != derive_z(b"abd")

    def test_in_field(self):
        assert 0 <= derive_z(b"anything") < R
