"""Autograd engine: numeric gradient checks per op."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, cross_entropy


def numeric_grad(f, x: np.ndarray, i, eps=1e-6):
    x[i] += eps
    up = f()
    x[i] -= 2 * eps
    down = f()
    x[i] += eps
    return (up - down) / (2 * eps)


def check_op(op, shape=(3, 4), seed=0, idx=(1, 2), tol=1e-5):
    rng = np.random.default_rng(seed)
    t = Tensor(rng.normal(size=shape), requires_grad=True)

    def loss():
        return float(op(t).sum().data)

    out = op(t).sum()
    out.backward()
    analytic = t.grad[idx]
    numeric = numeric_grad(loss, t.data, idx)
    assert analytic == pytest.approx(numeric, abs=tol, rel=1e-4)


class TestElementwiseOps:
    def test_add(self):
        check_op(lambda t: t + Tensor(np.ones(t.shape)))

    def test_sub(self):
        check_op(lambda t: t - Tensor(np.full(t.shape, 0.3)))

    def test_mul(self):
        check_op(lambda t: t * Tensor(np.full(t.shape, 1.7)))

    def test_scale(self):
        check_op(lambda t: t.scale(2.5))

    def test_relu(self):
        check_op(lambda t: t.relu(), seed=3)

    def test_gelu(self):
        check_op(lambda t: t.gelu())

    def test_gelu_poly(self):
        check_op(lambda t: t.gelu_poly())


class TestShapeOps:
    def test_matmul_left(self):
        w = Tensor(np.random.default_rng(1).normal(size=(4, 5)))
        check_op(lambda t: t @ w)

    def test_matmul_right_grad(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(3, 4)))
        w = Tensor(rng.normal(size=(4, 5)), requires_grad=True)

        def loss():
            return float((x @ w).sum().data)

        (x @ w).sum().backward()
        assert w.grad[2, 3] == pytest.approx(
            numeric_grad(loss, w.data, (2, 3)), abs=1e-5
        )

    def test_transpose(self):
        check_op(lambda t: t.transpose())

    def test_reshape(self):
        check_op(lambda t: t.reshape(4, 3))

    def test_mean(self):
        check_op(lambda t: t.mean(axis=1))

    def test_batched_matmul(self):
        rng = np.random.default_rng(4)
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)))

        def loss():
            return float((a @ b).sum().data)

        (a @ b).sum().backward()
        assert a.grad[1, 2, 3] == pytest.approx(
            numeric_grad(loss, a.data, (1, 2, 3)), abs=1e-5
        )


class TestNormalisations:
    def test_softmax(self):
        check_op(lambda t: t.softmax(), tol=1e-6)

    def test_layernorm(self):
        check_op(lambda t: t.layernorm(), tol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(np.random.default_rng(5).normal(size=(3, 6)))
        out = t.softmax().data
        assert np.allclose(out.sum(axis=-1), 1.0)

    def test_layernorm_standardises(self):
        t = Tensor(np.random.default_rng(6).normal(size=(3, 16)))
        out = t.layernorm().data
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.var(axis=-1), 1, atol=1e-2)


class TestCrossEntropy:
    def test_grad(self):
        rng = np.random.default_rng(7)
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 0])

        def loss():
            return float(cross_entropy(Tensor(logits.data), labels).data)

        cross_entropy(logits, labels).backward()
        assert logits.grad[1, 2] == pytest.approx(
            numeric_grad(loss, logits.data, (1, 2)), abs=1e-6
        )

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-6


class TestBackwardMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x  # dy/dx = 2x = 4... via two parents referencing x
        y.backward(np.array([1.0]))
        assert x.grad[0] == pytest.approx(4.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x + x).backward()

    def test_no_grad_leaves_untouched(self):
        x = Tensor(np.ones(3))
        y = Tensor(np.ones(3), requires_grad=True)
        (x * y).sum().backward()
        assert x.grad is None
        assert y.grad is not None

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x.scale(2.0)
        b = x.scale(3.0)
        (a + b).sum().backward()
        assert x.grad[0] == pytest.approx(5.0)
