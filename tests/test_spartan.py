"""Spartan backend: sumcheck, Hyrax commitment, and the full SNARK."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS
from repro.r1cs import LC, ConstraintSystem
from repro.spartan import (
    HyraxProver,
    Transcript,
    hash_to_g1,
    hyrax_verify,
    pedersen_commit,
    pedersen_generators,
    prove,
    sumcheck_prove,
    sumcheck_verify,
    verify,
)
from repro.poly.multilinear import MultilinearPoly

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)


class TestTranscript:
    def test_deterministic(self):
        t1, t2 = Transcript(), Transcript()
        t1.append_scalar(b"a", 5)
        t2.append_scalar(b"a", 5)
        assert t1.challenge_scalar(b"c") == t2.challenge_scalar(b"c")

    def test_message_sensitivity(self):
        t1, t2 = Transcript(), Transcript()
        t1.append_scalar(b"a", 5)
        t2.append_scalar(b"a", 6)
        assert t1.challenge_scalar(b"c") != t2.challenge_scalar(b"c")

    def test_label_sensitivity(self):
        t1, t2 = Transcript(), Transcript()
        assert t1.challenge_scalar(b"x") != t2.challenge_scalar(b"y")

    def test_challenge_advances_state(self):
        t = Transcript()
        assert t.challenge_scalar(b"c") != t.challenge_scalar(b"c")

    def test_challenge_vector(self):
        t = Transcript()
        cs = t.challenge_scalars(b"v", 4)
        assert len(set(cs)) == 4


class TestSumcheck:
    @given(st.lists(elems, min_size=8, max_size=8))
    def test_product_sumcheck_roundtrip(self, table):
        other = [(i * 7 + 3) % R for i in range(8)]
        claim = sum(a * b for a, b in zip(table, other)) % R

        def combine(vals):
            return vals[0] * vals[1] % R

        pf, r_pt, finals = sumcheck_prove(
            [table, other], combine, 2, claim, Transcript(), b"t"
        )
        ok, final_claim, r_pt_v = sumcheck_verify(
            pf, 2, claim, 3, Transcript(), b"t"
        )
        assert ok
        assert r_pt == r_pt_v
        assert final_claim == finals[0] * finals[1] % R
        # Final values really are the MLE evaluations at the challenge.
        assert MultilinearPoly(table).evaluate(r_pt) == finals[0]

    def test_wrong_claim_rejected(self):
        table = [1, 2, 3, 4]

        def combine(vals):
            return vals[0]

        pf, _, _ = sumcheck_prove(
            [table], combine, 1, sum(table) % R, Transcript(), b"t"
        )
        # The verifier checks p(0) + p(1) against *its* claim: an honest
        # transcript verified against a different claimed sum must fail.
        ok, _, _ = sumcheck_verify(pf, 1, 999, 2, Transcript(), b"t")
        assert not ok

    def test_wrong_round_count_rejected(self):
        table = [1, 2, 3, 4]

        def combine(vals):
            return vals[0]

        pf, _, _ = sumcheck_prove(
            [table], combine, 1, sum(table) % R, Transcript(), b"t"
        )
        ok, _, _ = sumcheck_verify(
            pf, 1, sum(table) % R, 3, Transcript(), b"t"
        )
        assert not ok

    def test_mismatched_tables_rejected(self):
        with pytest.raises(ValueError):
            sumcheck_prove(
                [[1, 2], [1, 2, 3, 4]], lambda v: v[0], 1, 0, Transcript()
            )


class TestHyrax:
    def test_hash_to_g1_on_curve(self):
        from repro.curve.bn254 import is_on_curve

        p = hash_to_g1(b"test")
        assert is_on_curve(p, 3)
        assert hash_to_g1(b"test") == p
        assert hash_to_g1(b"other") != p

    def test_generators_independent_and_cached(self):
        gens = pedersen_generators(8)
        assert len(set(gens)) == 8
        assert pedersen_generators(4) == gens[:4]

    def test_pedersen_binding_shape(self):
        gens = pedersen_generators(4)
        c1 = pedersen_commit([1, 2, 3, 4], 7, gens)
        c2 = pedersen_commit([1, 2, 3, 5], 7, gens)
        assert c1 != c2

    def test_pedersen_hiding_blinder(self):
        gens = pedersen_generators(4)
        assert pedersen_commit([1, 2, 3, 4], 7, gens) != pedersen_commit(
            [1, 2, 3, 4], 8, gens
        )

    @given(st.lists(elems, min_size=4, max_size=4),
           st.lists(elems, min_size=4, max_size=4))
    def test_opening_roundtrip(self, vec, point_raw):
        point = [p % R for p in point_raw[:4]]
        hp = HyraxProver(vec + [0] * 12, 4)
        commit = hp.commit()
        opening = hp.open(point)
        assert hyrax_verify(commit, point, opening)
        expected = MultilinearPoly(vec + [0] * 12).evaluate(point)
        assert opening.value == expected

    def test_tampered_opening_rejected(self):
        hp = HyraxProver(list(range(16)), 4)
        commit = hp.commit()
        opening = hp.open([1, 2, 3, 4])
        opening.value = (opening.value + 1) % R
        assert not hyrax_verify(commit, [1, 2, 3, 4], opening)

    def test_tampered_t_rejected(self):
        hp = HyraxProver(list(range(16)), 4)
        commit = hp.commit()
        opening = hp.open([1, 2, 3, 4])
        opening.t[0] = (opening.t[0] + 1) % R
        assert not hyrax_verify(commit, [1, 2, 3, 4], opening)

    def test_wrong_arity(self):
        hp = HyraxProver(list(range(16)), 4)
        with pytest.raises(ValueError):
            hp.open([1, 2])


def build_test_cs():
    cs = ConstraintSystem()
    x1 = cs.alloc_public("x1", 3)
    x2 = cs.alloc_public("x2", 4)
    y = cs.alloc_public("y", 72)
    w = cs.alloc("w", 5)
    cs.enforce(
        LC.from_wire(x1) + LC.from_wire(w),
        LC.from_wire(x2) + LC.from_wire(w),
        LC.from_wire(y),
    )
    w2 = cs.mul(LC.from_wire(w), LC.from_wire(w), "w2")
    cs.mul(LC.from_wire(w2), LC.from_wire(w2), "w4")
    return cs


class TestSpartanSnark:
    def test_roundtrip(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        assert verify(inst, cs.public_inputs(), pf, Transcript())

    def test_wrong_public_inputs_rejected(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        assert not verify(inst, [3, 4, 71], pf, Transcript())

    def test_wrong_input_count_rejected(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        assert not verify(inst, [3, 4], pf, Transcript())

    def test_tampered_sumcheck_rejected(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        pf.sumcheck1.round_polys[0][0] = (
            pf.sumcheck1.round_polys[0][0] + 1
        ) % R
        assert not verify(inst, cs.public_inputs(), pf, Transcript())

    def test_tampered_va_rejected(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        pf.va = (pf.va + 1) % R
        assert not verify(inst, cs.public_inputs(), pf, Transcript())

    def test_tampered_opening_rejected(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        pf.opening.value = (pf.opening.value + 1) % R
        assert not verify(inst, cs.public_inputs(), pf, Transcript())

    def test_transcript_domain_separation(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript(b"domain-a"))
        assert not verify(
            inst, cs.public_inputs(), pf, Transcript(b"domain-b")
        )
        assert verify(
            inst, cs.public_inputs(), pf, Transcript(b"domain-a")
        )

    def test_proof_size_reported(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        pf = prove(inst, cs.assignment(), Transcript())
        assert pf.size_bytes() > 0

    def test_assignment_length_checked(self):
        cs = build_test_cs()
        inst = cs.specialize(1)
        with pytest.raises(ValueError):
            prove(inst, [1, 2], Transcript())
