"""Transport resilience primitives: circuit breakers, the connection
pool, the authenticated handshake, and health-aware placement.

Everything time-dependent runs against fake clocks (both
:class:`~repro.core.resilience.CircuitBreaker` and
:class:`~repro.core.remote.ConnectionPool` take an injectable ``clock``),
so breaker cooldowns and idle reaping are stepped deterministically —
no sleeps, no flakes.  The handshake unit tests script the worker side
of the exchange over a socketpair; the slow integration tests run real
worker subprocesses.
"""

import os
import socket
import threading

import pytest

from repro.core.errors import FleetAuthError, WorkerUnavailable
from repro.core.remote import (
    AUTH,
    AUTH_OK,
    CHALLENGE,
    ERROR,
    HELLO,
    JOBS,
    PING,
    PONG,
    TOKEN_ENV,
    ConnectionPool,
    RemoteProvingExecutor,
    WorkerRegistry,
    _auth_mac,
    client_handshake,
    open_connection,
    parse_worker_addr,
    recv_frame,
    send_frame,
)
from repro.core.remote_worker import launch_loopback_workers, stop_workers
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro import serialize


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        return CircuitBreaker(BreakerConfig(**overrides), clock=clock), clock

    def test_starts_closed_and_admissible(self):
        breaker, _ = self.make()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.admissible()

    def test_trips_on_consecutive_failures(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.admissible()

    def test_trips_on_failure_ewma_without_consecutive_run(self):
        # fail, ok, fail, fail: never 3 in a row, but with alpha=0.35 the
        # EWMA walks 0.35 -> 0.2275 -> 0.4979 -> 0.6736 >= 0.5 at 4 samples.
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED  # only 3 samples so far
        breaker.record_failure()
        assert breaker.consecutive_failures < 3
        assert breaker.state == BREAKER_OPEN

    def test_cooldown_gates_admissibility(self):
        breaker, clock = self.make(cooldown_seconds=2.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.admissible()
        clock.advance(1.9)
        assert not breaker.admissible()
        clock.advance(0.2)
        assert breaker.admissible()  # cooldown served: probe may be claimed

    def test_half_open_admits_single_probe(self):
        breaker, clock = self.make(cooldown_seconds=2.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.note_dispatch()  # first dispatcher claims the probe slot
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.admissible()  # second dispatcher is excluded

    def test_probe_failure_reopens_with_escalated_cooldown(self):
        breaker, clock = self.make(cooldown_seconds=2.0, cooldown_multiplier=2.0)
        for _ in range(3):
            breaker.record_failure()
        first_probe_delay = breaker.probe_at - clock.now
        assert first_probe_delay == pytest.approx(2.0)
        clock.advance(2.1)
        breaker.note_dispatch()
        breaker.record_failure()  # the probe itself fails
        assert breaker.state == BREAKER_OPEN
        assert breaker.probe_at - clock.now == pytest.approx(4.0)  # doubled

    def test_escalation_caps_at_max_cooldown(self):
        breaker, clock = self.make(
            cooldown_seconds=2.0, cooldown_multiplier=2.0, cooldown_max_seconds=30.0
        )
        for _ in range(3):
            breaker.record_failure()
        for _ in range(8):  # flap: every probe fails
            clock.advance(31.0)
            breaker.note_dispatch()
            breaker.record_failure()
        assert breaker.probe_at - clock.now == pytest.approx(30.0)

    def test_probe_success_closes_and_decays_history(self):
        breaker, clock = self.make(cooldown_seconds=2.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.1)
        breaker.note_dispatch()
        ewma_before = breaker.failure_ewma
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.admissible()
        # History decays rather than resets: a re-trip serves a cooldown
        # informed by the past, but a recovered worker isn't punished forever.
        assert breaker.failure_ewma < ewma_before
        assert breaker.opened_count == 0  # 1 // 2

    def test_snapshot_reports_state(self):
        breaker, _ = self.make()
        breaker.record_failure(latency_seconds=0.25)
        snap = breaker.snapshot()
        assert snap["state"] == BREAKER_CLOSED
        assert snap["samples"] == 1
        assert snap["latency_ewma"] == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# Connection pool (real sockets against a dummy acceptor, fake clock)
# ---------------------------------------------------------------------------


class _Acceptor:
    """A listening socket that accepts and holds connections (no protocol
    — the pool under test has no token, so acquire() is a bare dial)."""

    def __init__(self):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(16)
        self.addr = self.listener.getsockname()
        self.accepted = []
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while True:
            try:
                conn, _ = self.listener.accept()
            except OSError:
                return
            self.accepted.append(conn)

    def close(self):
        self.listener.close()
        for conn in self.accepted:
            conn.close()
        self._thread.join(timeout=5)


@pytest.fixture()
def acceptor():
    server = _Acceptor()
    yield server
    server.close()


class TestConnectionPool:
    def test_acquire_release_reuses_socket(self, acceptor):
        clock = FakeClock()
        pool = ConnectionPool(idle_seconds=30.0, clock=clock)
        first = pool.acquire(acceptor.addr)
        assert not first.reused
        pool.release(first)
        again = pool.acquire(acceptor.addr)
        assert again.sock is first.sock
        assert again.reused
        assert pool.stats()["connects"] == 1
        assert pool.stats()["reuses"] == 1
        pool.close()

    def test_idle_reap_then_reconnect(self, acceptor):
        clock = FakeClock()
        pool = ConnectionPool(idle_seconds=30.0, clock=clock)
        conn = pool.acquire(acceptor.addr)
        pool.release(conn)
        assert pool.idle_count(acceptor.addr) == 1
        clock.advance(30.5)  # past the idle horizon
        fresh = pool.acquire(acceptor.addr)  # reaps, then dials anew
        assert not fresh.reused
        assert fresh.sock is not conn.sock
        stats = pool.stats()
        assert stats["reaped"] == 1
        assert stats["connects"] == 2
        assert stats["reuses"] == 0
        pool.close()

    def test_idle_list_is_bounded(self, acceptor):
        pool = ConnectionPool(max_idle_per_worker=2, clock=FakeClock())
        conns = [pool.acquire(acceptor.addr) for _ in range(4)]
        for conn in conns:
            pool.release(conn)
        assert pool.idle_count(acceptor.addr) == 2
        pool.close()

    def test_drop_worker_clears_idle(self, acceptor):
        pool = ConnectionPool(clock=FakeClock())
        pool.release(pool.acquire(acceptor.addr))
        assert pool.idle_count() == 1
        pool.drop_worker(acceptor.addr)
        assert pool.idle_count() == 0
        pool.close()

    def test_discarded_connection_never_returns(self, acceptor):
        pool = ConnectionPool(clock=FakeClock())
        conn = pool.acquire(acceptor.addr)
        pool.discard(conn)
        assert pool.idle_count() == 0
        assert pool.acquire(acceptor.addr).sock is not conn.sock
        pool.close()


# ---------------------------------------------------------------------------
# Handshake protocol units (scripted worker over a socketpair)
# ---------------------------------------------------------------------------

TOKEN = b"transport-test-token"


def _scripted_handshake(server_script):
    """Run client_handshake against a thread playing the worker side."""
    client_sock, server_sock = socket.socketpair()
    errors = []

    def _serve():
        try:
            server_script(server_sock)
        except Exception as exc:  # surfaced via the main thread's assert
            errors.append(exc)
        finally:
            server_sock.close()

    thread = threading.Thread(target=_serve)
    thread.start()
    try:
        client_handshake(client_sock, TOKEN)
    finally:
        client_sock.close()
        thread.join(timeout=5)
        assert not errors, errors
    return None


class TestHandshake:
    def test_mutual_handshake_succeeds(self):
        def worker(sock):
            kind, payload = recv_frame(sock)
            assert kind == HELLO
            version, nonce_c = serialize.auth_hello_from_bytes(payload)
            assert version == serialize.AUTH_PROTOCOL_VERSION
            nonce_s = b"\x5a" * serialize.AUTH_NONCE_BYTES
            send_frame(sock, CHALLENGE, serialize.auth_challenge_to_bytes(nonce_s))
            kind, payload = recv_frame(sock)
            assert kind == AUTH
            mac = serialize.auth_mac_from_bytes(payload)
            assert mac == _auth_mac(TOKEN, b"client", nonce_c, nonce_s)
            send_frame(
                sock,
                AUTH_OK,
                serialize.auth_mac_to_bytes(
                    _auth_mac(TOKEN, b"worker", nonce_s, nonce_c)
                ),
            )

        _scripted_handshake(worker)  # no raise = authenticated both ways

    def test_explicit_rejection_is_typed_auth_error(self):
        def worker(sock):
            recv_frame(sock)  # HELLO
            send_frame(
                sock,
                ERROR,
                serialize.remote_error_to_bytes("auth-failed", "token mismatch"),
            )

        with pytest.raises(FleetAuthError, match="token mismatch"):
            _scripted_handshake(worker)

    def test_impostor_worker_fails_mutual_auth(self):
        def worker(sock):
            recv_frame(sock)
            nonce_s = b"\x5a" * serialize.AUTH_NONCE_BYTES
            send_frame(sock, CHALLENGE, serialize.auth_challenge_to_bytes(nonce_s))
            recv_frame(sock)  # AUTH (an impostor can't verify it anyway)
            send_frame(
                sock, AUTH_OK, serialize.auth_mac_to_bytes(b"\x00" * 32)
            )

        with pytest.raises(FleetAuthError, match="mutual"):
            _scripted_handshake(worker)

    def test_wrong_frame_kind_is_auth_error(self):
        def worker(sock):
            recv_frame(sock)
            send_frame(sock, PONG, b"")

        with pytest.raises(FleetAuthError, match="expected CHALLENGE"):
            _scripted_handshake(worker)

    def test_peer_death_is_connection_error_not_auth_error(self):
        # A worker that dies mid-handshake is a transport failure and must
        # stay retryable; FleetAuthError here would poison the chunk.
        def worker(sock):
            recv_frame(sock)  # HELLO, then hang up without a word

        with pytest.raises(ConnectionError):
            _scripted_handshake(worker)


# ---------------------------------------------------------------------------
# Health-aware placement (registry units, fake clock, no network)
# ---------------------------------------------------------------------------


class TestHealthAwarePlacement:
    def make_registry(self, n=2):
        clock = FakeClock()
        addrs = [f"h{i}:{9000 + i}" for i in range(1, n + 1)]
        return WorkerRegistry(addrs, clock=clock), clock

    def test_uniform_fleet_round_robins(self):
        registry, _ = self.make_registry(3)
        picks = [registry.next_worker()[0] for _ in range(6)]
        assert picks == ["h1", "h2", "h3", "h1", "h2", "h3"]

    def test_degraded_worker_is_shed_then_rejoins(self):
        registry, _ = self.make_registry(2)
        h1 = ("h1", 9001)
        # Two failures (below the trip threshold) push h1's failure EWMA
        # into a worse health bucket: placement prefers h2 exclusively.
        registry.record_failure(h1)
        registry.record_failure(h1)
        assert [registry.next_worker()[0] for _ in range(3)] == ["h2"] * 3
        # Successes decay the EWMA; once buckets tie again, round-robin
        # resumes and h1 shares the load.
        registry.record_success(h1)
        registry.record_success(h1)
        picks = [registry.next_worker()[0] for _ in range(4)]
        assert set(picks) == {"h1", "h2"}

    def test_slow_worker_is_demoted_on_latency(self):
        registry, _ = self.make_registry(2)
        for _ in range(3):
            registry.record_success(("h1", 9001), latency_seconds=1.0)
            registry.record_success(("h2", 9002), latency_seconds=0.01)
        assert [registry.next_worker()[0] for _ in range(3)] == ["h2"] * 3

    def test_fully_tripped_fleet_still_carries_probes(self):
        registry, clock = self.make_registry(2)
        for addr in [("h1", 9001), ("h2", 9002)]:
            for _ in range(3):
                registry.record_failure(addr)
        assert registry.placeable_count() == 1  # planning floor
        # Placement must still hand out a worker: the half-open probes
        # are the only path back to a working fleet.
        assert registry.next_worker()[0] in ("h1", "h2")
        clock.advance(60.0)
        assert registry.placeable_count() >= 1

    def test_dead_fleet_raises(self):
        registry, _ = self.make_registry(2)
        registry.mark_dead(("h1", 9001))
        registry.mark_dead(("h2", 9002))
        assert registry.placeable_count() == 0
        with pytest.raises(WorkerUnavailable):
            registry.next_worker()

    def test_ping_failure_marks_dead_but_never_feeds_breaker(self):
        with socket.socket() as s:  # grab a port nobody is listening on
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        registry = WorkerRegistry([f"127.0.0.1:{port}"], connect_timeout=0.5)
        addr = ("127.0.0.1", port)
        assert registry.ping(addr) is None
        worker = registry.workers()[0]
        assert not worker.healthy
        assert worker.breaker.samples == 0  # reachability != dispatch quality


# ---------------------------------------------------------------------------
# Real fleet integration: auth enforcement and socket reuse (slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestAuthenticatedFleet:
    def test_auth_enforcement_and_pooled_dispatch(self, tmp_path, monkeypatch):
        token = "fleet-integration-token"
        monkeypatch.setenv(TOKEN_ENV, token)
        addrs, procs = launch_loopback_workers(
            2, keystore_root=str(tmp_path / "keys")
        )
        try:
            addr = parse_worker_addr(addrs[0])

            # Wrong token: typed rejection during the handshake.
            with pytest.raises(FleetAuthError):
                open_connection(addr, 2.0, b"not-the-token")

            # No handshake at all: the worker rejects the first frame with
            # a typed auth error BEFORE decoding its payload — the payload
            # here is garbage that would crash any decoder.
            with socket.create_connection(addr, timeout=2.0) as bare:
                bare.settimeout(5.0)
                send_frame(bare, JOBS, b"\xff" * 64)
                kind, payload = recv_frame(bare)
            assert kind == ERROR
            err_kind, message, _ = serialize.remote_error_from_bytes(payload)
            assert err_kind == "auth-failed"
            assert "handshake" in message

            # Right token: full session works, and the executor's pool
            # demonstrably reuses sockets (dispatches >> connects).
            executor = RemoteProvingExecutor(addrs)
            try:
                for _ in range(12):
                    worker_addr = executor.registry.next_worker()
                    conn = executor.pool.acquire(worker_addr)
                    send_frame(conn.sock, PING)
                    kind, _ = recv_frame(conn.sock)
                    assert kind == PONG
                    executor.pool.release(conn)
                stats = executor.transport_stats()
                assert stats["connects"] == 2  # one per worker
                assert stats["reuses"] == 10
            finally:
                executor.shutdown()
        finally:
            stop_workers(procs)
