"""Pairing bilinearity / non-degeneracy (kept small: pairings are slow)."""

import pytest

from repro.curve.bn254 import g1_generator, g2_generator, multiply, neg
from repro.curve.pairing import pairing, pairing_product_is_one
from repro.field.extension import Fq12

G1 = g1_generator()
G2 = g2_generator()


@pytest.fixture(scope="module")
def e_g2_g1():
    return pairing(G2, G1)


class TestPairing:
    def test_non_degenerate(self, e_g2_g1):
        assert e_g2_g1 != Fq12.one()

    def test_bilinear_left(self, e_g2_g1):
        assert pairing(G2, multiply(G1, 5)) == e_g2_g1 ** 5

    def test_bilinear_right(self, e_g2_g1):
        assert pairing(multiply(G2, 5), G1) == e_g2_g1 ** 5

    def test_identity_inputs(self):
        assert pairing(None, G1) == Fq12.one()
        assert pairing(G2, None) == Fq12.one()

    def test_off_curve_rejected(self):
        with pytest.raises(ValueError):
            pairing(G2, (1, 1))

    def test_product_check_accepts(self):
        # e(-3G1, G2) * e(G1, 3G2) == 1
        assert pairing_product_is_one(
            [
                (neg(multiply(G1, 3)), G2),
                (G1, multiply(G2, 3)),
            ]
        )

    def test_product_check_rejects(self):
        assert not pairing_product_is_one(
            [
                (neg(multiply(G1, 3)), G2),
                (G1, multiply(G2, 4)),
            ]
        )

    def test_product_check_skips_identity_pairs(self):
        assert pairing_product_is_one([(None, G2), (G1, None)])
