"""Bit/comparison/fixed-point gadget tests, including soundness probes
(can a dishonest witness satisfy the constraints?)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.bits import (
    assert_in_range,
    assert_less_equal,
    bit_decompose,
    field_to_signed,
    is_greater_equal,
    max_gadget,
)
from repro.gadgets.fixedpoint import (
    fixed_mul_gadget,
    from_fixed,
    rescale_gadget,
    signed_rescale_gadget,
    to_fixed,
)
from repro.r1cs import LC, ConstraintSystem

R = BN254_FR_MODULUS


class TestFieldToSigned:
    @given(st.integers(min_value=-1000, max_value=1000))
    def test_roundtrip(self, v):
        assert field_to_signed(v % R) == v

    def test_boundary(self):
        assert field_to_signed(R // 2) == R // 2
        assert field_to_signed(R // 2 + 1) == R // 2 + 1 - R


class TestBitDecompose:
    @given(st.integers(min_value=0, max_value=255))
    def test_bits_correct(self, v):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", v)
        bits = bit_decompose(cs, w, 8)
        assert cs.is_satisfied()
        assert [cs.value(b) for b in bits] == [(v >> i) & 1 for i in range(8)]

    def test_out_of_range_value_rejected_at_fill(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 256)
        with pytest.raises(ValueError):
            bit_decompose(cs, w, 8)

    def test_nonboolean_bit_fails_constraints(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 5)
        bits = bit_decompose(cs, w, 4)
        cs.set_value(bits[0], 2)  # dishonest
        assert not cs.is_satisfied()

    def test_wrong_recomposition_fails(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 5)
        bits = bit_decompose(cs, w, 4)
        cs.set_value(bits[0], 0)
        cs.set_value(bits[1], 0)
        assert not cs.is_satisfied()

    def test_assert_in_range_alias(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 100)
        assert_in_range(cs, w, 7)
        assert cs.is_satisfied()


class TestComparisons:
    @given(st.integers(0, 100), st.integers(0, 100))
    @settings(max_examples=15)
    def test_assert_less_equal(self, a, b):
        cs = ConstraintSystem()
        wa = cs.alloc_public("a", a)
        wb = cs.alloc_public("b", b)
        if a <= b:
            assert_less_equal(cs, wa, wb, 8)
            assert cs.is_satisfied()
        else:
            with pytest.raises(ValueError):
                assert_less_equal(cs, wa, wb, 8)

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=15)
    def test_is_greater_equal_value(self, a, b):
        cs = ConstraintSystem()
        wa = cs.alloc_public("a", a % R)
        wb = cs.alloc_public("b", b % R)
        s = is_greater_equal(cs, wa, wb, 10)
        assert cs.value(s) == (1 if a >= b else 0)
        assert cs.is_satisfied()

    def test_selector_flip_fails(self):
        cs = ConstraintSystem()
        wa = cs.alloc_public("a", 5)
        wb = cs.alloc_public("b", 3)
        s = is_greater_equal(cs, wa, wb, 8)
        cs.set_value(s, 0)  # lie about the comparison
        assert not cs.is_satisfied()


class TestMaxGadget:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=6))
    @settings(max_examples=15)
    def test_max_value(self, values):
        cs = ConstraintSystem()
        wires = [cs.alloc_public(f"x{i}", v % R) for i, v in enumerate(values)]
        m = max_gadget(cs, wires, 10)
        assert field_to_signed(cs.value(m)) == max(values)
        assert cs.is_satisfied()

    def test_overstated_max_fails_membership(self):
        """x_max larger than every element passes the comparisons but fails
        the product-is-zero membership constraint (paper Sec. III-C)."""
        cs = ConstraintSystem()
        wires = [cs.alloc_public(f"x{i}", v) for i, v in enumerate([3, 7, 5])]
        m = max_gadget(cs, wires, 8)
        cs.set_value(m, 9)  # not a member
        assert not cs.is_satisfied()

    def test_understated_max_fails_comparison(self):
        cs = ConstraintSystem()
        wires = [cs.alloc_public(f"x{i}", v) for i, v in enumerate([3, 7, 5])]
        max_gadget(cs, wires, 8)
        # Witness was honest; corrupting the max downward breaks the
        # (already-decomposed) le-diff wires -> unsatisfied.
        m_wire = next(
            i for i, name in enumerate(cs.wire_names) if name == "max-val"
        )
        cs.set_value(m_wire, 5)
        assert not cs.is_satisfied()

    def test_empty_rejected(self):
        cs = ConstraintSystem()
        with pytest.raises(ValueError):
            max_gadget(cs, [], 8)


class TestFixedPoint:
    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_to_from_fixed(self, x):
        assert abs(from_fixed(to_fixed(x, 12), 12) - x) <= 2 ** -12

    @given(st.integers(0, 10 ** 6))
    @settings(max_examples=15)
    def test_rescale_matches_floor(self, v):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", v)
        q = rescale_gadget(cs, w, 8, 14)
        assert cs.value(q) == v >> 8
        assert cs.is_satisfied()

    def test_rescale_rejects_negative(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", (-5) % R)
        with pytest.raises(ValueError):
            rescale_gadget(cs, w, 4, 8)

    def test_rescale_remainder_cheat_fails(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 1000)
        q = rescale_gadget(cs, w, 4, 10)
        cs.set_value(q, cs.value(q) + 1)
        assert not cs.is_satisfied()

    @given(st.integers(-10 ** 5, 10 ** 5))
    @settings(max_examples=15)
    def test_signed_rescale_matches_python_floor(self, v):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", v % R)
        q = signed_rescale_gadget(cs, w, 6, 14)
        assert field_to_signed(cs.value(q)) == v >> 6  # arithmetic shift
        assert cs.is_satisfied()

    def test_signed_rescale_magnitude_check(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("v", 1 << 30)
        with pytest.raises(ValueError):
            signed_rescale_gadget(cs, w, 4, 10)

    @given(st.floats(-5, 5), st.floats(-5, 5))
    @settings(max_examples=15)
    def test_fixed_mul(self, a, b):
        f = 10
        cs = ConstraintSystem()
        wa = cs.alloc_public("a", to_fixed(a, f) % R)
        wb = cs.alloc_public("b", to_fixed(b, f) % R)
        _, out = fixed_mul_gadget(cs, wa, wb, f, 8)
        got = field_to_signed(cs.value(out)) / (1 << f)
        assert abs(got - a * b) < 0.01
        assert cs.is_satisfied()
