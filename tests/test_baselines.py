"""Baseline schemes: zkCNN interactive sumcheck and the modelled halo2."""

import random

import pytest

from repro.baselines import (
    ZkCnnMatmul,
    estimate_halo2,
    halo2_matmul_cost,
)
from repro.field.prime_field import BN254_FR_MODULUS
from repro.zkml.costmodel import CostModel

R = BN254_FR_MODULUS


def rand_case(a, n, b, seed=0):
    rng = random.Random(seed)
    x = [[rng.randrange(200) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(200) for _ in range(b)] for _ in range(n)]
    y = [
        [sum(x[i][k] * w[k][j] for k in range(n)) % R for j in range(b)]
        for i in range(a)
    ]
    return x, w, y


class TestZkCnn:
    def test_roundtrip(self):
        x, w, y = rand_case(4, 8, 4, seed=1)
        zk = ZkCnnMatmul(4, 8, 4)
        proof = zk.prove(x, w, y)
        assert zk.verify(y, proof)

    def test_non_power_of_two_dims(self):
        x, w, y = rand_case(3, 5, 2, seed=2)
        zk = ZkCnnMatmul(3, 5, 2)
        assert zk.verify(y, zk.prove(x, w, y))

    def test_wrong_output_rejected(self):
        x, w, y = rand_case(4, 8, 4, seed=3)
        zk = ZkCnnMatmul(4, 8, 4)
        proof = zk.prove(x, w, y)
        y[2][2] = (y[2][2] + 1) % R
        assert not zk.verify(y, proof)

    def test_tampered_sumcheck_rejected(self):
        x, w, y = rand_case(4, 4, 4, seed=4)
        zk = ZkCnnMatmul(4, 4, 4)
        proof = zk.prove(x, w, y)
        proof.sumcheck.round_polys[0][0] = (
            proof.sumcheck.round_polys[0][0] + 1
        ) % R
        assert not zk.verify(y, proof)

    def test_tampered_opening_rejected(self):
        x, w, y = rand_case(4, 4, 4, seed=5)
        zk = ZkCnnMatmul(4, 4, 4)
        proof = zk.prove(x, w, y)
        proof.x_opening.value = (proof.x_opening.value + 1) % R
        assert not zk.verify(y, proof)

    def test_claim_must_match_public_y(self):
        x, w, y = rand_case(2, 4, 2, seed=6)
        zk = ZkCnnMatmul(2, 4, 2)
        proof = zk.prove(x, w, y)
        proof.y_claim = (proof.y_claim + 1) % R
        assert not zk.verify(y, proof)

    def test_timings_and_size(self):
        x, w, y = rand_case(4, 8, 4, seed=7)
        zk = ZkCnnMatmul(4, 8, 4)
        proof = zk.prove(x, w, y)
        assert proof.online_time_s >= proof.prover_time_s > 0
        assert proof.size_bytes() > 0

    def test_prover_scales_better_than_groth16_baseline(self):
        """zkCNN's field-ops-only prover should beat the pairing-based
        provers by a wide margin at equal size (Fig. 6's fastest prover)."""
        import time

        from repro.core.api import MatmulProver

        x, w, y = rand_case(4, 8, 4, seed=8)
        zk = ZkCnnMatmul(4, 8, 4)
        t0 = time.perf_counter()
        zk.prove(x, w, y)
        zk_time = time.perf_counter() - t0

        g = MatmulProver(4, 8, 4, strategy="crpc_psq", backend="groth16")
        bundle = g.prove(x, w)
        assert zk_time < bundle.timings["prove"]


class TestHalo2Model:
    def test_cost_shape(self):
        from repro.baselines.zkml_halo2 import MACS_PER_ROW

        cost = halo2_matmul_cost(4, 8, 4)
        assert cost.constraints == -(-4 * 8 * 4 // MACS_PER_ROW) + 4 * 4

    def test_estimate_fields(self):
        model = CostModel()
        est = estimate_halo2(halo2_matmul_cost(8, 16, 8), model)
        assert est.modelled
        assert est.prove_s > 0 and est.verify_s > 0 and est.proof_bytes > 0

    def test_fig3_ordering(self):
        """Fig. 3's story: zkVC < zkML < vanilla groth16 in proving time
        (all through the same cost model for comparability)."""
        from repro.zkml.compile import matmul_cost

        model = CostModel()
        # Fig. 3's dimensions: [49, 64] x [64, 128].
        a, n, b = 49, 64, 128
        zkvc = model.groth16_prove_time(matmul_cost(a, n, b, "crpc_psq"))
        vanilla = model.groth16_prove_time(matmul_cost(a, n, b, "vanilla"))
        zkml = estimate_halo2(halo2_matmul_cost(a, n, b), model).prove_s
        assert zkvc < zkml < vanilla

    def test_scaling_monotone(self):
        model = CostModel()
        small = estimate_halo2(halo2_matmul_cost(4, 8, 4), model)
        big = estimate_halo2(halo2_matmul_cost(16, 32, 16), model)
        assert big.prove_s > small.prove_s
