"""Shared test fixtures and hypothesis settings."""

import random

import pytest
from hypothesis import HealthCheck, settings

# Crypto ops are slow in pure Python; keep example counts sane and disable
# per-example deadlines globally.
settings.register_profile(
    "repro",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def seeded_rng_factory():
    def make(seed: int = 0):
        return random.Random(seed)

    return make
