"""QAP lowering: the divisibility identity behind Groth16."""

import random

from repro.field.prime_field import BN254_FR_MODULUS, fr_root_of_unity
from repro.poly.dense import lagrange_interpolate, vanishing_poly
from repro.qap.qap import domain_size_for, evaluate_qap_at
from repro.r1cs import LC, ConstraintSystem

R = BN254_FR_MODULUS


def build_square_chain(depth: int, x_val: int) -> ConstraintSystem:
    """x, x^2, x^4, ... chained squarings."""
    cs = ConstraintSystem()
    x = cs.alloc_public("x", x_val)
    cur = x
    for i in range(depth):
        cur = cs.mul(LC.from_wire(cur), LC.from_wire(cur), f"sq{i}")
    return cs


class TestQapEvaluation:
    def test_domain_size(self):
        cs = build_square_chain(3, 3)
        inst = cs.specialize(1)
        assert domain_size_for(inst) == 4
        cs5 = build_square_chain(5, 3)
        assert domain_size_for(cs5.specialize(1)) == 8

    def test_minimum_domain(self):
        cs = build_square_chain(1, 2)
        assert domain_size_for(cs.specialize(1)) == 2

    def test_qap_identity_at_random_tau(self):
        """(sum c_i u_i)(sum c_i v_i) - sum c_i w_i must vanish on the
        domain, i.e. be divisible by t — checked via explicit interpolation."""
        cs = build_square_chain(3, 5)
        inst = cs.specialize(1)
        assignment = cs.assignment()
        n = domain_size_for(inst)
        omega = fr_root_of_unity(n)
        domain = [pow(omega, q, R) for q in range(n)]

        az = inst.matvec("A", assignment) + [0] * (n - inst.num_constraints)
        bz = inst.matvec("B", assignment) + [0] * (n - inst.num_constraints)
        cz = inst.matvec("C", assignment) + [0] * (n - inst.num_constraints)
        a_poly = lagrange_interpolate(domain, az)
        b_poly = lagrange_interpolate(domain, bz)
        c_poly = lagrange_interpolate(domain, cz)
        prod = a_poly * b_poly - c_poly
        _, rem = prod.divmod(vanishing_poly(n))
        assert rem.is_zero()

    def test_qap_evaluations_match_interpolation(self):
        cs = build_square_chain(2, 7)
        inst = cs.specialize(1)
        tau = random.Random(1).randrange(R)
        qap = evaluate_qap_at(inst, tau)
        assignment = cs.assignment()

        n = qap.domain_size
        omega = fr_root_of_unity(n)
        domain = [pow(omega, q, R) for q in range(n)]
        az = inst.matvec("A", assignment) + [0] * (n - inst.num_constraints)
        a_poly = lagrange_interpolate(domain, az)
        a_at_tau = sum(
            c * u for c, u in zip(assignment, qap.u)
        ) % R
        assert a_at_tau == a_poly(tau)

    def test_t_at_tau(self):
        cs = build_square_chain(2, 2)
        inst = cs.specialize(1)
        tau = 12345
        qap = evaluate_qap_at(inst, tau)
        assert qap.t_at_tau == (pow(tau, qap.domain_size, R) - 1) % R

    def test_unsatisfied_assignment_breaks_divisibility(self):
        cs = build_square_chain(2, 3)
        inst = cs.specialize(1)
        assignment = cs.assignment()
        assignment[-1] = (assignment[-1] + 1) % R
        n = domain_size_for(inst)
        omega = fr_root_of_unity(n)
        domain = [pow(omega, q, R) for q in range(n)]
        az = inst.matvec("A", assignment) + [0] * (n - inst.num_constraints)
        bz = inst.matvec("B", assignment) + [0] * (n - inst.num_constraints)
        cz = inst.matvec("C", assignment) + [0] * (n - inst.num_constraints)
        prod = (
            lagrange_interpolate(domain, az)
            * lagrange_interpolate(domain, bz)
            - lagrange_interpolate(domain, cz)
        )
        _, rem = prod.divmod(vanishing_poly(n))
        assert not rem.is_zero()
