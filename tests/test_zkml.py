"""zkML layer: quantised inference, circuit accounting, cost model,
planner, and the trace machinery."""

import numpy as np
import pytest

from repro.core.planner import MixerPlanner, PlanResult
from repro.nn import (
    TextTransformer,
    VisionTransformer,
    make_nlp_task,
    make_vision_dataset,
    train_model,
    uniform_plan,
)
from repro.nn.transformer import (
    ModelConfig,
    StageConfig,
    metaformer_imagenet_config,
    vit_cifar_config,
)
from repro.zkml import (
    CostModel,
    QuantizedTransformer,
    account_model,
    account_trace,
    compile_block_circuit,
    gadget_unit_costs,
    matmul_cost,
    synthesize_trace,
)
from repro.zkml.compile import CircuitCost
from repro.zkml.costmodel import PrimitiveRates, _best_of, measure_rates
from repro.gadgets.matmul import STRATEGIES, MatmulCircuit


@pytest.fixture(scope="module")
def trained_vision():
    data = make_vision_dataset("cifar10", 600, seed=3)
    rng = np.random.default_rng(0)
    model = VisionTransformer(
        16, 4, dim=48, heads=4, num_classes=8,
        mixer_plan=uniform_plan("softmax", 2), rng=rng,
    )
    train_model(model, data, epochs=10, lr=0.08, seed=1)
    return model, data


class TestQuantizedInference:
    def test_quantized_close_to_float(self, trained_vision):
        model, data = trained_vision
        from repro.nn.train import evaluate

        float_acc = evaluate(model, data.test_x, data.test_y)
        q = QuantizedTransformer(model)
        q_acc = q.accuracy(data.test_x, data.test_y)
        # Without poly-GELU fine-tuning some drop is expected, but the
        # quantised path must stay in the same ballpark.
        assert q_acc >= float_acc - 0.25
        assert q_acc > 0.3

    def test_trace_records_matmuls(self, trained_vision):
        model, data = trained_vision
        q = QuantizedTransformer(model)
        q.trace.matmuls.clear()
        q.predict(data.test_x[:2])
        layers = {m.layer for m in q.trace.matmuls}
        assert "embed" in layers
        assert "head" in layers
        assert any("qkv" in layer for layer in layers)
        assert q.trace.total_mults() > 0

    def test_text_model_quantises(self):
        data, classes = make_nlp_task("qnli", 200, seed=1)
        rng = np.random.default_rng(0)
        model = TextTransformer(
            24, 16, 32, 4, classes, uniform_plan("scaling", 2), rng
        )
        train_model(model, data, epochs=4, lr=0.08)
        q = QuantizedTransformer(model)
        acc = q.accuracy(data.test_x, data.test_y)
        assert 0.0 <= acc <= 1.0

    def test_all_mixers_run_quantised(self):
        rng = np.random.default_rng(1)
        for mixer in ("softmax", "scaling", "pooling", "linear"):
            model = VisionTransformer(
                16, 4, 16, 2, 4, uniform_plan(mixer, 1),
                np.random.default_rng(2),
            )
            q = QuantizedTransformer(model)
            pred = q.predict(rng.normal(size=(2, 16, 16)))
            assert pred.shape == (2,)


class TestMatmulCostClosedForms:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("shape", [(2, 3, 2), (3, 4, 2), (1, 5, 3)])
    def test_matches_real_builder(self, strategy, shape):
        a, n, b = shape
        cost = matmul_cost(a, n, b, strategy)
        stats = MatmulCircuit(a, n, b, strategy).cs.stats()
        assert cost.constraints == stats.num_constraints
        assert cost.wires == stats.num_wires - 1  # builder counts ~one
        assert cost.a_wires == stats.a_wires
        assert cost.terms == stats.total_terms

    def test_cost_addition(self):
        c = matmul_cost(2, 2, 2, "vanilla") + matmul_cost(2, 2, 2, "vanilla")
        assert c.constraints == 2 * matmul_cost(2, 2, 2, "vanilla").constraints

    def test_cost_scaling(self):
        c = matmul_cost(2, 2, 2, "vanilla").scaled(3)
        assert c.terms == 3 * matmul_cost(2, 2, 2, "vanilla").terms


class TestGadgetUnitCosts:
    def test_units_positive_and_cached(self):
        units = gadget_unit_costs(12)
        for key in ("softmax_per_elem", "layernorm_per_elem", "gelu",
                    "rescale"):
            assert units[key].constraints > 0, key
        assert gadget_unit_costs(12) is units

    def test_softmax_linear_extrapolation(self):
        """Unit costs must predict a width-24 softmax from 8/16 builds."""
        from repro.r1cs import ConstraintSystem
        from repro.gadgets.nonlinear import softmax_gadget
        from repro.field.prime_field import BN254_FR_MODULUS as R

        units = gadget_unit_costs(12)
        predicted = (
            units["softmax_base"].constraints
            + 24 * units["softmax_per_elem"].constraints
        )
        cs = ConstraintSystem()
        wires = [
            cs.alloc(f"x{i}", (i * 100) % R) for i in range(24)
        ]
        softmax_gadget(cs, wires, 12)
        actual = len(cs.constraints)
        assert abs(predicted - actual) / actual < 0.02


class TestModelAccounting:
    def test_synthesized_trace_matches_runtime_trace(self, trained_vision):
        model, data = trained_vision
        q = QuantizedTransformer(model)
        q.trace.matmuls.clear()
        q.trace.nonlinears.clear()
        q.predict(data.test_x[:1])
        runtime_shapes = sorted(
            (m.a, m.n, m.b) for m in q.trace.matmuls if m.layer != "embed"
        )
        cfg = ModelConfig(
            "probe",
            [StageConfig(layers=2, dim=48, tokens=16, heads=4)],
            num_classes=8,
        )
        trace = synthesize_trace(cfg, ["softmax", "softmax"], mlp_ratio=2)
        synth_shapes = sorted((m.a, m.n, m.b) for m in trace.matmuls)
        assert runtime_shapes == synth_shapes

    def test_crpc_psq_beats_vanilla_on_models(self):
        cfg = vit_cifar_config()
        plan = uniform_plan("softmax", cfg.total_layers)
        zkvc = account_model(cfg, plan, "crpc_psq")
        vanilla = account_model(cfg, plan, "vanilla")
        assert vanilla.matmul.constraints > 50 * zkvc.matmul.constraints

    def test_softmax_free_cheaper(self):
        cfg = vit_cifar_config()
        l = cfg.total_layers
        sm = account_model(cfg, uniform_plan("softmax", l)).total.constraints
        po = account_model(cfg, uniform_plan("pooling", l)).total.constraints
        sc = account_model(cfg, uniform_plan("scaling", l)).total.constraints
        assert po < sc < sm

    def test_plan_length_validated(self):
        cfg = vit_cifar_config()
        with pytest.raises(ValueError):
            account_model(cfg, ["softmax"])


# Frozen primitive rates (rounded from a reference run of
# ``measure_rates()`` on the baseline machine).  The threshold tests
# below are about the *model*, not this machine's clock: with synthetic
# rates they are exactly reproducible on any CI runner, where the old
# wall-clock calibration made the predicted CRPC ratio jitter with cache
# and scheduler state.
REFERENCE_RATES = PrimitiveRates(
    g1_mul_s=1.3e-3,
    g1_msm_per_point_s=3.2e-4,
    g2_mul_s=9.5e-3,
    field_mul_s=4.4e-7,
    ntt_per_elem_s=7.3e-6,
    pairing_s=0.40,
    g1_fixed_msm_per_point_s=1.5e-4,
)


class TestCostModel:
    @pytest.fixture(scope="class")
    def model(self):
        return CostModel(rates=REFERENCE_RATES)

    def test_prove_time_monotone_in_size(self, model):
        small = matmul_cost(4, 8, 4, "vanilla")
        large = matmul_cost(8, 16, 8, "vanilla")
        assert model.groth16_prove_time(large) > model.groth16_prove_time(
            small
        )
        assert model.spartan_prove_time(large) > model.spartan_prove_time(
            small
        )

    def test_crpc_predicted_faster(self, model):
        a, n, b = 32, 64, 32
        vanilla = model.groth16_prove_time(matmul_cost(a, n, b, "vanilla"))
        zkvc = model.groth16_prove_time(matmul_cost(a, n, b, "crpc_psq"))
        # Paper: 9-12x at full scale; at this size the model predicts ~4x
        # (deterministic under the frozen reference rates).
        assert vanilla / zkvc > 3.5

    def test_crpc_speedup_grows_with_size(self, model):
        ratios = []
        for a, n, b in [(8, 16, 8), (16, 32, 16), (32, 64, 32)]:
            v = model.groth16_prove_time(matmul_cost(a, n, b, "vanilla"))
            z = model.groth16_prove_time(matmul_cost(a, n, b, "crpc_psq"))
            ratios.append(v / z)
        assert ratios == sorted(ratios)

    def test_calibration_fixes_prediction(self, model):
        cost = matmul_cost(4, 8, 4, "crpc_psq")
        factor = model.calibrate_against("groth16", cost, measured_prove_s=1.0)
        assert model.groth16_prove_time(cost) == pytest.approx(1.0)
        assert factor > 0

    def test_proof_sizes(self, model):
        assert model.groth16_proof_size() == 256
        assert model.spartan_proof_size(matmul_cost(4, 8, 4, "crpc_psq")) > 256


class TestMeasuredRates:
    """The only tests that touch the wall clock — kept to generous,
    machine-independent bounds (positivity and a structural ordering that
    holds on any hardware)."""

    def test_rates_positive_and_msm_amortises(self):
        r = measure_rates()
        assert r.g1_mul_s > 0 and r.field_mul_s > 0 and r.pairing_s > 0
        assert r.g1_msm_per_point_s < r.g1_mul_s  # MSM amortises

    def test_rates_cached(self):
        assert measure_rates() is measure_rates()

    def test_best_of_takes_minimum_under_fake_counter(self):
        """Min-of-repeats logic, driven by a deterministic monotonic
        counter instead of the wall clock.  ``_best_of`` reads the timer
        twice per run; with run durations of 5, 1, and 3 ticks the
        minimum (1) must win — noise is one-sided, so min is the stable
        estimator."""
        # (t0, t1) per run: durations 5, 1, 3
        times = iter([0, 5, 10, 11, 20, 23])
        assert _best_of(lambda: None, repeats=3, timer=lambda: next(times)) == 1


class TestPlanner:
    def test_imagenet_plan_keeps_late_softmax(self):
        planner = MixerPlanner(metaformer_imagenet_config())
        res = planner.plan(0.4)
        assert isinstance(res, PlanResult)
        # Early (long-sequence) stages lose softmax, late stages keep it.
        assert res.plan[0] != "softmax"
        assert res.plan[-1] == "softmax"
        assert res.est_constraints <= res.budget_constraints

    def test_budget_monotone_utility(self):
        planner = MixerPlanner(vit_cifar_config())
        low = planner.plan(0.55)
        high = planner.plan(0.9)
        assert high.utility >= low.utility
        assert high.est_constraints >= low.est_constraints

    def test_infeasible_budget_clamped(self):
        planner = MixerPlanner(vit_cifar_config())
        res = planner.plan(0.0)  # clamps to the all-cheapest plan
        assert all(m == "pooling" for m in res.plan)


class TestBlockCircuit:
    def test_compiles_and_satisfies(self):
        cs = compile_block_circuit(tokens=3, dim=8, frac_bits=8)
        assert cs.is_satisfied(), cs.first_unsatisfied()
        assert len(cs.constraints) > 100
