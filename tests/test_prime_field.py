"""Unit + property tests for prime-field arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime_field import (
    BN254_FQ_MODULUS,
    BN254_FR_MODULUS,
    Fq,
    Fr,
    PrimeField,
    batch_inv_mod,
    dot_mod,
    fr_root_of_unity,
    inv_mod,
    sqrt_mod,
)

R = BN254_FR_MODULUS
elems = st.integers(min_value=0, max_value=R - 1)
nonzero = st.integers(min_value=1, max_value=R - 1)


class TestModuli:
    def test_fr_is_prime_ish(self):
        # Fermat witness checks (full primality is overkill here).
        for a in (2, 3, 5, 7):
            assert pow(a, R - 1, R) == 1

    def test_fq_is_prime_ish(self):
        q = BN254_FQ_MODULUS
        for a in (2, 3, 5, 7):
            assert pow(a, q - 1, q) == 1

    def test_fr_two_adicity(self):
        assert (R - 1) % (1 << 28) == 0
        assert (R - 1) % (1 << 29) != 0


class TestInv:
    @given(nonzero)
    def test_inverse_roundtrip(self, a):
        assert a * inv_mod(a, R) % R == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            inv_mod(0, R)

    @given(st.lists(nonzero, min_size=1, max_size=20))
    def test_batch_inverse_matches_single(self, values):
        batch = batch_inv_mod(values, R)
        assert batch == [inv_mod(v, R) for v in values]

    def test_batch_inverse_empty(self):
        assert batch_inv_mod([], R) == []

    def test_batch_inverse_rejects_zero(self):
        with pytest.raises(ZeroDivisionError):
            batch_inv_mod([3, 0, 5], R)


class TestSqrt:
    @given(nonzero)
    def test_sqrt_of_square(self, a):
        root = sqrt_mod(a * a % R, R)
        assert root in (a, R - a)

    def test_sqrt_of_zero(self):
        assert sqrt_mod(0, R) == 0

    def test_non_residue_raises(self):
        # Find a non-residue quickly via Euler's criterion.
        for candidate in range(2, 50):
            if pow(candidate, (R - 1) // 2, R) == R - 1:
                with pytest.raises(ValueError):
                    sqrt_mod(candidate, R)
                return
        pytest.fail("no non-residue found in range")


class TestRootsOfUnity:
    @pytest.mark.parametrize("log", [0, 1, 2, 5, 10])
    def test_exact_order(self, log):
        order = 1 << log
        w = fr_root_of_unity(order)
        assert pow(w, order, R) == 1
        if order > 1:
            assert pow(w, order // 2, R) != 1

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fr_root_of_unity(3)

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            fr_root_of_unity(1 << 29)


class TestFieldElementWrapper:
    def test_basic_algebra(self):
        a, b = Fr(7), Fr(5)
        assert a + b == Fr(12)
        assert a - b == Fr(2)
        assert a * b == Fr(35)
        assert (a / b) * b == a
        assert -a == Fr(R - 7)
        assert a ** 3 == Fr(343)

    def test_int_interop(self):
        assert Fr(7) + 5 == 12
        assert 5 + Fr(7) == Fr(12)
        assert 2 * Fr(3) == Fr(6)
        assert (1 / Fr(4)) * 4 == Fr(1)

    def test_mixing_fields_rejected(self):
        with pytest.raises(ValueError):
            Fr(1) + Fq(1)

    @given(elems, elems)
    def test_sub_is_add_neg(self, a, b):
        assert Fr(a) - Fr(b) == Fr(a) + (-Fr(b))

    def test_signed_mapping(self):
        assert Fr.to_signed(Fr.from_signed(-5)) == -5
        assert Fr.to_signed(Fr(3)) == 3

    def test_repr_and_bool(self):
        assert "7" in repr(Fr(7))
        assert not Fr(0)
        assert Fr(1)

    def test_hash_consistency(self):
        assert hash(Fr(5)) == hash(Fr(5 + R))

    def test_field_equality(self):
        assert PrimeField(R) == Fr
        assert PrimeField(R) != Fq


class TestDot:
    @given(
        st.lists(elems, min_size=0, max_size=8),
        st.lists(elems, min_size=0, max_size=8),
    )
    def test_dot_matches_reference(self, a, b):
        n = min(len(a), len(b))
        expected = sum(x * y for x, y in zip(a[:n], b[:n])) % R
        assert dot_mod(a[:n], b[:n], R) == expected
