"""Nonlinear-approximation gadgets: accuracy vs the float references and
constraint satisfaction/soundness (paper Sec. III-C)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.bits import field_to_signed
from repro.gadgets.layernorm import layernorm_gadget
from repro.gadgets.nonlinear import (
    exp_gadget,
    gelu_gadget,
    gelu_poly_reference,
    gelu_reference,
    softmax_gadget,
    softmax_reference,
)
from repro.r1cs import ConstraintSystem

R = BN254_FR_MODULUS
F = 12
S = 1 << F


class TestExpGadget:
    @pytest.mark.parametrize("x", [-0.1, -0.5, -1.0, -2.5, -5.0, -7.9, 0.0])
    def test_accuracy_in_range(self, x):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(x * S) % R)
        res = exp_gadget(cs, w, F)
        got = cs.value(res.out) / S
        assert abs(got - math.exp(x)) < 0.02
        assert cs.is_satisfied()

    @pytest.mark.parametrize("x", [-8.5, -20.0])
    def test_clips_below_threshold(self, x):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(x * S) % R)
        res = exp_gadget(cs, w, F)
        assert cs.value(res.out) == 0
        assert cs.value(res.selector) == 0
        assert cs.is_satisfied()

    def test_positive_input_rejected(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(0.5 * S))
        with pytest.raises(ValueError):
            exp_gadget(cs, w, F)

    def test_selector_lie_fails(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(-1.0 * S) % R)
        res = exp_gadget(cs, w, F)
        cs.set_value(res.selector, 0)
        assert not cs.is_satisfied()

    def test_output_lie_fails(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(-1.0 * S) % R)
        res = exp_gadget(cs, w, F)
        cs.set_value(res.out, cs.value(res.out) + 1)
        assert not cs.is_satisfied()

    def test_more_iters_more_accurate(self):
        errs = []
        for iters in (3, 6):
            cs = ConstraintSystem()
            w = cs.alloc_public("x", round(-1.0 * S) % R)
            res = exp_gadget(cs, w, F, iters=iters)
            errs.append(abs(cs.value(res.out) / S - math.exp(-1.0)))
        assert errs[1] < errs[0]


class TestSoftmaxGadget:
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=6))
    @settings(max_examples=10)
    def test_matches_reference(self, xs):
        cs = ConstraintSystem()
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate(xs)
        ]
        res = softmax_gadget(cs, wires, F)
        got = [cs.value(w) / S for w in res.outputs]
        ref = softmax_reference(xs)
        assert all(abs(g - r) < 0.04 for g, r in zip(got, ref))
        assert cs.is_satisfied()

    def test_outputs_sum_near_one(self):
        cs = ConstraintSystem()
        xs = [0.5, 1.5, -0.5, 2.2]
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate(xs)
        ]
        res = softmax_gadget(cs, wires, F)
        total = sum(cs.value(w) for w in res.outputs) / S
        assert abs(total - 1.0) < 0.01

    def test_division_cheat_fails(self):
        cs = ConstraintSystem()
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate([1.0, 2.0, 0.5])
        ]
        res = softmax_gadget(cs, wires, F)
        cs.set_value(res.outputs[0], cs.value(res.outputs[0]) + 1)
        assert not cs.is_satisfied()

    def test_max_is_member(self):
        cs = ConstraintSystem()
        xs = [-1.0, 0.25, -0.75]
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate(xs)
        ]
        res = softmax_gadget(cs, wires, F)
        assert field_to_signed(cs.value(res.max_wire)) == round(0.25 * S)


class TestGeluGadget:
    @given(st.floats(-2, 2))
    @settings(max_examples=15)
    def test_matches_paper_polynomial(self, x):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(x * S) % R)
        out = gelu_gadget(cs, w, F)
        got = field_to_signed(cs.value(out)) / S
        assert abs(got - gelu_poly_reference(x)) < 0.01
        assert cs.is_satisfied()

    def test_polynomial_is_the_trainable_substitute(self):
        """The paper's quadratic (x^2/8 + x/4 + 1/2, the MPCFormer-style
        "Quad") is a *trainable substitute*, not a pointwise approximation:
        models are fine-tuned with it before proving (see
        tests/test_zkml_pipeline.py for the accuracy-recovery check).  Here
        we pin its algebraic properties."""
        # Exact at the positive anchor and monotone there.
        assert abs(gelu_poly_reference(1.0) - gelu_reference(1.0)) < 0.05
        # Convex parabola with vertex at x = -1 (value 3/8).
        assert gelu_poly_reference(-1.0) == pytest.approx(0.375)
        for x in (-3.0, -0.5, 0.0, 2.0):
            assert gelu_poly_reference(x) >= 0.375
        # Agrees with true GELU asymptotically in trend (both increase
        # right of the vertex).
        assert gelu_poly_reference(2.0) > gelu_poly_reference(1.0)

    def test_output_cheat_fails(self):
        cs = ConstraintSystem()
        w = cs.alloc_public("x", round(0.7 * S))
        out = gelu_gadget(cs, w, F)
        cs.set_value(out, cs.value(out) + 1)
        assert not cs.is_satisfied()


class TestLayerNormGadget:
    @given(
        st.lists(
            st.floats(min_value=-3, max_value=3), min_size=4, max_size=8
        )
    )
    @settings(max_examples=8)
    def test_matches_reference(self, xs):
        # Guard: degenerate all-equal vectors have ~zero variance.
        if max(xs) - min(xs) < 0.2:
            xs = [x + 0.3 * i for i, x in enumerate(xs)]
        cs = ConstraintSystem()
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate(xs)
        ]
        res = layernorm_gadget(cs, wires, F)
        got = [field_to_signed(cs.value(w)) / S for w in res.outputs]
        mu = sum(xs) / len(xs)
        var = sum((v - mu) ** 2 for v in xs) / len(xs)
        eps_real = (S // 16) / S ** 2
        ref = [(v - mu) / math.sqrt(var + eps_real) for v in xs]
        assert all(abs(g - r) < 0.05 for g, r in zip(got, ref))
        assert cs.is_satisfied()

    def test_inv_std_cheat_fails(self):
        cs = ConstraintSystem()
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate([1.0, -1.0, 0.5, -0.5])
        ]
        res = layernorm_gadget(cs, wires, F)
        cs.set_value(res.inv_std_wire, cs.value(res.inv_std_wire) + 10)
        assert not cs.is_satisfied()

    def test_mean_cheat_fails(self):
        cs = ConstraintSystem()
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate([1.0, -1.0, 0.5, -0.5])
        ]
        res = layernorm_gadget(cs, wires, F)
        cs.set_value(res.mean_wire, cs.value(res.mean_wire) + 1)
        assert not cs.is_satisfied()

    def test_outputs_standardised(self):
        cs = ConstraintSystem()
        vals = [2.0, -1.0, 0.5, 3.0, -2.5, 1.0, 0.0, -3.0]
        wires = [
            cs.alloc_public(f"x{i}", round(v * S) % R)
            for i, v in enumerate(vals)
        ]
        res = layernorm_gadget(cs, wires, F)
        got = [field_to_signed(cs.value(w)) / S for w in res.outputs]
        assert abs(sum(got)) < 0.05
        var = sum(g * g for g in got) / len(got)
        assert abs(var - 1.0) < 0.1
