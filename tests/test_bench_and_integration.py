"""Bench-harness units plus slow end-to-end integrations: verifiable
inference over a tiny model, and a full transformer-block circuit proven
with Spartan."""

import numpy as np
import pytest

from repro.bench import (
    CIRCUIT_SCHEMES,
    TABLE1_HEADERS,
    fmt_bytes,
    fmt_s,
    format_table,
    model_scheme_at_scale,
    random_matrices,
    run_circuit_scheme,
    run_zkcnn,
    table1_rows,
)
from repro.field.prime_field import BN254_FR_MODULUS
from repro.nn import VisionTransformer, make_vision_dataset, train_model, uniform_plan
from repro.spartan import Transcript
from repro.spartan import prove as spartan_prove
from repro.spartan import verify as spartan_verify
from repro.zkml import (
    CostModel,
    QuantizedTransformer,
    VerifiableInference,
    compile_block_circuit,
)

R = BN254_FR_MODULUS


class TestHarnessUnits:
    def test_random_matrices_product(self):
        x, w, y = random_matrices(2, 3, 2, seed=1)
        for i in range(2):
            for j in range(2):
                assert y[i][j] == sum(
                    x[i][k] * w[k][j] for k in range(3)
                ) % R

    def test_format_helpers(self):
        assert fmt_s(0.5) == "500.0ms"
        assert fmt_s(2.0) == "2.00s"
        assert fmt_s(1e-5) == "10us"
        assert fmt_bytes(100) == "100B"
        assert fmt_bytes(2048) == "2.0KB"
        assert fmt_bytes(3 * 1024 * 1024) == "3.0MB"

    def test_format_table(self):
        out = format_table("T", ["a", "bb"], [["1", "2"], ["33", "4"]])
        assert "T" in out and "33" in out

    def test_table1_matches_paper(self):
        rows = table1_rows()
        assert len(rows) == 9
        zkvc = rows[-1]
        assert zkvc[0] == "zkVC"
        assert all(cell == "yes" for cell in zkvc[1:])
        safety = rows[0]
        assert safety[1] == "-"  # SafetyNets is not zero-knowledge
        assert len(TABLE1_HEADERS) == 8

    def test_scheme_registry(self):
        assert set(CIRCUIT_SCHEMES) == {
            "groth16", "spartan", "vCNN", "ZEN", "zkVC-G", "zkVC-S",
        }

    def test_run_spartan_scheme(self):
        res = run_circuit_scheme("zkVC-S", 2, 4, 2, seed=1)
        assert res.prove_s > 0 and res.proof_bytes > 0
        assert not res.modelled

    def test_run_zkcnn_scheme(self):
        res = run_zkcnn(2, 4, 2, seed=1)
        assert res.online_s >= res.verify_s
        assert res.scheme == "zkCNN"

    def test_modelled_rows_labelled(self):
        model = CostModel()
        for scheme in ("zkVC-G", "zkML", "spartan"):
            res = model_scheme_at_scale(scheme, 49, 64, 128, model)
            assert res.modelled
            assert res.prove_s > 0


@pytest.mark.slow
class TestVerifiableInferenceE2E:
    @pytest.fixture(scope="class")
    def tiny_model(self):
        data = make_vision_dataset("cifar10", 200, seed=5)
        model = VisionTransformer(
            16, 4, dim=8, heads=2, num_classes=8,
            mixer_plan=uniform_plan("pooling", 1),
            rng=np.random.default_rng(0),
        )
        train_model(model, data, epochs=2, lr=0.05)
        return model, data

    def test_prove_and_verify_layers(self, tiny_model):
        model, data = tiny_model
        q = QuantizedTransformer(model, frac_bits=8)
        vi = VerifiableInference(
            q, strategy="crpc_psq", backend="spartan", max_layers=2
        )
        proof = vi.prove(data.test_x[0])
        assert len(proof.layer_proofs) == 2
        assert vi.verify(proof)
        assert proof.total_proof_bytes() > 0
        assert 0 <= proof.prediction < 8

    def test_tampered_layer_rejected(self, tiny_model):
        model, data = tiny_model
        q = QuantizedTransformer(model, frac_bits=8)
        vi = VerifiableInference(
            q, strategy="crpc_psq", backend="spartan", max_layers=1
        )
        proof = vi.prove(data.test_x[1])
        bundle = proof.layer_proofs[0].bundle
        bundle.y[0][0] = (bundle.y[0][0] + 1) % R
        assert not vi.verify(proof)

    def test_prediction_matches_plain_inference(self, tiny_model):
        model, data = tiny_model
        q = QuantizedTransformer(model, frac_bits=8)
        expected = int(q.predict(data.test_x[:1])[0])
        vi = VerifiableInference(
            q, strategy="crpc_psq", backend="spartan", max_layers=0
        )
        proof = vi.prove(data.test_x[0])
        assert proof.prediction == expected


@pytest.mark.slow
class TestBlockCircuitSpartan:
    def test_full_block_circuit_proves(self):
        """A transformer block's gadget circuit (layernorm + softmax +
        GELU) proven end-to-end with the transparent backend."""
        cs = compile_block_circuit(tokens=2, dim=8, frac_bits=8)
        assert cs.is_satisfied()
        inst = cs.specialize(1)
        proof = spartan_prove(inst, cs.assignment(), Transcript(b"block"))
        assert spartan_verify(
            inst, cs.public_inputs(), proof, Transcript(b"block")
        )
