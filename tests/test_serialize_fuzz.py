"""Seeded mutation/truncation fuzzing of every wire format.

The serving stack's contract for untrusted bytes is narrow: a mutated
blob must either fail to parse with a clean ``ValueError``
(``SerializationError``) or deserialize into something that verifies
``False`` — never an unhandled exception, never a hang, never a forged
``True``.  These tests drive that contract with deterministic seeded
mutations (bit flips, truncations, extensions, zeroed slices) over VK /
PK / keypair / bundle / verifier-artifact / job-envelope / handshake
bytes, guarding the shape-header and Hyrax-header DoS checks in
``repro.serialize``.
"""

import random
import socket
import struct

import pytest
from _matutil import rand_mats

from repro import serialize
from repro.core import (
    CircuitRegistry,
    KeyStore,
    MatmulProofBundle,
    MatmulProver,
    MatmulVerifier,
)
from repro.core import remote

SEED = 0xF022ED


def fresh_stores():
    registry = CircuitRegistry()
    return registry, KeyStore(registry=registry)


def mutants(rng: random.Random, blob: bytes, count: int):
    """Deterministic stream of corrupted variants of ``blob``."""
    for _ in range(count):
        data = bytearray(blob)
        op = rng.randrange(5)
        if op == 0 and data:  # flip one random byte
            i = rng.randrange(len(data))
            data[i] ^= 1 << rng.randrange(8)
        elif op == 1 and data:  # truncate
            del data[rng.randrange(len(data)):]
        elif op == 2:  # append garbage
            data.extend(rng.randbytes(rng.randrange(1, 40)))
        elif op == 3 and len(data) >= 4:  # zero a slice
            i = rng.randrange(len(data) - 3)
            data[i:i + 4] = b"\x00\x00\x00\x00"
        else:  # saturate a slice (hits length prefixes and headers hard)
            i = rng.randrange(max(1, len(data) - 3))
            data[i:i + 4] = b"\xff\xff\xff\xff"
        yield bytes(data)


def assert_parse_clean(parse, blob):
    """Parsing corrupt bytes may only succeed or raise ValueError."""
    try:
        parse(blob)
        return True
    except ValueError:
        return False
    # anything else (struct.error, IndexError, MemoryError, ...) propagates
    # and fails the test


def semantic_fields(bundle):
    """The fields a verifier actually checks.

    Groth16 bundles carry ``z`` and ``commitment`` as advisory metadata
    (the packing point is baked into the CRS, the commitment unused), so
    a mutant differing only there may still verify — but then it must be
    *semantically identical* to the original on everything the statement
    binds."""
    from repro.core.backends import get_backend

    return (
        bundle.backend,
        bundle.strategy,
        tuple(bundle.shape),
        tuple(tuple(row) for row in bundle.y),
        get_backend(bundle.backend).proof_to_bytes(bundle.proof),
    )


@pytest.mark.parametrize("backend", ["groth16", "spartan"], scope="class")
class TestBundleFuzz:
    # Verification is the expensive step (pairings / sumcheck), so only
    # the mutants that *parse* go through it, with a per-backend cap;
    # everything else asserts the parse contract only.
    ATTEMPTS = {"groth16": 120, "spartan": 160}
    VERIFY_CAP = {"groth16": 12, "spartan": 25}

    @pytest.fixture(scope="class")
    def proved(self, backend):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend=backend, registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2, seed=11))
        return prover.verifier(), bundle

    def test_mutants_parse_cleanly_and_never_forge(self, backend, proved):
        verifier, original = proved
        blob = original.to_bytes()
        reference = semantic_fields(original)
        rng = random.Random(SEED + len(blob))
        parsed = verified = 0
        for mutant in mutants(rng, blob, self.ATTEMPTS[backend]):
            if mutant == blob:
                continue
            if assert_parse_clean(MatmulProofBundle.from_bytes, mutant):
                parsed += 1
                if verified < self.VERIFY_CAP[backend]:
                    verified += 1
                    # the serving-loop contract: a bool, never a raise —
                    # and True only for a semantically untouched bundle
                    # (groth16's advisory z/commitment bytes)
                    if verifier.verify_bytes(mutant) is not False:
                        assert backend == "groth16"
                        decoded = MatmulProofBundle.from_bytes(mutant)
                        assert semantic_fields(decoded) == reference
        # the corpus must exercise both outcomes or it proves nothing
        assert parsed > 0 and verified > 0

    def test_degenerate_inputs(self, backend, proved):
        verifier, _ = proved
        for blob in (b"", b"\x00", b"garbage" * 3, b"\xff" * 64):
            assert_parse_clean(MatmulProofBundle.from_bytes, blob)
            assert verifier.verify_bytes(blob) is False


class TestKeyMaterialFuzz:
    @pytest.fixture(scope="class")
    def keypair_blobs(self):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="groth16", registry=registry, keystore=keystore
        )
        artifacts = prover._artifacts()
        from repro.core.backends import get_backend

        backend = get_backend("groth16")
        keypair_bytes = backend.artifacts_to_bytes(artifacts)
        vk_bytes = backend.export_vk(artifacts)
        pk_bytes = serialize.groth16_pk_to_bytes(artifacts.keypair.pk)
        return vk_bytes, pk_bytes, keypair_bytes

    @pytest.mark.parametrize("which", ["vk", "pk", "keypair"])
    def test_key_mutants_parse_cleanly(self, keypair_blobs, which):
        vk_bytes, pk_bytes, keypair_bytes = keypair_blobs
        blob, parse = {
            "vk": (vk_bytes, serialize.groth16_vk_from_bytes),
            "pk": (pk_bytes, serialize.groth16_pk_from_bytes),
            "keypair": (keypair_bytes, serialize.groth16_keypair_from_bytes),
        }[which]
        rng = random.Random(SEED + len(blob))
        rejected = 0
        for mutant in mutants(rng, blob, 200):
            if mutant == blob:
                continue
            if not assert_parse_clean(parse, mutant):
                rejected += 1
        # group-element and length checks must actually bite: the vast
        # majority of random corruptions cannot round-trip
        assert rejected > 100


class TestVerifierArtifactFuzz:
    @pytest.fixture(scope="class")
    def artifact(self):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2, seed=12))
        return prover.export_verifier(), bundle.to_bytes()

    def test_artifact_mutants_never_accept_silently(self, artifact):
        """A corrupted verifier artifact either fails to reconstruct
        (ValueError) or reconstructs into a verifier that rejects the
        genuine bundle — it must never 'verify' with a damaged key."""
        blob, bundle_bytes = artifact
        rng = random.Random(SEED + len(blob))
        checked = 0
        for mutant in mutants(rng, blob, 120):
            if mutant == blob:
                continue
            try:
                verifier = MatmulVerifier.from_bytes(
                    mutant, registry=CircuitRegistry()
                )
            except ValueError:
                continue
            # Which random mutants survive reconstruction depends on the
            # (random) VK bytes, so this branch is opportunistic; the
            # guaranteed coverage is the targeted test below.
            if checked < 10:  # pairing checks are the expensive part
                checked += 1
                assert verifier.verify_bytes(bundle_bytes) is False

    def test_shape_header_mutants_reject_the_genuine_bundle(self, artifact):
        """Deterministic targeted corruption: each byte of the shape
        header yields a verifier for a *different* circuit, which must
        reject the genuine bundle (never crash, never accept)."""
        blob, bundle_bytes = artifact
        shape_off = 4 + len(b"groth16") + 4 + len(b"crpc_psq")
        for i in range(shape_off, shape_off + 12):
            mutant = bytearray(blob)
            mutant[i] ^= 0x01
            try:
                verifier = MatmulVerifier.from_bytes(
                    bytes(mutant), registry=CircuitRegistry()
                )
            except ValueError:
                continue
            assert verifier.verify_bytes(bundle_bytes) is False


class TestJobEnvelopeFuzz:
    @pytest.fixture(scope="class")
    def blobs(self):
        x, w = rand_mats(2, 3, 2, seed=13)
        jobs_blob = serialize.prove_jobs_to_bytes(
            [(0, x, w, "crpc_psq", "spartan"), (1, x, w, "crpc_psq", "groth16")]
        )
        results_blob = serialize.job_results_to_bytes(
            [(0, b"some-bundle", 0.5), (1, b"other", 1.5)]
        )
        return jobs_blob, results_blob

    @pytest.mark.parametrize("which", ["jobs", "results"])
    def test_envelope_mutants_parse_cleanly(self, blobs, which):
        blob, parse = {
            "jobs": (blobs[0], serialize.prove_jobs_from_bytes),
            "results": (blobs[1], serialize.job_results_from_bytes),
        }[which]
        rng = random.Random(SEED + len(blob))
        for mutant in mutants(rng, blob, 200):
            assert_parse_clean(parse, mutant)

    @pytest.mark.parametrize("which", ["jobs", "results"])
    def test_envelope_decode_failures_are_typed(self, blobs, which):
        """Envelope decoders raise the *typed* CorruptEnvelope (which the
        resilience layer classifies as retryable) with an input offset —
        never a bare struct.error or SerializationError.  Truncations of
        every length must hit the typed path."""
        from repro.core.errors import CorruptEnvelope

        blob, parse = {
            "jobs": (blobs[0], serialize.prove_jobs_from_bytes),
            "results": (blobs[1], serialize.job_results_from_bytes),
        }[which]
        seen_offsets = set()
        for cut in range(len(blob)):
            try:
                parse(blob[:cut])
            except CorruptEnvelope as exc:
                assert isinstance(exc, ValueError)  # fuzz contract holds
                assert exc.offset is not None and 0 <= exc.offset <= cut
                seen_offsets.add(exc.offset)
            # a prefix that happens to decode (e.g. a shorter count) is
            # fine — the decoders reject trailing bytes, not prefixes
        assert seen_offsets  # the typed path actually fired


class TestRemotePayloadFuzz:
    """The KEY_REQUEST / ERROR frame payloads are peer-supplied bytes and
    get the same decode discipline as the job envelopes."""

    CODECS = {
        "circuit_key": (
            serialize.circuit_key_to_bytes((3, 4, 2), "crpc_psq", "groth16"),
            serialize.circuit_key_from_bytes,
        ),
        "remote_error": (
            serialize.remote_error_to_bytes(
                "worker-crash", "injected: boom", 7
            ),
            serialize.remote_error_from_bytes,
        ),
    }

    def test_roundtrips(self):
        shape, strategy, backend = serialize.circuit_key_from_bytes(
            self.CODECS["circuit_key"][0]
        )
        assert (shape, strategy, backend) == ((3, 4, 2), "crpc_psq", "groth16")
        kind, message, job_id = serialize.remote_error_from_bytes(
            self.CODECS["remote_error"][0]
        )
        assert (kind, message, job_id) == ("worker-crash", "injected: boom", 7)
        # job_id None survives the sentinel encoding
        blob = serialize.remote_error_to_bytes("missing-key", "gone", None)
        assert serialize.remote_error_from_bytes(blob)[2] is None

    @pytest.mark.parametrize("which", sorted(CODECS))
    def test_mutants_parse_cleanly(self, which):
        blob, parse = self.CODECS[which]
        rng = random.Random(SEED + len(blob))
        rejected = 0
        for mutant in mutants(rng, blob, 200):
            if mutant == blob:
                continue
            if not assert_parse_clean(parse, mutant):
                rejected += 1
        assert rejected > 0

    @pytest.mark.parametrize("which", sorted(CODECS))
    def test_truncations_are_typed_with_offsets(self, which):
        blob, parse = self.CODECS[which]
        seen_offsets = set()
        for cut in range(len(blob)):
            try:
                parse(blob[:cut])
            except ValueError as exc:
                offset = getattr(exc, "offset", None)
                assert offset is not None and 0 <= offset <= cut
                seen_offsets.add(offset)
        assert seen_offsets


class TestHandshakeFrameFuzz:
    """The HELLO / CHALLENGE / AUTH(_OK) payload codecs guard the
    authentication boundary: they parse attacker-reachable bytes *before*
    any trust is established, so every truncation or mutation must end in
    a typed ``SerializationError`` with an input offset — never a hang,
    never a partial parse that lets a short MAC through."""

    NONCE = bytes(range(serialize.AUTH_NONCE_BYTES))
    MAC = bytes(range(serialize.AUTH_MAC_BYTES))

    CODECS = {
        "hello": (
            serialize.auth_hello_to_bytes(NONCE),
            serialize.auth_hello_from_bytes,
        ),
        "challenge": (
            serialize.auth_challenge_to_bytes(NONCE),
            serialize.auth_challenge_from_bytes,
        ),
        "mac": (
            serialize.auth_mac_to_bytes(MAC),
            serialize.auth_mac_from_bytes,
        ),
    }

    def test_roundtrips(self):
        version, nonce = serialize.auth_hello_from_bytes(
            self.CODECS["hello"][0]
        )
        assert version == serialize.AUTH_PROTOCOL_VERSION
        assert nonce == self.NONCE
        assert (
            serialize.auth_challenge_from_bytes(self.CODECS["challenge"][0])
            == self.NONCE
        )
        assert serialize.auth_mac_from_bytes(self.CODECS["mac"][0]) == self.MAC

    @pytest.mark.parametrize("which", sorted(CODECS))
    def test_mutants_parse_cleanly(self, which):
        blob, parse = self.CODECS[which]
        rng = random.Random(SEED + len(blob) + ord(which[0]))
        rejected = 0
        for mutant in mutants(rng, blob, 200):
            if mutant == blob:
                continue
            if not assert_parse_clean(parse, mutant):
                rejected += 1
        # Fixed-size payloads: every length-changing mutation (2 of the 5
        # mutation ops) must be rejected; same-length corruption of an
        # opaque nonce/MAC parses fine (the MAC *compare* catches it).
        assert rejected > 50

    @pytest.mark.parametrize("which", sorted(CODECS))
    def test_truncations_are_typed_with_offsets(self, which):
        blob, parse = self.CODECS[which]
        seen_offsets = set()
        for cut in range(len(blob)):
            with pytest.raises(serialize.SerializationError) as ei:
                parse(blob[:cut])
            offset = ei.value.offset
            assert offset is not None and 0 <= offset <= cut
            seen_offsets.add(offset)
        assert seen_offsets

    def test_unknown_hello_version_rejected(self):
        blob = serialize.auth_hello_to_bytes(self.NONCE, version=2)
        with pytest.raises(serialize.SerializationError, match="version"):
            serialize.auth_hello_from_bytes(blob)

    def test_trailing_bytes_rejected(self):
        for which, (blob, parse) in self.CODECS.items():
            with pytest.raises(serialize.SerializationError):
                parse(blob + b"\x00")


class TestFrameFuzz:
    """The TCP frame layer (``repro.core.remote``): truncations,
    mutations, and hostile length prefixes coming off a socket must end in
    ``None`` (clean EOF), ``ConnectionError`` (mid-frame disconnect), or a
    typed ``SerializationError`` — never a huge allocation, a hang, or an
    unclassified exception."""

    def feed(self, data: bytes):
        a, b = socket.socketpair()
        with a, b:
            b.settimeout(5.0)
            a.sendall(data)
            a.shutdown(socket.SHUT_WR)
            return remote.recv_frame(b)

    @pytest.fixture(scope="class")
    def frame(self):
        x, w = rand_mats(2, 3, 2, seed=14)
        payload = serialize.prove_jobs_to_bytes(
            [(0, x, w, "crpc_psq", "spartan")]
        )
        return remote.encode_frame(remote.JOBS, payload)

    def test_every_truncation_is_classified(self, frame):
        assert self.feed(b"") is None  # EOF at the boundary
        for cut in range(1, len(frame)):
            with pytest.raises(ConnectionError):
                self.feed(frame[:cut])  # EOF *inside* a frame
        kind, payload = self.feed(frame)
        assert kind == remote.JOBS and len(payload) == len(frame) - 9

    def test_mutation_corpus(self, frame):
        rng = random.Random(SEED + len(frame))
        # random mutants mostly land in the payload; the deterministic
        # header flips guarantee the magic/kind/length checks are hit
        corpus = list(mutants(rng, frame, 150)) + [
            frame[:i] + bytes([frame[i] ^ 0xFF]) + frame[i + 1:]
            for i in range(9)
        ]
        outcomes = {"ok": 0, "eof": 0, "conn": 0, "typed": 0}
        for mutant in corpus:
            try:
                got = self.feed(mutant)
            except ConnectionError:
                outcomes["conn"] += 1
            except serialize.SerializationError:
                outcomes["typed"] += 1
            else:
                outcomes["eof" if got is None else "ok"] += 1
        # the corpus must reach both failure modes and survival
        assert outcomes["ok"] > 0
        assert outcomes["conn"] > 0
        assert outcomes["typed"] > 0

    @pytest.mark.parametrize(
        "length", [remote.MAX_FRAME + 1, 0x7FFFFFFF, 0xFFFFFFFF]
    )
    def test_oversize_length_prefix_never_sizes_a_read(self, length):
        """Only the 9 header bytes are on the wire: an implementation
        that believed the prefix would block for the declared payload and
        trip the socket timeout instead of raising immediately."""
        header = remote.MAGIC + bytes([remote.JOBS]) + struct.pack(">I", length)
        with pytest.raises(serialize.SerializationError) as ei:
            self.feed(header)
        assert ei.value.offset == 5
        assert "MAX_FRAME" in str(ei.value)


class TestOversizeLengthPrefix:
    """Every public decoder: a 4-byte window saturated to ``0xFFFFFFFF``
    anywhere in a valid blob (hitting every length prefix, among other
    fields) must parse cleanly-or-ValueError without an allocation or
    decode loop proportional to the declared length — the sweep itself
    would time out otherwise."""

    @pytest.fixture(scope="class")
    def corpus(self):
        registry, keystore = fresh_stores()
        prover = MatmulProver(
            2, 2, 2, backend="groth16", registry=registry, keystore=keystore
        )
        bundle = prover.prove(*rand_mats(2, 2, 2, seed=15))
        artifacts = prover._artifacts()
        from repro.core.backends import get_backend

        g16 = get_backend("groth16")
        sp_prover = MatmulProver(2, 2, 2, backend="spartan", registry=registry)
        sp_bundle = sp_prover.prove(*rand_mats(2, 2, 2, seed=16))
        x, w = rand_mats(2, 2, 2, seed=17)
        return {
            "vk": (g16.export_vk(artifacts), serialize.groth16_vk_from_bytes),
            "keypair": (
                g16.artifacts_to_bytes(artifacts),
                serialize.groth16_keypair_from_bytes,
            ),
            "bundle_groth16": (bundle.to_bytes(), MatmulProofBundle.from_bytes),
            "bundle_spartan": (
                sp_bundle.to_bytes(),
                MatmulProofBundle.from_bytes,
            ),
            "verifier_artifact": (
                prover.export_verifier(),
                lambda blob: MatmulVerifier.from_bytes(
                    blob, registry=CircuitRegistry()
                ),
            ),
            "jobs": (
                serialize.prove_jobs_to_bytes(
                    [(0, x, w, "crpc_psq", "spartan")]
                ),
                serialize.prove_jobs_from_bytes,
            ),
            "results": (
                serialize.job_results_to_bytes([(0, b"bundle-bytes", 0.25)]),
                serialize.job_results_from_bytes,
            ),
            "circuit_key": (
                serialize.circuit_key_to_bytes((2, 2, 2), "crpc_psq", "spartan"),
                serialize.circuit_key_from_bytes,
            ),
            "remote_error": (
                serialize.remote_error_to_bytes("poison-job", "bad", 3),
                serialize.remote_error_from_bytes,
            ),
        }

    @pytest.mark.parametrize(
        "which",
        [
            "vk",
            "keypair",
            "bundle_groth16",
            "bundle_spartan",
            "verifier_artifact",
            "jobs",
            "results",
            "circuit_key",
            "remote_error",
        ],
    )
    def test_saturated_windows_reject_cleanly(self, corpus, which):
        blob, parse = corpus[which]
        # every offset for small blobs; a bounded stride (plus the blob
        # head, where the length prefixes of every format live) for big
        # ones — the sweep stays a few hundred parses per format
        positions = set(range(0, min(len(blob) - 3, 64)))
        stride = max(1, (len(blob) - 3) // 256)
        positions.update(range(0, len(blob) - 3, stride))
        rejected = 0
        for i in sorted(positions):
            mutant = blob[:i] + b"\xff\xff\xff\xff" + blob[i + 4:]
            if mutant == blob:
                continue
            if not assert_parse_clean(parse, mutant):
                rejected += 1
        assert rejected > 0  # the saturation actually bit somewhere
