"""zkVC public API: prove/verify matmuls on both backends, CRPC math, PSQ
accounting."""

import random

import pytest

from repro.core import (
    MatmulProver,
    crpc_identity_holds,
    left_wire_report,
    pack_w_row,
    pack_x_column,
    pack_y,
    prefix_sums,
    prove_matmul,
    psq_reduction_factor,
    theory_counts,
    verify_matmul,
)
from repro.field.prime_field import BN254_FR_MODULUS
from repro.gadgets.matmul import MatmulCircuit

R = BN254_FR_MODULUS


def rand_mats(a, n, b, seed=0):
    rng = random.Random(seed)
    x = [[rng.randrange(-40, 40) for _ in range(n)] for _ in range(a)]
    w = [[rng.randrange(-40, 40) for _ in range(b)] for _ in range(n)]
    return x, w


class TestCrpcMath:
    def test_identity_holds_for_products(self):
        x, w = rand_mats(3, 4, 2, seed=1)
        y = [
            [sum(x[i][k] * w[k][j] for k in range(4)) for j in range(2)]
            for i in range(3)
        ]
        for z in (2, 12345, 10 ** 18):
            assert crpc_identity_holds(x, w, y, z)

    def test_identity_fails_for_wrong_product(self):
        x, w = rand_mats(3, 4, 2, seed=2)
        y = [
            [sum(x[i][k] * w[k][j] for k in range(4)) for j in range(2)]
            for i in range(3)
        ]
        y[0][0] += 1
        assert not crpc_identity_holds(x, w, y, 987654321)

    def test_packing_helpers(self):
        x, w = rand_mats(2, 2, 2, seed=3)
        z = 100
        # X_0(z) = x00 + z^2 x10 for b=2.
        assert pack_x_column(x, 0, 2, z) == (
            x[0][0] + pow(z, 2, R) * x[1][0]
        ) % R
        assert pack_w_row(w, 1, z) == (w[1][0] + z * w[1][1]) % R
        y = [[1, 2], [3, 4]]
        assert pack_y(y, 2, z) == (1 + 2 * z + 3 * z ** 2 + 4 * z ** 3) % R

    def test_prefix_sums(self):
        assert prefix_sums([1, 2, 3]) == [1, 3, 6]
        assert prefix_sums([]) == []

    def test_theory_counts_complexity_claims(self):
        n = 8
        vanilla = theory_counts(n, n, n, "vanilla")
        zkvc = theory_counts(n, n, n, "crpc_psq")
        # O(n^3) -> O(n) constraints.
        assert vanilla.constraints >= n ** 3
        assert zkvc.constraints == n
        # O(n^3) -> O(n^2) variables.
        assert vanilla.variables > n ** 3
        assert zkvc.variables < 4 * n ** 2

    def test_theory_unknown_strategy(self):
        with pytest.raises(ValueError):
            theory_counts(2, 2, 2, "bogus")


class TestPsqAccounting:
    def test_reduction_factor(self):
        a, n, b = 4, 8, 4
        without = left_wire_report(
            "vanilla", MatmulCircuit(a, n, b, "vanilla").cs
        )
        with_psq = left_wire_report(
            "vanilla_psq", MatmulCircuit(a, n, b, "vanilla_psq").cs
        )
        factor = psq_reduction_factor(without, with_psq)
        # PSQ halves the A-side terms of the vanilla circuit (paper: a
        # substantial cut of the R1CS computation).
        assert factor == pytest.approx(0.5, abs=0.05)

    def test_crpc_psq_left_wires(self):
        a, n, b = 4, 8, 4
        rep = left_wire_report(
            "crpc_psq", MatmulCircuit(a, n, b, "crpc_psq").cs
        )
        assert rep.a_wires == a * n


@pytest.mark.parametrize("backend", ["groth16", "spartan"])
class TestProveVerify:
    def test_roundtrip_and_tamper(self, backend):
        x, w = rand_mats(3, 4, 2, seed=5)
        prover = MatmulProver(3, 4, 2, strategy="crpc_psq", backend=backend)
        bundle = prover.prove(x, w)
        assert prover.verify(bundle)
        bundle.y[0][0] = (bundle.y[0][0] + 1) % R
        assert not prover.verify(bundle)

    def test_prover_reuse(self, backend):
        prover = MatmulProver(2, 3, 2, strategy="crpc_psq", backend=backend)
        for seed in (1, 2):
            x, w = rand_mats(2, 3, 2, seed=seed)
            bundle = prover.prove(x, w)
            assert prover.verify(bundle)

    def test_timings_recorded(self, backend):
        x, w = rand_mats(2, 2, 2, seed=7)
        prover = MatmulProver(2, 2, 2, strategy="crpc_psq", backend=backend)
        bundle = prover.prove(x, w)
        prover.verify(bundle)
        assert bundle.timings["prove"] > 0
        assert bundle.timings["verify"] > 0
        assert bundle.proof_size_bytes() > 0


class TestSpartanBinding:
    def test_packing_point_bound_to_inputs(self):
        """The Spartan flow derives z from commitment || Y; substituting a
        different z must be rejected before verification even runs."""
        x, w = rand_mats(2, 3, 2, seed=8)
        prover = MatmulProver(2, 3, 2, strategy="crpc_psq", backend="spartan")
        bundle = prover.prove(x, w)
        bundle.z = (bundle.z + 1) % R
        assert not prover.verify(bundle)

    def test_commitment_tamper_rejected(self):
        x, w = rand_mats(2, 3, 2, seed=9)
        prover = MatmulProver(2, 3, 2, strategy="crpc_psq", backend="spartan")
        bundle = prover.prove(x, w)
        bundle.commitment = b"\x00" * len(bundle.commitment)
        assert not prover.verify(bundle)

    def test_fresh_salt_per_proof(self):
        x, w = rand_mats(2, 3, 2, seed=10)
        prover = MatmulProver(2, 3, 2, strategy="crpc_psq", backend="spartan")
        b1 = prover.prove(x, w)
        b2 = prover.prove(x, w)
        assert b1.commitment != b2.commitment
        assert b1.z != b2.z


class TestConvenienceWrappers:
    def test_prove_matmul_oneshot(self):
        x, w = rand_mats(2, 2, 2, seed=11)
        bundle, prover = prove_matmul(x, w, backend="spartan")
        assert verify_matmul(bundle, prover)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            prove_matmul([[1, 2]], [[1], [2], [3]])

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            MatmulProver(2, 2, 2, backend="starks")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            MatmulProver(2, 2, 2, strategy="quantum")
